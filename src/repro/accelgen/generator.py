"""CNN-accelerator netlist generation.

Builds a pre-implementation netlist with the structure of Fig. 1(b):

```
PS ─ AXI-in ─ act/weight BRAM buffers ─ line buffers ─ PU[ PE[ DSP cascade ]
     ... adder tree ─ accumulator ─ output BRAM ] ─ AXI-out ─ PS
FSM ─ control DSPs (address generators) ─ buffers / weight regs / accumulators
```

Datapath DSPs sit in cascade chains with few storage neighbours; control
DSPs fan out to many BRAMs/FFs/LUTRAMs and sit between the FSM and the
datapath — reproducing the structural signal Section III of the paper
exploits (centrality separation, storage-element association).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.accelgen.config import AcceleratorConfig
from repro.fpga.device import Device
from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist

#: Net weights by role: cascade nets are the timing-critical datapath.
CASCADE_NET_WEIGHT = 3.0
DATA_NET_WEIGHT = 1.0
CONTROL_NET_WEIGHT = 0.5


class _Builder:
    """Incremental netlist builder with per-prefix name counters and budgets."""

    def __init__(self, cfg: AcceleratorConfig, rng: np.random.Generator) -> None:
        self.cfg = cfg
        self.rng = rng
        self.nl = Netlist(cfg.name)
        self.nl.target_freq_mhz = cfg.freq_mhz
        self._name_counts: Counter[str] = Counter()
        self.used: Counter[CellType] = Counter()
        self.ff_pool: list[int] = []  # anchor candidates for filler/IO hookup
        self.lut_pool: list[int] = []

    def cell(
        self,
        prefix: str,
        ctype: CellType,
        *,
        is_datapath: bool | None = None,
        fixed_xy: tuple[float, float] | None = None,
        **attrs,
    ) -> int:
        n = self._name_counts[prefix]
        self._name_counts[prefix] += 1
        idx = self.nl.add_cell(
            f"{prefix}_{n}", ctype, is_datapath=is_datapath, fixed_xy=fixed_xy, attrs=attrs
        )
        self.used[ctype] += 1
        if ctype is CellType.FF:
            self.ff_pool.append(idx)
        elif ctype is CellType.LUT:
            self.lut_pool.append(idx)
        return idx

    def net(self, name: str, driver: int, sinks, weight: float = DATA_NET_WEIGHT) -> int:
        n = self._name_counts[f"net:{name}"]
        self._name_counts[f"net:{name}"] += 1
        return self.nl.add_net(f"{name}_{n}", driver, sinks, weight=weight)

    def remaining(self, ctype: CellType, target: int) -> int:
        return max(0, target - self.used[ctype])


def _chain_plan(cfg: AcceleratorConfig) -> tuple[list[int], int]:
    """Split the datapath DSP budget into PE cascade chains + post-processing DSPs.

    Roughly one post-processing (bias/quantization) DSP per PU is reserved;
    whatever the chain split leaves over joins the post-processing pool so
    the total datapath DSP count is exact.
    """
    budget = cfg.n_datapath_dsps
    if budget < 2:
        # degenerate tiny config; borrow control DSP slots for one chain
        return [cfg.chain_len], 0
    reserve = max(1, budget // (cfg.chain_len * cfg.pes_per_pu))
    if budget - reserve < 2:
        reserve = budget - 2  # shrink the reserve before overflowing the budget
    n = budget - reserve
    chains: list[int] = []
    while n >= cfg.chain_len:
        chains.append(cfg.chain_len)
        n -= cfg.chain_len
    if n >= 2:
        chains.append(n)  # one truncated chain when the budget is short
        n = 0
    if n == 1:
        chains[-1] += 1  # a single leftover DSP joins the last chain
    n_postproc = budget - sum(chains)
    return chains, n_postproc


def generate_accelerator(
    cfg: AcceleratorConfig,
    device: Device | None = None,
    seed: int | None = None,
) -> Netlist:
    """Generate one CNN-accelerator netlist.

    Args:
        cfg: Shape/budget configuration (see :class:`AcceleratorConfig`).
        device: Target device; used to pin the PS cell and IO pads to real
            coordinates. Without a device, fixed cells sit on a synthetic
            1000×1000 µm frame.
        seed: Overrides ``cfg.seed``.

    Returns:
        A validated :class:`~repro.netlist.Netlist` with ground-truth
        ``is_datapath`` labels on every DSP cell.
    """
    rng = np.random.default_rng(cfg.seed if seed is None else seed)
    b = _Builder(cfg, rng)

    if device is not None:
        frame_w, frame_h = device.width, device.height
        if device.ps is not None:
            ps_xy = device.ps.ps_to_pl_xy
        else:
            # PS-less fabric (e.g. slot_fabric): anchor the PS cell near the
            # bottom-left corner so the datapath-angle geometry still holds
            ps_xy = (frame_w / 20.0, frame_h / 20.0)
    else:
        ps_xy = (100.0, 100.0)
        frame_w = frame_h = 1000.0
    ps = b.cell("ps", CellType.PS, fixed_xy=ps_xy, role="ps")

    # ------------------------------------------------------------------
    # AXI-in pipeline: PS -> LUT -> FF (two stages, bus width 16)
    # ------------------------------------------------------------------
    bus_w = 16
    axi_in_ffs: list[int] = []
    stage_src = [ps] * bus_w
    for stage in range(2):
        next_src: list[int] = []
        for lane in range(bus_w):
            lut = b.cell("axi_in/lut", CellType.LUT, role="axi_in")
            ff = b.cell("axi_in/ff", CellType.FF, role="axi_in")
            b.net("axi_in", stage_src[lane], [lut])
            b.net("axi_in_q", lut, [ff])
            next_src.append(ff)
        stage_src = next_src
    axi_in_ffs = stage_src

    # ------------------------------------------------------------------
    # Buffers: split the BRAM budget
    # ------------------------------------------------------------------
    bram_budget = cfg.n_bram
    n_act = max(2, int(bram_budget * 0.35))
    n_wt = max(2, int(bram_budget * 0.40))
    n_out = max(1, int(bram_budget * 0.10))

    act_brams = [b.cell("buf/act", CellType.BRAM, role="act_buf") for _ in range(n_act)]
    wt_brams = [b.cell("buf/wt", CellType.BRAM, role="wt_buf") for _ in range(n_wt)]
    out_brams = [b.cell("buf/out", CellType.BRAM, role="out_buf") for _ in range(n_out)]
    for i, bram in enumerate(act_brams + wt_brams):
        b.net("axi_wr", axi_in_ffs[i % bus_w], [bram])

    # ------------------------------------------------------------------
    # Processing units: a layer pipeline PS → PU0 → PU1 → ... → PS.
    # Each PU's activation BRAMs are written by the previous PU's
    # accumulator (PU0's by the AXI-in stage) and read by its PEs — the
    # inter-PU hops are the PS↔PL datapath DSPlacer orders (Fig. 5(a)).
    # ------------------------------------------------------------------
    chains, n_postproc = _chain_plan(cfg)
    n_pu = max(1, (len(chains) + cfg.pes_per_pu - 1) // cfg.pes_per_pu)
    # post-processing (bias add / quantization) DSP budget per PU
    pp_per_pu = [n_postproc // n_pu + (1 if i < n_postproc % n_pu else 0) for i in range(n_pu)]
    weight_regs: list[int] = []  # control fanout targets
    acc_ffs: list[int] = []
    chain_i = 0
    prev_stage_out: int | None = None  # accumulator FF of the previous PU
    # distribute activation BRAMs across PUs
    act_of_pu: list[list[int]] = [[] for _ in range(n_pu)]
    for i, bram in enumerate(act_brams):
        act_of_pu[i % n_pu].append(bram)
    for pu in range(n_pu):
        pu_chains = chains[chain_i : chain_i + cfg.pes_per_pu]
        chain_i += len(pu_chains)
        if not pu_chains:
            break
        pu_acts = act_of_pu[pu] or [act_brams[pu % len(act_brams)]]
        # fill the PU's activation buffers from the previous pipeline stage
        if prev_stage_out is None:
            for i, bram in enumerate(pu_acts):
                b.net("act_wr", axi_in_ffs[i % bus_w], [bram], weight=CASCADE_NET_WEIGHT)
        else:
            b.net("act_wr", prev_stage_out, pu_acts, weight=CASCADE_NET_WEIGHT)
        pe_outs: list[int] = []
        for pe, length in enumerate(pu_chains):
            # line buffer: act BRAM -> im2col LUT -> LUTRAM -> first DSP
            pu_act = pu_acts[pe % len(pu_acts)]
            im2col = b.cell(f"pu{pu}/pe{pe}/im2col", CellType.LUT, role="im2col", pu=pu, pe=pe)
            lb = b.cell(f"pu{pu}/pe{pe}/linebuf", CellType.LUTRAM, role="linebuf", pu=pu, pe=pe)
            b.net("act_rd", pu_act, [im2col], weight=CASCADE_NET_WEIGHT)
            b.net("im2col", im2col, [lb], weight=CASCADE_NET_WEIGHT)

            dsps: list[int] = []
            wt_bram = wt_brams[(pu * cfg.pes_per_pu + pe) % len(wt_brams)]
            stage1: list[int] = []
            for k in range(length):
                dsp = b.cell(
                    f"pu{pu}/pe{pe}/dsp",
                    CellType.DSP,
                    is_datapath=True,
                    role="pe_dsp",
                    pu=pu,
                    pe=pe,
                    k=k,
                )
                # double-buffered weight fetch: BRAM -> wbuf -> wreg -> DSP,
                # so the slow global fetch is decoupled from the DSP input
                wbuf = b.cell(f"pu{pu}/pe{pe}/wbuf", CellType.FF, role="wt_buf_reg", pu=pu, pe=pe)
                wff = b.cell(f"pu{pu}/pe{pe}/wreg", CellType.FF, role="wt_reg", pu=pu, pe=pe)
                b.net("wbuf_q", wbuf, [wff], weight=0.5)
                b.net("wreg_q", wff, [dsp], weight=DATA_NET_WEIGHT)
                stage1.append(wbuf)
                weight_regs.append(wff)
                dsps.append(dsp)
            b.net("wt_rd", wt_bram, stage1, weight=0.5)
            b.net("act_in", lb, [dsps[0]], weight=CASCADE_NET_WEIGHT)
            for k in range(length - 1):
                b.net("cascade", dsps[k], [dsps[k + 1]], weight=CASCADE_NET_WEIGHT)
            b.nl.add_macro(dsps)
            pe_outs.append(dsps[-1])

        # adder tree: reduce PE outputs pairwise with CARRY (+helper LUT)
        level = pe_outs
        lvl = 0
        while len(level) > 1:
            nxt: list[int] = []
            for i in range(0, len(level) - 1, 2):
                carry = b.cell(f"pu{pu}/add/carry", CellType.CARRY, role="adder", pu=pu)
                helper = b.cell(f"pu{pu}/add/lut", CellType.LUT, role="adder", pu=pu)
                b.net("add_a", level[i], [carry, helper], weight=CASCADE_NET_WEIGHT)
                b.net("add_b", level[i + 1], [carry], weight=CASCADE_NET_WEIGHT)
                b.net("add_h", helper, [carry])
                nxt.append(carry)
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
            lvl += 1
        acc = b.cell(f"pu{pu}/acc", CellType.FF, role="acc", pu=pu)
        b.net("acc_d", level[0], [acc], weight=CASCADE_NET_WEIGHT)
        acc_ffs.append(acc)
        # post-processing stage: bias add / re-quantization DSPs between the
        # accumulator and the next pipeline stage. Genuinely datapath (they
        # sit on the PS↔PL stream) but storage-flanked like control DSPs —
        # the "gray zone" the identification study has to resolve.
        stage_out = acc
        for q in range(pp_per_pu[pu]):
            pp = b.cell(
                f"pu{pu}/postproc/dsp",
                CellType.DSP,
                is_datapath=True,
                role="pp_dsp",
                pu=pu,
            )
            bias = b.cell(f"pu{pu}/postproc/bias", CellType.LUTRAM, role="bias", pu=pu)
            b.net("bias_rd", bias, [pp], weight=DATA_NET_WEIGHT)
            b.net("pp_d", stage_out, [pp], weight=CASCADE_NET_WEIGHT)
            if q == 0:
                b.net("pp_out", pp, [out_brams[pu % len(out_brams)]], weight=DATA_NET_WEIGHT)
            stage_out = pp
        prev_stage_out = stage_out
    # the last pipeline stage drains into the output buffers
    if prev_stage_out is not None:
        b.net("stage_out", prev_stage_out, out_brams, weight=CASCADE_NET_WEIGHT)

    # ------------------------------------------------------------------
    # AXI-out pipeline: out BRAMs -> LUT -> FF -> PS
    # ------------------------------------------------------------------
    for i, bram in enumerate(out_brams):
        lut = b.cell("axi_out/lut", CellType.LUT, role="axi_out")
        ff = b.cell("axi_out/ff", CellType.FF, role="axi_out")
        b.net("axi_rd", bram, [lut])
        b.net("axi_rd_q", lut, [ff])
        b.net("axi_out", ff, [ps])

    # ------------------------------------------------------------------
    # Control path: FSM ring with feedback + storage-heavy control DSPs
    # ------------------------------------------------------------------
    n_fsm = int(np.clip(cfg.total_dsps // 8, 16, 96))
    fsm_luts = [b.cell("ctrl/fsm/lut", CellType.LUT, role="fsm") for _ in range(n_fsm)]
    fsm_ffs = [b.cell("ctrl/fsm/ff", CellType.FF, role="fsm") for _ in range(n_fsm)]
    for i in range(n_fsm):
        sinks = [fsm_ffs[i]]
        b.net("fsm_d", fsm_luts[i], sinks, weight=CONTROL_NET_WEIGHT)
        nxt = [fsm_luts[(i + 1) % n_fsm]]
        if i % 4 == 0:
            nxt.append(fsm_luts[i])  # feedback loop (control-path hallmark)
        b.net("fsm_q", fsm_ffs[i], nxt, weight=CONTROL_NET_WEIGHT)

    all_brams = act_brams + wt_brams + out_brams
    n_ctrl = cfg.n_control_dsps
    counters = [
        b.cell("ctrl/counter", CellType.LUTRAM, role="counter") for _ in range(max(2, n_ctrl))
    ]
    for i, ctr in enumerate(counters):
        b.net("ctr_en", fsm_ffs[i % n_fsm], [ctr], weight=CONTROL_NET_WEIGHT)

    # Control DSPs are address generators / loop-bound multipliers. Locally
    # they are wired like datapath DSPs (2-3 inputs, 1-2 outputs; the wide
    # address/enable fan-out hides behind a register layer, and some pairs
    # even cascade) — distinguishing them requires the global graph view,
    # which is exactly Fig. 7's point.
    prev_ctrl: int | None = None
    for c in range(n_ctrl):
        dsp = b.cell("ctrl/dsp", CellType.DSP, is_datapath=False, role="ctrl_dsp")
        if prev_ctrl is not None:
            # cascaded address-generator pair
            b.net("ctrl_cascade", prev_ctrl, [dsp], weight=CONTROL_NET_WEIGHT)
            b.nl.add_macro([prev_ctrl, dsp])
            srcs = [counters[c % len(counters)]]
            prev_ctrl = None
        else:
            srcs = [fsm_ffs[(2 * c) % n_fsm], counters[c % len(counters)]]
            if c % 4 == 0 and c + 1 < n_ctrl:
                prev_ctrl = dsp  # head of a cascaded pair
        for s in srcs:
            b.net("ctrl_in", s, [dsp], weight=CONTROL_NET_WEIGHT)
        # one registered output; the wide fan-out hangs off the register
        addr_ff = b.cell("ctrl/addr_ff", CellType.FF, role="ctrl")
        b.net("ctrl_addr_d", dsp, [addr_ff], weight=CONTROL_NET_WEIGHT)
        n_addr = min(len(all_brams), int(rng.integers(4, 9)))
        addr_sinks = list(rng.choice(all_brams, size=n_addr, replace=False))
        n_en = min(len(weight_regs), int(rng.integers(12, 33)))
        en_sinks = list(rng.choice(weight_regs, size=n_en, replace=False)) if n_en else []
        sinks = addr_sinks + en_sinks
        if acc_ffs:
            sinks.append(acc_ffs[c % len(acc_ffs)])
        sinks.append(fsm_luts[c % n_fsm])  # status feedback into the FSM
        b.net("ctrl_addr_q", addr_ff, sinks, weight=CONTROL_NET_WEIGHT)

    # one global enable with very high fanout
    if weight_regs:
        n_en = min(len(weight_regs), 256)
        sinks = list(rng.choice(weight_regs, size=n_en, replace=False))
        b.net("global_en", fsm_ffs[0], sinks + acc_ffs, weight=CONTROL_NET_WEIGHT)

    # ------------------------------------------------------------------
    # Filler logic: bring LUT/FF/LUTRAM/BRAM totals to the Table I targets
    # ------------------------------------------------------------------
    def _pick(pool: list[int]) -> int:
        return pool[int(rng.integers(len(pool)))]

    while b.remaining(CellType.LUT, cfg.n_lut) > 4 and b.remaining(CellType.FF, cfg.n_ff) > 4:
        size = int(rng.integers(6, 18))
        size = min(
            size,
            b.remaining(CellType.LUT, cfg.n_lut),
            b.remaining(CellType.FF, cfg.n_ff),
        )
        prev = _pick(b.ff_pool)
        cluster_ffs: list[int] = []
        for _ in range(size):
            lut = b.cell("fill/lut", CellType.LUT, role="filler")
            ff = b.cell("fill/ff", CellType.FF, role="filler")
            b.net("fill", prev, [lut])
            b.net("fill_q", lut, [ff])
            prev = ff
            cluster_ffs.append(ff)
        if b.remaining(CellType.LUTRAM, cfg.n_lutram) > 0 and rng.random() < 0.35:
            lr = b.cell("fill/lutram", CellType.LUTRAM, role="filler")
            b.net("fill_lr", cluster_ffs[0], [lr])
            b.net("fill_lr_q", lr, [cluster_ffs[-1]])
        if b.remaining(CellType.BRAM, cfg.n_bram) > 0 and rng.random() < 0.02:
            br = b.cell("fill/bram", CellType.BRAM, role="filler")
            b.net("fill_br", cluster_ffs[0], [br])
        b.net("fill_out", prev, [_pick(b.lut_pool)])
    # burn down whichever of the LUT/FF budgets is still open (shift-register
    # chains for FFs, route-through logic for LUTs)
    while b.remaining(CellType.FF, cfg.n_ff) > 0:
        prev = _pick(b.ff_pool)
        for _ in range(min(16, b.remaining(CellType.FF, cfg.n_ff))):
            ff = b.cell("fill/srff", CellType.FF, role="filler")
            b.net("sr", prev, [ff])
            prev = ff
    while b.remaining(CellType.LUT, cfg.n_lut) > 0:
        # short combinational route-throughs anchored at a register so the
        # filler never creates deep unregistered paths
        prev = _pick(b.ff_pool)
        for _ in range(min(4, b.remaining(CellType.LUT, cfg.n_lut))):
            lut = b.cell("fill/rtlut", CellType.LUT, role="filler")
            b.net("rt", prev, [lut])
            prev = lut
    # and the leftover LUTRAM/BRAM budgets
    while b.remaining(CellType.LUTRAM, cfg.n_lutram) > 0:
        lr = b.cell("fill/lutram", CellType.LUTRAM, role="filler")
        b.net("fill_lr", _pick(b.ff_pool), [lr])
        b.net("fill_lr_q", lr, [_pick(b.lut_pool)])
    while b.remaining(CellType.BRAM, cfg.n_bram) > 0:
        br = b.cell("fill/bram", CellType.BRAM, role="filler")
        b.net("fill_br", _pick(b.ff_pool), [br])
        b.net("fill_br_q", br, [int(rng.choice(b.lut_pool))])

    # ------------------------------------------------------------------
    # IO pads around the frame, hooked into the fabric
    # ------------------------------------------------------------------
    n_io = 32
    for i in range(n_io):
        t = i / n_io
        if i % 2 == 0:
            xy = (frame_w * t, frame_h - 1.0)
        else:
            xy = (frame_w - 1.0, frame_h * t)
        pad = b.cell("io/pad", CellType.IO, fixed_xy=xy, role="io")
        if i % 2 == 0:
            b.net("io_in", pad, [_pick(b.lut_pool)])
        else:
            b.net("io_out", _pick(b.ff_pool), [pad])

    b.nl.validate()
    return b.nl
