"""Accelerator generator configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class AcceleratorConfig:
    """Shape and resource budget of one generated CNN accelerator.

    Resource targets (``n_lut`` etc.) are the Table I totals; the generator
    first builds the functional structure (PEs, buffers, control) and then
    adds filler logic clusters until the totals are met.

    Attributes:
        total_dsps: DSP cells in the design (datapath + control).
        control_dsp_frac: Fraction of DSPs on the control path (address
            generators / loop counters — storage-heavy, per Section III-B).
        chain_len: DSPs per PE, i.e. cascade macro length.
        pes_per_pu: PEs per processing unit (shared adder tree + buffers).
        freq_mhz: Target clock (Table I "freq.").
    """

    name: str
    total_dsps: int
    chain_len: int
    pes_per_pu: int
    n_lut: int
    n_lutram: int
    n_ff: int
    n_bram: int
    freq_mhz: float
    control_dsp_frac: float = 0.05
    seed: int = 1

    def __post_init__(self) -> None:
        if self.total_dsps < 2:
            raise ValueError("need at least 2 DSPs")
        if self.chain_len < 2:
            raise ValueError("cascade chains need length >= 2")
        if not 0.0 <= self.control_dsp_frac < 0.5:
            raise ValueError("control_dsp_frac out of range")
        if self.pes_per_pu < 1:
            raise ValueError("pes_per_pu must be positive")

    @property
    def n_control_dsps(self) -> int:
        return max(1, round(self.total_dsps * self.control_dsp_frac))

    @property
    def n_datapath_dsps(self) -> int:
        return self.total_dsps - self.n_control_dsps

    def scaled(self, scale: float) -> "AcceleratorConfig":
        """Proportionally shrunken variant (for reduced-scale experiments).

        DSP, LUT, FF, LUTRAM and BRAM budgets shrink by ``scale``; the PE
        micro-architecture (chain length, PEs per PU) is preserved so the
        cascade/datapath structure is unchanged.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if scale == 1.0:
            return self
        f = float(scale)
        return dataclasses.replace(
            self,
            name=f"{self.name}@{scale:g}",
            total_dsps=max(2 * self.chain_len + 2, round(self.total_dsps * f)),
            n_lut=max(500, round(self.n_lut * f)),
            n_lutram=max(32, round(self.n_lutram * f)),
            n_ff=max(500, round(self.n_ff * f)),
            n_bram=max(8, round(self.n_bram * f)),
        )
