"""The five benchmark suites of the paper's Table I.

Resource totals, DSP counts and target frequencies are taken verbatim from
Table I; micro-architectural shape (chain length, PEs per PU, control-DSP
fraction) is chosen to match how the respective DAC-SDC designs use DSPs
(iSmartDNN/SkyNet: modest PE arrays; SkrSkr variants: progressively wider
systolic-style arrays at 37→83% DSP utilisation).
"""

from __future__ import annotations

from repro.accelgen.config import AcceleratorConfig
from repro.accelgen.generator import generate_accelerator
from repro.fpga.device import Device
from repro.netlist.netlist import Netlist

_SUITES: dict[str, AcceleratorConfig] = {
    "ismartdnn": AcceleratorConfig(
        name="iSmartDNN",
        total_dsps=197,
        chain_len=6,
        pes_per_pu=4,
        n_lut=53503,
        n_lutram=2919,
        n_ff=55767,
        n_bram=122,
        freq_mhz=130.0,
        control_dsp_frac=0.06,
        seed=11,
    ),
    "skynet": AcceleratorConfig(
        name="SkyNet",
        total_dsps=346,
        chain_len=7,
        pes_per_pu=6,
        n_lut=43146,
        n_lutram=2748,
        n_ff=51410,
        n_bram=192,
        freq_mhz=150.0,
        control_dsp_frac=0.06,
        seed=12,
    ),
    "skrskr1": AcceleratorConfig(
        name="SkrSkr-1",
        total_dsps=642,
        chain_len=8,
        pes_per_pu=8,
        n_lut=35743,
        n_lutram=3611,
        n_ff=53887,
        n_bram=196,
        freq_mhz=195.0,
        control_dsp_frac=0.05,
        seed=13,
    ),
    "skrskr2": AcceleratorConfig(
        name="SkrSkr-2",
        total_dsps=1180,
        chain_len=8,
        pes_per_pu=8,
        n_lut=70558,
        n_lutram=3815,
        n_ff=64007,
        n_bram=196,
        freq_mhz=175.0,
        control_dsp_frac=0.05,
        seed=14,
    ),
    "skrskr3": AcceleratorConfig(
        name="SkrSkr-3",
        total_dsps=1431,
        chain_len=9,
        pes_per_pu=8,
        n_lut=70382,
        n_lutram=3791,
        n_ff=67257,
        n_bram=196,
        freq_mhz=175.0,
        control_dsp_frac=0.04,
        seed=15,
    ),
}

#: Table I order.
SUITE_NAMES: tuple[str, ...] = tuple(_SUITES)

#: Published Table I frequencies, for the EXPERIMENTS.md comparison.
PAPER_TABLE1 = {
    "ismartdnn": dict(lut=53503, lutram=2919, ff=55767, bram=122, dsp=197, freq=130.0),
    "skynet": dict(lut=43146, lutram=2748, ff=51410, bram=192, dsp=346, freq=150.0),
    "skrskr1": dict(lut=35743, lutram=3611, ff=53887, bram=196, dsp=642, freq=195.0),
    "skrskr2": dict(lut=70558, lutram=3815, ff=64007, bram=196, dsp=1180, freq=175.0),
    "skrskr3": dict(lut=70382, lutram=3791, ff=67257, bram=196, dsp=1431, freq=175.0),
}


def suite_config(name: str, scale: float = 1.0) -> AcceleratorConfig:
    """Config of a named suite, optionally shrunken by ``scale``."""
    key = name.lower().replace("-", "").replace("_", "")
    if key not in _SUITES:
        raise KeyError(f"unknown suite {name!r}; choose from {SUITE_NAMES}")
    return _SUITES[key].scaled(scale)


def generate_suite(
    name: str, scale: float = 1.0, device: Device | None = None, seed: int | None = None
) -> Netlist:
    """Generate a named benchmark netlist (optionally reduced-scale)."""
    return generate_accelerator(suite_config(name, scale), device=device, seed=seed)
