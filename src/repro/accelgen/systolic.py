"""Systolic-array accelerator generator.

The paper positions DSPlacer against R-SAD [26], whose "specialized nature
limits its applicability to CNN accelerators with more diverse
architectures". This module generates the *other* architecture family — a
weight-stationary 2-D systolic array (rows × cols of MAC PEs, activations
streaming left→right, partial sums cascading top→bottom through the DSP
column spine) — so the claim that DSPlacer handles both families is
testable (see ``benchmarks/bench_systolic_extension.py``).

Partial-sum columns map onto DSP cascade macros (that is how systolic
arrays are actually built on UltraScale+: the PCIN/PCOUT spine *is* the
accumulation path), split into segments of at most ``max_chain`` so they
fit device columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelgen.generator import (
    CASCADE_NET_WEIGHT,
    CONTROL_NET_WEIGHT,
    DATA_NET_WEIGHT,
    _Builder,
)
from repro.accelgen.config import AcceleratorConfig
from repro.fpga.device import Device
from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class SystolicConfig:
    """Shape of a systolic-array accelerator."""

    name: str
    rows: int
    cols: int
    max_chain: int = 12  # cascade-segment cap (device column height bound)
    n_lut: int = 4000
    n_lutram: int = 250
    n_ff: int = 5000
    n_bram: int = 24
    freq_mhz: float = 250.0
    n_control_dsps: int = 4
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 1:
            raise ValueError("need a systolic grid of at least 2x1")
        if self.max_chain < 2:
            raise ValueError("cascade segments need length >= 2")

    @property
    def total_dsps(self) -> int:
        return self.rows * self.cols + self.n_control_dsps


def generate_systolic(
    config: SystolicConfig, device: Device | None = None, seed: int | None = None
) -> Netlist:
    """Generate a weight-stationary systolic-array netlist."""
    rng = np.random.default_rng(config.seed if seed is None else seed)
    # reuse the shared builder through a minimal AcceleratorConfig shim
    shim = AcceleratorConfig(
        name=config.name,
        total_dsps=max(config.total_dsps, 4),
        chain_len=max(2, min(config.max_chain, config.rows)),
        pes_per_pu=1,
        n_lut=config.n_lut,
        n_lutram=config.n_lutram,
        n_ff=config.n_ff,
        n_bram=config.n_bram,
        freq_mhz=config.freq_mhz,
    )
    b = _Builder(shim, rng)
    b.nl.name = config.name
    b.nl.target_freq_mhz = config.freq_mhz

    if device is not None and device.ps is not None:
        ps_xy = device.ps.ps_to_pl_xy
    else:
        ps_xy = (100.0, 100.0)
    ps = b.cell("ps", CellType.PS, fixed_xy=ps_xy, role="ps")

    # feeders: activation FIFOs on the left edge, weight loaders on top
    act_brams = [b.cell("feed/act", CellType.BRAM, role="act_buf") for _ in range(max(2, config.rows // 2))]
    wt_brams = [b.cell("feed/wt", CellType.BRAM, role="wt_buf") for _ in range(max(2, config.cols // 2))]
    out_brams = [b.cell("drain/out", CellType.BRAM, role="out_buf") for _ in range(max(1, config.cols // 4))]
    axi_ffs = []
    for i in range(8):
        lut = b.cell("axi/lut", CellType.LUT, role="axi_in")
        ff = b.cell("axi/ff", CellType.FF, role="axi_in")
        b.net("axi", ps, [lut])
        b.net("axi_q", lut, [ff])
        axi_ffs.append(ff)
    for i, bram in enumerate(act_brams + wt_brams):
        b.net("fill_feed", axi_ffs[i % len(axi_ffs)], [bram], weight=CASCADE_NET_WEIGHT)

    # the PE mesh
    grid: list[list[int]] = []
    act_regs: dict[tuple[int, int], int] = {}
    for r in range(config.rows):
        row_cells: list[int] = []
        for c in range(config.cols):
            dsp = b.cell(
                "pe/dsp", CellType.DSP, is_datapath=True, role="pe_dsp", row=r, col=c
            )
            areg = b.cell("pe/areg", CellType.FF, role="act_reg", row=r, col=c)
            b.net("act_in", areg, [dsp], weight=DATA_NET_WEIGHT)
            act_regs[(r, c)] = areg
            row_cells.append(dsp)
        grid.append(row_cells)

    # activation stream: left feeder -> areg(r,0) -> areg(r,1) -> ...
    for r in range(config.rows):
        b.net("act_feed", act_brams[r % len(act_brams)], [act_regs[(r, 0)]], weight=CASCADE_NET_WEIGHT)
        for c in range(config.cols - 1):
            b.net("act_pass", act_regs[(r, c)], [act_regs[(r, c + 1)]], weight=CASCADE_NET_WEIGHT)

    # weight load: top feeder -> weight regs down each column (low priority)
    for c in range(config.cols):
        prev = wt_brams[c % len(wt_brams)]
        for r in range(config.rows):
            wreg = b.cell("pe/wreg", CellType.FF, role="wt_reg", row=r, col=c)
            b.net("wt_pass", prev, [wreg], weight=0.5)
            b.net("wt_use", wreg, [grid[r][c]], weight=DATA_NET_WEIGHT)
            prev = wreg

    # partial-sum spine: column-wise DSP cascades in <= max_chain segments
    for c in range(config.cols):
        column = [grid[r][c] for r in range(config.rows)]
        for s in range(0, config.rows, config.max_chain):
            segment = column[s : s + config.max_chain]
            for a, bb in zip(segment, segment[1:]):
                b.net("psum_cascade", a, [bb], weight=CASCADE_NET_WEIGHT)
            if len(segment) >= 2:
                b.nl.add_macro(segment)
            if s > 0:  # fabric hop between cascade segments
                b.net("psum_hop", column[s - 1], [segment[0]], weight=CASCADE_NET_WEIGHT)
        b.net("psum_out", column[-1], [out_brams[c % len(out_brams)]], weight=CASCADE_NET_WEIGHT)
    for bram in out_brams:
        lut = b.cell("drain/lut", CellType.LUT, role="axi_out")
        b.net("drain", bram, [lut])
        b.net("drain_q", lut, [ps])

    # control: small FSM + address-generator DSPs (storage-flanked)
    n_fsm = 16
    fsm_luts = [b.cell("ctrl/fsm/lut", CellType.LUT, role="fsm") for _ in range(n_fsm)]
    fsm_ffs = [b.cell("ctrl/fsm/ff", CellType.FF, role="fsm") for _ in range(n_fsm)]
    for i in range(n_fsm):
        b.net("fsm_d", fsm_luts[i], [fsm_ffs[i]], weight=CONTROL_NET_WEIGHT)
        sinks = [fsm_luts[(i + 1) % n_fsm]]
        if i % 4 == 0:
            sinks.append(fsm_luts[i])
        b.net("fsm_q", fsm_ffs[i], sinks, weight=CONTROL_NET_WEIGHT)
    all_brams = act_brams + wt_brams + out_brams
    for k in range(config.n_control_dsps):
        ctr = b.cell("ctrl/counter", CellType.LUTRAM, role="counter")
        b.net("ctr_en", fsm_ffs[k % n_fsm], [ctr], weight=CONTROL_NET_WEIGHT)
        dsp = b.cell("ctrl/dsp", CellType.DSP, is_datapath=False, role="ctrl_dsp")
        b.net("ctrl_in", fsm_ffs[(2 * k) % n_fsm], [dsp], weight=CONTROL_NET_WEIGHT)
        b.net("ctrl_in", ctr, [dsp], weight=CONTROL_NET_WEIGHT)
        addr_ff = b.cell("ctrl/addr_ff", CellType.FF, role="ctrl")
        b.net("ctrl_addr_d", dsp, [addr_ff], weight=CONTROL_NET_WEIGHT)
        n_addr = min(len(all_brams), 4)
        sinks = list(rng.choice(all_brams, size=n_addr, replace=False))
        sinks.append(fsm_luts[k % n_fsm])
        b.net("ctrl_addr_q", addr_ff, sinks, weight=CONTROL_NET_WEIGHT)

    # filler to the budget
    def _pick(pool):
        return pool[int(rng.integers(len(pool)))]

    while b.remaining(CellType.LUT, config.n_lut) > 2 and b.remaining(CellType.FF, config.n_ff) > 2:
        prev = _pick(b.ff_pool)
        for _ in range(min(8, b.remaining(CellType.LUT, config.n_lut), b.remaining(CellType.FF, config.n_ff))):
            lut = b.cell("fill/lut", CellType.LUT, role="filler")
            ff = b.cell("fill/ff", CellType.FF, role="filler")
            b.net("fill", prev, [lut])
            b.net("fill_q", lut, [ff])
            prev = ff
        b.net("fill_out", prev, [_pick(b.lut_pool)])
    while b.remaining(CellType.FF, config.n_ff) > 0:
        prev = _pick(b.ff_pool)
        for _ in range(min(16, b.remaining(CellType.FF, config.n_ff))):
            ff = b.cell("fill/srff", CellType.FF, role="filler")
            b.net("sr", prev, [ff])
            prev = ff
    while b.remaining(CellType.LUT, config.n_lut) > 0:
        prev = _pick(b.ff_pool)
        for _ in range(min(4, b.remaining(CellType.LUT, config.n_lut))):
            lut = b.cell("fill/rtlut", CellType.LUT, role="filler")
            b.net("rt", prev, [lut])
            prev = lut
    while b.remaining(CellType.LUTRAM, config.n_lutram) > 0:
        lr = b.cell("fill/lutram", CellType.LUTRAM, role="filler")
        b.net("fill_lr", _pick(b.ff_pool), [lr])
        b.net("fill_lr_q", lr, [_pick(b.lut_pool)])
    while b.remaining(CellType.BRAM, config.n_bram) > 0:
        br = b.cell("fill/bram", CellType.BRAM, role="filler")
        b.net("fill_br", _pick(b.ff_pool), [br])

    b.nl.validate()
    return b.nl
