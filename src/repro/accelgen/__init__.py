"""Synthetic CNN-accelerator benchmark generator.

The paper evaluates on HLS-produced netlists of DAC System Design Contest
designs (iSmartDNN, SkyNet, SkrSkr-1/2/3). Those bitstream-level netlists are
not redistributable, so this package generates structurally equivalent
pre-implementation netlists: processing units made of PE arrays, each PE a
cascaded DSP48 chain (paper Fig. 1(b)), activation/weight/output BRAM
buffers, line-buffer LUTRAMs, adder trees, AXI PS↔PL interface stages, a
control FSM with storage-heavy control-path DSPs, and filler logic that
brings resource totals to the published Table I numbers.

Every DSP carries a ground-truth ``is_datapath`` label, which trains the GCN
and enables oracle ablations.
"""

from repro.accelgen.config import AcceleratorConfig
from repro.accelgen.generator import generate_accelerator
from repro.accelgen.suites import SUITE_NAMES, suite_config, generate_suite
from repro.accelgen.systolic import SystolicConfig, generate_systolic

__all__ = [
    "AcceleratorConfig",
    "generate_accelerator",
    "SUITE_NAMES",
    "suite_config",
    "generate_suite",
    "SystolicConfig",
    "generate_systolic",
]
