"""Deterministic recursive H-tree clock-tree synthesis over device geometry.

A depth-``d`` H-tree drives ``4**d`` leaf tap points arranged on a
``2**d × 2**d`` grid of cell centres: each recursion level routes from the
parent tap to the four quadrant centres with an H-shaped segment pair
(horizontal trunk, vertical branches), inserting one buffer per level. The
construction is fully deterministic in the device geometry and the
:class:`HTreeConfig` — no RNG, no dependence on iteration order.

Because every level's four branches have identical Manhattan length, the
synthesized spine is *balanced by construction* (equal insertion delay at
every tap, like a real H-tree on an idealized die). Per-sink clock-arrival
differences therefore come from two physical sources:

- the **last mile**: each sink is served from its nearest tap through
  ordinary local routing (``local_delay_per_um_ns`` per µm of Manhattan
  distance), so sinks far from any tap see a later clock;
- optional **per-tap jitter** (``jitter_ns`` > 0): a deterministic,
  seed-derived insertion-delay perturbation per tap, standing in for
  process variation / buffer-load imbalance on real silicon.

:meth:`ClockTree.skew_at` evaluates per-sink arrival times for arbitrary
coordinate arrays with batched array operations only (nearest-tap search is
a chunked distance-matrix argmin — no per-sink Python loop), which is what
the skew-aware STA and assignment passes call on every evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.device import Device

__all__ = ["HTreeConfig", "ClockTree", "synthesize_htree"]

#: hard ceiling on recursion depth: 4**8 = 65536 taps is already far past
#: any real clock network and keeps the tap distance matrices bounded
MAX_DEPTH = 8

#: row-block size for the chunked nearest-tap search (bounds the transient
#: (chunk, n_taps) distance matrix to a few MB at any tap count)
_CHUNK = 4096


@dataclass(frozen=True)
class HTreeConfig:
    """Knobs of the synthesized clock tree (delays in ns, lengths in µm)."""

    #: recursion depth; the tree drives ``4**depth`` leaf taps
    depth: int = 3
    #: insertion delay of the one buffer per tree level
    buffer_delay_ns: float = 0.05
    #: delay per µm of dedicated clock-spine wire (H segments)
    wire_delay_per_um_ns: float = 0.0001
    #: delay per µm of ordinary local routing from a leaf tap to a sink
    local_delay_per_um_ns: float = 0.0005
    #: deterministic per-tap insertion-delay jitter amplitude (0 = ideal tree)
    jitter_ns: float = 0.0
    #: seed of the jitter derivation (unused when ``jitter_ns`` is 0)
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.depth, int) or not 0 <= self.depth <= MAX_DEPTH:
            raise ConfigurationError(
                f"htree depth must be an int in [0, {MAX_DEPTH}], got {self.depth!r}"
            )
        for name in ("buffer_delay_ns", "wire_delay_per_um_ns",
                     "local_delay_per_um_ns", "jitter_ns"):
            v = getattr(self, name)
            if not np.isfinite(v) or v < 0.0:
                raise ConfigurationError(
                    f"htree {name} must be a finite non-negative number, got {v!r}"
                )

    def to_dict(self) -> dict:
        return {
            "depth": int(self.depth),
            "buffer_delay_ns": float(self.buffer_delay_ns),
            "wire_delay_per_um_ns": float(self.wire_delay_per_um_ns),
            "local_delay_per_um_ns": float(self.local_delay_per_um_ns),
            "jitter_ns": float(self.jitter_ns),
            "seed": int(self.seed),
        }


@dataclass(frozen=True)
class ClockTree:
    """A synthesized clock network: leaf taps + per-tap insertion delays."""

    taps: np.ndarray  # (n_taps, 2) leaf tap centres, µm
    tap_delay: np.ndarray  # (n_taps,) root-to-tap insertion delay, ns
    config: HTreeConfig
    #: H segments as (x0, y0, x1, y1) rows, for visualization/debugging
    segments: np.ndarray = field(repr=False, default=None)
    total_wire_um: float = 0.0

    @property
    def n_taps(self) -> int:
        return int(self.taps.shape[0])

    def skew_at(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Per-sink clock arrival times (ns) for coordinate arrays.

        Arrival = insertion delay of the Manhattan-nearest tap + last-mile
        local routing delay from that tap. Pure array ops: the nearest-tap
        search runs as a chunked distance-matrix argmin, never a per-sink
        Python loop (the chunk loop is over fixed-size row blocks).
        """
        xs = np.atleast_1d(np.asarray(xs, dtype=np.float64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.float64))
        if xs.shape != ys.shape:
            raise ValueError(f"xs/ys shape mismatch: {xs.shape} vs {ys.shape}")
        tx, ty = self.taps[:, 0], self.taps[:, 1]
        out = np.empty(xs.size, dtype=np.float64)
        local = self.config.local_delay_per_um_ns
        for lo in range(0, xs.size, _CHUNK):
            hi = min(lo + _CHUNK, xs.size)
            d = np.abs(xs[lo:hi, None] - tx[None, :]) + np.abs(
                ys[lo:hi, None] - ty[None, :]
            )
            j = np.argmin(d, axis=1)
            out[lo:hi] = self.tap_delay[j] + local * d[np.arange(hi - lo), j]
        return out

    def worst_skew_ns(self, xs: np.ndarray, ys: np.ndarray) -> float:
        """Worst pairwise arrival difference over the given sinks."""
        a = self.skew_at(xs, ys)
        return float(a.max() - a.min()) if a.size else 0.0

    def describe(self) -> dict:
        """JSON-ready summary (the RunReport ``clock.htree`` block)."""
        return {
            **self.config.to_dict(),
            "n_taps": self.n_taps,
            "total_wire_um": float(self.total_wire_um),
            "tap_delay_min_ns": float(self.tap_delay.min()) if self.n_taps else 0.0,
            "tap_delay_max_ns": float(self.tap_delay.max()) if self.n_taps else 0.0,
        }


def synthesize_htree(device: Device, config: HTreeConfig | None = None) -> ClockTree:
    """Synthesize a balanced H-tree over a device's fabric extent.

    Level ``k`` (1-based) subdivides each of the ``4**(k-1)`` regions into
    quadrants; the parent tap at the region centre routes to the four
    quadrant centres through an H (one horizontal trunk of the region's
    half-width, two vertical branches of the half-height). Each hop adds one
    buffer delay plus wire delay for its Manhattan length, so all taps of a
    level share one insertion delay — the ideal-tree property real H-trees
    approximate.
    """
    config = config or HTreeConfig()
    w, h = float(device.width), float(device.height)
    cx = np.array([w / 2.0])
    cy = np.array([h / 2.0])
    delay = np.zeros(1)
    hw, hh = w / 2.0, h / 2.0  # half-extent of the current regions
    segments: list[np.ndarray] = []
    total_wire = 0.0
    for _ in range(config.depth):
        qx, qy = hw / 2.0, hh / 2.0  # parent-to-child offsets
        # horizontal trunk through the parent, then vertical branches
        segments.append(np.stack([cx - qx, cy, cx + qx, cy], axis=1))
        for sx in (-1.0, 1.0):
            segments.append(
                np.stack([cx + sx * qx, cy - qy, cx + sx * qx, cy + qy], axis=1)
            )
        total_wire += float(cx.size) * (2.0 * qx + 2.0 * (2.0 * qy))
        hop = config.buffer_delay_ns + config.wire_delay_per_um_ns * (qx + qy)
        ox = np.array([-qx, qx, -qx, qx])
        oy = np.array([-qy, -qy, qy, qy])
        cx = (cx[:, None] + ox[None, :]).reshape(-1)
        cy = (cy[:, None] + oy[None, :]).reshape(-1)
        delay = np.repeat(delay, 4) + hop
        hw, hh = qx, qy
    if config.jitter_ns > 0.0 and cx.size:
        rng = np.random.default_rng(config.seed)
        delay = delay + rng.uniform(0.0, config.jitter_ns, cx.size)
    taps = np.stack([cx, cy], axis=1)
    # canonical ordering: row-major over the leaf grid (y, then x)
    order = np.lexsort((taps[:, 0], taps[:, 1]))
    seg_arr = (
        np.concatenate(segments, axis=0) if segments else np.zeros((0, 4))
    )
    return ClockTree(
        taps=taps[order],
        tap_delay=delay[order],
        config=config,
        segments=seg_arr,
        total_wire_um=total_wire,
    )
