"""Clock network synthesis and skew modeling (see ``docs/CLOCKING.md``).

The clock subsystem turns the flow's single scalar skew knob into a real
model of the physical clock network:

- :mod:`repro.clock.htree` — deterministic recursive H-tree synthesis over
  :class:`~repro.fpga.Device` geometry, producing a :class:`ClockTree` of
  leaf tap points with a vectorized per-sink arrival query
  (:meth:`ClockTree.skew_at`);
- :mod:`repro.clock.skew` — the :class:`SkewModel` protocol consumed by
  both STA engines and the skew-aware assignment term, with the
  :class:`RegionSkew` (historical reference, default), :class:`HTreeSkew`
  and :class:`ZeroSkew` implementations.

:func:`clock_report_section` renders a model (plus optional sink arrivals)
into the optional versioned ``clock`` section of a RunReport (schema v3).
"""

from __future__ import annotations

import numpy as np

from repro.clock.htree import ClockTree, HTreeConfig, synthesize_htree
from repro.clock.skew import (
    SKEW_MODEL_NAMES,
    HTreeSkew,
    RegionSkew,
    SkewModel,
    ZeroSkew,
    get_skew_model,
)

__all__ = [
    "ClockTree",
    "HTreeConfig",
    "synthesize_htree",
    "SkewModel",
    "RegionSkew",
    "HTreeSkew",
    "ZeroSkew",
    "SKEW_MODEL_NAMES",
    "get_skew_model",
    "clock_report_section",
]


def clock_report_section(model: SkewModel, placement=None, netlist=None) -> dict:
    """The RunReport ``clock`` section for one run (schema v3, optional).

    Always records the model configuration; when the model exposes per-point
    arrivals and a placement is given, also records worst/mean skew over the
    netlist's sequential cells (all cells when no netlist is given).
    """
    doc = dict(model.describe())
    if placement is None:
        return doc
    xy = placement.xy
    if netlist is not None:
        from repro.timing.delay_model import SEQUENTIAL_KINDS

        seq = np.array(
            [c.ctype in SEQUENTIAL_KINDS for c in netlist.cells], dtype=bool
        )
        xy = xy[seq]
    arrivals = model.arrivals_at(placement.device, xy)
    if arrivals is not None and arrivals.size:
        mean = float(arrivals.mean())
        doc["n_sinks"] = int(arrivals.size)
        doc["worst_skew_ns"] = float(arrivals.max() - arrivals.min())
        doc["mean_abs_skew_ns"] = float(np.abs(arrivals - mean).mean())
    return doc
