"""Clock-skew models: the ``SkewModel`` protocol and its implementations.

STA charges every setup check a *launch/capture skew term* added to the
data arrival time at the capture register. The three models:

- :class:`RegionSkew` — the historical reference: a pessimistic flat
  penalty of ``skew_per_region`` ns per Chebyshev clock-region step between
  launch and capture (the UltraScale+ "balanced within a region, skewed
  across regions" abstraction). Always ≥ 0, bitwise-compatible with the
  pre-``repro.clock`` inline formula, and the default everywhere.
- :class:`HTreeSkew` — physical per-sink arrivals from a synthesized
  :class:`~repro.clock.htree.ClockTree`. The setup check uses the signed
  form: the term added to data arrival is ``arrival[launch] −
  arrival[capture]``, i.e. slack picks up ``skew[capture] − skew[launch]``
  (a late capture clock genuinely buys setup time).
- :class:`ZeroSkew` — the ideal clock network (no term at all), useful to
  isolate data-path delay in ablations.

Models are stateless with respect to placements: every call derives what it
needs from the placement passed in, so one model instance can serve many
placements (and both STA engines) without invalidation hazards.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.clock.htree import ClockTree, HTreeConfig, synthesize_htree
from repro.errors import ConfigurationError

__all__ = [
    "SkewModel",
    "RegionSkew",
    "HTreeSkew",
    "ZeroSkew",
    "SKEW_MODEL_NAMES",
    "get_skew_model",
]

#: config names accepted by :func:`get_skew_model`
SKEW_MODEL_NAMES = ("region", "htree", "zero")


@runtime_checkable
class SkewModel(Protocol):
    """What the STA engines and the assignment cost need from a clock model."""

    name: str

    def arrival_penalty(
        self, placement, launch: np.ndarray, capture: np.ndarray
    ) -> np.ndarray | float:
        """Skew term *added to data arrival* per (launch, capture) pair.

        ``launch``/``capture`` are aligned cell-index arrays; the return is
        broadcastable against them (an array, or scalar 0.0 when the model
        charges nothing).
        """
        ...

    def arrivals_at(self, device, xy: np.ndarray) -> np.ndarray | None:
        """Clock arrival time at arbitrary (n, 2) coordinates, or ``None``
        when the model has no per-point arrival notion (RegionSkew/Zero) —
        callers must treat ``None`` as "no skew-aware term available"."""
        ...

    def describe(self) -> dict:
        """JSON-ready config summary (the RunReport ``clock`` section)."""
        ...


class ZeroSkew:
    """The ideal clock network: every sink sees the clock simultaneously."""

    name = "zero"

    def arrival_penalty(self, placement, launch, capture) -> float:
        return 0.0

    def arrivals_at(self, device, xy) -> np.ndarray | None:
        return None

    def describe(self) -> dict:
        return {"model": self.name}


class RegionSkew:
    """Flat per-clock-region-step penalty (the historical reference model).

    Charges ``skew_per_region × Chebyshev(region(launch), region(capture))``
    to the data arrival — exactly the inline formula STA carried before the
    clock subsystem existed, kept bitwise-identical so default reports do
    not move.
    """

    name = "region"

    def __init__(self, skew_per_region: float = 0.03) -> None:
        if not np.isfinite(skew_per_region) or skew_per_region < 0.0:
            raise ConfigurationError(
                f"skew_per_region must be finite and non-negative, "
                f"got {skew_per_region!r}"
            )
        self.skew_per_region = float(skew_per_region)

    def arrival_penalty(self, placement, launch, capture):
        if not self.skew_per_region:
            return 0.0
        xy = placement.xy
        dev = placement.device
        lx, ly = dev.clock_regions_of(xy[launch, 0], xy[launch, 1])
        cx, cy = dev.clock_regions_of(xy[capture, 0], xy[capture, 1])
        cheb = np.maximum(np.abs(lx - cx), np.abs(ly - cy))
        return self.skew_per_region * cheb

    def arrivals_at(self, device, xy) -> np.ndarray | None:
        return None

    def describe(self) -> dict:
        return {"model": self.name, "skew_per_region_ns": self.skew_per_region}


class HTreeSkew:
    """Per-sink arrivals from a synthesized H-tree clock network.

    The setup-check term is the signed physical one: arrival penalty =
    ``clock(launch) − clock(capture)``, so a capture register whose clock
    arrives later than the launcher's gains slack and vice versa. The
    assignment cost's skew-aware term uses :meth:`arrivals_at` directly.
    """

    name = "htree"

    def __init__(self, tree: ClockTree) -> None:
        self.tree = tree

    def arrival_penalty(self, placement, launch, capture):
        xy = placement.xy
        a_launch = self.tree.skew_at(xy[launch, 0], xy[launch, 1])
        a_capture = self.tree.skew_at(xy[capture, 0], xy[capture, 1])
        return a_launch - a_capture

    def arrivals_at(self, device, xy) -> np.ndarray | None:
        xy = np.asarray(xy, dtype=np.float64)
        return self.tree.skew_at(xy[..., 0].reshape(-1), xy[..., 1].reshape(-1))

    def describe(self) -> dict:
        return {"model": self.name, "htree": self.tree.describe()}


def get_skew_model(
    name: str,
    device,
    *,
    skew_per_region: float | None = None,
    htree_config: HTreeConfig | None = None,
) -> SkewModel:
    """Construct a skew model by its config name.

    ``"htree"`` reuses the device's attached :class:`ClockTree` when one
    exists (the ``slot_fabric`` builder synthesizes taps at clock-region
    centres); otherwise it synthesizes a default tree over the device.
    """
    if name == "region":
        return RegionSkew(0.03 if skew_per_region is None else skew_per_region)
    if name == "zero":
        return ZeroSkew()
    if name == "htree":
        tree = getattr(device, "clock_tree", None)
        if tree is None or htree_config is not None:
            tree = synthesize_htree(device, htree_config)
        return HTreeSkew(tree)
    raise ConfigurationError(
        f"unknown skew model {name!r} (expected one of {SKEW_MODEL_NAMES})"
    )
