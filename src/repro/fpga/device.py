"""Device model: columns of sites, PS block, and site queries.

Coordinates are in µm with the origin at the bottom-left of the fabric.
DSP site lists follow the paper's convention (Section IV-A): sorted in
ascending coordinate order such that vertically adjacent sites of the same
column have consecutive indices — the cascade constraint (eq. 5) is stated
directly on those indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SITE_KINDS = ("CLB", "DSP", "BRAM")


@dataclass(frozen=True)
class Site:
    """One placement site on the fabric."""

    sid: int  # dense id *within its kind*, column-major ascending
    kind: str
    col: int  # column ordinal within its kind (0-based, left to right)
    row: int  # row ordinal within the column (0-based, bottom to top)
    x: float
    y: float


@dataclass
class SiteColumn:
    """A vertical run of same-kind sites at a fixed x."""

    kind: str
    col: int
    x: float
    ys: np.ndarray  # ascending site centre y's

    def __post_init__(self) -> None:
        self.ys = np.asarray(self.ys, dtype=np.float64)
        if self.ys.size and np.any(np.diff(self.ys) <= 0):
            raise ValueError(f"{self.kind} column {self.col}: ys not strictly increasing")

    @property
    def n_sites(self) -> int:
        return int(self.ys.size)


@dataclass(frozen=True)
class PSBlock:
    """The fixed processing system in the bottom-left corner.

    Per the paper's Fig. 5(a): data buses from PS to PL enter *above* the PS
    block, and buses from PL back to PS exit on its *right* edge. Those two
    attachment points anchor the soft datapath-angle constraint (eq. 6).
    """

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def ps_to_pl_xy(self) -> tuple[float, float]:
        """Attachment point of PS→PL buses (top edge, mid-x)."""
        return ((self.x0 + self.x1) / 2.0, self.y1)

    @property
    def pl_to_ps_xy(self) -> tuple[float, float]:
        """Attachment point of PL→PS buses (right edge, mid-y)."""
        return (self.x1, (self.y0 + self.y1) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1


class Device:
    """A column-heterogeneous FPGA fabric.

    Attributes:
        name: Device name (e.g. ``"zcu104"``).
        width, height: Fabric extent in µm.
        columns: All site columns, every kind.
        ps: The PS block, or ``None`` for PL-only parts.
        clb_capacity: How many CLB-kind cells (LUT/FF/CARRY/LUTRAM) one CLB
            site accommodates during legalization.
        has_cascades: Whether DSP columns carry a dedicated PCOUT→PCIN
            cascade spine. Slot fabrics (structured-ASIC style) set this
            False: cascade nets there are ordinary fabric routing, with
            neither the fixed-hop discount nor the escape penalty.
        clock_tree: Optional pre-synthesized
            :class:`~repro.clock.ClockTree` over this fabric (the
            ``slot_fabric`` builder attaches one with taps at clock-region
            centres); ``None`` means skew models synthesize their own.
    """

    def __init__(
        self,
        name: str,
        width: float,
        height: float,
        columns: list[SiteColumn],
        ps: PSBlock | None = None,
        clb_capacity: int = 16,
        clock_region_shape: tuple[int, int] = (1, 1),
        has_cascades: bool = True,
        clock_tree=None,
    ) -> None:
        self.name = name
        self.width = float(width)
        self.height = float(height)
        self.columns = columns
        self.ps = ps
        self.clb_capacity = int(clb_capacity)
        self.clock_region_shape = clock_region_shape
        self.has_cascades = bool(has_cascades)
        self.clock_tree = clock_tree

        self._sites: dict[str, list[Site]] = {k: [] for k in SITE_KINDS}
        self._xy: dict[str, np.ndarray] = {}
        self._col_of: dict[str, np.ndarray] = {}
        self._cols: dict[str, list[SiteColumn]] = {k: [] for k in SITE_KINDS}
        self._col_site_ids: dict[str, list[list[int]]] = {k: [] for k in SITE_KINDS}
        self._build_indices()

    # ------------------------------------------------------------------
    def _build_indices(self) -> None:
        for kind in SITE_KINDS:
            cols = sorted(
                (c for c in self.columns if c.kind == kind), key=lambda c: c.x
            )
            self._cols[kind] = cols
            sid = 0
            for col_ord, col in enumerate(cols):
                col.col = col_ord
                ids: list[int] = []
                for row, y in enumerate(col.ys):
                    self._sites[kind].append(
                        Site(sid=sid, kind=kind, col=col_ord, row=row, x=col.x, y=float(y))
                    )
                    ids.append(sid)
                    sid += 1
                self._col_site_ids[kind].append(ids)
            sites = self._sites[kind]
            self._xy[kind] = (
                np.array([[s.x, s.y] for s in sites], dtype=np.float64)
                if sites
                else np.zeros((0, 2))
            )
            self._col_of[kind] = np.array([s.col for s in sites], dtype=np.int64)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def sites(self, kind: str) -> list[Site]:
        """All sites of a kind, column-major ascending (paper's ordering)."""
        return self._sites[kind]

    def site_xy(self, kind: str) -> np.ndarray:
        """``(n_sites, 2)`` array of site centres, same order as :meth:`sites`."""
        return self._xy[kind]

    def site_col(self, kind: str) -> np.ndarray:
        """Column ordinal of each site, same order as :meth:`sites`."""
        return self._col_of[kind]

    def n_sites(self, kind: str) -> int:
        return len(self._sites[kind])

    def kind_columns(self, kind: str) -> list[SiteColumn]:
        return self._cols[kind]

    def column_site_ids(self, kind: str, col: int) -> list[int]:
        """Site ids of one column, bottom-to-top (consecutive by construction)."""
        return self._col_site_ids[kind][col]

    @property
    def n_dsp(self) -> int:
        return self.n_sites("DSP")

    @property
    def n_dsp_columns(self) -> int:
        return len(self._cols["DSP"])

    def nearest_sites(self, kind: str, x: float, y: float, k: int = 1) -> np.ndarray:
        """Indices of the ``k`` sites of ``kind`` closest (Euclidean) to (x, y)."""
        xy = self._xy[kind]
        if xy.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        d2 = (xy[:, 0] - x) ** 2 + (xy[:, 1] - y) ** 2
        k = min(k, xy.shape[0])
        idx = np.argpartition(d2, k - 1)[:k]
        return idx[np.argsort(d2[idx])]

    def clock_region_of(self, x: float, y: float) -> tuple[int, int]:
        """(col, row) of the clock region containing (x, y)."""
        ncols, nrows = self.clock_region_shape
        cx = min(int(x / self.width * ncols), ncols - 1) if self.width else 0
        cy = min(int(y / self.height * nrows), nrows - 1) if self.height else 0
        return (max(cx, 0), max(cy, 0))

    def clock_regions_of(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`clock_region_of`: (col, row) index arrays.

        Matches the scalar rule element-for-element, including the
        boundaries: ``x == width`` lands in the last column (the division
        hits ``ncols`` exactly and is clamped down), negative coordinates
        clamp to region 0, and a degenerate zero-extent axis maps everything
        to region 0.
        """
        ncols, nrows = self.clock_region_shape
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if self.width:
            cx = np.clip((xs / self.width * ncols).astype(np.int64), 0, ncols - 1)
        else:
            cx = np.zeros(xs.shape, dtype=np.int64)
        if self.height:
            cy = np.clip((ys / self.height * nrows).astype(np.int64), 0, nrows - 1)
        else:
            cy = np.zeros(ys.shape, dtype=np.int64)
        return cx, cy

    def validate(self) -> None:
        """Check device invariants; raise ``ValueError`` on violation."""
        for kind in SITE_KINDS:
            sites = self._sites[kind]
            for a, b in zip(sites, sites[1:]):
                if (a.x, a.y) >= (b.x, b.y):
                    raise ValueError(f"{kind} sites not in ascending column-major order")
            if self.ps is not None:
                for s in sites:
                    if self.ps.contains(s.x, s.y):
                        raise ValueError(f"{kind} site {s.sid} overlaps the PS block")
            total = sum(c.n_sites for c in self._cols[kind])
            if total != len(sites):
                raise ValueError(f"{kind} column capacities do not sum to site count")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {k: self.n_sites(k) for k in SITE_KINDS}
        return f"Device({self.name!r}, {self.width:.0f}x{self.height:.0f}um, {counts})"
