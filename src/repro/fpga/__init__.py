"""UltraScale+-style FPGA device substrate.

Models what DSPlacer consumes from the target device (paper Fig. 1(a)):
a column-wise heterogeneous fabric (CLB / DSP / BRAM columns), site
coordinates in µm, clock regions, and the fixed processing system (PS)
block in the bottom-left corner with its PS→PL (top edge) and PL→PS
(right edge) data-bus attachment points.
"""

from repro.fpga.device import Device, PSBlock, Site, SiteColumn
from repro.fpga.builders import (
    FABRIC_NAMES,
    build_device,
    fabric_device,
    scaled_zcu104,
    slot_fabric,
    small_device,
    zcu104,
)

__all__ = [
    "Device",
    "PSBlock",
    "Site",
    "SiteColumn",
    "FABRIC_NAMES",
    "build_device",
    "fabric_device",
    "scaled_zcu104",
    "slot_fabric",
    "small_device",
    "zcu104",
]
