"""Device builders: the ZCU104 target and small test fabrics.

Geometry is parameterized; :func:`zcu104` instantiates an
XCZU7EV-like fabric with the real resource totals that matter to the paper
(1728 DSP48E2 sites, 312 BRAM36, 230k LUTs) laid out in columns. Exact die
dimensions are not public; the model preserves what DSPlacer consumes —
column structure, relative pitches (a DSP48E2 spans 2.5 CLB rows, a BRAM36
spans 5), and the PS block in the bottom-left corner.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.device import Device, PSBlock, SiteColumn

#: Physical pitches (µm). Chosen so full-scale HPWL lands in the same
#: order of magnitude as the paper's Table II (~1e6–1e7 µm).
COLUMN_PITCH = 60.0
CLB_ROW_PITCH = 15.0
DSP_ROW_PITCH = CLB_ROW_PITCH * 2.5
BRAM_ROW_PITCH = CLB_ROW_PITCH * 5.0


def build_device(
    name: str,
    n_clb_cols: int,
    n_dsp_cols: int,
    n_bram_cols: int,
    n_clb_rows: int,
    *,
    with_ps: bool = True,
    clb_capacity: int = 16,
    clock_region_shape: tuple[int, int] = (2, 4),
) -> Device:
    """Build a column-interleaved fabric.

    Columns are interleaved left-to-right in a repeating CLB-heavy pattern
    (roughly one DSP or BRAM column per handful of CLB columns, as on real
    UltraScale+ parts). Sites falling inside the PS block are removed.
    """
    height = n_clb_rows * CLB_ROW_PITCH
    n_total_cols = n_clb_cols + n_dsp_cols + n_bram_cols
    width = n_total_cols * COLUMN_PITCH

    ps = None
    if with_ps:
        # PS occupies the bottom-left corner: ~1/6 of the width, ~1/5 height.
        ps = PSBlock(0.0, 0.0, width / 6.0, height / 5.0)

    # Interleave: spread DSP and BRAM columns evenly among CLB columns.
    kinds: list[str] = ["CLB"] * n_total_cols
    if n_dsp_cols:
        for i in range(n_dsp_cols):
            pos = int((i + 0.5) * n_total_cols / n_dsp_cols)
            kinds[min(pos, n_total_cols - 1)] = "DSP"
    if n_bram_cols:
        for i in range(n_bram_cols):
            pos = int((i + 0.25) * n_total_cols / n_bram_cols)
            # shift right until a CLB slot is free
            while pos < n_total_cols and kinds[pos] != "CLB":
                pos += 1
            kinds[min(pos, n_total_cols - 1)] = "BRAM"

    pitches = {"CLB": CLB_ROW_PITCH, "DSP": DSP_ROW_PITCH, "BRAM": BRAM_ROW_PITCH}
    columns: list[SiteColumn] = []
    for c, kind in enumerate(kinds):
        x = (c + 0.5) * COLUMN_PITCH
        pitch = pitches[kind]
        n_rows = int(height / pitch)
        ys = (np.arange(n_rows) + 0.5) * pitch
        if ps is not None and x < ps.x1:
            ys = ys[ys >= ps.y1]
        if ys.size:
            columns.append(SiteColumn(kind=kind, col=0, x=x, ys=ys))

    device = Device(
        name,
        width,
        height,
        columns,
        ps=ps,
        clb_capacity=clb_capacity,
        clock_region_shape=clock_region_shape,
    )
    device.validate()
    return device


def zcu104() -> Device:
    """An XCZU7EV-like fabric (the paper's target board).

    12 DSP columns × 144 rows — the silicon's 1728-site DSP48E2 grid — of
    which 1670 remain usable after the PS corner clips the leftmost
    columns; 4 BRAM columns (274 usable sites of a 288-site grid; silicon
    has 312 BRAM36); 80 CLB columns × 360 rows. DSP utilization (Table I
    "DSP%") is reported against the usable count.
    """
    return build_device(
        "zcu104",
        n_clb_cols=80,
        n_dsp_cols=12,
        n_bram_cols=4,
        n_clb_rows=360,
        with_ps=True,
        clock_region_shape=(3, 6),
    )


def small_device(
    n_dsp_cols: int = 3,
    dsp_rows: int = 12,
    *,
    with_ps: bool = True,
    name: str = "smalldev",
) -> Device:
    """A small fabric for tests and examples (tens of DSP sites)."""
    n_clb_rows = int(dsp_rows * DSP_ROW_PITCH / CLB_ROW_PITCH)
    return build_device(
        name,
        n_clb_cols=max(4, 3 * n_dsp_cols),
        n_dsp_cols=n_dsp_cols,
        n_bram_cols=2,
        n_clb_rows=n_clb_rows,
        with_ps=with_ps,
        clock_region_shape=(1, 2),
    )


def scaled_zcu104(scale: float) -> Device:
    """A geometrically shrunken ZCU104 for reduced-scale experiments.

    Column and row counts shrink by ``sqrt(scale)`` each so site capacity
    shrinks roughly by ``scale`` while the aspect ratio (and hence the
    PS-corner geometry) is preserved.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if scale == 1.0:
        return zcu104()
    f = float(np.sqrt(scale))
    return build_device(
        f"zcu104@{scale:g}",
        n_clb_cols=max(8, int(round(80 * f))),
        n_dsp_cols=max(2, int(round(12 * f))),
        n_bram_cols=max(1, int(round(4 * f))),
        n_clb_rows=max(40, int(round(360 * f / 4.0) * 4)),
        with_ps=True,
        clock_region_shape=(2, 4),
    )
