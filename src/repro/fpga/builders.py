"""Device builders: the ZCU104 target, small test fabrics, and slot fabrics.

Geometry is parameterized; :func:`zcu104` instantiates an
XCZU7EV-like fabric with the real resource totals that matter to the paper
(1728 DSP48E2 sites, 312 BRAM36, 230k LUTs) laid out in columns. Exact die
dimensions are not public; the model preserves what DSPlacer consumes —
column structure, relative pitches (a DSP48E2 spans 2.5 CLB rows, a BRAM36
spans 5), and the PS block in the bottom-left corner.

:func:`slot_fabric` builds the structured-ASIC-style scenario instead: a
uniform slot grid with no PS corner, no dedicated cascade spines
(``has_cascades=False``) and an H-tree clock network whose leaf taps sit at
the clock-region centres. :func:`fabric_device` is the name → builder
registry the CLI and the serve layer share.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.device import Device, PSBlock, SiteColumn

#: Physical pitches (µm). Chosen so full-scale HPWL lands in the same
#: order of magnitude as the paper's Table II (~1e6–1e7 µm).
COLUMN_PITCH = 60.0
CLB_ROW_PITCH = 15.0
DSP_ROW_PITCH = CLB_ROW_PITCH * 2.5
BRAM_ROW_PITCH = CLB_ROW_PITCH * 5.0


def build_device(
    name: str,
    n_clb_cols: int,
    n_dsp_cols: int,
    n_bram_cols: int,
    n_clb_rows: int,
    *,
    with_ps: bool = True,
    clb_capacity: int = 16,
    clock_region_shape: tuple[int, int] = (2, 4),
) -> Device:
    """Build a column-interleaved fabric.

    Columns are interleaved left-to-right in a repeating CLB-heavy pattern
    (roughly one DSP or BRAM column per handful of CLB columns, as on real
    UltraScale+ parts). Sites falling inside the PS block are removed.
    """
    height = n_clb_rows * CLB_ROW_PITCH
    n_total_cols = n_clb_cols + n_dsp_cols + n_bram_cols
    width = n_total_cols * COLUMN_PITCH

    ps = None
    if with_ps:
        # PS occupies the bottom-left corner: ~1/6 of the width, ~1/5 height.
        ps = PSBlock(0.0, 0.0, width / 6.0, height / 5.0)

    # Interleave: spread DSP and BRAM columns evenly among CLB columns.
    kinds: list[str] = ["CLB"] * n_total_cols
    if n_dsp_cols:
        for i in range(n_dsp_cols):
            pos = int((i + 0.5) * n_total_cols / n_dsp_cols)
            kinds[min(pos, n_total_cols - 1)] = "DSP"
    if n_bram_cols:
        for i in range(n_bram_cols):
            pos = int((i + 0.25) * n_total_cols / n_bram_cols)
            # shift right until a CLB slot is free
            while pos < n_total_cols and kinds[pos] != "CLB":
                pos += 1
            kinds[min(pos, n_total_cols - 1)] = "BRAM"

    pitches = {"CLB": CLB_ROW_PITCH, "DSP": DSP_ROW_PITCH, "BRAM": BRAM_ROW_PITCH}
    columns: list[SiteColumn] = []
    for c, kind in enumerate(kinds):
        x = (c + 0.5) * COLUMN_PITCH
        pitch = pitches[kind]
        n_rows = int(height / pitch)
        ys = (np.arange(n_rows) + 0.5) * pitch
        if ps is not None and x < ps.x1:
            ys = ys[ys >= ps.y1]
        if ys.size:
            columns.append(SiteColumn(kind=kind, col=0, x=x, ys=ys))

    device = Device(
        name,
        width,
        height,
        columns,
        ps=ps,
        clb_capacity=clb_capacity,
        clock_region_shape=clock_region_shape,
    )
    device.validate()
    return device


def zcu104() -> Device:
    """An XCZU7EV-like fabric (the paper's target board).

    12 DSP columns × 144 rows — the silicon's 1728-site DSP48E2 grid — of
    which 1670 remain usable after the PS corner clips the leftmost
    columns; 4 BRAM columns (274 usable sites of a 288-site grid; silicon
    has 312 BRAM36); 80 CLB columns × 360 rows. DSP utilization (Table I
    "DSP%") is reported against the usable count.
    """
    return build_device(
        "zcu104",
        n_clb_cols=80,
        n_dsp_cols=12,
        n_bram_cols=4,
        n_clb_rows=360,
        with_ps=True,
        clock_region_shape=(3, 6),
    )


def small_device(
    n_dsp_cols: int = 3,
    dsp_rows: int = 12,
    *,
    with_ps: bool = True,
    name: str = "smalldev",
) -> Device:
    """A small fabric for tests and examples (tens of DSP sites)."""
    n_clb_rows = int(dsp_rows * DSP_ROW_PITCH / CLB_ROW_PITCH)
    return build_device(
        name,
        n_clb_cols=max(4, 3 * n_dsp_cols),
        n_dsp_cols=n_dsp_cols,
        n_bram_cols=2,
        n_clb_rows=n_clb_rows,
        with_ps=with_ps,
        clock_region_shape=(1, 2),
    )


def scaled_zcu104(scale: float) -> Device:
    """A geometrically shrunken ZCU104 for reduced-scale experiments.

    Column and row counts shrink by ``sqrt(scale)`` each so site capacity
    shrinks roughly by ``scale`` while the aspect ratio (and hence the
    PS-corner geometry) is preserved.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if scale == 1.0:
        return zcu104()
    f = float(np.sqrt(scale))
    return build_device(
        f"zcu104@{scale:g}",
        n_clb_cols=max(8, int(round(80 * f))),
        n_dsp_cols=max(2, int(round(12 * f))),
        n_bram_cols=max(1, int(round(4 * f))),
        n_clb_rows=max(40, int(round(360 * f / 4.0) * 4)),
        with_ps=True,
        clock_region_shape=(2, 4),
    )


def slot_fabric(scale: float = 1.0) -> Device:
    """A structured-ASIC-style slot fabric (the clock-aware scenario).

    Everything that makes the ZCU104 model FPGA-shaped is stripped away:

    - **uniform slot grid** — every column has the same row pitch
      (:data:`CLB_ROW_PITCH`), so DSP and BRAM slots are just specialized
      slots of the one grid rather than taller macro sites;
    - **no PS corner** — the fabric is a clean rectangle;
    - **no cascade spines** (``has_cascades=False``) — DSP→DSP cascade
      nets are priced as ordinary routed nets by STA, with neither the
      fixed-hop discount nor the escape penalty;
    - **H-tree clocking** — a depth-d H-tree is synthesized over the die
      and attached as ``device.clock_tree``; its ``4**d`` leaf taps land
      exactly on the centres of the ``2**d × 2**d`` clock regions, so
      ``skew_model="htree"`` picks it up without re-synthesis.

    Column and row counts shrink by ``sqrt(scale)`` like
    :func:`scaled_zcu104`; roughly every 6th column is DSP and every 12th
    BRAM.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    from repro.clock.htree import HTreeConfig, synthesize_htree

    f = float(np.sqrt(scale))
    n_total = max(12, int(round(72 * f)))
    n_rows = max(24, int(round(240 * f)))
    depth = 3 if min(n_total, n_rows) >= 32 else 2

    n_dsp = max(2, n_total // 6)
    n_bram = max(1, n_total // 12)
    kinds: list[str] = ["CLB"] * n_total
    for i in range(n_dsp):
        pos = int((i + 0.5) * n_total / n_dsp)
        kinds[min(pos, n_total - 1)] = "DSP"
    for i in range(n_bram):
        pos = int((i + 0.25) * n_total / n_bram)
        while pos < n_total and kinds[pos] != "CLB":
            pos += 1
        kinds[min(pos, n_total - 1)] = "BRAM"

    ys = (np.arange(n_rows) + 0.5) * CLB_ROW_PITCH
    columns = [
        SiteColumn(kind=kind, col=0, x=(c + 0.5) * COLUMN_PITCH, ys=ys.copy())
        for c, kind in enumerate(kinds)
    ]
    device = Device(
        f"slot_fabric@{scale:g}",
        n_total * COLUMN_PITCH,
        n_rows * CLB_ROW_PITCH,
        columns,
        ps=None,
        clock_region_shape=(2**depth, 2**depth),
        has_cascades=False,
    )
    device.validate()
    device.clock_tree = synthesize_htree(device, HTreeConfig(depth=depth))
    return device


#: fabric names :func:`fabric_device` accepts (CLI ``--fabric``, serve
#: ``PlacementRequest.fabric``)
FABRIC_NAMES = ("zcu104", "slot_fabric")


def fabric_device(fabric: str, scale: float = 1.0) -> Device:
    """Build a device by fabric name at a given scale (the shared registry)."""
    if fabric == "zcu104":
        return scaled_zcu104(scale)
    if fabric == "slot_fabric":
        return slot_fabric(scale)
    raise ConfigurationError(
        f"unknown fabric {fabric!r} (expected one of {FABRIC_NAMES})"
    )
