"""Command-line interface.

```
python -m repro generate --suite skynet --scale 0.1 -o skynet.json
python -m repro place    --suite skrskr1 --scale 0.1 --tool dsplacer
python -m repro place    --suite skynet --scale 0.05 --race-k 3 --json
python -m repro report   --suite skynet --scale 0.1 --tool vivado --paths 5
python -m repro serve submit --suite skynet --suite skynet --scale 0.05 --workers 2
python -m repro bench -- --update --output BENCH_hotpaths.json
python -m repro experiment table1
```

``place`` and ``serve submit`` share one request vocabulary
(:func:`add_request_arguments` → :meth:`PlacementRequest.from_args`), so a
flag accepted by one is accepted by the other. ``place --race-k 3`` runs a
seed portfolio through the serve worker pool and keeps the best placement;
``serve submit`` accepts ``--suite`` repeatedly to queue several jobs on
one server (duplicates are answered from the result cache).

Bare flags without a subcommand (``python -m repro --suite ...``) still
work for one release via a deprecation shim that rewrites them to
``place``; use the subcommand form.

``place``/``report`` accept the observability flags: ``--json`` writes a
schema-valid :class:`~repro.obs.RunReport` document to stdout (everything
human-readable moves to stderr), ``--trace`` prints the span tree,
``--quiet`` silences the informational stderr chatter, and
``--config FILE`` overrides :class:`~repro.core.DSPlacerConfig` knobs from
a JSON object (unknown keys are rejected).

Typed pipeline errors (:class:`repro.errors.ReproError`) exit with code 2
and a one-line message instead of a traceback; ``--strict`` makes the
DSPlacer flow raise on any stage failure instead of degrading gracefully
(see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext

from repro import obs
from repro.accelgen import SUITE_NAMES, generate_suite
from repro.core import DSPlacerConfig
from repro.errors import ConfigurationError, ReproError
from repro.fpga import FABRIC_NAMES, fabric_device
from repro.netlist import save_netlist
from repro.obs import RunReport, render_trace, trace
from repro.placers.api import (
    PLACER_NAMES,
    RACE_POLICIES,
    PlacementRequest,
    get_placer,
)
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, format_timing_report, max_frequency


class ReportEmitter:
    """Routes CLI output: human text to stderr, machine artifacts to stdout.

    Under ``--json`` stdout is reserved for the RunReport document, so the
    one-line result summary moves to stderr with the rest of the chatter;
    ``--quiet`` drops the informational lines entirely (the report and hard
    errors still come through).
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.json_out: bool = getattr(args, "json", False)
        self.trace_out: bool = getattr(args, "trace", False)
        self.quiet: bool = getattr(args, "quiet", False)

    @property
    def observing(self) -> bool:
        """Whether the run should collect spans/metrics at all."""
        return self.json_out or self.trace_out

    def info(self, message: str) -> None:
        """Informational line (health summaries, stats) — stderr, quietable."""
        if not self.quiet:
            print(message, file=sys.stderr)

    def result(self, line: str) -> None:
        """The one-line run summary — stdout, unless stdout carries JSON."""
        if self.json_out:
            self.info(line)
        else:
            print(line)

    def emit(self, report: RunReport | None) -> None:
        """Final artifacts: span tree under ``--trace``, JSON under ``--json``."""
        if report is None:
            return
        if self.trace_out:
            print(render_trace(report.spans), file=sys.stderr)
        if self.json_out:
            print(report.to_json())


def _add_common(p: argparse.ArgumentParser, *, multi_suite: bool = False) -> None:
    if multi_suite:
        p.add_argument(
            "--suite",
            action="append",
            choices=SUITE_NAMES,
            help="benchmark suite; repeat to queue several jobs (default skynet)",
        )
    else:
        p.add_argument("--suite", default="skynet", choices=SUITE_NAMES)
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument(
        "--fabric",
        default="zcu104",
        choices=FABRIC_NAMES,
        help="target fabric: the ZCU104 model or the slot-fabric scenario",
    )
    p.add_argument("--seed", type=int, default=0)


def add_request_arguments(p: argparse.ArgumentParser, *, multi_suite: bool = False) -> None:
    """The shared ``place``/``serve submit`` request vocabulary.

    One parser feeding :meth:`PlacementRequest.from_args` for both entry
    points, so the two surfaces cannot drift apart.
    """
    _add_common(p, multi_suite=multi_suite)
    p.add_argument("--tool", default="dsplacer", choices=PLACER_NAMES)
    p.add_argument(
        "--race-k",
        type=int,
        default=1,
        metavar="K",
        help="portfolio racing: place K seeds concurrently, keep the winner",
    )
    p.add_argument(
        "--race-policy",
        default="best",
        choices=RACE_POLICIES,
        help="'best' waits for all K attempts; 'first' keeps the first success",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed result cache",
    )


def _add_robustness(p: argparse.ArgumentParser) -> None:
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        action="store_true",
        help="raise typed errors on stage failures instead of degrading",
    )
    mode.add_argument(
        "--permissive",
        dest="strict",
        action="store_false",
        help="fall back / roll back on stage failures (default)",
    )
    p.add_argument(
        "--stage-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per assignment/legalization stage",
    )


def _add_output(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json",
        action="store_true",
        help="write a RunReport JSON document to stdout (text moves to stderr)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree (wall/CPU per stage) to stderr",
    )
    p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational stderr output (health summary, stats)",
    )
    p.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON file of DSPlacerConfig overrides (unknown keys rejected)",
    )


def _dsplacer_config(args: argparse.Namespace) -> DSPlacerConfig:
    """Merge CLI flags with an optional ``--config`` JSON file.

    File keys override flags; unknown keys raise
    :class:`~repro.errors.ConfigurationError` via
    :meth:`DSPlacerConfig.from_dict`.
    """
    doc: dict = {
        "identification": "heuristic",
        "seed": args.seed,
        "strict": getattr(args, "strict", False),
        "stage_budget_s": getattr(args, "stage_budget", None),
    }
    path = getattr(args, "config", None)
    if path:
        try:
            with open(path) as fh:
                overrides = json.load(fh)
        except OSError as exc:
            raise ConfigurationError(f"cannot read --config {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"--config {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(overrides, dict):
            raise ConfigurationError(
                f"--config {path!r} must hold a JSON object of DSPlacerConfig keys"
            )
        doc.update(overrides)
    return DSPlacerConfig.from_dict(doc)


def _race_placement(request: PlacementRequest, netlist, device, emitter: ReportEmitter):
    """Run a ``--race-k`` portfolio through the serve worker pool."""
    from repro.serve import PlacementServer

    with PlacementServer(workers=min(request.race_k, 4)) as server:
        response = server.submit(request, netlist=netlist, device=device).result()
    response.raise_for_status()
    race = (response.report or {}).get("job", {}).get("race") or {}
    emitter.info(
        f"race: k={request.race_k} policy={request.race_policy} "
        f"winner seed={response.seed_used} cancelled={race.get('cancelled', 0)}"
    )
    health = (response.report or {}).get("health")
    job_doc = (response.report or {}).get("job")
    return response.placement, health, job_doc


def _place(args) -> int:
    emitter = ReportEmitter(args)
    device = fabric_device(args.fabric, args.scale)
    netlist = generate_suite(args.suite, scale=args.scale, device=device, seed=args.seed)
    emitter.info(f"{netlist.stats(device.n_dsp)}")
    config = _dsplacer_config(args)
    request = PlacementRequest.from_args(args, config=config.to_dict())

    health = None
    job_doc = None
    ob_ctx = obs.observe() if emitter.observing else nullcontext(None)
    with ob_ctx as ob:
        with trace.span("run", tool=request.tool, suite=args.suite, scale=args.scale):
            if request.race_k > 1:
                placement, health, job_doc = _race_placement(
                    request, netlist, device, emitter
                )
            else:
                placer = get_placer(request.tool, device, seed=args.seed, config=config)
                placement = placer.place(netlist)
                if request.tool == "dsplacer":
                    result = placer.last_result
                    emitter.info(
                        f"datapath DSPs: {result.n_datapath_dsps} "
                        f"(identification acc {result.identification.accuracy:.0%})"
                    )
                    emitter.info(result.health.summary())
                    health = result.health.to_dict()
            route = GlobalRouter().route(placement)
            from repro.clock import get_skew_model

            skew = get_skew_model(config.skew_model, device)
            sta = StaticTimingAnalyzer(netlist, skew_model=skew)
            fmax = max_frequency(sta, placement, route)
            rep = sta.analyze(placement, route)
    emitter.result(
        f"tool={request.tool} suite={args.suite} scale={args.scale} "
        f"legal={placement.is_legal()} hpwl={placement.hpwl():.4g} "
        f"routed_wl={route.total_wirelength:.4g} wns={rep.wns_ns:+.3f} "
        f"tns={rep.tns_ns:+.1f} fmax={fmax:.0f}MHz"
    )
    if getattr(args, "paths", 0):
        timing_text = format_timing_report(rep, netlist, k_paths=args.paths)
        if emitter.json_out:
            emitter.info(timing_text)
        else:
            print(timing_text)
    if ob is not None:
        report = RunReport.from_observation(
            ob,
            meta={
                "tool": request.tool,
                "suite": args.suite,
                "scale": args.scale,
                "fabric": args.fabric,
                "seed": args.seed,
                "config": config.to_dict(),
            },
            health=health,
            quality={
                "legal": bool(placement.is_legal()),
                "hpwl_um": float(placement.hpwl()),
                "routed_wl_um": float(route.total_wirelength),
                "wns_ns": float(rep.wns_ns),
                "tns_ns": float(rep.tns_ns),
                "fmax_mhz": float(fmax),
            },
        )
        report.job = job_doc
        if config.skew_model != "region" or config.skew_weight > 0:
            from repro.clock import clock_report_section

            report.clock = clock_report_section(skew, placement, netlist)
        emitter.emit(report)
    if getattr(args, "svg", None):
        from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
        from repro.eval.visualization import placement_to_svg

        graph = prune_control_dsps(
            build_dsp_graph(netlist, iddfs_dsp_paths(netlist)),
            {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()},
        )
        placement_to_svg(placement, graph, path=args.svg, title=f"{args.suite} — {args.tool}")
        emitter.info(f"svg: {args.svg}")
    return 0


def _generate(args) -> int:
    device = fabric_device(args.fabric, args.scale)
    netlist = generate_suite(args.suite, scale=args.scale, device=device, seed=args.seed)
    save_netlist(netlist, args.output)
    print(f"wrote {args.output}: {netlist.stats(device.n_dsp)}")
    if args.verilog:
        from repro.netlist import save_verilog

        save_verilog(netlist, args.verilog)
        print(f"wrote {args.verilog} (structural Verilog)")
    return 0


def _experiment(args) -> int:
    from repro.eval import render_table, run_table1

    if args.which == "table1":
        rows = run_table1()
        print(
            render_table(
                ["Design", "#LUT", "#LUTRAM", "#FF", "#BRAM", "#DSP", "DSP%", "freq"],
                [
                    [r["design"], r["lut"], r["lutram"], r["ff"], r["bram"], r["dsp"], r["dsp_pct"], r["freq_mhz"]]
                    for r in rows
                ],
                title="Table I",
            )
        )
        return 0
    print(
        "heavier experiments run through the benchmark harness:\n"
        f"  pytest benchmarks/bench_{args.which}_*.py --benchmark-only -s",
        file=sys.stderr,
    )
    return 1


def _serve_submit(args) -> int:
    from repro.serve import PlacementServer

    emitter = ReportEmitter(args)
    config = _dsplacer_config(args)
    suites = args.suite or ["skynet"]
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)

    docs: list[dict] = []
    n_failed = 0
    with PlacementServer(workers=args.workers) as server:
        jobs = []
        for suite in suites:
            args.suite = suite
            jobs.append(
                server.submit(PlacementRequest.from_args(args, config=config.to_dict()))
            )
        for job in jobs:
            resp = job.result()
            docs.append(resp.to_dict())
            n_failed += resp.status != "ok"
            quality = resp.quality or {}
            hpwl = quality.get("hpwl_um")
            emitter.result(
                f"{resp.job_id} suite={resp.request.suite} status={resp.status} "
                f"cache={resp.cache} seed={resp.seed_used} "
                f"legal={quality.get('legal')} "
                f"hpwl={'n/a' if hpwl is None else format(hpwl, '.4g')} "
                f"wall={resp.wall_s:.3f}s"
            )
            if args.report_dir and resp.report is not None:
                path = os.path.join(args.report_dir, f"{resp.job_id}.json")
                with open(path, "w") as fh:
                    json.dump(resp.report, fh, indent=2)
                emitter.info(f"report: {path}")
        stats = server.cache.stats()
    emitter.info(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es)")
    if emitter.json_out:
        print(json.dumps({"jobs": docs, "cache": stats}, indent=2))
    return 1 if n_failed else 0


def _bench(args) -> int:
    from repro.obs.bench import _main as bench_main

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    return bench_main(rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a benchmark netlist as JSON")
    _add_common(g)
    g.add_argument("-o", "--output", default="netlist.json")
    g.add_argument("--verilog", default=None, help="also write structural Verilog")
    g.set_defaults(func=_generate)

    p = sub.add_parser("place", help="place a suite and report PPA")
    add_request_arguments(p)
    _add_robustness(p)
    _add_output(p)
    p.add_argument("--svg", default=None, help="write a layout SVG")
    p.set_defaults(func=_place, paths=0)

    r = sub.add_parser("report", help="place and print a timing report")
    add_request_arguments(r)
    _add_robustness(r)
    _add_output(r)
    r.add_argument("--paths", type=int, default=5)
    r.set_defaults(func=_place, svg=None, tool="vivado")

    s = sub.add_parser("serve", help="placement-as-a-service job orchestration")
    serve_sub = s.add_subparsers(dest="serve_command", required=True)
    ss = serve_sub.add_parser(
        "submit", help="submit placement jobs to a worker pool and wait"
    )
    add_request_arguments(ss, multi_suite=True)
    _add_robustness(ss)
    _add_output(ss)
    ss.add_argument(
        "--with-timing",
        action="store_true",
        help="also route and run STA inside each worker",
    )
    ss.add_argument("--workers", type=int, default=2, help="concurrent worker processes")
    ss.add_argument(
        "--report-dir",
        default=None,
        metavar="DIR",
        help="write each job's schema-valid RunReport JSON into DIR",
    )
    ss.set_defaults(func=_serve_submit)

    b = sub.add_parser(
        "bench", help="hot-path benchmark gate (passthrough to repro.obs.bench)"
    )
    b.add_argument("rest", nargs=argparse.REMAINDER)
    b.set_defaults(func=_bench)

    e = sub.add_parser("experiment", help="run a named experiment")
    e.add_argument("which", choices=("table1", "table2", "fig7", "fig8", "fig9"))
    e.set_defaults(func=_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        # one-release deprecation shim: `python -m repro --suite ...`
        print(
            "warning: flags without a subcommand are deprecated and will stop "
            "working next release; use 'python -m repro place ...'",
            file=sys.stderr,
        )
        argv = ["place", *argv]
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # one line per error class, not a traceback; multi-line validation
        # reports keep their bullet list
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
