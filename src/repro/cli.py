"""Command-line interface.

```
python -m repro generate --suite skynet --scale 0.1 -o skynet.json
python -m repro place    --suite skrskr1 --scale 0.1 --tool dsplacer
python -m repro place    --suite skynet --scale 0.05 --tool dsplacer --json
python -m repro report   --suite skynet --scale 0.1 --tool vivado --paths 5
python -m repro experiment table1
```

``place``/``report`` accept the observability flags: ``--json`` writes a
schema-valid :class:`~repro.obs.RunReport` document to stdout (everything
human-readable moves to stderr), ``--trace`` prints the span tree,
``--quiet`` silences the informational stderr chatter, and
``--config FILE`` overrides :class:`~repro.core.DSPlacerConfig` knobs from
a JSON object (unknown keys are rejected).

Typed pipeline errors (:class:`repro.errors.ReproError`) exit with code 2
and a one-line message instead of a traceback; ``--strict`` makes the
DSPlacer flow raise on any stage failure instead of degrading gracefully
(see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext

from repro import obs
from repro.accelgen import SUITE_NAMES, generate_suite
from repro.core import DSPlacerConfig
from repro.errors import ConfigurationError, ReproError
from repro.fpga import scaled_zcu104
from repro.netlist import save_netlist
from repro.obs import RunReport, render_trace, trace
from repro.placers.api import PLACER_NAMES, get_placer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, format_timing_report, max_frequency


class ReportEmitter:
    """Routes CLI output: human text to stderr, machine artifacts to stdout.

    Under ``--json`` stdout is reserved for the RunReport document, so the
    one-line result summary moves to stderr with the rest of the chatter;
    ``--quiet`` drops the informational lines entirely (the report and hard
    errors still come through).
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.json_out: bool = getattr(args, "json", False)
        self.trace_out: bool = getattr(args, "trace", False)
        self.quiet: bool = getattr(args, "quiet", False)

    @property
    def observing(self) -> bool:
        """Whether the run should collect spans/metrics at all."""
        return self.json_out or self.trace_out

    def info(self, message: str) -> None:
        """Informational line (health summaries, stats) — stderr, quietable."""
        if not self.quiet:
            print(message, file=sys.stderr)

    def result(self, line: str) -> None:
        """The one-line run summary — stdout, unless stdout carries JSON."""
        if self.json_out:
            self.info(line)
        else:
            print(line)

    def emit(self, report: RunReport | None) -> None:
        """Final artifacts: span tree under ``--trace``, JSON under ``--json``."""
        if report is None:
            return
        if self.trace_out:
            print(render_trace(report.spans), file=sys.stderr)
        if self.json_out:
            print(report.to_json())


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--suite", default="skynet", choices=SUITE_NAMES)
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)


def _add_robustness(p: argparse.ArgumentParser) -> None:
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        action="store_true",
        help="raise typed errors on stage failures instead of degrading",
    )
    mode.add_argument(
        "--permissive",
        dest="strict",
        action="store_false",
        help="fall back / roll back on stage failures (default)",
    )
    p.add_argument(
        "--stage-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per assignment/legalization stage",
    )


def _add_output(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json",
        action="store_true",
        help="write a RunReport JSON document to stdout (text moves to stderr)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree (wall/CPU per stage) to stderr",
    )
    p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational stderr output (health summary, stats)",
    )
    p.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON file of DSPlacerConfig overrides (unknown keys rejected)",
    )


def _dsplacer_config(args: argparse.Namespace) -> DSPlacerConfig:
    """Merge CLI flags with an optional ``--config`` JSON file.

    File keys override flags; unknown keys raise
    :class:`~repro.errors.ConfigurationError` via
    :meth:`DSPlacerConfig.from_dict`.
    """
    doc: dict = {
        "identification": "heuristic",
        "seed": args.seed,
        "strict": getattr(args, "strict", False),
        "stage_budget_s": getattr(args, "stage_budget", None),
    }
    path = getattr(args, "config", None)
    if path:
        try:
            with open(path) as fh:
                overrides = json.load(fh)
        except OSError as exc:
            raise ConfigurationError(f"cannot read --config {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"--config {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(overrides, dict):
            raise ConfigurationError(
                f"--config {path!r} must hold a JSON object of DSPlacerConfig keys"
            )
        doc.update(overrides)
    return DSPlacerConfig.from_dict(doc)


def _place(args) -> int:
    emitter = ReportEmitter(args)
    device = scaled_zcu104(args.scale)
    netlist = generate_suite(args.suite, scale=args.scale, device=device, seed=args.seed)
    emitter.info(f"{netlist.stats(device.n_dsp)}")
    config = _dsplacer_config(args)
    placer = get_placer(args.tool, device, seed=args.seed, config=config)

    ob_ctx = obs.observe() if emitter.observing else nullcontext(None)
    with ob_ctx as ob:
        with trace.span("run", tool=args.tool, suite=args.suite, scale=args.scale):
            placement = placer.place(netlist)
            route = GlobalRouter().route(placement)
            sta = StaticTimingAnalyzer(netlist)
            fmax = max_frequency(sta, placement, route)
            rep = sta.analyze(placement, route)

    health = None
    if args.tool == "dsplacer":
        result = placer.last_result
        emitter.info(
            f"datapath DSPs: {result.n_datapath_dsps} "
            f"(identification acc {result.identification.accuracy:.0%})"
        )
        emitter.info(result.health.summary())
        health = result.health.to_dict()
    emitter.result(
        f"tool={args.tool} suite={args.suite} scale={args.scale} "
        f"legal={placement.is_legal()} hpwl={placement.hpwl():.4g} "
        f"routed_wl={route.total_wirelength:.4g} wns={rep.wns_ns:+.3f} "
        f"tns={rep.tns_ns:+.1f} fmax={fmax:.0f}MHz"
    )
    if getattr(args, "paths", 0):
        timing_text = format_timing_report(rep, netlist, k_paths=args.paths)
        if emitter.json_out:
            emitter.info(timing_text)
        else:
            print(timing_text)
    if ob is not None:
        report = RunReport.from_observation(
            ob,
            meta={
                "tool": args.tool,
                "suite": args.suite,
                "scale": args.scale,
                "seed": args.seed,
                "config": config.to_dict(),
            },
            health=health,
            quality={
                "legal": bool(placement.is_legal()),
                "hpwl_um": float(placement.hpwl()),
                "routed_wl_um": float(route.total_wirelength),
                "wns_ns": float(rep.wns_ns),
                "tns_ns": float(rep.tns_ns),
                "fmax_mhz": float(fmax),
            },
        )
        emitter.emit(report)
    if getattr(args, "svg", None):
        from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
        from repro.eval.visualization import placement_to_svg

        graph = prune_control_dsps(
            build_dsp_graph(netlist, iddfs_dsp_paths(netlist)),
            {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()},
        )
        placement_to_svg(placement, graph, path=args.svg, title=f"{args.suite} — {args.tool}")
        emitter.info(f"svg: {args.svg}")
    return 0


def _generate(args) -> int:
    device = scaled_zcu104(args.scale)
    netlist = generate_suite(args.suite, scale=args.scale, device=device, seed=args.seed)
    save_netlist(netlist, args.output)
    print(f"wrote {args.output}: {netlist.stats(device.n_dsp)}")
    if args.verilog:
        from repro.netlist import save_verilog

        save_verilog(netlist, args.verilog)
        print(f"wrote {args.verilog} (structural Verilog)")
    return 0


def _experiment(args) -> int:
    from repro.eval import render_table, run_table1

    if args.which == "table1":
        rows = run_table1()
        print(
            render_table(
                ["Design", "#LUT", "#LUTRAM", "#FF", "#BRAM", "#DSP", "DSP%", "freq"],
                [
                    [r["design"], r["lut"], r["lutram"], r["ff"], r["bram"], r["dsp"], r["dsp_pct"], r["freq_mhz"]]
                    for r in rows
                ],
                title="Table I",
            )
        )
        return 0
    print(
        "heavier experiments run through the benchmark harness:\n"
        f"  pytest benchmarks/bench_{args.which}_*.py --benchmark-only -s",
        file=sys.stderr,
    )
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a benchmark netlist as JSON")
    _add_common(g)
    g.add_argument("-o", "--output", default="netlist.json")
    g.add_argument("--verilog", default=None, help="also write structural Verilog")
    g.set_defaults(func=_generate)

    p = sub.add_parser("place", help="place a suite and report PPA")
    _add_common(p)
    _add_robustness(p)
    _add_output(p)
    p.add_argument("--tool", default="dsplacer", choices=PLACER_NAMES)
    p.add_argument("--svg", default=None, help="write a layout SVG")
    p.set_defaults(func=_place, paths=0)

    r = sub.add_parser("report", help="place and print a timing report")
    _add_common(r)
    _add_robustness(r)
    _add_output(r)
    r.add_argument("--tool", default="vivado", choices=PLACER_NAMES)
    r.add_argument("--paths", type=int, default=5)
    r.set_defaults(func=_place, svg=None)

    e = sub.add_parser("experiment", help="run a named experiment")
    e.add_argument("which", choices=("table1", "table2", "fig7", "fig8", "fig9"))
    e.set_defaults(func=_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # one line per error class, not a traceback; multi-line validation
        # reports keep their bullet list
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
