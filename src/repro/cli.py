"""Command-line interface.

```
python -m repro generate --suite skynet --scale 0.1 -o skynet.json
python -m repro place    --suite skrskr1 --scale 0.1 --tool dsplacer
python -m repro report   --suite skynet --scale 0.1 --tool vivado --paths 5
python -m repro experiment table1
```

Typed pipeline errors (:class:`repro.errors.ReproError`) exit with code 2
and a one-line message instead of a traceback; ``--strict`` makes the
DSPlacer flow raise on any stage failure instead of degrading gracefully
(see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.accelgen import SUITE_NAMES, generate_suite
from repro.core import DSPlacer, DSPlacerConfig
from repro.errors import ReproError
from repro.fpga import scaled_zcu104
from repro.netlist import save_netlist
from repro.placers import AMFLikePlacer, VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, format_timing_report, max_frequency


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--suite", default="skynet", choices=SUITE_NAMES)
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)


def _add_robustness(p: argparse.ArgumentParser) -> None:
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        action="store_true",
        help="raise typed errors on stage failures instead of degrading",
    )
    mode.add_argument(
        "--permissive",
        dest="strict",
        action="store_false",
        help="fall back / roll back on stage failures (default)",
    )
    p.add_argument(
        "--stage-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per assignment/legalization stage",
    )


def _place(args) -> int:
    device = scaled_zcu104(args.scale)
    netlist = generate_suite(args.suite, scale=args.scale, device=device, seed=args.seed)
    print(f"{netlist.stats(device.n_dsp)}", file=sys.stderr)
    if args.tool == "vivado":
        placement = VivadoLikePlacer(seed=args.seed).place(netlist, device)
    elif args.tool == "amf":
        placement = AMFLikePlacer(seed=args.seed).place(netlist, device)
    else:
        result = DSPlacer(
            device,
            DSPlacerConfig(
                identification="heuristic",
                seed=args.seed,
                strict=getattr(args, "strict", False),
                stage_budget_s=getattr(args, "stage_budget", None),
            ),
        ).place(netlist)
        placement = result.placement
        print(
            f"datapath DSPs: {result.n_datapath_dsps} "
            f"(identification acc {result.identification.accuracy:.0%})",
            file=sys.stderr,
        )
        print(result.health.summary(), file=sys.stderr)
    route = GlobalRouter().route(placement)
    sta = StaticTimingAnalyzer(netlist)
    fmax = max_frequency(sta, placement, route)
    rep = sta.analyze(placement, route)
    print(
        f"tool={args.tool} suite={args.suite} scale={args.scale} "
        f"legal={placement.is_legal()} hpwl={placement.hpwl():.4g} "
        f"routed_wl={route.total_wirelength:.4g} wns={rep.wns_ns:+.3f} "
        f"tns={rep.tns_ns:+.1f} fmax={fmax:.0f}MHz"
    )
    if getattr(args, "paths", 0):
        print(format_timing_report(rep, netlist, k_paths=args.paths))
    if getattr(args, "svg", None):
        from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
        from repro.eval.visualization import placement_to_svg

        graph = prune_control_dsps(
            build_dsp_graph(netlist, iddfs_dsp_paths(netlist)),
            {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()},
        )
        placement_to_svg(placement, graph, path=args.svg, title=f"{args.suite} — {args.tool}")
        print(f"svg: {args.svg}", file=sys.stderr)
    return 0


def _generate(args) -> int:
    device = scaled_zcu104(args.scale)
    netlist = generate_suite(args.suite, scale=args.scale, device=device, seed=args.seed)
    save_netlist(netlist, args.output)
    print(f"wrote {args.output}: {netlist.stats(device.n_dsp)}")
    if args.verilog:
        from repro.netlist import save_verilog

        save_verilog(netlist, args.verilog)
        print(f"wrote {args.verilog} (structural Verilog)")
    return 0


def _experiment(args) -> int:
    from repro.eval import render_table, run_table1

    if args.which == "table1":
        rows = run_table1()
        print(
            render_table(
                ["Design", "#LUT", "#LUTRAM", "#FF", "#BRAM", "#DSP", "DSP%", "freq"],
                [
                    [r["design"], r["lut"], r["lutram"], r["ff"], r["bram"], r["dsp"], r["dsp_pct"], r["freq_mhz"]]
                    for r in rows
                ],
                title="Table I",
            )
        )
        return 0
    print(
        "heavier experiments run through the benchmark harness:\n"
        f"  pytest benchmarks/bench_{args.which}_*.py --benchmark-only -s",
        file=sys.stderr,
    )
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a benchmark netlist as JSON")
    _add_common(g)
    g.add_argument("-o", "--output", default="netlist.json")
    g.add_argument("--verilog", default=None, help="also write structural Verilog")
    g.set_defaults(func=_generate)

    p = sub.add_parser("place", help="place a suite and report PPA")
    _add_common(p)
    _add_robustness(p)
    p.add_argument("--tool", default="dsplacer", choices=("vivado", "amf", "dsplacer"))
    p.add_argument("--svg", default=None, help="write a layout SVG")
    p.set_defaults(func=_place, paths=0)

    r = sub.add_parser("report", help="place and print a timing report")
    _add_common(r)
    _add_robustness(r)
    r.add_argument("--tool", default="vivado", choices=("vivado", "amf", "dsplacer"))
    r.add_argument("--paths", type=int, default=5)
    r.set_defaults(func=_place, svg=None)

    e = sub.add_parser("experiment", help="run a named experiment")
    e.add_argument("which", choices=("table1", "table2", "fig7", "fig8", "fig9"))
    e.set_defaults(func=_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # one line per error class, not a traceback; multi-line validation
        # reports keep their bullet list
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
