"""Hierarchical tracing spans with wall/CPU time, nesting and attributes.

Instrumented code opens spans through the ambient module-level helper::

    from repro.obs import trace

    with trace.span("assignment.iterate", i=3) as sp:
        ...
        sp.add("arcs", len(arcs))        # per-span counter
        sp.set(objective=obj)            # per-span attribute

With no active :class:`~repro.obs.Observation` (the default), ``span``
returns a shared no-op singleton, so the disabled overhead is one list
check per call. Clocks are injectable on :class:`Tracer` so tests can pin
span timings deterministically.
"""

from __future__ import annotations

import numbers
import time
from typing import Any, Callable, Iterator

from repro.obs import _runtime

__all__ = ["Span", "Tracer", "NULL_SPAN", "span", "current", "enabled"]


def _jsonable(value: Any) -> Any:
    """Coerce an attribute/counter value to a JSON-serializable scalar."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class Span:
    """One timed, named region of the flow; nests to form the trace tree."""

    __slots__ = ("name", "attrs", "counters", "wall_s", "cpu_s", "children")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: dict[str, float] = {}
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: list[Span] = []

    def add(self, counter: str, value: float = 1) -> None:
        """Bump a per-span counter."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span."""
        self.attrs.update(attrs)

    def iter(self) -> Iterator["Span"]:
        """Depth-first over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.iter()

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "wall_s": float(self.wall_s),
            "cpu_s": float(self.cpu_s),
        }
        if self.attrs:
            doc["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.counters:
            doc["counters"] = {k: _jsonable(v) for k, v in self.counters.items()}
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.4g}s, children={len(self.children)})"


class _NullSpan:
    """No-op stand-in returned when observability is disabled."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    counters: dict[str, float] = {}
    wall_s = 0.0
    cpu_s = 0.0
    children: list[Span] = []

    def add(self, counter: str, value: float = 1) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager for one live span on one tracer."""

    __slots__ = ("_tracer", "_span", "_t0", "_c0", "_prof")

    def __init__(self, tracer: "Tracer", sp: Span) -> None:
        self._tracer = tracer
        self._span = sp

    def __enter__(self) -> Span:
        tr = self._tracer
        parent = tr._stack[-1] if tr._stack else None
        (parent.children if parent is not None else tr.roots).append(self._span)
        tr._stack.append(self._span)
        self._prof = (
            tr._profiler.start(self._span.name) if tr._profiler is not None else None
        )
        self._t0 = tr._clock()
        self._c0 = tr._cpu_clock()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tr = self._tracer
        sp = self._span
        sp.wall_s = tr._clock() - self._t0
        sp.cpu_s = tr._cpu_clock() - self._c0
        if exc_type is not None:
            sp.attrs.setdefault("error", exc_type.__name__)
        if self._prof is not None:
            tr._profiler.stop(self._prof, sp)
        tr._stack.pop()
        return False


class Tracer:
    """Collects a forest of spans; clocks injectable for determinism."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        profiler=None,
    ) -> None:
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._profiler = profiler
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the current span (or a new root)."""
        return _SpanContext(self, Span(name, attrs))

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter()

    def find(self, name: str) -> list[Span]:
        """Every (completed or live) span with this exact name."""
        return [sp for sp in self.iter_spans() if sp.name == name]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots]


# ----------------------------------------------------------------------
# ambient helpers — the instrumentation surface used across the flow
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any):
    """Open a span on the active observation; no-op when disabled."""
    ob = _runtime.active()
    if ob is None:
        return NULL_SPAN
    return ob.tracer.span(name, **attrs)


def current() -> Span | None:
    """The innermost live span, or ``None``."""
    ob = _runtime.active()
    return ob.tracer.current if ob is not None else None


def enabled() -> bool:
    """True when an observation is active (spans/metrics are recorded)."""
    return _runtime.active() is not None
