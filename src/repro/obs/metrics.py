"""Process-local metrics registry: counters, gauges and histograms.

Instrumented code records through the ambient module-level helpers::

    from repro.obs import metrics

    metrics.inc("mcf.arcs", len(arcs))          # monotonic counter
    metrics.gauge("router.wirelength_um", wl)   # last-value-wins
    metrics.observe("assignment.objective", o)  # streaming histogram

All three are single-list-check no-ops when no
:class:`~repro.obs.Observation` is active. Registries merge across stages
(counters add, gauges last-write-wins, histograms combine), which is how a
multi-run harness folds per-run registries into one report.
"""

from __future__ import annotations

import math
import numbers
from typing import Any

from repro.obs import _runtime

__all__ = ["Histogram", "MetricsRegistry", "inc", "gauge", "observe"]


def _num(value: Any) -> int | float:
    if isinstance(value, numbers.Integral):
        return int(value)
    return float(value)


class Histogram:
    """Streaming summary (count / sum / min / max) of observed samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def to_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, float]) -> "Histogram":
        h = cls()
        h.count = int(doc["count"])
        h.total = float(doc["sum"])
        if h.count:
            h.min = float(doc["min"])
            h.max = float(doc["max"])
        return h


class MetricsRegistry:
    """One run's counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- aggregation ----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (counters add, gauges win-last,
        histograms combine); returns ``self``."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                merged = Histogram()
                merged.merge(hist)
                self.histograms[name] = merged
            else:
                mine.merge(hist)
        return self

    def names(self) -> set[str]:
        """Every distinct metric name across all three families."""
        return set(self.counters) | set(self.gauges) | set(self.histograms)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {k: _num(v) for k, v in self.counters.items()},
            "gauges": {k: _num(v) for k, v in self.gauges.items()},
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.counters.update(doc.get("counters", {}))
        reg.gauges.update({k: float(v) for k, v in doc.get("gauges", {}).items()})
        for name, hdoc in doc.get("histograms", {}).items():
            reg.histograms[name] = Histogram.from_dict(hdoc)
        return reg


# ----------------------------------------------------------------------
# ambient helpers — no-ops unless an observation is active
# ----------------------------------------------------------------------
def inc(name: str, value: float = 1) -> None:
    ob = _runtime.active()
    if ob is not None:
        ob.metrics.inc(name, value)


def gauge(name: str, value: float) -> None:
    ob = _runtime.active()
    if ob is not None:
        ob.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    ob = _runtime.active()
    if ob is not None:
        ob.metrics.observe(name, value)
