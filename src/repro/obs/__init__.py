"""Flow-wide observability: tracing spans, metrics, profiling, run reports.

Four cooperating pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.trace` — hierarchical spans with wall/CPU time, nesting,
  per-span attributes and counters;
- :mod:`repro.obs.metrics` — a process-local registry of counters, gauges
  and histograms, mergeable across stages;
- :mod:`repro.obs.profiling` — opt-in cProfile / tracemalloc hooks per span;
- :mod:`repro.obs.report` — the versioned :class:`RunReport` JSON schema the
  CLI (``--json``) and benchmark harness emit.

Everything is **disabled by default**: instrumentation across the flow
(``trace.span(...)``, ``metrics.inc(...)``) costs one list check per call
until an :func:`observe` block activates collection::

    from repro import obs

    with obs.observe() as ob:
        result = DSPlacer(device).place(netlist)
    report = ob.report(meta={"tool": "dsplacer"})
    print(report.to_json())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.obs import _runtime, metrics, trace
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiling import SpanProfiler
from repro.obs.report import (
    REPORT_KIND,
    SCHEMA_VERSION,
    RunReport,
    aggregate_spans,
    render_trace,
    validate_report,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Observation",
    "observe",
    "active",
    "trace",
    "metrics",
    "Span",
    "Tracer",
    "Histogram",
    "MetricsRegistry",
    "SpanProfiler",
    "RunReport",
    "REPORT_KIND",
    "SCHEMA_VERSION",
    "aggregate_spans",
    "render_trace",
    "validate_report",
]


class Observation:
    """One run's collected telemetry: a span tracer + a metrics registry.

    Args:
        clock / cpu_clock: Injectable time sources (tests pin these for
            deterministic span timings).
        profile: Profiling tools to run per span — subset of
            ``("cprofile", "tracemalloc")``; empty (default) disables
            profiling entirely.
        profile_only: Span-name prefixes to restrict profiling to.
    """

    def __init__(
        self,
        *,
        clock=time.perf_counter,
        cpu_clock=time.process_time,
        profile: Sequence[str] = (),
        profile_only: Sequence[str] = (),
    ) -> None:
        profiler = SpanProfiler(tools=profile, only=profile_only) if profile else None
        self.tracer = Tracer(clock=clock, cpu_clock=cpu_clock, profiler=profiler)
        self.metrics = MetricsRegistry()

    def report(
        self,
        meta: dict | None = None,
        health: dict | None = None,
        quality: dict | None = None,
    ) -> RunReport:
        """Snapshot this observation into a :class:`RunReport`."""
        return RunReport.from_observation(self, meta=meta, health=health, quality=quality)


@contextmanager
def observe(**kwargs) -> Iterator[Observation]:
    """Activate observability for the dynamic extent of this block.

    Spans and metrics recorded anywhere in the flow land on the yielded
    :class:`Observation`. Blocks nest; the innermost wins.
    """
    ob = Observation(**kwargs)
    _runtime.push(ob)
    try:
        yield ob
    finally:
        _runtime.pop(ob)


def active() -> Observation | None:
    """The innermost active observation, or ``None`` when disabled."""
    return _runtime.active()
