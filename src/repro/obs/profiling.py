"""Opt-in per-span profiling hooks (cProfile / tracemalloc).

Enabled through :class:`~repro.obs.Observation`::

    with obs.observe(profile=("cprofile", "tracemalloc"),
                     profile_only=("place.assignment",)) as ob:
        ...

Profiler output lands on the span's attributes (``profile_top``,
``mem_peak_kb``) so it travels inside the RunReport like any other span
data. cProfile cannot nest, so when profiled spans nest only the outermost
one collects function stats; tracemalloc is started once and left running
for the extent of the outermost profiled span.
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from typing import Any, Sequence

TOOLS = ("cprofile", "tracemalloc")


class SpanProfiler:
    """Attaches cProfile / tracemalloc results to matching spans.

    Args:
        tools: Subset of :data:`TOOLS` to run.
        only: Span-name prefixes to profile; empty profiles every span.
        top: How many hottest functions to keep per cProfile capture.
    """

    def __init__(
        self,
        tools: Sequence[str] = ("cprofile",),
        only: Sequence[str] = (),
        top: int = 5,
    ) -> None:
        unknown = set(tools) - set(TOOLS)
        if unknown:
            raise ValueError(f"unknown profiling tool(s) {sorted(unknown)}; expected {TOOLS}")
        self.tools = tuple(tools)
        self.only = tuple(only)
        self.top = top
        self._cprofile_busy = False

    def _match(self, name: str) -> bool:
        return not self.only or any(
            name == p or name.startswith(p + ".") for p in self.only
        )

    def start(self, name: str) -> dict[str, Any] | None:
        """Begin profiling a span; returns a token for :meth:`stop`."""
        if not self._match(name):
            return None
        token: dict[str, Any] = {}
        if "tracemalloc" in self.tools:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                token["started_tm"] = True
            token["tm0"] = tracemalloc.get_traced_memory()[0]
        if "cprofile" in self.tools and not self._cprofile_busy:
            self._cprofile_busy = True
            prof = cProfile.Profile()
            prof.enable()
            token["prof"] = prof
        return token or None

    def stop(self, token: dict[str, Any], span) -> None:
        """Finish profiling and attach the results to ``span.attrs``."""
        prof = token.get("prof")
        if prof is not None:
            prof.disable()
            self._cprofile_busy = False
            span.attrs["profile_top"] = self._top_functions(prof)
        if "tm0" in token:
            current, peak = tracemalloc.get_traced_memory()
            span.attrs["mem_current_kb"] = round(current / 1024.0, 1)
            span.attrs["mem_peak_kb"] = round(peak / 1024.0, 1)
            if token.get("started_tm"):
                tracemalloc.stop()

    def _top_functions(self, prof: cProfile.Profile) -> list[str]:
        stats = pstats.Stats(prof).stats  # {(file, line, func): (cc, nc, tt, ct, callers)}
        rows = sorted(stats.items(), key=lambda kv: -kv[1][3])[: self.top]
        return [
            f"{path.rsplit('/', 1)[-1]}:{line}:{func} cum={ct:.4f}s"
            for (path, line, func), (_cc, _nc, _tt, ct, _callers) in rows
        ]
