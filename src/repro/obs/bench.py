"""Hot-path perf-regression harness (``BENCH_hotpaths.json``).

The DSP assignment loop, the extraction kernels (feature centralities,
DSP path search, DSP-graph build), the outer-flow kernels (pattern
routing, STA, end-to-end ``place``), and the analytical-placer core
(``global_place.solve``, greedy ``refine``) are the flow's measured hot
paths (see ``docs/PERFORMANCE.md``). This module runs them under an
:func:`repro.obs.observe` block on a pinned, fully deterministic workload
(fixed suite/scale/seeds, fixed iteration cap) and folds the resulting
spans into a small JSON document:

```
{
  "kind": "repro.bench_hotpaths",
  "schema_version": 1,
  "workload": "skynet@0.25",
  "suite": "skynet", "scale": 0.25, "seed": 0,
  "n_cells": ..., "n_datapath_dsps": ..., "iterates": ...,
  "stages": {"assignment.iterate": {"wall_s": ..., "cpu_s": ..., "count": ...}, ...}
}
```

The committed baseline at the repo root (``BENCH_hotpaths.json``) holds one
such document per workload under ``"workloads"``, plus an optional
``"reference"`` block recording historical (pre-optimization) wall times.
:func:`compare` flags any gated stage whose wall time regressed beyond the
threshold; ``python -m repro.obs.bench`` is the CI entry point::

    PYTHONPATH=src python -m repro.obs.bench --suite skynet --scale 0.05 \
        --baseline BENCH_hotpaths.json --fail-threshold 0.25 \
        --out benchmarks/results/BENCH_hotpaths.json

Refresh the committed baseline after an intentional perf change with
``--update`` (it preserves each workload's ``reference`` block).
"""

from __future__ import annotations

import json
from typing import Any

from repro import obs
from repro.obs.report import aggregate_spans

BENCH_KIND = "repro.bench_hotpaths"
BENCH_SCHEMA_VERSION = 1

#: spans the harness records per workload
HOTPATH_STAGES = (
    "assignment.iterate",
    "assignment.cost_matrix",
    "assignment.solve",
    "assignment.objective",
    "extraction.features",
    "extraction.iddfs",
    "extraction.dsp_graph",
    "router.route",
    "sta.analyze",
    "place",
    "global_place.solve",
    "refine",
)

#: stages measured in their own observed blocks so spans emitted inside the
#: end-to-end flow (e.g. DSPlacer's internal STA calls) cannot leak into the
#: kernel aggregates — and vice versa
OUTER_FLOW_STAGES = ("router.route", "sta.analyze", "place")

#: stages gated by :func:`compare` (the rest are informational breakdown)
GATED_STAGES = (
    "assignment.iterate",
    "extraction.features",
    "extraction.iddfs",
    "extraction.dsp_graph",
    "router.route",
    "sta.analyze",
    "place",
    "global_place.solve",
    "refine",
)

#: the five Table I suites the serve-throughput benchmark sweeps
SERVE_SUITES = ("ismartdnn", "skynet", "skrskr1", "skrskr2", "skrskr3")

#: the single stage gated for the serving benchmark
SERVE_GATED_STAGES = ("serve.throughput",)

#: stages gated for the slot-fabric clock workload: skew-aware STA (H-tree
#: per-sink arrivals on the hot path) and the end-to-end skew-weighted place
SLOT_FABRIC_GATED_STAGES = ("sta.analyze", "place")


def workload_id(suite: str, scale: float) -> str:
    return f"{suite}@{scale:g}"


def run_hotpaths(
    suite: str = "skynet",
    scale: float = 0.25,
    seed: int = 0,
    max_iterations: int = 12,
    features_scale: float = 0.01,
) -> dict[str, Any]:
    """Run the hot paths once and return the bench document.

    The assignment workload places ``suite`` at ``scale`` on the full
    ZCU104 fabric with the paper-faithful MCF engine; the feature-extraction
    workload regenerates the suite at ``features_scale`` so it exercises the
    exact (sub-``exact_threshold``) centrality path.
    """
    # imports are local so `repro.obs` never depends on the flow packages
    from repro.accelgen import generate_suite
    from repro.core import DSPlacer, DSPlacerConfig
    from repro.core.extraction import (
        build_dsp_graph,
        extract_node_features,
        iddfs_dsp_paths,
        prune_control_dsps,
    )
    from repro.core.placement import AssignmentConfig, DatapathDSPAssigner
    from repro.fpga import zcu104
    from repro.placers import VivadoLikePlacer
    from repro.router.pattern_router import PatternRouter
    from repro.timing import StaticTimingAnalyzer

    dev = zcu104()
    netlist = generate_suite(suite, scale=scale, device=dev, seed=0)
    place = VivadoLikePlacer(seed=0, device=dev).place(netlist)
    feat_netlist = generate_suite(suite, scale=features_scale, seed=0)

    with obs.observe() as ob:
        # extraction hot paths: DSP path search + DSP-graph build are timed
        # here (their spans are emitted inside the callees)
        paths = iddfs_dsp_paths(netlist)
        graph = build_dsp_graph(netlist, paths)
        flags = {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()}
        dgraph = prune_control_dsps(graph, flags)
        dsps = sorted(dgraph.nodes)
        assigner = DatapathDSPAssigner(
            netlist,
            dev,
            dgraph,
            dsps,
            AssignmentConfig(max_iterations=max_iterations, seed=seed),
        )
        _, iterates = assigner.solve(place.copy())
        extract_node_features(feat_netlist)

    # outer-flow kernels: route + STA on the same pinned placement (the
    # timing-graph build is one-time per netlist and stays outside the span)
    sta = StaticTimingAnalyzer(netlist)
    with obs.observe() as ob_outer:
        routing = PatternRouter().route(place)
        sta.analyze(place, routing, with_slacks=True)
    # end-to-end place in its own block: DSPlacer re-enters the kernels
    # above, and those inner spans must not leak into the kernel aggregates
    with obs.observe() as ob_place:
        DSPlacer(dev, DSPlacerConfig(seed=seed)).place(netlist)
    # analytical-placer core in its own block, at the pinned protocol the
    # loop-reference baselines were measured with (B2B global place — one
    # solve span per iteration — then legalize + the greedy refiner); the
    # end-to-end place above re-enters refine and must not leak into it
    from repro.placers.analytical import GlobalPlaceConfig, QuadraticGlobalPlacer
    from repro.placers.detailed import refine_sites
    from repro.placers.legalizer import Legalizer

    with obs.observe() as ob_core:
        core_place = QuadraticGlobalPlacer(
            GlobalPlaceConfig(net_model="b2b", seed=seed)
        ).place(netlist, dev)
        Legalizer(dev).legalize(core_place)
        refine_sites(core_place, passes=4, n_candidates=16, seed=seed)

    agg = aggregate_spans(ob.tracer.to_dicts())
    agg_outer = aggregate_spans(ob_outer.tracer.to_dicts())
    agg.update((k, agg_outer[k]) for k in ("router.route", "sta.analyze") if k in agg_outer)
    agg_place = aggregate_spans(ob_place.tracer.to_dicts())
    if "place" in agg_place:
        agg["place"] = agg_place["place"]
    agg_core = aggregate_spans(ob_core.tracer.to_dicts())
    agg.update(
        (k, agg_core[k]) for k in ("global_place.solve", "refine") if k in agg_core
    )
    return {
        "kind": BENCH_KIND,
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload_id(suite, scale),
        "suite": suite,
        "scale": scale,
        "seed": seed,
        "max_iterations": max_iterations,
        "features_scale": features_scale,
        "n_cells": len(netlist.cells),
        "n_datapath_dsps": len(dsps),
        "iterates": iterates,
        "core_protocol": {"net_model": "b2b", "refine_passes": 4, "refine_candidates": 16},
        "stages": {
            name: agg[name] for name in HOTPATH_STAGES if name in agg
        },
    }


def run_serve_throughput(
    suites: tuple[str, ...] = SERVE_SUITES,
    scale: float = 0.05,
    workers: int = 2,
    seed: int = 0,
    config: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Measure sustained placements/minute through the serve worker pool.

    Submits one cold job per suite (cache off — throughput means *placing*,
    not replaying) to a :class:`~repro.serve.PlacementServer` and times the
    whole batch under a ``serve.throughput`` span: submission, netlist
    materialization, worker scheduling, placement, result assembly. The
    gate gates end-to-end serving capacity, not any single placement.
    """
    from repro.placers.api import PlacementRequest
    from repro.serve import PlacementServer

    config = dict(config) if config is not None else {"outer_iterations": 1}
    with obs.observe() as ob:
        with obs.trace.span("serve.throughput", workers=workers, n_jobs=len(suites)):
            with PlacementServer(workers=workers) as server:
                jobs = [
                    server.submit(
                        PlacementRequest(
                            suite=suite,
                            scale=scale,
                            seed=seed,
                            config=config,
                            use_cache=False,
                        )
                    )
                    for suite in suites
                ]
                responses = [job.result() for job in jobs]

    n_ok = sum(r.ok for r in responses)
    agg = aggregate_spans(ob.tracer.to_dicts())
    wall_s = agg["serve.throughput"]["wall_s"]
    return {
        "kind": BENCH_KIND,
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": f"serve@{scale:g}",
        "suites": list(suites),
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "config": config,
        "n_jobs": len(suites),
        "n_ok": n_ok,
        "placements_per_minute": 60.0 * n_ok / wall_s if wall_s > 0 else 0.0,
        "stages": {"serve.throughput": agg["serve.throughput"]},
    }


def run_slot_fabric(
    suite: str = "skynet",
    scale: float = 0.05,
    seed: int = 0,
) -> dict[str, Any]:
    """Run the clock-aware slot-fabric workload and return the bench document.

    Exercises the two skew hot paths on the ``slot_fabric`` device: a
    slacks-enabled STA pass under :class:`~repro.clock.HTreeSkew` (per-sink
    H-tree arrivals on the endpoint/backward passes) and an end-to-end
    skew-weighted DSPlacer run (``skew_model="htree"``, ``skew_weight`` on,
    so the assignment cost matrix prices tap-arrival mismatch).
    """
    from repro.accelgen import generate_suite
    from repro.clock import get_skew_model
    from repro.core import DSPlacer, DSPlacerConfig
    from repro.fpga import slot_fabric
    from repro.placers import VivadoLikePlacer
    from repro.router.pattern_router import PatternRouter
    from repro.timing import StaticTimingAnalyzer

    dev = slot_fabric(scale)
    netlist = generate_suite(suite, scale=scale, device=dev, seed=0)
    place = VivadoLikePlacer(seed=0, device=dev).place(netlist)
    routing = PatternRouter().route(place)
    skew = get_skew_model("htree", dev)
    sta = StaticTimingAnalyzer(netlist, skew_model=skew)
    with obs.observe() as ob:
        sta.analyze(place, routing, with_slacks=True)
    # end-to-end skew-weighted place in its own block so DSPlacer's internal
    # STA calls cannot leak into the sta.analyze aggregate
    cfg = DSPlacerConfig(seed=seed, skew_model="htree", skew_weight=5.0)
    with obs.observe() as ob_place:
        DSPlacer(dev, cfg).place(netlist)

    agg = aggregate_spans(ob.tracer.to_dicts())
    agg_place = aggregate_spans(ob_place.tracer.to_dicts())
    if "place" in agg_place:
        agg["place"] = agg_place["place"]
    return {
        "kind": BENCH_KIND,
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": f"slot_fabric@{scale:g}",
        "suite": suite,
        "scale": scale,
        "seed": seed,
        "skew_model": "htree",
        "skew_weight": 5.0,
        "htree_depth": dev.clock_tree.config.depth,
        "n_cells": len(netlist.cells),
        "stages": {
            name: agg[name] for name in SLOT_FABRIC_GATED_STAGES if name in agg
        },
    }


#: absolute slack added on top of the relative band — a 25% band on a
#: millisecond-scale stage would gate pure scheduler jitter
ABS_SLACK_S = 0.005


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.25,
    stages: tuple[str, ...] = GATED_STAGES,
    abs_slack: float = ABS_SLACK_S,
) -> list[str]:
    """Regression check of a fresh run against the committed baseline.

    Returns a list of human-readable problems — empty means no stage's
    wall time exceeded ``baseline × (1 + threshold) + abs_slack``. A missing
    baseline workload is itself a problem (the gate must not silently pass).
    """
    problems: list[str] = []
    wid = current.get("workload", "?")
    base = baseline.get("workloads", {}).get(wid)
    if base is None:
        return [
            f"no baseline entry for workload {wid!r} — refresh with "
            f"`python -m repro.obs.bench --suite {current.get('suite')} "
            f"--scale {current.get('scale')} --baseline BENCH_hotpaths.json --update`"
        ]
    for name in stages:
        cur = current.get("stages", {}).get(name)
        ref = base.get("stages", {}).get(name)
        if cur is None or ref is None:
            problems.append(f"{wid}: stage {name!r} missing from current/baseline run")
            continue
        limit = ref["wall_s"] * (1.0 + threshold) + abs_slack
        if cur["wall_s"] > limit:
            problems.append(
                f"{wid}: {name} regressed — {cur['wall_s']:.4f}s vs baseline "
                f"{ref['wall_s']:.4f}s (> {threshold:.0%} slower)"
            )
    return problems


def update_baseline(baseline: dict[str, Any] | None, doc: dict[str, Any]) -> dict[str, Any]:
    """Insert/replace ``doc``'s workload in a baseline document.

    Preserves an existing workload's ``reference`` block (the historical
    pre-optimization measurements) across refreshes.
    """
    out = dict(baseline or {})
    out.setdefault("kind", BENCH_KIND)
    out.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    workloads = dict(out.get("workloads", {}))
    entry = {k: v for k, v in doc.items() if k not in ("kind", "schema_version")}
    old = workloads.get(doc["workload"])
    if old is not None and "reference" in old:
        entry["reference"] = old["reference"]
    workloads[doc["workload"]] = entry
    out["workloads"] = workloads
    return out


def _main(argv: list[str] | None = None) -> int:
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="run the hot-path benchmark and gate against a baseline",
    )
    parser.add_argument("--suite", default="skynet")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default 0.25 for hot paths, 0.05 for --serve)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--features-scale", type=float, default=0.01)
    parser.add_argument("--out", help="write the fresh run document here")
    parser.add_argument("--baseline", help="baseline JSON to compare against")
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        help="fail when a gated stage is this fraction slower than baseline",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with this run instead of gating against it",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the serve-throughput benchmark (five Table I suites through "
        "the worker pool) instead of the hot-path kernels",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker pool size for --serve"
    )
    parser.add_argument(
        "--slot-fabric",
        action="store_true",
        help="run the clock-aware slot-fabric workload (H-tree skew STA + "
        "skew-weighted place) instead of the hot-path kernels",
    )
    args = parser.parse_args(argv)

    if args.scale is None:
        args.scale = 0.05 if (args.serve or args.slot_fabric) else 0.25
    if args.serve:
        doc = run_serve_throughput(scale=args.scale, workers=args.workers, seed=args.seed)
        gated = SERVE_GATED_STAGES
        print(f"placements/minute: {doc['placements_per_minute']:.2f} ({doc['n_ok']}/{doc['n_jobs']} ok)")
    elif args.slot_fabric:
        doc = run_slot_fabric(suite=args.suite, scale=args.scale, seed=args.seed)
        gated = SLOT_FABRIC_GATED_STAGES
    else:
        doc = run_hotpaths(
            suite=args.suite,
            scale=args.scale,
            seed=args.seed,
            max_iterations=args.iterations,
            features_scale=args.features_scale,
        )
        gated = GATED_STAGES
    print(json.dumps(doc["stages"], indent=2, sort_keys=True))
    if args.out:
        pathlib.Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        pathlib.Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    if not args.baseline:
        return 0
    path = pathlib.Path(args.baseline)
    if args.update:
        baseline = json.loads(path.read_text()) if path.exists() else None
        path.write_text(json.dumps(update_baseline(baseline, doc), indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {path}")
        return 0
    if not path.exists():
        print(f"baseline {path} not found")
        return 1
    problems = compare(
        doc, json.loads(path.read_text()), threshold=args.fail_threshold, stages=gated
    )
    for p in problems:
        print(f"REGRESSION: {p}")
    if not problems:
        print(f"ok: within {args.fail_threshold:.0%} of baseline for {doc['workload']}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
