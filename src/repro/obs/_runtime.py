"""Process-local observation stack.

One module-level stack so instrumentation in the flow (``trace.span``,
``metrics.inc``) can find the innermost active
:class:`~repro.obs.Observation` without threading it through every call
signature. When the stack is empty every hook is a no-op — the disabled
fast path is a single truthiness check on this list.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observation

_STACK: list["Observation"] = []


def active() -> Optional["Observation"]:
    """The innermost active observation, or ``None`` when disabled."""
    return _STACK[-1] if _STACK else None


def push(ob: "Observation") -> None:
    _STACK.append(ob)


def pop(ob: "Observation") -> None:
    if not _STACK or _STACK[-1] is not ob:
        raise RuntimeError("observation stack corrupted: pop out of order")
    _STACK.pop()
