"""The versioned RunReport schema: one machine-readable run artifact.

A :class:`RunReport` is the stable, serializable surface every flow run can
emit (``python -m repro place ... --json``) and every consumer (benchmark
harness, CI, dashboards) can parse without knowing pipeline internals:

```
{
  "kind": "repro.run_report",
  "schema_version": 2,
  "meta":    {"tool": "dsplacer", "suite": "skynet", ...},
  "spans":   [{"name": "place", "wall_s": ..., "cpu_s": ..., "children": [...]}],
  "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
  "health":  {"degraded": false, "events": [{"stage","kind","detail"}]},
  "quality": {"legal": true, "hpwl_um": ..., ...},
  "job":     {"id": "...", "submitted_unix": ..., "started_unix": ...,
              "finished_unix": ..., "cache": "hit|miss|bypass",
              "race": {"k": 3, "policy": "best", "winner_seed": 1,
                       "attempts": [...], "cancelled": 0}},
  "clock":   {"model": "htree", "htree": {...}, "n_sinks": 1234,
              "worst_skew_ns": ..., "mean_abs_skew_ns": ...}
}
```

Schema v2 added the optional ``job`` section the serve layer
(:mod:`repro.serve`) stamps on every response: job identity, queue
timestamps, the cache verdict, and the portfolio-race outcome. v1 documents
(no ``job``) remain valid; a ``job`` section requires ``schema_version >= 2``.

Schema v3 (this release) adds the optional ``clock`` section
(:func:`repro.clock.clock_report_section`): the skew-model configuration
plus worst/mean skew over the run's sequential sinks. Runs with the default
region-skew model omit it; a ``clock`` section requires
``schema_version >= 3``.

:func:`validate_report` is the schema checker (no external jsonschema
dependency); ``python -m repro.obs.report FILE...`` validates saved reports
and exits non-zero on the first violation — CI uses exactly that.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ReportSchemaError

__all__ = [
    "SCHEMA_VERSION",
    "REPORT_KIND",
    "JOB_CACHE_STATES",
    "RunReport",
    "validate_report",
    "aggregate_spans",
    "render_trace",
]

SCHEMA_VERSION = 3
REPORT_KIND = "repro.run_report"

#: cache verdicts a ``job`` section may carry
JOB_CACHE_STATES = ("hit", "miss", "bypass")

_EMPTY_METRICS = lambda: {"counters": {}, "gauges": {}, "histograms": {}}  # noqa: E731
_EMPTY_HEALTH = lambda: {"degraded": False, "events": []}  # noqa: E731


@dataclass
class RunReport:
    """One run's observability artifact (spans + metrics + health + quality)."""

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=_EMPTY_METRICS)
    health: dict[str, Any] = field(default_factory=_EMPTY_HEALTH)
    quality: dict[str, Any] = field(default_factory=dict)
    #: serve-layer job identity/timestamps/cache/race (schema v2; optional)
    job: dict[str, Any] | None = None
    #: clock-model config + worst/mean skew (schema v3; optional)
    clock: dict[str, Any] | None = None
    schema_version: int = SCHEMA_VERSION

    # -- construction ---------------------------------------------------
    @classmethod
    def from_observation(
        cls,
        ob,
        meta: dict[str, Any] | None = None,
        health: dict[str, Any] | None = None,
        quality: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Snapshot an :class:`~repro.obs.Observation` into a report."""
        return cls(
            meta=dict(meta or {}),
            spans=ob.tracer.to_dicts(),
            metrics=ob.metrics.to_dict(),
            health=dict(health) if health is not None else _EMPTY_HEALTH(),
            quality=dict(quality or {}),
        )

    @classmethod
    def from_dict(cls, doc: dict[str, Any], strict: bool = True) -> "RunReport":
        """Parse a report document; ``strict`` validates the schema first."""
        if strict:
            problems = validate_report(doc)
            if problems:
                raise ReportSchemaError(
                    f"invalid RunReport ({len(problems)} problem(s)):\n"
                    + "\n".join(f"  - {p}" for p in problems)
                )
        job = doc.get("job")
        clock = doc.get("clock")
        return cls(
            meta=dict(doc.get("meta", {})),
            spans=list(doc.get("spans", [])),
            metrics=dict(doc.get("metrics", _EMPTY_METRICS())),
            health=dict(doc.get("health", _EMPTY_HEALTH())),
            quality=dict(doc.get("quality", {})),
            job=dict(job) if job is not None else None,
            clock=dict(clock) if clock is not None else None,
            schema_version=int(doc.get("schema_version", SCHEMA_VERSION)),
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        doc = {
            "kind": REPORT_KIND,
            "schema_version": self.schema_version,
            "meta": self.meta,
            "spans": self.spans,
            "metrics": self.metrics,
            "health": self.health,
            "quality": self.quality,
        }
        if self.job is not None:
            doc["job"] = self.job
        if self.clock is not None:
            doc["clock"] = self.clock
        return doc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- queries --------------------------------------------------------
    def iter_spans(self) -> Iterator[dict[str, Any]]:
        """Depth-first over every span document in the report."""
        stack = list(self.spans)
        while stack:
            sp = stack.pop()
            yield sp
            stack.extend(sp.get("children", ()))

    def span_names(self) -> set[str]:
        return {sp["name"] for sp in self.iter_spans()}

    def metric_names(self) -> set[str]:
        m = self.metrics
        return (
            set(m.get("counters", ()))
            | set(m.get("gauges", ()))
            | set(m.get("histograms", ()))
        )

    def stage_seconds(self) -> dict[str, float]:
        """Total wall seconds per span name, over the whole trace forest."""
        return {name: agg["wall_s"] for name, agg in aggregate_spans(self.spans).items()}


# ----------------------------------------------------------------------
# schema validation (hand-rolled; no jsonschema dependency)
# ----------------------------------------------------------------------
def _is_num(v: Any) -> bool:
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def _check_span(sp: Any, path: str, problems: list[str], depth: int = 0) -> None:
    if depth > 64:
        problems.append(f"{path}: span nesting deeper than 64 levels")
        return
    if not isinstance(sp, dict):
        problems.append(f"{path}: span must be an object, got {type(sp).__name__}")
        return
    name = sp.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: span needs a non-empty string 'name'")
    for key in ("wall_s", "cpu_s"):
        v = sp.get(key)
        if not _is_num(v) or v < 0:
            problems.append(f"{path}: span {name!r} needs a non-negative number {key!r}")
    attrs = sp.get("attrs", {})
    if not isinstance(attrs, dict):
        problems.append(f"{path}: span {name!r} attrs must be an object")
    counters = sp.get("counters", {})
    if not isinstance(counters, dict) or any(
        not _is_num(v) for v in counters.values()
    ):
        problems.append(f"{path}: span {name!r} counters must map names to numbers")
    children = sp.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: span {name!r} children must be a list")
        return
    for i, child in enumerate(children):
        _check_span(child, f"{path}.children[{i}]", problems, depth + 1)


def _check_job(job: Any, version: Any, problems: list[str]) -> None:
    """Validate the schema-v2 ``job`` section (optional; serve-layer runs)."""
    if not isinstance(job, dict):
        problems.append(f"job must be an object, got {type(job).__name__}")
        return
    if isinstance(version, int) and version < 2:
        problems.append("job section requires schema_version >= 2")
    if not isinstance(job.get("id"), str) or not job.get("id"):
        problems.append("job.id must be a non-empty string")
    cache = job.get("cache")
    if cache not in JOB_CACHE_STATES:
        problems.append(f"job.cache must be one of {JOB_CACHE_STATES}, got {cache!r}")
    for key in ("submitted_unix", "started_unix", "finished_unix"):
        v = job.get(key)
        if v is not None and not _is_num(v):
            problems.append(f"job.{key} must be a number or null")
    race = job.get("race")
    if race is None:
        return
    if not isinstance(race, dict):
        problems.append("job.race must be an object")
        return
    k = race.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        problems.append("job.race.k must be a positive integer")
    if not isinstance(race.get("policy"), str):
        problems.append("job.race.policy must be a string")
    attempts = race.get("attempts", [])
    if not isinstance(attempts, list):
        problems.append("job.race.attempts must be a list")
    else:
        for i, a in enumerate(attempts):
            if not isinstance(a, dict) or not isinstance(a.get("status"), str):
                problems.append(f"job.race.attempts[{i}] needs a string 'status'")
    cancelled = race.get("cancelled", 0)
    if not isinstance(cancelled, int) or isinstance(cancelled, bool) or cancelled < 0:
        problems.append("job.race.cancelled must be a non-negative integer")


def _check_clock(clock: Any, version: Any, problems: list[str]) -> None:
    """Validate the schema-v3 ``clock`` section (optional)."""
    if not isinstance(clock, dict):
        problems.append(f"clock must be an object, got {type(clock).__name__}")
        return
    if isinstance(version, int) and version < 3:
        problems.append("clock section requires schema_version >= 3")
    model = clock.get("model")
    if not isinstance(model, str) or not model:
        problems.append("clock.model must be a non-empty string")
    for key in ("n_sinks",):
        v = clock.get(key)
        if v is not None and (not isinstance(v, int) or isinstance(v, bool) or v < 0):
            problems.append(f"clock.{key} must be a non-negative integer or absent")
    for key in ("worst_skew_ns", "mean_abs_skew_ns", "skew_per_region_ns"):
        v = clock.get(key)
        if v is not None and not _is_num(v):
            problems.append(f"clock.{key} must be a number or absent")
    htree = clock.get("htree")
    if htree is not None and not isinstance(htree, dict):
        problems.append("clock.htree must be an object or absent")


def validate_report(doc: Any) -> list[str]:
    """Check a report document against the schema; returns problems found."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    if doc.get("kind") != REPORT_KIND:
        problems.append(f"kind must be {REPORT_KIND!r}, got {doc.get('kind')!r}")
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append("schema_version must be an integer")
    elif not 1 <= version <= SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} outside supported range 1..{SCHEMA_VERSION}"
        )
    for key in ("meta", "quality"):
        if not isinstance(doc.get(key, {}), dict):
            problems.append(f"{key} must be an object")

    spans = doc.get("spans", [])
    if not isinstance(spans, list):
        problems.append("spans must be a list")
    else:
        for i, sp in enumerate(spans):
            _check_span(sp, f"spans[{i}]", problems)

    metrics = doc.get("metrics", {})
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for family in ("counters", "gauges"):
            fam = metrics.get(family, {})
            if not isinstance(fam, dict) or any(not _is_num(v) for v in fam.values()):
                problems.append(f"metrics.{family} must map names to numbers")
        hists = metrics.get("histograms", {})
        if not isinstance(hists, dict):
            problems.append("metrics.histograms must be an object")
        else:
            for name, h in hists.items():
                if not isinstance(h, dict) or not all(
                    _is_num(h.get(k)) for k in ("count", "sum", "min", "max", "mean")
                ):
                    problems.append(
                        f"metrics.histograms[{name!r}] needs numeric "
                        "count/sum/min/max/mean"
                    )

    health = doc.get("health", {})
    if not isinstance(health, dict):
        problems.append("health must be an object")
    else:
        if not isinstance(health.get("degraded", False), bool):
            problems.append("health.degraded must be a boolean")
        events = health.get("events", [])
        if not isinstance(events, list):
            problems.append("health.events must be a list")
        else:
            for i, e in enumerate(events):
                if not isinstance(e, dict) or not all(
                    isinstance(e.get(k), str) for k in ("stage", "kind", "detail")
                ):
                    problems.append(
                        f"health.events[{i}] needs string stage/kind/detail"
                    )

    if "job" in doc:
        _check_job(doc["job"], version, problems)
    if "clock" in doc:
        _check_clock(doc["clock"], version, problems)
    return problems


# ----------------------------------------------------------------------
# aggregation + rendering helpers
# ----------------------------------------------------------------------
def aggregate_spans(spans: list[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """Fold a span forest into per-name totals.

    Returns ``{name: {"wall_s", "cpu_s", "count"}}`` over every span at any
    depth — the stage-breakdown view the benchmark harness persists.
    """
    agg: dict[str, dict[str, float]] = {}
    stack = list(spans)
    while stack:
        sp = stack.pop()
        row = agg.setdefault(sp["name"], {"wall_s": 0.0, "cpu_s": 0.0, "count": 0})
        row["wall_s"] += float(sp.get("wall_s", 0.0))
        row["cpu_s"] += float(sp.get("cpu_s", 0.0))
        row["count"] += 1
        stack.extend(sp.get("children", ()))
    return agg


def render_trace(spans: list[dict[str, Any]], indent: int = 0) -> str:
    """Human-readable span tree (the CLI's ``--trace`` output)."""
    lines: list[str] = []
    for sp in spans:
        pad = "  " * indent
        extras = ""
        attrs = sp.get("attrs")
        if attrs:
            extras = "  " + " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"{pad}{sp['name']:<{max(36 - 2 * indent, 8)}} "
            f"wall {sp['wall_s']:8.4f}s  cpu {sp['cpu_s']:8.4f}s{extras}"
        )
        children = sp.get("children")
        if children:
            lines.append(render_trace(children, indent + 1))
    return "\n".join(lines)


def _main(argv: list[str] | None = None) -> int:
    """Validate saved RunReport files (CI entry point)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="validate RunReport JSON files against the schema",
    )
    parser.add_argument("paths", nargs="+", help="RunReport JSON file(s)")
    args = parser.parse_args(argv)
    rc = 0
    for path in args.paths:
        try:
            doc = json.loads(open(path).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}")
            rc = 1
            continue
        problems = validate_report(doc)
        if problems:
            print(f"{path}: INVALID")
            for p in problems:
                print(f"  - {p}")
            rc = 1
        else:
            print(f"{path}: ok (schema v{doc['schema_version']})")
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
