"""Pre-implementation netlist substrate.

Models the post-synthesis, pre-placement netlist the paper takes as input:
heterogeneous cells (LUT, LUTRAM, FF, CARRY, DSP, BRAM, IO, PS), multi-pin
nets, and DSP cascade macros (chains that must occupy consecutive sites in
one device DSP column).
"""

from repro.netlist.cell import Cell, CellType
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist, NetlistStats
from repro.netlist.macros import CascadeMacro
from repro.netlist.csr import NetlistCSR, build_csr, get_csr
from repro.netlist.graph import (
    netlist_to_digraph,
    netlist_to_graph,
    connectivity_matrix,
)
from repro.netlist.io import netlist_to_json, netlist_from_json, save_netlist, load_netlist
from repro.netlist.validate import netlist_problems, validate_netlist
from repro.netlist.verilog import netlist_to_verilog, save_verilog

__all__ = [
    "Cell",
    "CellType",
    "Net",
    "Netlist",
    "NetlistStats",
    "CascadeMacro",
    "NetlistCSR",
    "build_csr",
    "get_csr",
    "netlist_to_digraph",
    "netlist_to_graph",
    "connectivity_matrix",
    "netlist_to_json",
    "netlist_from_json",
    "save_netlist",
    "load_netlist",
    "netlist_problems",
    "validate_netlist",
    "netlist_to_verilog",
    "save_verilog",
]
