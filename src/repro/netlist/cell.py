"""Cell model: one placeable (or fixed) component of a pre-implementation netlist."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CellType(enum.Enum):
    """Heterogeneous component kinds found after logic synthesis.

    Mirrors the component taxonomy in the paper's Section I: LUTs, FFs,
    DSPs, RAMs and I/O pads, plus the fixed processing system (PS) block
    and carry chains that CNN adder trees synthesize into.
    """

    LUT = "LUT"
    LUTRAM = "LUTRAM"
    FF = "FF"
    CARRY = "CARRY"
    DSP = "DSP"
    BRAM = "BRAM"
    IO = "IO"
    PS = "PS"

    @property
    def is_dsp(self) -> bool:
        return self is CellType.DSP

    @property
    def is_storage(self) -> bool:
        """Storage elements (signal-holding cells, per Section III-B).

        The paper observes control-path DSPs are surrounded by more storage
        elements (flip-flops and RAMs) than datapath DSPs.
        """
        return self in (CellType.FF, CellType.BRAM, CellType.LUTRAM)

    @property
    def is_fixed(self) -> bool:
        """Cell kinds whose locations are fixed by the device, not the placer."""
        return self in (CellType.IO, CellType.PS)

    @property
    def site_kind(self) -> str:
        """The device site family this cell occupies."""
        if self is CellType.DSP:
            return "DSP"
        if self is CellType.BRAM:
            return "BRAM"
        if self in (CellType.IO, CellType.PS):
            return "FIXED"
        return "CLB"


@dataclass
class Cell:
    """A netlist component.

    Attributes:
        index: Dense integer id, assigned by :class:`~repro.netlist.Netlist`.
        name: Unique hierarchical instance name.
        ctype: Component kind.
        macro_id: Id of the DSP cascade macro this cell belongs to (DSPs
            only), or ``None``.
        is_datapath: Ground-truth datapath label emitted by the benchmark
            generator (used for GCN training and oracle ablations); ``None``
            when unknown.
        fixed_xy: ``(x, y)`` in µm for device-fixed cells (IO pads, PS).
        attrs: Free-form generator metadata (layer name, PE coordinates, ...).
    """

    index: int
    name: str
    ctype: CellType
    macro_id: int | None = None
    is_datapath: bool | None = None
    fixed_xy: tuple[float, float] | None = None
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ctype.is_fixed and self.fixed_xy is None:
            raise ValueError(
                f"cell {self.name!r} of fixed kind {self.ctype.value} needs fixed_xy"
            )
        if self.macro_id is not None and not self.ctype.is_dsp:
            raise ValueError(f"cell {self.name!r}: only DSP cells join cascade macros")

    @property
    def is_fixed(self) -> bool:
        return self.fixed_xy is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.index}, {self.name!r}, {self.ctype.value})"
