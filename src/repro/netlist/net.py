"""Net model: a driver-to-sinks connection between cells."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Net:
    """A signal net.

    Attributes:
        index: Dense integer id assigned by the owning netlist.
        name: Unique net name.
        driver: Cell index of the (single) driving cell.
        sinks: Cell indices of the driven cells (possibly repeated pins are
            collapsed; a cell appears at most once).
        weight: Net criticality weight used by timing-driven placement.
    """

    index: int
    name: str
    driver: int
    sinks: tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name!r} has no sinks")
        if self.driver in self.sinks:
            raise ValueError(f"net {self.name!r} drives itself")
        if len(set(self.sinks)) != len(self.sinks):
            raise ValueError(f"net {self.name!r} has duplicate sinks")
        if self.weight <= 0:
            raise ValueError(f"net {self.name!r} has non-positive weight")

    @property
    def cells(self) -> tuple[int, ...]:
        """All cell indices on the net (driver first)."""
        return (self.driver, *self.sinks)

    @property
    def degree(self) -> int:
        """Pin count of the net."""
        return 1 + len(self.sinks)
