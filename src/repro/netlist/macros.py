"""DSP cascade macros.

A cascade macro is a chain of DSP48 blocks wired through the dedicated
PCOUT→PCIN (and ACOUT→ACIN) cascade ports. The device only provides those
ports between *vertically adjacent* DSP sites of the same column, which is
exactly the paper's cascade constraint (eq. 5): cascaded pairs must land on
consecutive site indices within one column.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CascadeMacro:
    """An ordered DSP cascade chain.

    ``dsps[0]`` is the head (bottom of the column once placed); each
    ``(dsps[k], dsps[k+1])`` pair is a (predecessor, successor) element of
    the cascade set C in the paper's eq. (5).
    """

    macro_id: int
    dsps: tuple[int, ...]

    def validate(self) -> None:
        if len(self.dsps) < 2:
            raise ValueError(f"macro {self.macro_id} has fewer than 2 DSPs")
        if len(set(self.dsps)) != len(self.dsps):
            raise ValueError(f"macro {self.macro_id} repeats a DSP")

    def __len__(self) -> int:
        return len(self.dsps)

    def pairs(self) -> list[tuple[int, int]]:
        """(predecessor, successor) pairs along the chain."""
        return list(zip(self.dsps, self.dsps[1:]))
