"""The :class:`Netlist` container: cells + nets + cascade macros."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import NetlistValidationError
from repro.netlist.cell import Cell, CellType
from repro.netlist.macros import CascadeMacro
from repro.netlist.net import Net


@dataclass(frozen=True)
class NetlistStats:
    """Resource summary in the shape of the paper's Table I."""

    name: str
    n_lut: int
    n_lutram: int
    n_ff: int
    n_carry: int
    n_bram: int
    n_dsp: int
    n_io: int
    n_nets: int
    dsp_capacity: int | None = None
    target_freq_mhz: float | None = None

    @property
    def n_cells(self) -> int:
        return (
            self.n_lut
            + self.n_lutram
            + self.n_ff
            + self.n_carry
            + self.n_bram
            + self.n_dsp
            + self.n_io
        )

    @property
    def dsp_pct(self) -> float | None:
        """DSP utilisation against the device capacity (Table I "DSP%")."""
        if not self.dsp_capacity:
            return None
        return self.n_dsp / self.dsp_capacity


class Netlist:
    """A pre-implementation netlist.

    Cells and nets are stored densely and referenced by integer index.
    Construction is append-only: build with :meth:`add_cell` / :meth:`add_net`
    / :meth:`add_macro`, then :meth:`validate`.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.cells: list[Cell] = []
        self.nets: list[Net] = []
        self.macros: list[CascadeMacro] = []
        self._cell_names: dict[str, int] = {}
        self.target_freq_mhz: float | None = None
        #: structural revision counter; bumped by add_cell/add_net/add_macro so
        #: derived caches (repro.netlist.csr.NetlistCSR) know when to rebuild
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cell(
        self,
        name: str,
        ctype: CellType,
        *,
        is_datapath: bool | None = None,
        fixed_xy: tuple[float, float] | None = None,
        attrs: dict | None = None,
    ) -> int:
        """Append a cell and return its index."""
        if name in self._cell_names:
            raise ValueError(f"duplicate cell name {name!r}")
        index = len(self.cells)
        cell = Cell(
            index=index,
            name=name,
            ctype=ctype,
            is_datapath=is_datapath,
            fixed_xy=fixed_xy,
            attrs=attrs or {},
        )
        self.cells.append(cell)
        self._cell_names[name] = index
        self._version += 1
        return index

    def add_net(self, name: str, driver: int, sinks: Iterable[int], weight: float = 1.0) -> int:
        """Append a net and return its index; duplicate sinks are collapsed."""
        unique_sinks = tuple(dict.fromkeys(int(s) for s in sinks if s != driver))
        if not unique_sinks:
            raise ValueError(f"net {name!r} has no sinks distinct from its driver")
        for idx in (driver, *unique_sinks):
            if not 0 <= idx < len(self.cells):
                raise IndexError(f"net {name!r} references unknown cell index {idx}")
        index = len(self.nets)
        self.nets.append(Net(index=index, name=name, driver=driver, sinks=unique_sinks, weight=weight))
        self._version += 1
        return index

    def add_macro(self, dsp_indices: Iterable[int]) -> int:
        """Register a DSP cascade macro over already-added DSP cells."""
        chain = tuple(int(i) for i in dsp_indices)
        macro_id = len(self.macros)
        for idx in chain:
            cell = self.cells[idx]
            if not cell.ctype.is_dsp:
                raise ValueError(f"macro member {cell.name!r} is not a DSP")
            if cell.macro_id is not None:
                raise ValueError(f"DSP {cell.name!r} already belongs to macro {cell.macro_id}")
            cell.macro_id = macro_id
        self.macros.append(CascadeMacro(macro_id=macro_id, dsps=chain))
        self._version += 1
        return macro_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def cell_by_name(self, name: str) -> Cell:
        return self.cells[self._cell_names[name]]

    def cells_of_type(self, ctype: CellType) -> list[Cell]:
        return [c for c in self.cells if c.ctype is ctype]

    def dsp_indices(self) -> list[int]:
        return [c.index for c in self.cells if c.ctype.is_dsp]

    def movable_indices(self) -> list[int]:
        return [c.index for c in self.cells if not c.is_fixed]

    def cascade_pairs(self) -> list[tuple[int, int]]:
        """All (predecessor, successor) cascaded DSP pairs across macros (set C in eq. 5)."""
        pairs: list[tuple[int, int]] = []
        for macro in self.macros:
            pairs.extend(macro.pairs())
        return pairs

    def nets_of_cell(self) -> list[list[int]]:
        """Per-cell list of incident net indices."""
        incident: list[list[int]] = [[] for _ in self.cells]
        for net in self.nets:
            for idx in net.cells:
                incident[idx].append(net.index)
        return incident

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Directed driver→sink edges with net weights (fanout-normalised)."""
        for net in self.nets:
            w = net.weight / len(net.sinks)
            for sink in net.sinks:
                yield net.driver, sink, w

    # ------------------------------------------------------------------
    # validation and stats
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistValidationError`
        (a ``ValueError`` subclass) on the first violation. For a full list
        of problems plus device cross-checks, see
        :func:`repro.netlist.validate.netlist_problems`."""
        seen_macro_members: set[int] = set()
        for macro in self.macros:
            macro.validate()
            for idx in macro.dsps:
                if idx in seen_macro_members:
                    raise NetlistValidationError(f"DSP index {idx} appears in two macros")
                seen_macro_members.add(idx)
                if self.cells[idx].macro_id != macro.macro_id:
                    raise NetlistValidationError(f"cell {idx} macro_id out of sync")
        for net in self.nets:
            for idx in net.cells:
                if not 0 <= idx < len(self.cells):
                    raise NetlistValidationError(
                        f"net {net.name!r} references unknown cell {idx}"
                    )
        if len(self._cell_names) != len(self.cells):
            raise NetlistValidationError("cell name map out of sync")

    def stats(self, dsp_capacity: int | None = None) -> NetlistStats:
        counts = Counter(c.ctype for c in self.cells)
        return NetlistStats(
            name=self.name,
            n_lut=counts[CellType.LUT],
            n_lutram=counts[CellType.LUTRAM],
            n_ff=counts[CellType.FF],
            n_carry=counts[CellType.CARRY],
            n_bram=counts[CellType.BRAM],
            n_dsp=counts[CellType.DSP],
            n_io=counts[CellType.IO] + counts[CellType.PS],
            n_nets=len(self.nets),
            dsp_capacity=dsp_capacity,
            target_freq_mhz=self.target_freq_mhz,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Netlist({self.name!r}, cells={len(self.cells)}, nets={len(self.nets)})"
