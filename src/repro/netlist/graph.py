"""Graph views of a netlist (paper Fig. 3(a)→3(b)).

The paper represents the pre-implementation netlist as a graph G = (V, E)
with components as nodes and connections as edges. We provide a directed
view (driver→sink, used for in/out-degree and feedback-loop features) and an
undirected view (used for centralities and shortest paths), plus a sparse
connectivity matrix for the analytical placers.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist


def netlist_to_digraph(netlist: Netlist) -> nx.DiGraph:
    """Directed driver→sink multigraph collapsed to a weighted DiGraph.

    Parallel connections accumulate in the edge ``weight``. Node ids are cell
    indices; each node carries its ``ctype``.
    """
    g = nx.DiGraph()
    for cell in netlist.cells:
        g.add_node(cell.index, ctype=cell.ctype, name=cell.name)
    for u, v, w in netlist.iter_edges():
        if g.has_edge(u, v):
            g[u][v]["weight"] += w
        else:
            g.add_edge(u, v, weight=w)
    return g


def netlist_to_graph(netlist: Netlist) -> nx.Graph:
    """Undirected weighted graph view (centralities, shortest paths)."""
    return netlist_to_digraph(netlist).to_undirected(reciprocal=False)


def connectivity_matrix(
    netlist: Netlist, max_clique_degree: int = 32, use_net_weights: bool = True
) -> sp.csr_matrix:
    """Symmetric cell-to-cell connection-weight matrix.

    Each net of degree *d* contributes clique edges with weight
    ``w / (d - 1)`` (the standard clique net model). Nets wider than
    ``max_clique_degree`` contribute a star through their driver instead, to
    keep the matrix sparse on high-fanout control nets.

    ``use_net_weights=False`` ignores per-net criticality weights — the
    wirelength-only view a timing-blind placer optimizes.

    The net topology arrays come from the shared
    :class:`~repro.netlist.csr.NetlistCSR` context; per-net weights are read
    fresh on every call because the timing-driven placers rescale them in
    place between iterations. Clique nets are expanded degree-group by
    degree-group through one ``np.triu_indices`` batch each; star nets are
    two concatenated index gathers.
    """
    ctx = get_csr(netlist)
    n = ctx.n
    n_nets = len(netlist.nets)
    if n_nets == 0:
        return sp.csr_matrix((n, n), dtype=np.float64)
    degree = ctx.net_nsinks + 1  # pins per net (driver + sinks)
    if use_net_weights:
        weight = np.fromiter(
            (net.weight for net in netlist.nets), dtype=np.float64, count=n_nets
        )
    else:
        weight = np.ones(n_nets)
    w_net = weight / np.maximum(degree - 1, 1)

    row_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []

    # star model for wide nets: driver↔sink pairs in one gather
    wide = degree > max_clique_degree
    if wide.any():
        sel = wide[ctx.sink_net]
        row_parts.append(ctx.edge_src[sel])
        col_parts.append(ctx.sink_flat[sel])
        val_parts.append(w_net[ctx.sink_net][sel])

    # clique model for small nets, batched per distinct degree so the pin
    # lists stack into rectangular matrices
    small = ~wide
    for d in np.unique(degree[small]):
        nets_d = np.flatnonzero(small & (degree == d))
        starts = ctx.sink_indptr[nets_d]
        pins = np.empty((nets_d.size, d), dtype=np.int64)
        pins[:, 0] = ctx.net_driver[nets_d]
        pins[:, 1:] = ctx.sink_flat[starts[:, None] + np.arange(d - 1)]
        iu, ju = np.triu_indices(d, k=1)
        row_parts.append(pins[:, iu].ravel())
        col_parts.append(pins[:, ju].ravel())
        val_parts.append(np.repeat(w_net[nets_d], iu.size))

    rows = np.concatenate(row_parts) if row_parts else np.empty(0, dtype=np.int64)
    cols = np.concatenate(col_parts) if col_parts else np.empty(0, dtype=np.int64)
    vals = np.concatenate(val_parts) if val_parts else np.empty(0)
    mat = sp.coo_matrix(
        (np.concatenate([vals, vals]), (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(n, n),
        dtype=np.float64,
    )
    return mat.tocsr()


def _connectivity_matrix_loop(
    netlist: Netlist, max_clique_degree: int = 32, use_net_weights: bool = True
) -> sp.csr_matrix:
    """Per-net Python-loop reference for :func:`connectivity_matrix` (tests)."""
    n = len(netlist.cells)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def _connect(a: int, b: int, w: float) -> None:
        rows.append(a)
        cols.append(b)
        vals.append(w)
        rows.append(b)
        cols.append(a)
        vals.append(w)

    for net in netlist.nets:
        pins = net.cells
        d = len(pins)
        if d < 2:
            continue
        w = (net.weight if use_net_weights else 1.0) / (d - 1)
        if d <= max_clique_degree:
            for i in range(d):
                for j in range(i + 1, d):
                    _connect(pins[i], pins[j], w)
        else:
            for sink in net.sinks:
                _connect(net.driver, sink, w)

    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.float64)
    return mat.tocsr()
