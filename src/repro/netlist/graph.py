"""Graph views of a netlist (paper Fig. 3(a)→3(b)).

The paper represents the pre-implementation netlist as a graph G = (V, E)
with components as nodes and connections as edges. We provide a directed
view (driver→sink, used for in/out-degree and feedback-loop features) and an
undirected view (used for centralities and shortest paths), plus a sparse
connectivity matrix for the analytical placers.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.netlist.netlist import Netlist


def netlist_to_digraph(netlist: Netlist) -> nx.DiGraph:
    """Directed driver→sink multigraph collapsed to a weighted DiGraph.

    Parallel connections accumulate in the edge ``weight``. Node ids are cell
    indices; each node carries its ``ctype``.
    """
    g = nx.DiGraph()
    for cell in netlist.cells:
        g.add_node(cell.index, ctype=cell.ctype, name=cell.name)
    for u, v, w in netlist.iter_edges():
        if g.has_edge(u, v):
            g[u][v]["weight"] += w
        else:
            g.add_edge(u, v, weight=w)
    return g


def netlist_to_graph(netlist: Netlist) -> nx.Graph:
    """Undirected weighted graph view (centralities, shortest paths)."""
    return netlist_to_digraph(netlist).to_undirected(reciprocal=False)


def connectivity_matrix(
    netlist: Netlist, max_clique_degree: int = 32, use_net_weights: bool = True
) -> sp.csr_matrix:
    """Symmetric cell-to-cell connection-weight matrix.

    Each net of degree *d* contributes clique edges with weight
    ``w / (d - 1)`` (the standard clique net model). Nets wider than
    ``max_clique_degree`` contribute a star through their driver instead, to
    keep the matrix sparse on high-fanout control nets.

    ``use_net_weights=False`` ignores per-net criticality weights — the
    wirelength-only view a timing-blind placer optimizes.
    """
    n = len(netlist.cells)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def _connect(a: int, b: int, w: float) -> None:
        rows.append(a)
        cols.append(b)
        vals.append(w)
        rows.append(b)
        cols.append(a)
        vals.append(w)

    for net in netlist.nets:
        pins = net.cells
        d = len(pins)
        if d < 2:
            continue
        w = (net.weight if use_net_weights else 1.0) / (d - 1)
        if d <= max_clique_degree:
            for i in range(d):
                for j in range(i + 1, d):
                    _connect(pins[i], pins[j], w)
        else:
            for sink in net.sinks:
                _connect(net.driver, sink, w)

    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.float64)
    return mat.tocsr()
