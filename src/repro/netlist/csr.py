"""Shared CSR graph context for a netlist (:class:`NetlistCSR`).

Feature extraction, IDDFS, the GCN adjacency, and the analytical placers all
operate on graph views of the same netlist; before this module each of them
rebuilt its own Python-dict or networkx graph on every call. ``get_csr``
builds the compiled-array views **once** per netlist and caches them on the
netlist object, keyed on the netlist's structural revision counter
(``Netlist._version``): any ``add_cell`` / ``add_net`` / ``add_macro``
invalidates the context and the next ``get_csr`` rebuilds it.

The context caches *structure only* — cell kinds, net topology, adjacency
patterns. Net ``weight`` values are deliberately **not** cached because the
timing-driven placers rescale them in place between iterations
(``vivado_like`` criticality reweighting); weight-dependent consumers read
``net.weight`` fresh and only borrow the flattened index arrays from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.netlist.netlist import Netlist


#: Site-family order of the per-cell ``site_code`` array.
SITE_KIND_CODES = ("CLB", "DSP", "BRAM", "FIXED")
_SITE_CODE = {k: i for i, k in enumerate(SITE_KIND_CODES)}


def _binary_csr(rows: np.ndarray, cols: np.ndarray, n: int) -> sp.csr_matrix:
    a = sp.coo_matrix(
        (np.ones(len(rows), dtype=np.float64), (rows, cols)), shape=(n, n)
    ).tocsr()
    a.data[:] = 1.0  # tocsr summed duplicate entries; collapse back to binary
    return a


@dataclass(frozen=True)
class NetlistCSR:
    """Immutable sparse-array views of one netlist revision.

    Attributes:
        n: Number of cells.
        version: ``Netlist._version`` this context was built from.
        directed: Binary driver→sink CSR adjacency (parallel nets collapsed).
        undirected: Binary symmetrized CSR adjacency.
        indegree / outdegree: Unique-neighbour degree arrays (the
            ``netlist_to_digraph`` convention: parallel edges collapse).
        dsp_indices: Sorted cell indices of DSP cells.
        is_dsp / is_storage: Per-cell boolean masks.
        is_fixed: Per-cell ``Cell.is_fixed`` mask (has a device-pinned xy).
        site_code: Per-cell site-family code, index into
            :data:`SITE_KIND_CODES` (``("CLB", "DSP", "BRAM", "FIXED")``).
        net_driver: Per-net driver cell index.
        net_nsinks: Per-net sink count (fanout).
        sink_flat: All net sinks concatenated in net order.
        sink_net: Owning net index per ``sink_flat`` entry.
        sink_indptr: CSR-style per-net offsets into ``sink_flat``.
        pin_cell: All net pins (driver first, then sinks) concatenated in
            net order — the flattened pin list HPWL and the B2B net model
            operate on.
        pin_ptr: CSR-style per-net offsets into ``pin_cell``.
        pin_net: Owning net index per ``pin_cell`` entry.
    """

    n: int
    version: int
    directed: sp.csr_matrix
    undirected: sp.csr_matrix
    indegree: np.ndarray
    outdegree: np.ndarray
    dsp_indices: np.ndarray
    is_dsp: np.ndarray
    is_storage: np.ndarray
    is_fixed: np.ndarray
    site_code: np.ndarray
    net_driver: np.ndarray
    net_nsinks: np.ndarray
    sink_flat: np.ndarray
    sink_net: np.ndarray
    sink_indptr: np.ndarray
    pin_cell: np.ndarray
    pin_ptr: np.ndarray
    pin_net: np.ndarray
    _fanout_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def edge_src(self) -> np.ndarray:
        """Driver per (net, sink) pair — multi-edges kept, one per pin."""
        return self.net_driver[self.sink_net]

    @property
    def edge_dst(self) -> np.ndarray:
        """Sink per (net, sink) pair — alias of ``sink_flat``."""
        return self.sink_flat

    def fanout_filtered(self, max_fanout: int) -> sp.csr_matrix:
        """Binary directed adjacency from nets with ``fanout <= max_fanout``.

        This is the traversal graph of Section III-B: very-high-fanout nets
        (clock/reset/enable broadcast) never carry datapaths and are dropped
        before any DSP-to-DSP search. Cached per ``max_fanout``.
        """
        cached = self._fanout_cache.get(max_fanout)
        if cached is not None:
            return cached
        if self.net_nsinks.size == 0 or max_fanout >= int(self.net_nsinks.max()):
            adj = self.directed
        else:
            keep = self.net_nsinks[self.sink_net] <= max_fanout
            adj = _binary_csr(self.edge_src[keep], self.sink_flat[keep], self.n)
        self._fanout_cache[max_fanout] = adj
        return adj


def build_csr(netlist: Netlist) -> NetlistCSR:
    """Build a fresh context; prefer :func:`get_csr` for the cached one."""
    n = len(netlist.cells)
    n_nets = len(netlist.nets)
    net_driver = np.fromiter(
        (net.driver for net in netlist.nets), dtype=np.int64, count=n_nets
    )
    net_nsinks = np.fromiter(
        (len(net.sinks) for net in netlist.nets), dtype=np.int64, count=n_nets
    )
    total_sinks = int(net_nsinks.sum())
    sink_flat = np.fromiter(
        (s for net in netlist.nets for s in net.sinks), dtype=np.int64, count=total_sinks
    )
    sink_net = np.repeat(np.arange(n_nets, dtype=np.int64), net_nsinks)
    sink_indptr = np.zeros(n_nets + 1, dtype=np.int64)
    np.cumsum(net_nsinks, out=sink_indptr[1:])

    net_npins = net_nsinks + 1  # driver-first pin layout
    pin_ptr = np.zeros(n_nets + 1, dtype=np.int64)
    np.cumsum(net_npins, out=pin_ptr[1:])
    pin_cell = np.empty(int(pin_ptr[-1]), dtype=np.int64)
    pin_cell[pin_ptr[:-1]] = net_driver
    sink_slots = np.ones(int(pin_ptr[-1]), dtype=bool)
    sink_slots[pin_ptr[:-1]] = False
    pin_cell[sink_slots] = sink_flat
    pin_net = np.repeat(np.arange(n_nets, dtype=np.int64), net_npins)

    directed = _binary_csr(net_driver[sink_net], sink_flat, n)
    undirected = (directed + directed.T).tocsr()
    undirected.data[:] = 1.0

    is_dsp = np.fromiter((c.ctype.is_dsp for c in netlist.cells), dtype=bool, count=n)
    is_storage = np.fromiter(
        (c.ctype.is_storage for c in netlist.cells), dtype=bool, count=n
    )
    is_fixed = np.fromiter((c.is_fixed for c in netlist.cells), dtype=bool, count=n)
    site_code = np.fromiter(
        (_SITE_CODE[c.ctype.site_kind] for c in netlist.cells), dtype=np.int8, count=n
    )
    return NetlistCSR(
        n=n,
        version=getattr(netlist, "_version", 0),
        directed=directed,
        undirected=undirected,
        indegree=np.diff(directed.tocsc().indptr),
        outdegree=np.diff(directed.indptr),
        dsp_indices=np.flatnonzero(is_dsp),
        is_dsp=is_dsp,
        is_storage=is_storage,
        is_fixed=is_fixed,
        site_code=site_code,
        net_driver=net_driver,
        net_nsinks=net_nsinks,
        sink_flat=sink_flat,
        sink_net=sink_net,
        sink_indptr=sink_indptr,
        pin_cell=pin_cell,
        pin_ptr=pin_ptr,
        pin_net=pin_net,
    )


def get_csr(netlist: Netlist) -> NetlistCSR:
    """The cached :class:`NetlistCSR` for this netlist revision.

    Returns the same object for repeated calls on an unmodified netlist;
    rebuilds (and re-caches) after any structural mutation.
    """
    version = getattr(netlist, "_version", 0)
    cached = getattr(netlist, "_csr_context", None)
    if cached is not None and cached.version == version:
        return cached
    ctx = build_csr(netlist)
    netlist._csr_context = ctx
    return ctx
