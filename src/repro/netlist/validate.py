"""Netlist/device validation with actionable diagnostics.

:func:`netlist_problems` collects *every* violation (unlike
:meth:`Netlist.validate`, which raises on the first structural breakage), and
— when a device is given — cross-checks the netlist against the target:
enough DSP sites, no cascade macro longer than the tallest DSP column.

:func:`validate_netlist` raises a single
:class:`~repro.errors.NetlistValidationError` listing everything found, so a
user fixes the netlist in one round trip. ``DSPlacer.place`` runs it in
strict mode and downgrades to :class:`~repro.robustness.RunHealth` warnings
in permissive mode.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import NetlistValidationError
from repro.netlist.netlist import Netlist

__all__ = ["netlist_problems", "validate_netlist"]


def netlist_problems(netlist: Netlist, device=None) -> list[str]:
    """Every validation problem, each with a suggested fix. Empty ⇔ clean."""
    problems: list[str] = []
    n_cells = len(netlist.cells)

    dupes = [n for n, c in Counter(c.name for c in netlist.cells).items() if c > 1]
    for name in dupes:
        problems.append(
            f"duplicate cell name {name!r}: rename one instance — cell names "
            "must be unique"
        )

    for net in netlist.nets:
        bad = [i for i in net.cells if not 0 <= i < n_cells]
        if bad:
            problems.append(
                f"net {net.name!r} dangles: references missing cell index(es) "
                f"{bad} (netlist has {n_cells} cells) — drop the net or add "
                "the cells first"
            )
        if not net.sinks:
            problems.append(
                f"net {net.name!r} has a driver but no sinks — remove it or "
                "connect a load"
            )

    seen_members: set[int] = set()
    for macro in netlist.macros:
        for idx in macro.dsps:
            if not 0 <= idx < n_cells:
                problems.append(
                    f"macro {macro.macro_id} references missing cell index {idx}"
                )
                continue
            cell = netlist.cells[idx]
            if not cell.ctype.is_dsp:
                problems.append(
                    f"macro {macro.macro_id} member {cell.name!r} is a "
                    f"{cell.ctype.value}, not a DSP — cascade macros may only "
                    "contain DSP cells"
                )
            if idx in seen_members:
                problems.append(
                    f"DSP index {idx} appears in two cascade macros — a DSP "
                    "can join at most one chain"
                )
            seen_members.add(idx)

    if device is not None:
        n_dsp = sum(1 for c in netlist.cells if c.ctype.is_dsp)
        if n_dsp > device.n_dsp:
            problems.append(
                f"netlist has {n_dsp} DSPs but device {device.name!r} only "
                f"{device.n_dsp} DSP sites — use a larger device or shrink "
                "the design (lower --scale)"
            )
        cols = device.kind_columns("DSP")
        tallest = max((c.n_sites for c in cols), default=0)
        for macro in netlist.macros:
            if len(macro.dsps) > tallest:
                problems.append(
                    f"cascade macro {macro.macro_id} chains {len(macro.dsps)} "
                    f"DSPs but the tallest DSP column on {device.name!r} has "
                    f"{tallest} sites — split the chain or use a taller device"
                )
    return problems


def validate_netlist(netlist: Netlist, device=None) -> None:
    """Raise :class:`NetlistValidationError` listing every problem found."""
    problems = netlist_problems(netlist, device)
    if problems:
        head = f"netlist {netlist.name!r} failed validation ({len(problems)} problem(s)):"
        raise NetlistValidationError(
            "\n".join([head, *(f"  - {p}" for p in problems)])
        )
