"""JSON (de)serialization for netlists.

A small, explicit on-disk format so generated benchmarks can be cached and
shared between the test suite, the examples and the benchmark harness.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist

_FORMAT_VERSION = 1


def netlist_to_json(netlist: Netlist) -> dict:
    """Serialize to a plain-dict document."""
    return {
        "format": _FORMAT_VERSION,
        "name": netlist.name,
        "target_freq_mhz": netlist.target_freq_mhz,
        "cells": [
            {
                "name": c.name,
                "ctype": c.ctype.value,
                "is_datapath": c.is_datapath,
                "fixed_xy": list(c.fixed_xy) if c.fixed_xy else None,
                "attrs": c.attrs,
            }
            for c in netlist.cells
        ],
        "nets": [
            {
                "name": n.name,
                "driver": n.driver,
                "sinks": list(n.sinks),
                "weight": n.weight,
            }
            for n in netlist.nets
        ],
        "macros": [list(m.dsps) for m in netlist.macros],
    }


def netlist_from_json(doc: dict) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_json` output."""
    if doc.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported netlist format {doc.get('format')!r}")
    netlist = Netlist(doc["name"])
    netlist.target_freq_mhz = doc.get("target_freq_mhz")
    for cdoc in doc["cells"]:
        netlist.add_cell(
            cdoc["name"],
            CellType(cdoc["ctype"]),
            is_datapath=cdoc.get("is_datapath"),
            fixed_xy=tuple(cdoc["fixed_xy"]) if cdoc.get("fixed_xy") else None,
            attrs=cdoc.get("attrs") or {},
        )
    for ndoc in doc["nets"]:
        netlist.add_net(ndoc["name"], ndoc["driver"], ndoc["sinks"], weight=ndoc.get("weight", 1.0))
    for chain in doc["macros"]:
        netlist.add_macro(chain)
    netlist.validate()
    return netlist


def save_netlist(netlist: Netlist, path: str | Path) -> None:
    Path(path).write_text(json.dumps(netlist_to_json(netlist)))


def load_netlist(path: str | Path) -> Netlist:
    return netlist_from_json(json.loads(Path(path).read_text()))
