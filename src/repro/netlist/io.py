"""JSON (de)serialization for netlists.

A small, explicit on-disk format so generated benchmarks can be cached and
shared between the test suite, the examples and the benchmark harness.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import NetlistValidationError
from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist

_FORMAT_VERSION = 1


def netlist_to_json(netlist: Netlist) -> dict:
    """Serialize to a plain-dict document."""
    return {
        "format": _FORMAT_VERSION,
        "name": netlist.name,
        "target_freq_mhz": netlist.target_freq_mhz,
        "cells": [
            {
                "name": c.name,
                "ctype": c.ctype.value,
                "is_datapath": c.is_datapath,
                "fixed_xy": list(c.fixed_xy) if c.fixed_xy else None,
                "attrs": c.attrs,
            }
            for c in netlist.cells
        ],
        "nets": [
            {
                "name": n.name,
                "driver": n.driver,
                "sinks": list(n.sinks),
                "weight": n.weight,
            }
            for n in netlist.nets
        ],
        "macros": [list(m.dsps) for m in netlist.macros],
    }


def netlist_from_json(doc: dict) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_json` output."""
    if doc.get("format") != _FORMAT_VERSION:
        raise NetlistValidationError(
            f"unsupported netlist format {doc.get('format')!r} "
            f"(this build reads format {_FORMAT_VERSION})"
        )
    netlist = Netlist(doc["name"])
    netlist.target_freq_mhz = doc.get("target_freq_mhz")
    try:
        for cdoc in doc["cells"]:
            netlist.add_cell(
                cdoc["name"],
                CellType(cdoc["ctype"]),
                is_datapath=cdoc.get("is_datapath"),
                fixed_xy=tuple(cdoc["fixed_xy"]) if cdoc.get("fixed_xy") else None,
                attrs=cdoc.get("attrs") or {},
            )
        for ndoc in doc["nets"]:
            netlist.add_net(
                ndoc["name"], ndoc["driver"], ndoc["sinks"], weight=ndoc.get("weight", 1.0)
            )
        for chain in doc["macros"]:
            netlist.add_macro(chain)
        netlist.validate()
    except NetlistValidationError:
        raise
    except (ValueError, IndexError, KeyError) as exc:
        # construction errors become one typed, cause-chained diagnostic:
        # a net referencing a missing cell index dangles, a repeated cell
        # name collides, etc.
        raise NetlistValidationError(
            f"netlist document {netlist.name!r} is invalid ({exc}); if the "
            "net references a missing cell index it dangles — regenerate or "
            "repair the document"
        ) from exc
    return netlist


def save_netlist(netlist: Netlist, path: str | Path) -> None:
    Path(path).write_text(json.dumps(netlist_to_json(netlist)))


def load_netlist(path: str | Path) -> Netlist:
    """Load and fully validate a netlist document.

    Raises:
        NetlistValidationError: On format mismatch or any structural
            problem, listing every violation found.
    """
    netlist = netlist_from_json(json.loads(Path(path).read_text()))
    validate_netlist(netlist)
    return netlist
