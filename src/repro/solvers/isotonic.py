"""Intra-column row legalization (paper eq. 11) and L1 isotonic regression.

Formulation (11) asks for integer rows ``r_i`` for the ordered DSPs of one
column, minimizing total vertical displacement ``Σ|r_i − R_col(i)|`` with
cascaded pairs exactly adjacent (11a) and everything else strictly ordered
without overlap (11b). Collapsing each cascade chain into a rigid block
reduces it to placing ordered blocks on 1-D rows — solved *exactly* here by
dynamic programming with a running prefix minimum, O(total_rows × blocks).

The module also provides weighted L1 isotonic regression via
pool-adjacent-violators with medians — the continuous relaxation of the same
problem, used as a fast seed and exercised by the property-test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverInfeasibleError, SolverInputError
from repro.obs import metrics


@dataclass(frozen=True)
class ColumnBlock:
    """A rigid vertical block: one cascade chain (or a single free DSP).

    ``targets[k]`` is the desired row of the block's k-th member, so a block
    starting at row ``r`` costs ``Σ_k |r + k − targets[k]|``.
    """

    targets: tuple[float, ...]

    @property
    def size(self) -> int:
        return len(self.targets)

    def cost_at(self, start_row: int) -> float:
        return float(sum(abs(start_row + k - t) for k, t in enumerate(self.targets)))


def legalize_column_rows(blocks: list[ColumnBlock], m_rows: int) -> list[int]:
    """Optimal start rows (0-based) for ordered rigid blocks in one column.

    Blocks must already be sorted by desired vertical position (the paper
    sorts macro members by the macro's average location, Section IV-B). The
    returned rows satisfy ``start[j+1] >= start[j] + blocks[j].size`` and fit
    within ``[0, m_rows)``.

    Raises:
        SolverInfeasibleError: If the blocks cannot fit in the column.
    """
    if not blocks:
        return []
    metrics.inc("isotonic.columns")
    metrics.inc("isotonic.blocks", len(blocks))
    sizes = [b.size for b in blocks]
    total = sum(sizes)
    if total > m_rows:
        raise SolverInfeasibleError(f"blocks need {total} rows but the column has {m_rows}")

    n_blocks = len(blocks)
    prefix = np.concatenate(([0], np.cumsum(sizes)))  # rows consumed before block j
    INF = math.inf

    # dp[r] = best cost placing blocks[0..j] with block j starting at row r
    # feasible window of block j: [prefix[j], m_rows - (total - prefix[j])]
    choice: list[np.ndarray] = []
    prev = None  # running dp for block j-1
    for j, block in enumerate(blocks):
        lo = int(prefix[j])
        hi = m_rows - (total - int(prefix[j]))  # inclusive upper start row
        width = hi - lo + 1
        cost = np.array([block.cost_at(r) for r in range(lo, hi + 1)])
        if j == 0:
            dp = cost
            choice.append(np.arange(lo, hi + 1))
        else:
            # block j at row r needs block j-1 at row <= r - sizes[j-1]
            plo = int(prefix[j - 1])
            # prefix-min of prev with argmin tracking
            pmin = np.empty(prev.size)
            parg = np.empty(prev.size, dtype=np.int64)
            run = INF
            ridx = -1
            for k in range(prev.size):
                if prev[k] < run:
                    run = prev[k]
                    ridx = k
                pmin[k] = run
                parg[k] = ridx
            dp = np.empty(width)
            arg = np.empty(width, dtype=np.int64)
            for i, r in enumerate(range(lo, hi + 1)):
                k = r - sizes[j - 1] - plo  # max index into prev
                if k < 0:
                    dp[i] = INF
                    arg[i] = -1
                else:
                    k = min(k, prev.size - 1)
                    dp[i] = pmin[k] + cost[i]
                    arg[i] = parg[k] + plo
            choice.append(arg)
        prev = dp

    if not np.isfinite(prev).any():
        raise SolverInfeasibleError("no feasible block packing (should not happen when they fit)")

    # backtrack
    starts = [0] * n_blocks
    lo_last = int(prefix[n_blocks - 1])
    i = int(np.argmin(prev))
    starts[-1] = lo_last + i
    for j in range(n_blocks - 1, 0, -1):
        lo_j = int(prefix[j])
        idx = starts[j] - lo_j
        starts[j - 1] = int(choice[j][idx])
    return starts


def l1_isotonic(values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Weighted L1 isotonic regression by pool-adjacent-violators with medians.

    Finds non-decreasing ``f`` minimizing ``Σ w_i |f_i − values_i|``.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        return values.copy()
    weights = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if weights.size != n or np.any(weights <= 0):
        raise SolverInputError("weights must be positive and match values")

    # Each pool keeps its member (value, weight) pairs; level = weighted median.
    pools: list[list[int]] = []  # member indices
    levels: list[float] = []

    def _wmedian(idx: list[int]) -> float:
        order = sorted(idx, key=lambda i: values[i])
        half = weights[order].sum() / 2.0
        acc = 0.0
        for i in order:
            acc += weights[i]
            if acc >= half - 1e-15:
                return float(values[i])
        return float(values[order[-1]])

    for i in range(n):
        pools.append([i])
        levels.append(float(values[i]))
        while len(pools) > 1 and levels[-2] > levels[-1] + 1e-15:
            merged = pools[-2] + pools[-1]
            pools = pools[:-2] + [merged]
            levels = levels[:-2] + [_wmedian(merged)]

    out = np.empty(n)
    for pool, level in zip(pools, levels):
        out[pool] = level
    return out
