"""Branch-and-bound integer linear programming.

Replaces the Gurobi dependency for the cascade legalization ILPs (eq. 10).
LP relaxations are solved with scipy's HiGHS (``linprog``); the
dependency-free :mod:`repro.solvers.simplex` engine can be selected for
cross-checking. Best-first search with most-fractional branching.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverInputError
from repro.obs import metrics
from repro.solvers.simplex import solve_lp_simplex

_INT_TOL = 1e-6


@dataclass(frozen=True)
class ILPResult:
    """Outcome of an ILP solve."""

    status: str  # "optimal" | "infeasible" | "node_limit"
    x: np.ndarray | None
    objective: float | None
    n_nodes: int

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


def _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, bounds, engine):
    if engine == "highs":
        res = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if res.status == 0:
            return "optimal", res.x, float(res.fun)
        if res.status == 2:
            return "infeasible", None, None
        if res.status == 3:
            return "unbounded", None, None
        return "infeasible", None, None
    res = solve_lp_simplex(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=list(bounds))
    return res.status, res.x, res.objective


def solve_ilp(
    c: np.ndarray,
    A_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    A_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    bounds: list[tuple[float, float]] | None = None,
    integrality: np.ndarray | None = None,
    max_nodes: int = 200_000,
    engine: str = "highs",
) -> ILPResult:
    """min c@x s.t. A_ub x <= b_ub, A_eq x = b_eq, bounds, x[i] integer where marked.

    Args:
        integrality: Boolean mask; ``None`` marks every variable integer.
        max_nodes: Branch-and-bound node budget; exceeding it returns the
            incumbent (status ``"node_limit"``) or ``"infeasible"``.
        engine: ``"highs"`` (scipy) or ``"simplex"`` (this repo's solver).

    Returns:
        :class:`ILPResult` with the optimal integral solution when found.
    """
    c = np.asarray(c, dtype=np.float64)
    n = c.size
    bounds = list(bounds) if bounds is not None else [(0.0, 1.0)] * n
    integrality = (
        np.ones(n, dtype=bool) if integrality is None else np.asarray(integrality, dtype=bool)
    )

    metrics.inc("ilp.solves")
    metrics.inc("ilp.variables", n)
    best_x: np.ndarray | None = None
    best_obj = math.inf
    n_nodes = 0
    counter = itertools.count()
    status, x0, obj0 = _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, bounds, engine)
    if status == "infeasible":
        return ILPResult("infeasible", None, None, 1)
    if status == "unbounded":
        raise SolverInputError("ILP relaxation is unbounded; add finite bounds")
    heap: list[tuple[float, int, list[tuple[float, float]], ]] = [(obj0, next(counter), bounds)]

    while heap and n_nodes < max_nodes:
        lb, _, nb = heapq.heappop(heap)
        if lb >= best_obj - 1e-9:
            continue
        status, x, obj = _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, nb, engine)
        n_nodes += 1
        if status != "optimal" or obj >= best_obj - 1e-9:
            continue
        frac = np.abs(x - np.round(x))
        frac[~integrality] = 0.0
        j = int(np.argmax(frac))
        if frac[j] <= _INT_TOL:
            x_int = np.where(integrality, np.round(x), x)
            obj_int = float(c @ x_int)
            if obj_int < best_obj - 1e-12:
                best_obj = obj_int
                best_x = x_int
            continue
        lo_j, hi_j = nb[j]
        floor_j = math.floor(x[j])
        down = list(nb)
        down[j] = (lo_j, float(floor_j))
        up = list(nb)
        up[j] = (float(floor_j + 1), hi_j)
        for child in (down, up):
            if child[j][0] <= child[j][1]:
                heapq.heappush(heap, (obj, next(counter), child))

    metrics.inc("ilp.nodes_explored", n_nodes)
    if best_x is None:
        return ILPResult("infeasible" if not heap else "node_limit", None, None, n_nodes)
    status = "optimal" if not heap or n_nodes < max_nodes else "node_limit"
    # If we exhausted the heap, the incumbent is proven optimal.
    if not heap:
        status = "optimal"
    return ILPResult(status, best_x, best_obj, n_nodes)
