"""Bertsekas ε-scaling auction algorithm for dense assignment.

A third assignment engine alongside the min-cost flow and the Hungarian
reference. The auction mechanism is naturally vectorizable (every
unassigned agent bids simultaneously via two numpy reductions).

Optimality contract: the returned assignment is **ε-optimal** — its cost is
within ``n × eps_min`` of the optimum (Bertsekas' classic bound). For
integer costs and ``eps_min < 1/(n+1)`` that bound implies exact
optimality; for float costs choose ``eps_min`` to the tolerance you need.
The test suite checks both regimes against the Hungarian oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverConvergenceError, SolverInputError
from repro.obs import metrics


def auction_assignment(
    cost: np.ndarray,
    eps_min: float | None = None,
    eps_scale: float = 4.0,
    max_rounds: int = 10_000_000,
) -> tuple[np.ndarray, float]:
    """Minimize ``Σ cost[i, col(i)]`` over injective column choices.

    Args:
        cost: ``(n, m)`` dense cost matrix, ``n <= m``.
        eps_min: Final ε of the scaling schedule. Defaults to
            ``1/(2(n+1))`` after costs are normalized, which is exact for
            integer-valued costs and within ``n·eps_min·spread`` otherwise.
        eps_scale: ε shrink factor between scaling phases.
        max_rounds: Safety valve on total bidding rounds.

    Returns:
        ``(col_of_row, total_cost)`` — an ε-optimal assignment.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n, m = cost.shape
    if n > m:
        raise SolverInputError("auction_assignment requires n_rows <= n_cols")
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0.0
    metrics.inc("auction.solves")
    benefit = -cost  # auction maximizes
    spread = float(benefit.max() - benefit.min())
    if spread <= 0:  # all costs equal: any assignment is optimal
        col_of = np.arange(n, dtype=np.int64)
        return col_of, float(cost[np.arange(n), col_of].sum())
    if eps_min is None:
        eps_min = spread / (2.0 * (n + 1))

    # One forward-auction run with fresh zero prices. (Price-carrying
    # ε-scaling is faster on square problems but breaks the n·ε optimality
    # bound when n < m: an object bid up in an early phase and abandoned at
    # a restart keeps its inflated price with no owner. With zero initial
    # prices, every priced object is owned at termination, and the classic
    # ε-complementary-slackness argument gives cost ≤ optimum + n·ε.)
    del eps_scale  # retained in the signature for API stability
    prices = np.zeros(m)
    owner = np.full(m, -1, dtype=np.int64)
    col_of = np.full(n, -1, dtype=np.int64)
    eps = eps_min

    rounds = 0
    while (col_of < 0).any():
        rounds += 1
        if rounds > max_rounds:
            raise SolverConvergenceError("auction did not converge (max_rounds)")
        bidders = np.flatnonzero(col_of < 0)
        values = benefit[bidders] - prices[None, :]
        best_j = np.argmax(values, axis=1)
        best_v = values[np.arange(bidders.size), best_j]
        values[np.arange(bidders.size), best_j] = -np.inf
        second_v = values.max(axis=1)
        if m == 1:
            second_v = best_v - spread  # no alternative object
        bids = best_v - second_v + eps
        # Jacobi bidding: per contested object only the single highest bid
        # wins and sets the price (accumulating simultaneous bids would
        # overshoot prices past the ε-CS guarantee)
        win_bid: dict[int, tuple[float, int]] = {}
        for k in range(bidders.size):
            j = int(best_j[k])
            entry = win_bid.get(j)
            if entry is None or bids[k] > entry[0]:
                win_bid[j] = (float(bids[k]), int(bidders[k]))
        for j, (bid, i) in win_bid.items():
            prev = owner[j]
            if prev >= 0:
                col_of[prev] = -1
            owner[j] = i
            col_of[i] = j
            prices[j] += bid

    total = float(cost[np.arange(n), col_of].sum())
    return col_of, total
