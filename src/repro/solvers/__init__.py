"""Optimization substrate.

From-scratch implementations of every solver the paper outsources:

- :mod:`repro.solvers.mcf` — min-cost flow (the paper uses LEMON) via
  successive shortest paths with Johnson potentials, plus a bipartite
  assignment front-end used by the linearized DSP placement (eq. 8/9).
- :mod:`repro.solvers.ilp` — 0-1 / integer branch-and-bound ILP (the paper
  uses Gurobi) over LP relaxations.
- :mod:`repro.solvers.simplex` — dense two-phase primal simplex, the
  dependency-free LP fallback and reference for the ILP relaxations.
- :mod:`repro.solvers.hungarian` — O(n³) Hungarian assignment, the reference
  oracle for the MCF assignment front-end.
- :mod:`repro.solvers.isotonic` — exact intra-column row legalization
  (eq. 11) by cascade-block collapsing + dynamic programming, and an L1
  isotonic (PAVA-median) fast path.
"""

from repro.solvers.auction import auction_assignment
from repro.solvers.mcf import MinCostFlow, min_cost_assignment
from repro.solvers.ilp import ILPResult, solve_ilp
from repro.solvers.simplex import LPResult, solve_lp_simplex
from repro.solvers.hungarian import hungarian
from repro.solvers.isotonic import ColumnBlock, l1_isotonic, legalize_column_rows

__all__ = [
    "MinCostFlow",
    "min_cost_assignment",
    "auction_assignment",
    "ILPResult",
    "solve_ilp",
    "LPResult",
    "solve_lp_simplex",
    "hungarian",
    "ColumnBlock",
    "l1_isotonic",
    "legalize_column_rows",
]
