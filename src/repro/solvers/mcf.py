"""Min-cost flow via successive shortest paths with Johnson potentials.

This replaces the LEMON solver the paper uses for the linearized DSP
assignment (eq. 8/9): the weighted-sum-of-``x_ij`` objective under the
assignment constraints (eq. 4) is a unit-capacity transportation problem,
whose constraint matrix is totally unimodular, so the LP optimum — and hence
the flow optimum — is integral (Section IV-A).

The solver maintains node potentials so Dijkstra runs on non-negative
reduced costs; an initial Bellman-Ford pass absorbs negative edge costs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import SolverInfeasibleError, SolverInputError
from repro.obs import metrics


class MinCostFlow:
    """A directed flow network with per-edge capacity and cost.

    Edges are stored pairwise (forward at even ids, residual at odd ids) in
    flat lists — the classic forward-star layout.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise SolverInputError("network needs at least one node")
        self.n = n_nodes
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]

    def add_edge(self, u: int, v: int, cap: float, cost: float) -> int:
        """Add edge u→v; returns the forward edge id (use with :meth:`flow_on`)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(f"edge ({u}, {v}) out of range")
        if cap < 0:
            raise SolverInputError("negative capacity")
        eid = len(self._to)
        self._to.extend((v, u))
        self._cap.extend((float(cap), 0.0))
        self._cost.extend((float(cost), -float(cost)))
        self._adj[u].append(eid)
        self._adj[v].append(eid + 1)
        return eid

    def flow_on(self, eid: int) -> float:
        """Flow currently routed through forward edge ``eid``."""
        return self._cap[eid ^ 1]

    # ------------------------------------------------------------------
    def _bellman_ford_potentials(self, s: int) -> list[float]:
        """Initial potentials; needed when edges carry negative costs."""
        dist = [math.inf] * self.n
        dist[s] = 0.0
        for _ in range(self.n - 1):
            changed = False
            for u in range(self.n):
                du = dist[u]
                if du == math.inf:
                    continue
                for eid in self._adj[u]:
                    if self._cap[eid] > 1e-12:
                        v = self._to[eid]
                        nd = du + self._cost[eid]
                        if nd < dist[v] - 1e-12:
                            dist[v] = nd
                            changed = True
            if not changed:
                break
        return [d if d < math.inf else 0.0 for d in dist]

    def min_cost_flow(
        self, s: int, t: int, max_flow: float = math.inf
    ) -> tuple[float, float]:
        """Send up to ``max_flow`` units from ``s`` to ``t`` at minimum cost.

        Returns ``(flow_sent, total_cost)``. The network keeps its residual
        state, so edge flows can be read back via :meth:`flow_on`.
        """
        if s == t:
            raise SolverInputError("source equals sink")
        has_negative = any(
            self._cost[eid] < 0 and self._cap[eid] > 0 for eid in range(0, len(self._to), 2)
        )
        potential = self._bellman_ford_potentials(s) if has_negative else [0.0] * self.n

        total_flow = 0.0
        total_cost = 0.0
        prev_edge = [-1] * self.n
        metrics.inc("mcf.solves")

        while total_flow < max_flow:
            metrics.inc("mcf.augmentations")
            dist = [math.inf] * self.n
            dist[s] = 0.0
            prev_edge = [-1] * self.n
            heap: list[tuple[float, int]] = [(0.0, s)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u] + 1e-12:
                    continue
                for eid in self._adj[u]:
                    if self._cap[eid] <= 1e-12:
                        continue
                    v = self._to[eid]
                    nd = d + self._cost[eid] + potential[u] - potential[v]
                    if nd < dist[v] - 1e-12:
                        dist[v] = nd
                        prev_edge[v] = eid
                        heapq.heappush(heap, (nd, v))
            if dist[t] == math.inf:
                break  # no more augmenting paths
            for v in range(self.n):
                if dist[v] < math.inf:
                    potential[v] += dist[v]
            # bottleneck along the path
            push = max_flow - total_flow
            v = t
            while v != s:
                eid = prev_edge[v]
                push = min(push, self._cap[eid])
                v = self._to[eid ^ 1]
            # apply
            v = t
            while v != s:
                eid = prev_edge[v]
                self._cap[eid] -= push
                self._cap[eid ^ 1] += push
                total_cost += push * self._cost[eid]
                v = self._to[eid ^ 1]
            total_flow += push
        return total_flow, total_cost


@dataclass(frozen=True)
class _AssignmentArcs:
    """Bookkeeping for :func:`min_cost_assignment`."""

    edge_ids: dict[tuple[int, int], int]


def min_cost_assignment(
    n_agents: int,
    n_slots: int,
    arcs: list[tuple[int, int, float]],
    slot_capacity: int = 1,
) -> dict[int, int]:
    """Assign every agent to a slot at minimum total cost.

    Args:
        n_agents: Agents 0..n_agents-1; each must receive exactly one slot.
        n_slots: Slots 0..n_slots-1; each takes at most ``slot_capacity``
            agents.
        arcs: Candidate ``(agent, slot, cost)`` triples. Agents may only be
            assigned along a listed arc (the DSP placement restricts each
            DSP to a candidate window of sites).

    Returns:
        ``{agent: slot}`` covering all agents.

    Raises:
        SolverInfeasibleError: If no feasible complete assignment exists.
    """
    if n_agents == 0:
        return {}
    s = n_agents + n_slots
    t = s + 1
    net = MinCostFlow(n_agents + n_slots + 2)
    for a in range(n_agents):
        net.add_edge(s, a, 1, 0.0)
    slot_edge: list[int | None] = [None] * n_slots
    edge_ids: dict[tuple[int, int], int] = {}
    seen_slots: set[int] = set()
    for agent, slot, cost in arcs:
        if not 0 <= agent < n_agents or not 0 <= slot < n_slots:
            raise IndexError(f"arc ({agent}, {slot}) out of range")
        key = (agent, slot)
        if key in edge_ids:
            continue
        edge_ids[key] = net.add_edge(agent, n_agents + slot, 1, float(cost))
        seen_slots.add(slot)
    for slot in seen_slots:
        slot_edge[slot] = net.add_edge(n_agents + slot, t, slot_capacity, 0.0)

    metrics.inc("mcf.arcs", len(edge_ids))
    flow, _cost = net.min_cost_flow(s, t, n_agents)
    if flow < n_agents - 1e-9:
        raise SolverInfeasibleError(
            f"infeasible assignment: only {flow:.0f} of {n_agents} agents placeable"
        )
    result: dict[int, int] = {}
    for (agent, slot), eid in edge_ids.items():
        if net.flow_on(eid) > 0.5:
            result[agent] = slot
    return result
