"""Min-cost flow via successive shortest paths with Johnson potentials.

This replaces the LEMON solver the paper uses for the linearized DSP
assignment (eq. 8/9): the weighted-sum-of-``x_ij`` objective under the
assignment constraints (eq. 4) is a unit-capacity transportation problem,
whose constraint matrix is totally unimodular, so the LP optimum — and hence
the flow optimum — is integral (Section IV-A).

The solver maintains node potentials so Dijkstra runs on non-negative
reduced costs; an initial Bellman-Ford pass absorbs negative edge costs.

:func:`min_cost_assignment` — the per-iterate kernel of the linearized DSP
assignment loop — dispatches the common unit-slot-capacity case to scipy's
sparse LAPJVsp (``csgraph.min_weight_full_bipartite_matching``), which
solves the identical integral LP in compiled code; the pure-Python
successive-shortest-paths network above remains the reference
implementation (``method="ssp"``) and the only path for
``slot_capacity != 1``. Both see the same deduplicated arc set, so their
optima coincide (cross-checked in the tests).
"""

from __future__ import annotations

import heapq
import math

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.errors import SolverInfeasibleError, SolverInputError
from repro.obs import metrics


class MinCostFlow:
    """A directed flow network with per-edge capacity and cost.

    Edges are stored pairwise (forward at even ids, residual at odd ids) in
    flat lists — the classic forward-star layout.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise SolverInputError("network needs at least one node")
        self.n = n_nodes
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]

    def add_edge(self, u: int, v: int, cap: float, cost: float) -> int:
        """Add edge u→v; returns the forward edge id (use with :meth:`flow_on`)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(f"edge ({u}, {v}) out of range")
        if cap < 0:
            raise SolverInputError("negative capacity")
        eid = len(self._to)
        self._to.extend((v, u))
        self._cap.extend((float(cap), 0.0))
        self._cost.extend((float(cost), -float(cost)))
        self._adj[u].append(eid)
        self._adj[v].append(eid + 1)
        return eid

    def flow_on(self, eid: int) -> float:
        """Flow currently routed through forward edge ``eid``."""
        return self._cap[eid ^ 1]

    # ------------------------------------------------------------------
    def _bellman_ford_potentials(self, s: int) -> list[float]:
        """Initial potentials; needed when edges carry negative costs."""
        dist = [math.inf] * self.n
        dist[s] = 0.0
        for _ in range(self.n - 1):
            changed = False
            for u in range(self.n):
                du = dist[u]
                if du == math.inf:
                    continue
                for eid in self._adj[u]:
                    if self._cap[eid] > 1e-12:
                        v = self._to[eid]
                        nd = du + self._cost[eid]
                        if nd < dist[v] - 1e-12:
                            dist[v] = nd
                            changed = True
            if not changed:
                break
        return [d if d < math.inf else 0.0 for d in dist]

    def min_cost_flow(
        self, s: int, t: int, max_flow: float = math.inf
    ) -> tuple[float, float]:
        """Send up to ``max_flow`` units from ``s`` to ``t`` at minimum cost.

        Returns ``(flow_sent, total_cost)``. The network keeps its residual
        state, so edge flows can be read back via :meth:`flow_on`.
        """
        if s == t:
            raise SolverInputError("source equals sink")
        has_negative = any(
            self._cost[eid] < 0 and self._cap[eid] > 0 for eid in range(0, len(self._to), 2)
        )
        potential = self._bellman_ford_potentials(s) if has_negative else [0.0] * self.n

        total_flow = 0.0
        total_cost = 0.0
        prev_edge = [-1] * self.n
        metrics.inc("mcf.solves")

        while total_flow < max_flow:
            metrics.inc("mcf.augmentations")
            dist = [math.inf] * self.n
            dist[s] = 0.0
            prev_edge = [-1] * self.n
            heap: list[tuple[float, int]] = [(0.0, s)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u] + 1e-12:
                    continue
                for eid in self._adj[u]:
                    if self._cap[eid] <= 1e-12:
                        continue
                    v = self._to[eid]
                    nd = d + self._cost[eid] + potential[u] - potential[v]
                    if nd < dist[v] - 1e-12:
                        dist[v] = nd
                        prev_edge[v] = eid
                        heapq.heappush(heap, (nd, v))
            if dist[t] == math.inf:
                break  # no more augmenting paths
            for v in range(self.n):
                if dist[v] < math.inf:
                    potential[v] += dist[v]
            # bottleneck along the path
            push = max_flow - total_flow
            v = t
            while v != s:
                eid = prev_edge[v]
                push = min(push, self._cap[eid])
                v = self._to[eid ^ 1]
            # apply
            v = t
            while v != s:
                eid = prev_edge[v]
                self._cap[eid] -= push
                self._cap[eid ^ 1] += push
                total_cost += push * self._cost[eid]
                v = self._to[eid ^ 1]
            total_flow += push
        return total_flow, total_cost


ArcArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


def _normalize_arcs(
    n_agents: int, n_slots: int, arcs: list[tuple[int, int, float]] | ArcArrays
) -> ArcArrays:
    """Validate arcs and deduplicate ``(agent, slot)`` keys keeping the
    *minimum* cost.

    Duplicate arcs arise in the DSP loop when the previous-site feasibility
    arc coincides with a candidate-window arc; keeping the first listed cost
    (the pre-PR-3 behaviour) could shadow a cheaper duplicate, so the min
    wins regardless of listing order.
    """
    if isinstance(arcs, tuple) and len(arcs) == 3:
        agents = np.asarray(arcs[0], dtype=np.int64)
        slots = np.asarray(arcs[1], dtype=np.int64)
        costs = np.asarray(arcs[2], dtype=np.float64)
    else:
        agents = np.fromiter((a for a, _, _ in arcs), dtype=np.int64, count=len(arcs))
        slots = np.fromiter((s for _, s, _ in arcs), dtype=np.int64, count=len(arcs))
        costs = np.fromiter((c for _, _, c in arcs), dtype=np.float64, count=len(arcs))
    if agents.size and (
        agents.min() < 0
        or agents.max() >= n_agents
        or slots.min() < 0
        or slots.max() >= n_slots
    ):
        bad = np.flatnonzero(
            (agents < 0) | (agents >= n_agents) | (slots < 0) | (slots >= n_slots)
        )[0]
        raise IndexError(f"arc ({agents[bad]}, {slots[bad]}) out of range")
    order = np.lexsort((costs, slots, agents))
    agents, slots, costs = agents[order], slots[order], costs[order]
    keep = np.ones(agents.size, dtype=bool)
    keep[1:] = (agents[1:] != agents[:-1]) | (slots[1:] != slots[:-1])
    return agents[keep], slots[keep], costs[keep]


def _assignment_lapjvsp(
    n_agents: int, n_slots: int, agents: np.ndarray, slots: np.ndarray, costs: np.ndarray
) -> dict[int, int]:
    """Unit-capacity assignment via scipy's sparse LAPJVsp."""
    # LAPJVsp drops explicit zeros from the sparsity pattern; shift every
    # cost strictly positive — a uniform shift adds n_agents·shift to every
    # perfect matching, leaving the argmin unchanged.
    lo = float(costs.min())
    shifted = costs + (1.0 - lo) if lo < 1.0 else costs
    graph = sp.csr_matrix((shifted, (agents, slots)), shape=(n_agents, n_slots))
    try:
        rows, cols = csgraph.min_weight_full_bipartite_matching(graph)
    except ValueError as exc:
        raise SolverInfeasibleError(f"infeasible assignment: {exc}") from exc
    metrics.inc("mcf.lapjvsp_solves")
    return {int(r): int(c) for r, c in zip(rows, cols)}


def _assignment_ssp(
    n_agents: int,
    n_slots: int,
    agents: np.ndarray,
    slots: np.ndarray,
    costs: np.ndarray,
    slot_capacity: int,
) -> dict[int, int]:
    """Reference path: the successive-shortest-paths flow network."""
    s = n_agents + n_slots
    t = s + 1
    net = MinCostFlow(n_agents + n_slots + 2)
    for a in range(n_agents):
        net.add_edge(s, a, 1, 0.0)
    edge_ids: dict[tuple[int, int], int] = {}
    for agent, slot, cost in zip(agents.tolist(), slots.tolist(), costs.tolist()):
        edge_ids[(agent, slot)] = net.add_edge(agent, n_agents + slot, 1, cost)
    for slot in np.unique(slots).tolist():
        net.add_edge(n_agents + slot, t, slot_capacity, 0.0)

    flow, _cost = net.min_cost_flow(s, t, n_agents)
    if flow < n_agents - 1e-9:
        raise SolverInfeasibleError(
            f"infeasible assignment: only {flow:.0f} of {n_agents} agents placeable"
        )
    result: dict[int, int] = {}
    for (agent, slot), eid in edge_ids.items():
        if net.flow_on(eid) > 0.5:
            result[agent] = slot
    return result


def min_cost_assignment(
    n_agents: int,
    n_slots: int,
    arcs: list[tuple[int, int, float]] | ArcArrays,
    slot_capacity: int = 1,
    method: str = "auto",
) -> dict[int, int]:
    """Assign every agent to a slot at minimum total cost.

    Args:
        n_agents: Agents 0..n_agents-1; each must receive exactly one slot.
        n_slots: Slots 0..n_slots-1; each takes at most ``slot_capacity``
            agents.
        arcs: Candidate ``(agent, slot, cost)`` triples — either a list of
            tuples or a ``(agents, slots, costs)`` array triple (the DSP
            loop passes arrays to avoid materialising tuples). Duplicate
            ``(agent, slot)`` keys keep the minimum cost. Agents may only
            be assigned along a listed arc (the DSP placement restricts
            each DSP to a candidate window of sites).
        slot_capacity: Agents a slot can take; only ``1`` is eligible for
            the compiled fast path.
        method: ``"auto"`` (LAPJVsp when ``slot_capacity == 1``),
            ``"lapjvsp"``, or ``"ssp"`` (the reference flow network).

    Returns:
        ``{agent: slot}`` covering all agents.

    Raises:
        SolverInfeasibleError: If no feasible complete assignment exists.
    """
    if method not in ("auto", "lapjvsp", "ssp"):
        raise SolverInputError(f"unknown assignment method {method!r}")
    if n_agents == 0:
        return {}
    agents, slots, costs = _normalize_arcs(n_agents, n_slots, arcs)
    metrics.inc("mcf.arcs", int(agents.size))
    if np.unique(agents).size < n_agents:
        raise SolverInfeasibleError(
            f"infeasible assignment: {n_agents - np.unique(agents).size} of "
            f"{n_agents} agents have no candidate arc"
        )
    if method == "lapjvsp" and slot_capacity != 1:
        raise SolverInputError("lapjvsp requires slot_capacity == 1")
    if slot_capacity == 1 and method != "ssp":
        return _assignment_lapjvsp(n_agents, n_slots, agents, slots, costs)
    return _assignment_ssp(n_agents, n_slots, agents, slots, costs, slot_capacity)
