"""Dense Hungarian algorithm (Jonker-Volgenant potentials, O(n³)).

Reference oracle for :func:`repro.solvers.mcf.min_cost_assignment` on dense
instances; also used by tests to validate MCF integrality/optimality.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SolverInputError
from repro.obs import metrics


def hungarian(cost: np.ndarray) -> tuple[np.ndarray, float]:
    """Solve the rectangular assignment problem.

    Args:
        cost: ``(n_rows, n_cols)`` cost matrix with ``n_rows <= n_cols``.

    Returns:
        ``(col_of_row, total_cost)`` where ``col_of_row[i]`` is the column
        assigned to row ``i``.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n, m = cost.shape
    if n > m:
        raise SolverInputError("hungarian() requires n_rows <= n_cols")
    metrics.inc("hungarian.solves")
    INF = math.inf
    # 1-based potentials over rows (u) and columns (v); p[j] = row matched to col j
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    col_of_row = np.full(n, -1, dtype=np.int64)
    for j in range(1, m + 1):
        if p[j]:
            col_of_row[p[j] - 1] = j - 1
    total = float(sum(cost[i, col_of_row[i]] for i in range(n)))
    return col_of_row, total
