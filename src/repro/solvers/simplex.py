"""Dense two-phase primal simplex.

A dependency-free LP engine used as the fallback relaxation solver for the
branch-and-bound ILP (and as an independent reference for scipy's HiGHS in
the test suite). Dense tableau, Bland's anti-cycling rule — intended for the
small LPs that arise in legalization, not for the global placement systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverInputError
from repro.obs import metrics

_EPS = 1e-9


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    x: np.ndarray | None
    objective: float | None

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


def _simplex_standard(c: np.ndarray, A: np.ndarray, b: np.ndarray) -> LPResult:
    """min c@x  s.t.  A x = b, x >= 0  (b >= 0 assumed), two-phase."""
    m, n = A.shape
    # Phase 1: artificial variables.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = A
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[m, n : n + m] = 1.0
    basis = list(range(n, n + m))
    # price out artificials
    tableau[m, :] -= tableau[:m, :].sum(axis=0)

    def pivot(allowed_cols: int) -> str:
        while True:
            row_obj = tableau[m, :allowed_cols]
            enter = -1
            for j in range(allowed_cols):  # Bland: smallest index with neg cost
                if row_obj[j] < -_EPS:
                    enter = j
                    break
            if enter < 0:
                return "optimal"
            ratios = np.full(m, math.inf)
            col = tableau[:m, enter]
            pos = col > _EPS
            ratios[pos] = tableau[:m, -1][pos] / col[pos]
            if not np.isfinite(ratios).any():
                return "unbounded"
            best = math.inf
            leave = -1
            for i in range(m):  # Bland on ties: smallest basis var
                if ratios[i] < best - _EPS or (
                    ratios[i] < best + _EPS and leave >= 0 and basis[i] < basis[leave]
                ):
                    best = ratios[i]
                    leave = i
            prow = tableau[leave, :] / tableau[leave, enter]
            tableau[leave, :] = prow
            for i in range(m + 1):
                if i != leave and abs(tableau[i, enter]) > _EPS:
                    tableau[i, :] -= tableau[i, enter] * prow
            basis[leave] = enter

    status = pivot(n + m)
    if status != "optimal" or tableau[m, -1] < -1e-7:
        return LPResult("infeasible", None, None)

    # Drive any remaining artificial out of the basis (degenerate rows).
    for i in range(m):
        if basis[i] >= n:
            for j in range(n):
                if abs(tableau[i, j]) > _EPS:
                    prow = tableau[i, :] / tableau[i, j]
                    tableau[i, :] = prow
                    for k in range(m + 1):
                        if k != i and abs(tableau[k, j]) > _EPS:
                            tableau[k, :] -= tableau[k, j] * prow
                    basis[i] = j
                    break

    # Phase 2.
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for i in range(m):
        if basis[i] < n and abs(c[basis[i]]) > _EPS:
            tableau[m, :] -= c[basis[i]] * tableau[i, :]
    # artificial columns are forbidden: blank them out
    tableau[:, n : n + m] = 0.0
    status = pivot(n)
    if status == "unbounded":
        return LPResult("unbounded", None, None)
    x = np.zeros(n)
    for i in range(m):
        if basis[i] < n:
            x[basis[i]] = tableau[i, -1]
    return LPResult("optimal", x, float(c @ x))


def solve_lp_simplex(
    c: np.ndarray,
    A_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    A_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    bounds: list[tuple[float, float]] | None = None,
) -> LPResult:
    """min c@x subject to A_ub x <= b_ub, A_eq x = b_eq, lo <= x <= hi.

    Bounds default to ``(0, inf)``; finite lower bounds are shifted out and
    finite upper bounds become inequality rows. Mirrors the relevant subset
    of :func:`scipy.optimize.linprog`'s interface.
    """
    c = np.asarray(c, dtype=np.float64)
    n = c.size
    metrics.inc("simplex.solves")
    bounds = bounds or [(0.0, math.inf)] * n
    if len(bounds) != n:
        raise SolverInputError("bounds length mismatch")
    lo = np.array([b[0] for b in bounds])
    hi = np.array([math.inf if b[1] is None else b[1] for b in bounds])
    if np.any(~np.isfinite(lo)):
        raise SolverInputError("free/unbounded-below variables are not supported")

    rows_ub: list[np.ndarray] = []
    rhs_ub: list[float] = []
    if A_ub is not None:
        A_ub = np.atleast_2d(np.asarray(A_ub, dtype=np.float64))
        b_ub = np.atleast_1d(np.asarray(b_ub, dtype=np.float64))
        for i in range(A_ub.shape[0]):
            rows_ub.append(A_ub[i])
            rhs_ub.append(float(b_ub[i] - A_ub[i] @ lo))
    for j in range(n):
        if np.isfinite(hi[j]):
            row = np.zeros(n)
            row[j] = 1.0
            rows_ub.append(row)
            rhs_ub.append(float(hi[j] - lo[j]))

    rows_eq: list[np.ndarray] = []
    rhs_eq: list[float] = []
    if A_eq is not None:
        A_eq = np.atleast_2d(np.asarray(A_eq, dtype=np.float64))
        b_eq = np.atleast_1d(np.asarray(b_eq, dtype=np.float64))
        for i in range(A_eq.shape[0]):
            rows_eq.append(A_eq[i])
            rhs_eq.append(float(b_eq[i] - A_eq[i] @ lo))

    n_slack = len(rows_ub)
    n_all = n + n_slack
    m = n_slack + len(rows_eq)
    if m == 0:
        # unconstrained over x >= lo: optimal at lo for c >= 0 else unbounded
        if np.any(c < -_EPS):
            finite_fix = np.all(np.isfinite(hi[c < -_EPS]))
            if not finite_fix:
                return LPResult("unbounded", None, None)
        x = np.where(c < 0, np.where(np.isfinite(hi), hi, lo), lo)
        return LPResult("optimal", x, float(c @ x))

    A = np.zeros((m, n_all))
    b = np.zeros(m)
    for i, (row, rhs) in enumerate(zip(rows_ub, rhs_ub)):
        A[i, :n] = row
        A[i, n + i] = 1.0
        b[i] = rhs
    for k, (row, rhs) in enumerate(zip(rows_eq, rhs_eq)):
        A[n_slack + k, :n] = row
        b[n_slack + k] = rhs
    # ensure b >= 0
    neg = b < 0
    A[neg, :] *= -1.0
    b[neg] *= -1.0

    c_full = np.zeros(n_all)
    c_full[:n] = c
    res = _simplex_standard(c_full, A, b)
    if not res.ok:
        return res
    x = res.x[:n] + lo
    return LPResult("optimal", x, float(c @ x))
