"""Pipeline resilience layer.

Three cooperating pieces (see ``docs/ROBUSTNESS.md``):

- :mod:`repro.robustness.health` — :class:`RunHealth`, the per-run incident
  log attached to :class:`~repro.core.DSPlacerResult`;
- :mod:`repro.robustness.guard` — :class:`SolverGuard`, wall-clock stage
  budgets + deterministic solver fallback chains;
- :mod:`repro.robustness.faults` — :class:`FaultInjector`, deterministic
  fault injection used by the chaos test suite to prove every fallback path
  actually engages.
"""

from repro.robustness.faults import (
    CRASH_EXIT_CODE,
    EVERY_CALL,
    FaultInjector,
    active_injector,
    inject,
    maybe_fault,
)
from repro.robustness.guard import RECOVERABLE, SolverGuard
from repro.robustness.health import KINDS, HealthEvent, RunHealth

__all__ = [
    "RunHealth",
    "HealthEvent",
    "KINDS",
    "SolverGuard",
    "RECOVERABLE",
    "FaultInjector",
    "EVERY_CALL",
    "CRASH_EXIT_CODE",
    "inject",
    "maybe_fault",
    "active_injector",
]
