"""Run-health accounting: every incident the resilience layer absorbs.

A :class:`RunHealth` rides along on :class:`~repro.core.DSPlacerResult` and
records, in order, every fallback, budget hit, rollback and validation
warning the pipeline survived. ``degraded`` flips to True only when the
result itself is affected — a stage was abandoned, rolled back, or
truncated — not when a fallback engine quietly produced an equivalent
answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Incident kinds, in roughly increasing severity.
KINDS = ("warning", "retry", "fallback", "budget", "cancelled", "failure", "rollback")


@dataclass(frozen=True)
class HealthEvent:
    """One incident: which stage, what kind, human-readable detail."""

    stage: str
    kind: str  # one of KINDS
    detail: str

    def __str__(self) -> str:
        return f"[{self.stage}] {self.kind}: {self.detail}"


@dataclass
class RunHealth:
    """Ordered incident log + the overall degraded verdict for one run."""

    events: list[HealthEvent] = field(default_factory=list)
    degraded: bool = False

    def record(self, stage: str, kind: str, detail: str) -> HealthEvent:
        if kind not in KINDS:
            raise ValueError(f"unknown health event kind {kind!r}")
        event = HealthEvent(stage=stage, kind=kind, detail=detail)
        self.events.append(event)
        return event

    def warn(self, stage: str, detail: str) -> HealthEvent:
        return self.record(stage, "warning", detail)

    # ------------------------------------------------------------------
    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def n_fallbacks(self) -> int:
        return self.count("fallback")

    @property
    def n_rollbacks(self) -> int:
        return self.count("rollback")

    @property
    def n_budget_hits(self) -> int:
        return self.count("budget")

    @property
    def n_warnings(self) -> int:
        return self.count("warning")

    @property
    def ok(self) -> bool:
        """True when the run saw no incidents at all."""
        return not self.events and not self.degraded

    def of_stage(self, stage: str) -> list[HealthEvent]:
        return [e for e in self.events if e.stage == stage]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The RunReport ``health`` section (see :mod:`repro.obs.report`)."""
        return {
            "degraded": self.degraded,
            "events": [
                {"stage": e.stage, "kind": e.kind, "detail": e.detail}
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RunHealth":
        health = cls(degraded=bool(doc.get("degraded", False)))
        for e in doc.get("events", []):
            health.record(e["stage"], e["kind"], e["detail"])
        return health

    # ------------------------------------------------------------------
    def summary(self, verbose: bool = True) -> str:
        """Multi-line human summary (the CLI prints this to stderr)."""
        if self.ok:
            return "health: ok (no incidents)"
        state = "degraded" if self.degraded else "recovered"
        head = (
            f"health: {state} — {self.n_fallbacks} fallback(s), "
            f"{self.n_rollbacks} rollback(s), {self.n_budget_hits} budget hit(s), "
            f"{self.n_warnings} warning(s)"
        )
        if not verbose:
            return head
        return "\n".join([head, *(f"  {e}" for e in self.events)])
