"""SolverGuard: wall-clock budgets + deterministic fallback chains.

One guard is created per pipeline stage invocation (e.g. "assignment" for
one outer iteration). :meth:`SolverGuard.run` tries a chain of named solver
attempts in order, absorbing :class:`~repro.errors.SolverError` /
:class:`~repro.errors.LegalizationError` and recording every fallback into
the shared :class:`~repro.robustness.health.RunHealth`. The budget is
cooperative: it is checked between attempts and wherever the stage itself
calls :meth:`check_budget` / :meth:`over_budget` — Python cannot preempt a
running solve, so a stalled attempt finishes and the overrun is recorded
(and further work in that stage is refused).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence, TypeVar

from repro.errors import LegalizationError, SolverError, StageBudgetExceeded
from repro.robustness.health import RunHealth

T = TypeVar("T")

#: exception types a fallback chain may absorb — deliberately *not*
#: ReproError: validation/config/budget trouble must propagate.
RECOVERABLE = (SolverError, LegalizationError)


class SolverGuard:
    """Guards one stage's solver calls with a budget and fallback chain."""

    def __init__(
        self,
        stage: str,
        health: RunHealth,
        budget_s: float | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.stage = stage
        self.health = health
        self.budget_s = budget_s
        self._clock = clock
        self._t0 = clock()
        self._budget_recorded = False

    # -- budget ---------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    @property
    def over_budget(self) -> bool:
        return self.budget_s is not None and self.elapsed_s > self.budget_s

    def note_budget(self, detail: str) -> None:
        """Record the budget overrun once (stages may check repeatedly)."""
        if not self._budget_recorded:
            self._budget_recorded = True
            self.health.record(self.stage, "budget", detail)

    def check_budget(self) -> None:
        """Raise :class:`StageBudgetExceeded` if the budget is exhausted."""
        if self.over_budget:
            self.note_budget(
                f"{self.budget_s:.3g}s budget exhausted after {self.elapsed_s:.3g}s"
            )
            raise StageBudgetExceeded(self.stage, float(self.budget_s), self.elapsed_s)

    # -- fallback chain -------------------------------------------------
    def run(self, attempts: Sequence[tuple[str, Callable[[], T]]]) -> tuple[str, T]:
        """Try ``(name, thunk)`` attempts in order; return the first success.

        Returns ``(engine_name, result)``. Recoverable failures are logged
        and the next attempt runs; between attempts the budget is enforced
        (a chain never *starts* a fallback it has no time for). If every
        attempt fails, the last error propagates.
        """
        if not attempts:
            raise ValueError(f"stage {self.stage!r}: empty fallback chain")
        last: Exception | None = None
        for k, (name, thunk) in enumerate(attempts):
            if k > 0 and self.over_budget:
                self.note_budget(
                    f"{self.budget_s:.3g}s budget exhausted after {self.elapsed_s:.3g}s; "
                    f"skipping fallback {name!r}"
                )
                raise StageBudgetExceeded(
                    self.stage, float(self.budget_s), self.elapsed_s
                ) from last
            try:
                result = thunk()
            except RECOVERABLE as exc:
                self.health.record(self.stage, "failure", f"{name}: {exc}")
                last = exc
                continue
            if k > 0:
                self.health.record(
                    self.stage, "fallback", f"{attempts[0][0]} → {name}"
                )
            if self.over_budget:
                self.note_budget(
                    f"{name} finished {self.elapsed_s - float(self.budget_s):.3g}s "
                    f"over the {self.budget_s:.3g}s budget"
                )
            return name, result
        assert last is not None
        raise last
