"""Deterministic fault injection for chaos-testing the pipeline.

Every guarded stage calls :func:`maybe_fault` with its stage name before
doing real work. With no injector installed that is a no-op costing one
global read; under :func:`inject` the active :class:`FaultInjector` counts
the call and — if a scripted fault matches this stage and call number —
stalls (``time.sleep``) and/or raises a typed error. Faults are scripted
up-front and keyed on (stage, Nth call), so a chaos test replays bit-for-bit.

Instrumented stage names:

- ``assignment.mcf`` / ``assignment.lsa`` / ``assignment.auction`` — one
  per-iterate assignment solve on that engine;
- ``legalization.ilp`` / ``legalization.greedy`` — one inter-column attempt;
- ``incremental`` — one other-component re-place (outer iteration);
- ``prototype`` — the initial base-placer run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SolverConvergenceError

__all__ = ["FaultInjector", "inject", "maybe_fault", "active_injector"]

#: matches every call of a stage when used as the ``call`` argument
EVERY_CALL = 0


@dataclass(frozen=True)
class _Fault:
    stage: str
    call: int  # 1-based Nth call; EVERY_CALL matches all
    exc: Exception | None
    stall_s: float


@dataclass
class FaultInjector:
    """Scripted, counted faults. Install with :func:`inject`."""

    _faults: list[_Fault] = field(default_factory=list)
    _counts: dict[str, int] = field(default_factory=dict)
    _fired: list[tuple[str, int]] = field(default_factory=list)

    # -- scripting ------------------------------------------------------
    def fail_on(
        self, stage: str, call: int = 1, exc: Exception | None = None
    ) -> "FaultInjector":
        """Make ``stage`` raise on its ``call``-th invocation.

        ``exc`` defaults to a :class:`SolverConvergenceError`; pass
        ``call=EVERY_CALL`` (0) to fail every invocation.
        """
        exc = exc if exc is not None else SolverConvergenceError(
            f"injected fault in {stage!r}"
        )
        self._faults.append(_Fault(stage=stage, call=call, exc=exc, stall_s=0.0))
        return self

    def stall_on(self, stage: str, call: int = 1, seconds: float = 0.05) -> "FaultInjector":
        """Make ``stage`` sleep ``seconds`` on its ``call``-th invocation."""
        self._faults.append(_Fault(stage=stage, call=call, exc=None, stall_s=seconds))
        return self

    # -- runtime --------------------------------------------------------
    def fire(self, stage: str) -> None:
        """Count one call of ``stage`` and apply any matching fault."""
        n = self._counts.get(stage, 0) + 1
        self._counts[stage] = n
        for fault in self._faults:
            if fault.stage != stage or fault.call not in (EVERY_CALL, n):
                continue
            self._fired.append((stage, n))
            if fault.stall_s > 0:
                import time

                time.sleep(fault.stall_s)
            if fault.exc is not None:
                raise fault.exc

    # -- inspection -----------------------------------------------------
    def calls(self, stage: str) -> int:
        """How many times ``stage`` has run under this injector."""
        return self._counts.get(stage, 0)

    @property
    def fired(self) -> list[tuple[str, int]]:
        """(stage, call_number) of every fault that actually triggered."""
        return list(self._fired)


_active: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    return _active


def maybe_fault(stage: str) -> None:
    """Hook called by instrumented stages; no-op unless an injector is live."""
    if _active is not None:
        _active.fire(stage)


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` process-wide for the duration of the block."""
    global _active
    prev = _active
    _active = injector
    try:
        yield injector
    finally:
        _active = prev
