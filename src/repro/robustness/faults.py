"""Deterministic fault injection for chaos-testing the pipeline.

Every guarded stage calls :func:`maybe_fault` with its stage name before
doing real work. With no injector installed that is a no-op costing one
global read; under :func:`inject` the active :class:`FaultInjector` counts
the call and — if a scripted fault matches this stage and call number —
stalls (``time.sleep``) and/or raises a typed error. Faults are scripted
up-front and keyed on (stage, Nth call), so a chaos test replays bit-for-bit.

Instrumented stage names:

- ``assignment.mcf`` / ``assignment.lsa`` / ``assignment.auction`` — one
  per-iterate assignment solve on that engine;
- ``legalization.ilp`` / ``legalization.greedy`` — one inter-column attempt;
- ``incremental`` — one other-component re-place (outer iteration);
- ``prototype`` — the initial base-placer run.

Scripted faults also serialize (:meth:`FaultInjector.to_specs` /
:meth:`FaultInjector.from_specs`) so the serve layer can ship a fault
script across a process boundary and replay it *inside* a placement worker
— that is how the chaos suite proves worker-side fallbacks and crash
handling. The ``crash`` kind hard-kills the process via ``os._exit`` (no
exception, no cleanup), modelling an OOM kill or segfault.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SolverConvergenceError

__all__ = ["FaultInjector", "inject", "maybe_fault", "active_injector", "CRASH_EXIT_CODE"]

#: matches every call of a stage when used as the ``call`` argument
EVERY_CALL = 0


#: default exit code of a ``crash`` fault (chosen to be distinctive)
CRASH_EXIT_CODE = 66


@dataclass(frozen=True)
class _Fault:
    stage: str
    call: int  # 1-based Nth call; EVERY_CALL matches all
    exc: Exception | None
    stall_s: float
    crash_code: int | None = None  # os._exit code; None = no crash


@dataclass
class FaultInjector:
    """Scripted, counted faults. Install with :func:`inject`."""

    _faults: list[_Fault] = field(default_factory=list)
    _counts: dict[str, int] = field(default_factory=dict)
    _fired: list[tuple[str, int]] = field(default_factory=list)

    # -- scripting ------------------------------------------------------
    def fail_on(
        self, stage: str, call: int = 1, exc: Exception | None = None
    ) -> "FaultInjector":
        """Make ``stage`` raise on its ``call``-th invocation.

        ``exc`` defaults to a :class:`SolverConvergenceError`; pass
        ``call=EVERY_CALL`` (0) to fail every invocation.
        """
        exc = exc if exc is not None else SolverConvergenceError(
            f"injected fault in {stage!r}"
        )
        self._faults.append(_Fault(stage=stage, call=call, exc=exc, stall_s=0.0))
        return self

    def stall_on(self, stage: str, call: int = 1, seconds: float = 0.05) -> "FaultInjector":
        """Make ``stage`` sleep ``seconds`` on its ``call``-th invocation."""
        self._faults.append(_Fault(stage=stage, call=call, exc=None, stall_s=seconds))
        return self

    def crash_on(
        self, stage: str, call: int = 1, exitcode: int = CRASH_EXIT_CODE
    ) -> "FaultInjector":
        """Hard-kill the process (``os._exit``) on ``stage``'s Nth call.

        Models a worker dying without a traceback — the serve layer must
        turn this into a failed job, not a hang. Never use outside a
        sacrificial subprocess.
        """
        self._faults.append(
            _Fault(stage=stage, call=call, exc=None, stall_s=0.0, crash_code=exitcode)
        )
        return self

    # -- serialization (for shipping scripts into worker processes) -----
    def to_specs(self) -> list[dict]:
        """Plain-dict view of the scripted faults (JSON/pickle friendly).

        A ``fail`` spec always reconstructs as the default
        :class:`~repro.errors.SolverConvergenceError` — custom exception
        objects do not survive the round trip.
        """
        specs: list[dict] = []
        for f in self._faults:
            if f.crash_code is not None:
                specs.append(
                    {"stage": f.stage, "call": f.call, "kind": "crash", "exitcode": f.crash_code}
                )
            elif f.exc is not None:
                specs.append({"stage": f.stage, "call": f.call, "kind": "fail"})
            else:
                specs.append(
                    {"stage": f.stage, "call": f.call, "kind": "stall", "seconds": f.stall_s}
                )
        return specs

    @classmethod
    def from_specs(cls, specs: "list[dict] | tuple[dict, ...]") -> "FaultInjector":
        """Rebuild an injector from :meth:`to_specs` output."""
        inj = cls()
        for spec in specs:
            kind = spec.get("kind", "fail")
            stage = spec["stage"]
            call = int(spec.get("call", 1))
            if kind == "fail":
                inj.fail_on(stage, call=call)
            elif kind == "stall":
                inj.stall_on(stage, call=call, seconds=float(spec.get("seconds", 0.05)))
            elif kind == "crash":
                inj.crash_on(stage, call=call, exitcode=int(spec.get("exitcode", CRASH_EXIT_CODE)))
            else:
                raise ValueError(f"unknown fault spec kind {kind!r}")
        return inj

    # -- runtime --------------------------------------------------------
    def fire(self, stage: str) -> None:
        """Count one call of ``stage`` and apply any matching fault."""
        n = self._counts.get(stage, 0) + 1
        self._counts[stage] = n
        for fault in self._faults:
            if fault.stage != stage or fault.call not in (EVERY_CALL, n):
                continue
            self._fired.append((stage, n))
            if fault.crash_code is not None:
                import os

                os._exit(fault.crash_code)
            if fault.stall_s > 0:
                import time

                time.sleep(fault.stall_s)
            if fault.exc is not None:
                raise fault.exc

    # -- inspection -----------------------------------------------------
    def calls(self, stage: str) -> int:
        """How many times ``stage`` has run under this injector."""
        return self._counts.get(stage, 0)

    @property
    def fired(self) -> list[tuple[str, int]]:
        """(stage, call_number) of every fault that actually triggered."""
        return list(self._fired)


_active: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    return _active


def maybe_fault(stage: str) -> None:
    """Hook called by instrumented stages; no-op unless an injector is live."""
    if _active is not None:
        _active.fire(stage)


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` process-wide for the duration of the block."""
    global _active
    prev = _active
    _active = injector
    try:
        yield injector
    finally:
        _active = prev
