"""Congestion-aware global routing model (RUDY + detour factors)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics, trace
from repro.placers.placement import Placement
from repro.router.estimator import net_hpwl, steiner_factor


@dataclass
class RoutingResult:
    """Outcome of the congestion/routing model.

    Attributes:
        net_detour: Per-net detour factor (≥ 1).
        net_routed_len: Per-net routed wirelength (µm).
        congestion: ``(gx, gy)`` demand/capacity utilization map.
        total_wirelength: Σ routed wirelength (µm) — the Table II metric.
        overflow_frac: Fraction of bins above capacity.
    """

    net_detour: np.ndarray
    net_routed_len: np.ndarray
    congestion: np.ndarray
    total_wirelength: float
    overflow_frac: float

    @property
    def max_congestion(self) -> float:
        return float(self.congestion.max()) if self.congestion.size else 0.0


class GlobalRouter:
    """RUDY demand estimation with per-net congestion detours.

    Args:
        grid: Congestion bin grid (gx, gy).
        capacity: Routing capacity per bin in µm of wire per µm² of bin
            area; calibrated so the benchmark designs land at moderate
            average utilization, with hotspots above 1.0.
        detour_strength: How strongly over-capacity bins stretch the nets
            crossing them.
    """

    def __init__(
        self,
        grid: tuple[int, int] = (48, 48),
        capacity: float = 1.0,
        detour_strength: float = 0.6,
    ) -> None:
        self.grid = grid
        self.capacity = capacity
        self.detour_strength = detour_strength

    def route(self, placement: Placement) -> RoutingResult:
        """Estimate congestion and routed length for every net."""
        with trace.span("route", grid=list(self.grid)) as sp:
            result = self._route_impl(placement)
            sp.set(
                wirelength_um=result.total_wirelength,
                overflow_frac=result.overflow_frac,
            )
        metrics.inc("router.routes")
        metrics.gauge("router.wirelength_um", result.total_wirelength)
        metrics.gauge("router.overflow_frac", result.overflow_frac)
        return result

    def _route_impl(self, placement: Placement) -> RoutingResult:
        dev = placement.device
        gx, gy = self.grid
        bw = dev.width / gx
        bh = dev.height / gy

        xmin, xmax, ymin, ymax = placement.net_bboxes()
        hp = (xmax - xmin) + (ymax - ymin)
        fanouts = np.array([n.degree for n in placement.netlist.nets], dtype=np.float64)
        wl = hp * steiner_factor(fanouts)

        # bin index ranges of each net bbox (inclusive)
        bx0 = np.clip((xmin / bw).astype(np.int64), 0, gx - 1)
        bx1 = np.clip((xmax / bw).astype(np.int64), 0, gx - 1)
        by0 = np.clip((ymin / bh).astype(np.int64), 0, gy - 1)
        by1 = np.clip((ymax / bh).astype(np.int64), 0, gy - 1)
        nbins = (bx1 - bx0 + 1) * (by1 - by0 + 1)

        # RUDY: smear each net's wirelength uniformly over its bbox bins,
        # accumulated with a 2-D difference array (O(1) per net).
        diff = np.zeros((gx + 1, gy + 1))
        dens = wl / nbins
        np.add.at(diff, (bx0, by0), dens)
        np.add.at(diff, (bx1 + 1, by0), -dens)
        np.add.at(diff, (bx0, by1 + 1), -dens)
        np.add.at(diff, (bx1 + 1, by1 + 1), dens)
        demand = np.cumsum(np.cumsum(diff, axis=0), axis=1)[:gx, :gy]

        bin_capacity = self.capacity * bw * bh
        congestion = demand / bin_capacity
        overflow_frac = float((congestion > 1.0).mean())

        # per-net average congestion over its bbox via an integral image
        integ = np.zeros((gx + 1, gy + 1))
        integ[1:, 1:] = congestion.cumsum(axis=0).cumsum(axis=1)
        box_sum = (
            integ[bx1 + 1, by1 + 1]
            - integ[bx0, by1 + 1]
            - integ[bx1 + 1, by0]
            + integ[bx0, by0]
        )
        avg_cong = box_sum / nbins
        detour = 1.0 + self.detour_strength * np.maximum(0.0, avg_cong - 1.0)
        detour = np.minimum(detour, 2.5)  # routers give up before 2.5× detours
        routed = wl * detour
        return RoutingResult(
            net_detour=detour,
            net_routed_len=routed,
            congestion=congestion,
            total_wirelength=float(routed.sum()),
            overflow_frac=overflow_frac,
        )
