"""Routing substrate: congestion estimation and routed-wirelength modelling.

Stands in for Vivado's router + RapidWright's wirelength computation in the
paper's evaluation. Routing demand is estimated with the RUDY model (uniform
wirelength smearing over each net's bounding box via 2-D difference arrays),
per-net detour factors grow with the congestion a net's bounding box
overlaps, and routed wirelength = HPWL × Steiner correction × detour. The
detour factors feed the STA net delays, which is how the paper's observed
"compactness ⇒ medium congestion ⇒ slightly longer routing" trade-off
materializes in this reproduction.
"""

from repro.router.estimator import net_hpwl, steiner_factor
from repro.router.global_router import GlobalRouter, RoutingResult
from repro.router.pattern_router import PatternRouter

__all__ = ["net_hpwl", "steiner_factor", "GlobalRouter", "RoutingResult", "PatternRouter"]
