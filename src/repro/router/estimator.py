"""Per-net wirelength estimators."""

from __future__ import annotations

import numpy as np

from repro.placers.placement import Placement


def net_hpwl(placement: Placement) -> np.ndarray:
    """Half-perimeter wirelength of every net (µm)."""
    xmin, xmax, ymin, ymax = placement.net_bboxes()
    return (xmax - xmin) + (ymax - ymin)


def steiner_factor(fanouts: np.ndarray) -> np.ndarray:
    """HPWL → Steiner-tree length correction per net.

    The classic fanout correction (cf. FLUTE calibrations): HPWL is exact
    for 2–3 pin nets and underestimates larger nets roughly with √fanout.
    """
    f = np.asarray(fanouts, dtype=np.float64)
    return np.where(f <= 2, 1.0, 0.5 + 0.5 * np.sqrt(np.maximum(f, 1.0)))
