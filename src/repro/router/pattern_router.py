"""Edge-capacity pattern router (L and Z shapes with rip-up & re-route).

A step up in fidelity from the RUDY estimator: the fabric is a grid of
routing bins with per-edge wire capacity; every driver→sink connection is
routed as an L (1 bend) or Z (2 bends) pattern chosen by congestion-aware
cost; overloaded edges raise their history cost and every connection is
ripped up and re-routed against the updated grids (classic negotiated
congestion, PathFinder style, restricted to pattern routes for speed).

Negotiation semantics: each round scores **all** connections against the
usage grids frozen at the start of the round — with a connection's own
previous route ripped up for its own scoring — then applies every chosen
route in one batch. This Jacobi-style formulation is what makes the hot
path a handful of gathers and one scatter-add per round
(``method="vectorized"``, the default); ``method="reference"`` runs the
same semantics as per-connection Python loops and is the equivalence-test
oracle. In the uncongested regime (no edge above capacity, the early-exit
case) both are also behavior-identical to the historical sequential
router: every candidate of a connection crosses the same number of bins,
so with no overload term the first candidate wins either way.

The result carries actual per-net routed lengths and an edge-utilization
map; :meth:`PatternRouter.route` returns the same
:class:`~repro.router.global_router.RoutingResult` interface so it can be
swapped into any flow (`GlobalRouter` remains the default — it is still
faster and Table II's shape does not depend on the difference; the router
bench quantifies the correlation between the two).
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics, trace
from repro.placers.placement import Placement
from repro.router.estimator import steiner_factor
from repro.router.global_router import RoutingResult

#: candidate pattern order (index = candidate id, scoring tie-break order)
_CAND_L_XY = 0  # L: x then y
_CAND_L_YX = 1  # L: y then x
_CAND_Z_H = 2  # Z with a horizontal middle leg
_CAND_Z_V = 3  # Z with a vertical middle leg
N_CANDIDATES = 4


def candidate_paths(bx0: int, by0: int, bx1: int, by1: int) -> list[list[tuple[str, int, int]]]:
    """Deduplicated L/Z candidate edge paths between two bins.

    Every path is a list of ``(kind, i, j)`` edges (``kind`` ``"h"`` or
    ``"v"``). Degenerate candidates are skipped: for straight (same-row or
    same-column) connections both L patterns — and any Z pattern — collapse
    onto the identical path, so only the first is emitted (historically the
    duplicate was cost-evaluated once more per connection per round). A
    same-bin connection yields a single empty path.
    """

    def h_run(y: int, xa: int, xb: int) -> list[tuple[str, int, int]]:
        lo, hi = sorted((xa, xb))
        return [("h", x, y) for x in range(lo, hi)]

    def v_run(x: int, ya: int, yb: int) -> list[tuple[str, int, int]]:
        lo, hi = sorted((ya, yb))
        return [("v", x, y) for y in range(lo, hi)]

    dx = bx1 - bx0
    dy = by1 - by0
    outs = [h_run(by0, bx0, bx1) + v_run(bx1, by0, by1)]  # L: x then y
    if dx != 0 and dy != 0:
        outs.append(v_run(bx0, by0, by1) + h_run(by1, bx0, bx1))  # L: y then x
    if abs(dx) >= 2 and dy != 0:  # Z with a horizontal middle leg
        xm = (bx0 + bx1) // 2
        outs.append(h_run(by0, bx0, xm) + v_run(xm, by0, by1) + h_run(by1, xm, bx1))
    if abs(dy) >= 2 and dx != 0:  # Z with a vertical middle leg
        ym = (by0 + by1) // 2
        outs.append(v_run(bx0, by0, ym) + h_run(ym, bx0, bx1) + v_run(bx1, ym, by1))
    return outs


class _ConnectionBatch:
    """All driver→sink connections of a placement as flat bin-edge arrays.

    Candidate geometry is static across negotiation rounds, so the edge
    index arrays are built once: every candidate of a connection crosses
    exactly ``|dx|`` horizontal and ``|dy|`` vertical bin boundaries — the
    candidates only differ in *which row* each horizontal edge uses (and
    which column each vertical edge uses). ``h_y[cand, e]`` / ``v_x[cand,
    e]`` hold those per-candidate coordinates for every flat edge.
    """

    def __init__(self, net_id: np.ndarray, bx0, by0, bx1, by1) -> None:
        self.net_id = net_id
        self.x0, self.y0, self.x1, self.y1 = bx0, by0, bx1, by1
        c = len(net_id)
        self.n = c
        dx = bx1 - bx0
        dy = by1 - by0
        self.nh = np.abs(dx)
        self.nv = np.abs(dy)
        xm = (bx0 + bx1) // 2
        ym = (by0 + by1) // 2

        # candidate validity (duplicates of earlier candidates are invalid)
        self.valid = np.column_stack(
            [
                np.ones(c, dtype=bool),
                (dx != 0) & (dy != 0),
                (self.nh >= 2) & (dy != 0),
                (self.nv >= 2) & (dx != 0),
            ]
        )

        # flat horizontal edges: connection id + x, plus per-candidate y
        self.h_conn = np.repeat(np.arange(c, dtype=np.int64), self.nh)
        off = np.arange(self.h_conn.size, dtype=np.int64) - np.repeat(
            np.cumsum(self.nh) - self.nh, self.nh
        )
        self.h_x = np.minimum(bx0, bx1)[self.h_conn] + off
        y0e = by0[self.h_conn]
        y1e = by1[self.h_conn]
        self.h_y = np.empty((N_CANDIDATES, self.h_conn.size), dtype=np.int64)
        self.h_y[_CAND_L_XY] = y0e
        self.h_y[_CAND_L_YX] = y1e
        first_leg = (self.h_x < xm[self.h_conn]) != (bx0 > bx1)[self.h_conn]
        self.h_y[_CAND_Z_H] = np.where(first_leg, y0e, y1e)
        self.h_y[_CAND_Z_V] = ym[self.h_conn]

        # flat vertical edges: connection id + y, plus per-candidate x
        self.v_conn = np.repeat(np.arange(c, dtype=np.int64), self.nv)
        off = np.arange(self.v_conn.size, dtype=np.int64) - np.repeat(
            np.cumsum(self.nv) - self.nv, self.nv
        )
        self.v_y = np.minimum(by0, by1)[self.v_conn] + off
        x0e = bx0[self.v_conn]
        x1e = bx1[self.v_conn]
        self.v_x = np.empty((N_CANDIDATES, self.v_conn.size), dtype=np.int64)
        self.v_x[_CAND_L_XY] = x1e
        self.v_x[_CAND_L_YX] = x0e
        self.v_x[_CAND_Z_H] = xm[self.v_conn]
        first_leg = (self.v_y < ym[self.v_conn]) != (by0 > by1)[self.v_conn]
        self.v_x[_CAND_Z_V] = np.where(first_leg, x0e, x1e)


class PatternRouter:
    """L/Z pattern router over a bin-edge capacity grid."""

    def __init__(
        self,
        grid: tuple[int, int] = (32, 32),
        capacity_per_edge: float = 110.0,
        n_rounds: int = 3,
        history_cost: float = 0.5,
        detour_strength: float = 0.6,
        max_connections: int = 250_000,
        method: str = "vectorized",
    ) -> None:
        if method not in ("vectorized", "reference"):
            raise ValueError(f"unknown pattern-router method {method!r}")
        self.grid = grid
        self.capacity_per_edge = capacity_per_edge
        self.n_rounds = n_rounds
        self.history_cost = history_cost
        self.detour_strength = detour_strength
        self.max_connections = max_connections
        self.method = method

    # ------------------------------------------------------------------
    def route(self, placement: Placement) -> RoutingResult:
        with trace.span("router.route", method=self.method, grid=list(self.grid)) as sp:
            result = self._route_impl(placement)
            sp.set(
                wirelength_um=result.total_wirelength,
                overflow_frac=result.overflow_frac,
            )
        metrics.inc("router.pattern_routes")
        metrics.gauge("router.wirelength_um", result.total_wirelength)
        metrics.gauge("router.overflow_frac", result.overflow_frac)
        return result

    def _route_impl(self, placement: Placement) -> RoutingResult:
        batch = self._connections(placement)
        if batch.n > self.max_connections:
            raise ValueError(
                f"{batch.n} connections exceed max_connections; raise the cap "
                "or use the RUDY GlobalRouter at this scale"
            )
        if self.method == "vectorized":
            usage_h, usage_v = self._negotiate_vectorized(batch)
        else:
            usage_h, usage_v = self._negotiate_reference(batch)
        return self._finish(placement, batch, usage_h, usage_v)

    def _connections(self, placement: Placement) -> _ConnectionBatch:
        """One connection per driver→sink pair, in net order, as bin coords."""
        dev = placement.device
        gx, gy = self.grid
        bw = dev.width / gx
        bh = dev.height / gy
        nets = placement.netlist.nets
        n_sinks = np.array([len(net.sinks) for net in nets], dtype=np.int64)
        drivers = np.array([net.driver for net in nets], dtype=np.int64)
        sinks = np.fromiter(
            (s for net in nets for s in net.sinks), dtype=np.int64, count=int(n_sinks.sum())
        )
        net_id = np.repeat(np.arange(len(nets), dtype=np.int64), n_sinks)
        dxy = placement.xy[drivers[net_id]]
        sxy = placement.xy[sinks]
        bx0 = np.clip((dxy[:, 0] // bw).astype(np.int64), 0, gx - 1)
        by0 = np.clip((dxy[:, 1] // bh).astype(np.int64), 0, gy - 1)
        bx1 = np.clip((sxy[:, 0] // bw).astype(np.int64), 0, gx - 1)
        by1 = np.clip((sxy[:, 1] // bh).astype(np.int64), 0, gy - 1)
        return _ConnectionBatch(net_id, bx0, by0, bx1, by1)

    # ------------------------------------------------------------------
    # negotiation engines (identical semantics; see module docstring)
    # ------------------------------------------------------------------
    def _negotiate_vectorized(self, batch: _ConnectionBatch):
        gx, gy = self.grid
        cap = self.capacity_per_edge
        history_h = np.zeros((gx - 1) * gy)
        history_v = np.zeros(gx * (gy - 1))
        usage_h = np.zeros((gx - 1) * gy)
        usage_v = np.zeros(gx * (gy - 1))

        h_flat = batch.h_x * gy + batch.h_y  # (4, H) flat edge ids
        v_flat = batch.v_x * (gy - 1) + batch.v_y  # (4, V)
        arange_h = np.arange(batch.h_conn.size)
        arange_v = np.arange(batch.v_conn.size)
        cand_cost = np.empty((batch.n, N_CANDIDATES))
        choice: np.ndarray | None = None

        for rnd in range(self.n_rounds):
            # per-edge cost seen by a connection: 1 + history + overload of
            # the frozen round-start usage (own previous route ripped up)
            full_h = 1.0 + history_h + np.maximum(0.0, usage_h + 1.0 - cap)
            full_v = 1.0 + history_v + np.maximum(0.0, usage_v + 1.0 - cap)
            ripped_h = 1.0 + history_h + np.maximum(0.0, usage_h - cap)
            ripped_v = 1.0 + history_v + np.maximum(0.0, usage_v - cap)
            if choice is not None:
                h_old = h_flat[choice[batch.h_conn], arange_h]
                v_old = v_flat[choice[batch.v_conn], arange_v]
            for j in range(N_CANDIDATES):
                cost_h = full_h[h_flat[j]]
                cost_v = full_v[v_flat[j]]
                if choice is not None:
                    own = h_flat[j] == h_old
                    cost_h = np.where(own, ripped_h[h_flat[j]], cost_h)
                    own = v_flat[j] == v_old
                    cost_v = np.where(own, ripped_v[v_flat[j]], cost_v)
                cand_cost[:, j] = np.bincount(
                    batch.h_conn, weights=cost_h, minlength=batch.n
                ) + np.bincount(batch.v_conn, weights=cost_v, minlength=batch.n)
            cand_cost[~batch.valid] = np.inf
            choice = np.argmin(cand_cost, axis=1)

            usage_h = np.bincount(
                h_flat[choice[batch.h_conn], arange_h], minlength=usage_h.size
            ).astype(np.float64)
            usage_v = np.bincount(
                v_flat[choice[batch.v_conn], arange_v], minlength=usage_v.size
            ).astype(np.float64)
            history_h += self.history_cost * np.maximum(0.0, usage_h - cap) / max(cap, 1.0)
            history_v += self.history_cost * np.maximum(0.0, usage_v - cap) / max(cap, 1.0)
            if (usage_h.size == 0 or usage_h.max() <= cap) and (
                usage_v.size == 0 or usage_v.max() <= cap
            ):
                break
        return usage_h.reshape(gx - 1, gy), usage_v.reshape(gx, gy - 1)

    def _negotiate_reference(self, batch: _ConnectionBatch):
        """Per-connection loop engine with the same frozen-round semantics."""
        gx, gy = self.grid
        cap = self.capacity_per_edge
        usage_h = np.zeros((gx - 1, gy))
        usage_v = np.zeros((gx, gy - 1))
        history_h = np.zeros_like(usage_h)
        history_v = np.zeros_like(usage_v)
        cands = [
            candidate_paths(
                int(batch.x0[c]), int(batch.y0[c]), int(batch.x1[c]), int(batch.y1[c])
            )
            for c in range(batch.n)
        ]
        routes: dict[int, list[tuple[str, int, int]]] = {}

        for rnd in range(self.n_rounds):
            base_h = usage_h.copy()
            base_v = usage_v.copy()

            def edge_cost(kind: str, i: int, j: int, own: set) -> float:
                rip = 1.0 if (kind, i, j) in own else 0.0
                if kind == "h":
                    over = max(0.0, base_h[i, j] - rip + 1.0 - cap)
                    return 1.0 + history_h[i, j] + over
                over = max(0.0, base_v[i, j] - rip + 1.0 - cap)
                return 1.0 + history_v[i, j] + over

            new_routes: dict[int, list[tuple[str, int, int]]] = {}
            for ci in range(batch.n):
                own = set(routes.get(ci, ()))
                best_path: list[tuple[str, int, int]] | None = None
                best_cost = np.inf
                for path in cands[ci]:
                    c = sum(edge_cost(k, i, j, own) for k, i, j in path)
                    if c < best_cost:
                        best_cost = c
                        best_path = path
                new_routes[ci] = best_path if best_path is not None else []
            routes = new_routes
            usage_h[:] = 0.0
            usage_v[:] = 0.0
            for path in routes.values():
                for kind, i, j in path:
                    if kind == "h":
                        usage_h[i, j] += 1.0
                    else:
                        usage_v[i, j] += 1.0
            history_h += self.history_cost * np.maximum(0.0, usage_h - cap) / max(cap, 1.0)
            history_v += self.history_cost * np.maximum(0.0, usage_v - cap) / max(cap, 1.0)
            if usage_h.max(initial=0.0) <= cap and usage_v.max(initial=0.0) <= cap:
                break
        return usage_h, usage_v

    # ------------------------------------------------------------------
    def _finish(
        self,
        placement: Placement,
        batch: _ConnectionBatch,
        usage_h: np.ndarray,
        usage_v: np.ndarray,
    ) -> RoutingResult:
        dev = placement.device
        gx, gy = self.grid
        bw = dev.width / gx
        bh = dev.height / gy
        nets = placement.netlist.nets

        xmin, xmax, ymin, ymax = placement.net_bboxes()
        hp = (xmax - xmin) + (ymax - ymin)
        fanouts = np.array([n.degree for n in nets], dtype=np.float64)
        base = hp * steiner_factor(fanouts)
        # every candidate of a connection crosses |dx| h- and |dy| v-edges,
        # so routed bin length is independent of which pattern won
        routed_bins = np.bincount(
            batch.net_id, weights=batch.nh * bw + batch.nv * bh, minlength=len(nets)
        )
        # a net's pattern length across sinks double-counts shared trunks;
        # scale to the Steiner estimate and never report below it
        routed = np.maximum(base, np.minimum(routed_bins, base * 2.5))
        with np.errstate(divide="ignore", invalid="ignore"):
            detour = np.where(base > 0, routed / base, 1.0)

        cong_h = usage_h / self.capacity_per_edge
        cong_v = usage_v / self.capacity_per_edge
        congestion = np.zeros((gx, gy))
        congestion[: gx - 1, :] = np.maximum(congestion[: gx - 1, :], cong_h)
        congestion[1:, :] = np.maximum(congestion[1:, :], cong_h)
        congestion[:, : gy - 1] = np.maximum(congestion[:, : gy - 1], cong_v)
        congestion[:, 1:] = np.maximum(congestion[:, 1:], cong_v)
        overflow = float(
            ((cong_h > 1.0).sum() + (cong_v > 1.0).sum())
            / max(cong_h.size + cong_v.size, 1)
        )
        return RoutingResult(
            net_detour=np.clip(detour, 1.0, 2.5),
            net_routed_len=routed,
            congestion=congestion,
            total_wirelength=float(routed.sum()),
            overflow_frac=overflow,
        )
