"""Edge-capacity pattern router (L and Z shapes with rip-up & re-route).

A step up in fidelity from the RUDY estimator: the fabric is a grid of
routing bins with per-edge wire capacity; every driver→sink connection is
routed as an L (1 bend) or Z (2 bends) pattern chosen by congestion-aware
cost; overloaded edges raise their history cost and the most congested nets
are ripped up and re-routed (classic negotiated congestion, PathFinder
style, restricted to pattern routes for speed).

The result carries actual per-net routed lengths and an edge-utilization
map; :meth:`PatternRouter.route` returns the same
:class:`~repro.router.global_router.RoutingResult` interface so it can be
swapped into any flow (`GlobalRouter` remains the default — it is ~50×
faster and Table II's shape does not depend on the difference; the router
bench quantifies the correlation between the two).
"""

from __future__ import annotations

import numpy as np

from repro.placers.placement import Placement
from repro.router.estimator import steiner_factor
from repro.router.global_router import RoutingResult


class PatternRouter:
    """L/Z pattern router over a bin-edge capacity grid."""

    def __init__(
        self,
        grid: tuple[int, int] = (32, 32),
        capacity_per_edge: float = 110.0,
        n_rounds: int = 3,
        history_cost: float = 0.5,
        detour_strength: float = 0.6,
        max_connections: int = 250_000,
    ) -> None:
        self.grid = grid
        self.capacity_per_edge = capacity_per_edge
        self.n_rounds = n_rounds
        self.history_cost = history_cost
        self.detour_strength = detour_strength
        self.max_connections = max_connections

    # ------------------------------------------------------------------
    def route(self, placement: Placement) -> RoutingResult:
        dev = placement.device
        gx, gy = self.grid
        bw = dev.width / gx
        bh = dev.height / gy

        # connections: one per driver→sink pair, weighted by net share
        nets = placement.netlist.nets
        conns: list[tuple[int, int, int, int, int]] = []  # net, bx0, by0, bx1, by1
        for net in nets:
            dx, dy = placement.xy[net.driver]
            b0 = (int(np.clip(dx // bw, 0, gx - 1)), int(np.clip(dy // bh, 0, gy - 1)))
            for s in net.sinks:
                sx, sy = placement.xy[s]
                b1 = (int(np.clip(sx // bw, 0, gx - 1)), int(np.clip(sy // bh, 0, gy - 1)))
                conns.append((net.index, b0[0], b0[1], b1[0], b1[1]))
        if len(conns) > self.max_connections:
            raise ValueError(
                f"{len(conns)} connections exceed max_connections; raise the cap "
                "or use the RUDY GlobalRouter at this scale"
            )

        # horizontal edges: (gx-1, gy); vertical edges: (gx, gy-1)
        usage_h = np.zeros((gx - 1, gy))
        usage_v = np.zeros((gx, gy - 1))
        history_h = np.zeros_like(usage_h)
        history_v = np.zeros_like(usage_v)
        routes: dict[int, list[tuple[str, int, int]]] = {}

        def edge_cost(kind: str, i: int, j: int) -> float:
            if kind == "h":
                over = max(0.0, usage_h[i, j] + 1.0 - self.capacity_per_edge)
                return 1.0 + history_h[i, j] + over
            over = max(0.0, usage_v[i, j] + 1.0 - self.capacity_per_edge)
            return 1.0 + history_v[i, j] + over

        def h_run(y: int, x0: int, x1: int):
            lo, hi = sorted((x0, x1))
            return [("h", x, y) for x in range(lo, hi)]

        def v_run(x: int, y0: int, y1: int):
            lo, hi = sorted((y0, y1))
            return [("v", x, y) for y in range(lo, hi)]

        def candidates(bx0, by0, bx1, by1):
            outs = []
            outs.append(h_run(by0, bx0, bx1) + v_run(bx1, by0, by1))  # L: x then y
            outs.append(v_run(bx0, by0, by1) + h_run(by1, bx0, bx1))  # L: y then x
            if abs(bx1 - bx0) >= 2:  # Z with a horizontal middle leg
                xm = (bx0 + bx1) // 2
                outs.append(
                    h_run(by0, bx0, xm) + v_run(xm, by0, by1) + h_run(by1, xm, bx1)
                )
            if abs(by1 - by0) >= 2:  # Z with a vertical middle leg
                ym = (by0 + by1) // 2
                outs.append(
                    v_run(bx0, by0, ym) + h_run(ym, bx0, bx1) + v_run(bx1, ym, by1)
                )
            return outs

        def apply(path, sign: float):
            for kind, i, j in path:
                if kind == "h":
                    usage_h[i, j] += sign
                else:
                    usage_v[i, j] += sign

        # initial routing + negotiated rounds
        order = list(range(len(conns)))
        for rnd in range(self.n_rounds):
            for ci in order:
                nid, bx0, by0, bx1, by1 = conns[ci]
                if rnd > 0:
                    old = routes.get(ci)
                    if old is not None:
                        apply(old, -1.0)
                best_path = None
                best_cost = np.inf
                for path in candidates(bx0, by0, bx1, by1):
                    c = sum(edge_cost(k, i, j) for k, i, j in path)
                    if c < best_cost:
                        best_cost = c
                        best_path = path
                routes[ci] = best_path or []
                apply(routes[ci], +1.0)
            # raise history cost on overloaded edges
            history_h += self.history_cost * np.maximum(
                0.0, usage_h - self.capacity_per_edge
            ) / max(self.capacity_per_edge, 1.0)
            history_v += self.history_cost * np.maximum(
                0.0, usage_v - self.capacity_per_edge
            ) / max(self.capacity_per_edge, 1.0)
            if usage_h.max() <= self.capacity_per_edge and usage_v.max() <= self.capacity_per_edge:
                break

        # per-net routed length and detour
        xmin, xmax, ymin, ymax = placement.net_bboxes()
        hp = (xmax - xmin) + (ymax - ymin)
        fanouts = np.array([n.degree for n in nets], dtype=np.float64)
        base = hp * steiner_factor(fanouts)
        routed_bins = np.zeros(len(nets))
        for ci, path in routes.items():
            nid = conns[ci][0]
            for kind, _i, _j in path:
                routed_bins[nid] += bw if kind == "h" else bh
        # a net's pattern length across sinks double-counts shared trunks;
        # scale to the Steiner estimate and never report below it
        routed = np.maximum(base, np.minimum(routed_bins, base * 2.5))
        with np.errstate(divide="ignore", invalid="ignore"):
            detour = np.where(base > 0, routed / base, 1.0)

        cong_h = usage_h / self.capacity_per_edge
        cong_v = usage_v / self.capacity_per_edge
        congestion = np.zeros((gx, gy))
        congestion[: gx - 1, :] = np.maximum(congestion[: gx - 1, :], cong_h)
        congestion[1:, :] = np.maximum(congestion[1:, :], cong_h)
        congestion[:, : gy - 1] = np.maximum(congestion[:, : gy - 1], cong_v)
        congestion[:, 1:] = np.maximum(congestion[:, 1:], cong_v)
        overflow = float(
            ((cong_h > 1.0).sum() + (cong_v > 1.0).sum())
            / max(cong_h.size + cong_v.size, 1)
        )
        return RoutingResult(
            net_detour=np.clip(detour, 1.0, 2.5),
            net_routed_len=routed,
            congestion=congestion,
            total_wirelength=float(routed.sum()),
            overflow_frac=overflow,
        )
