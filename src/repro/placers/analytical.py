"""Quadratic analytical global placement with density spreading.

The classic analytical-placer loop (Section I's scalable family: RippleFPGA,
UTPlaceF, AMF-Placer all share this skeleton):

1. minimize quadratic wirelength ``Σ w_ij ((x_i−x_j)² + (y_i−y_j)²)`` with
   fixed cells as boundary conditions (sparse CG solves);
2. spread overlapping cells by histogram-equalizing the placement
   marginals (x globally, then y within vertical slabs);
3. re-solve with pseudo-anchors of growing weight pulling cells toward
   their spread positions, and iterate.

The engine also supports *incremental* mode: an arbitrary movable mask plus
warm-start positions, which is how DSPlacer alternates "fix datapath DSPs,
re-place everything else" (paper Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fpga.device import Device
from repro.netlist.csr import get_csr
from repro.netlist.graph import connectivity_matrix
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.placers.b2b import b2b_adjacency
from repro.placers.placement import Placement

#: Approximate site area demand per cell kind, in CLB-cell units.
CELL_AREA = {"LUT": 1.0, "LUTRAM": 1.5, "FF": 1.0, "CARRY": 1.0, "DSP": 8.0, "BRAM": 12.0}


@dataclass(frozen=True)
class GlobalPlaceConfig:
    """Knobs of the quadratic placement loop."""

    n_iterations: int = 6
    n_bins: int = 32
    n_slabs: int = 4
    anchor_weight: float = 0.02
    anchor_growth: float = 1.8
    cg_rtol: float = 1e-5
    cg_maxiter: int = 500
    avoid_ps: bool = True
    use_net_weights: bool = True
    #: The fabric extent the spreading *believes* in, relative to the real
    #: device. 1.0 = calibrated. >1 models a placer tuned for a larger part
    #: (AMF-Placer's VCU108 heritage): spread targets overshoot the fabric
    #: and legalization has to drag everything back in.
    fabric_scale: float = 1.0
    #: "vectorized" (grouped equalization over all slabs at once) or
    #: "reference" (per-slab Python loop, the equivalence-test oracle)
    spread_method: str = "vectorized"
    #: Wirelength model: "clique" (fixed connectivity Laplacian, built
    #: once) or "b2b" (Bound2Bound — rebuilt from current positions before
    #: every solve; the first solve bootstraps from the clique model since
    #: all movable cells start collapsed at the fabric centre).
    net_model: str = "clique"
    #: B2B assembly engine: "vectorized" or "reference" (per-net loop).
    b2b_method: str = "vectorized"
    #: B2B pin-distance clamp (µm) — collapsed pins keep finite springs.
    b2b_eps: float = 1.0
    seed: int = 0


class QuadraticGlobalPlacer:
    """Reusable quadratic global placement engine."""

    def __init__(self, config: GlobalPlaceConfig | None = None) -> None:
        self.config = config or GlobalPlaceConfig()
        if self.config.spread_method not in ("vectorized", "reference"):
            raise ValueError(f"unknown spread_method {self.config.spread_method!r}")
        if self.config.net_model not in ("clique", "b2b"):
            raise ValueError(f"unknown net_model {self.config.net_model!r}")
        if self.config.b2b_method not in ("vectorized", "reference"):
            raise ValueError(f"unknown b2b_method {self.config.b2b_method!r}")

    # ------------------------------------------------------------------
    def place(
        self,
        netlist: Netlist,
        device: Device,
        placement: Placement | None = None,
        movable_mask: np.ndarray | None = None,
    ) -> Placement:
        """Produce a (continuous, possibly overlapping) global placement.

        Args:
            placement: Warm start; non-movable cells keep these coordinates
                and act as fixed boundary conditions.
            movable_mask: Which cells to move. Defaults to all non-fixed
                cells.

        Returns:
            A new :class:`Placement` with updated coordinates for movable
            cells (sites are *not* assigned — run a legalizer next).
        """
        with trace.span("global_place", n_iterations=self.config.n_iterations):
            metrics.inc("global_place.solves")
            return self._place_impl(netlist, device, placement, movable_mask)

    def _place_impl(
        self,
        netlist: Netlist,
        device: Device,
        placement: Placement | None,
        movable_mask: np.ndarray | None,
    ) -> Placement:
        cfg = self.config
        n = len(netlist.cells)
        place = placement.copy() if placement is not None else Placement(netlist, device)
        if movable_mask is None:
            movable_mask = np.array([not c.is_fixed for c in netlist.cells])
        movable_mask = np.asarray(movable_mask, dtype=bool)
        for cell in netlist.cells:  # fixed cells can never move
            if cell.is_fixed:
                movable_mask[cell.index] = False
        mov = np.flatnonzero(movable_mask)
        if mov.size == 0:
            return place

        w = connectivity_matrix(netlist, use_net_weights=cfg.use_net_weights)
        deg = np.asarray(w.sum(axis=1)).ravel()
        lap = sp.diags(deg) - w
        lap_mm = lap[mov][:, mov].tocsr()
        fix = np.flatnonzero(~movable_mask)
        w_mf = w[mov][:, fix].tocsr()

        areas = np.array(
            [CELL_AREA.get(netlist.cells[i].ctype.value, 1.0) for i in mov]
        )
        rng = np.random.default_rng(cfg.seed)
        # tiny jitter breaks exact ties so the spreading has gradients to use
        xy_f = place.xy[fix]
        bx = w_mf @ xy_f[:, 0]
        by = w_mf @ xy_f[:, 1]

        def _solve(alpha: float, target: np.ndarray | None) -> np.ndarray:
            a = lap_mm + sp.diags(np.full(mov.size, alpha + 1e-9))
            rhs_x = bx + (alpha * target[:, 0] if target is not None else 0.0)
            rhs_y = by + (alpha * target[:, 1] if target is not None else 0.0)
            diag = a.diagonal()
            m = sp.diags(1.0 / np.maximum(diag, 1e-12))
            x0 = place.xy[mov, 0]
            y0 = place.xy[mov, 1]
            sol_x, _ = spla.cg(a, rhs_x, x0=x0, rtol=cfg.cg_rtol, maxiter=cfg.cg_maxiter, M=m)
            sol_y, _ = spla.cg(a, rhs_y, x0=y0, rtol=cfg.cg_rtol, maxiter=cfg.cg_maxiter, M=m)
            return np.column_stack([sol_x, sol_y])

        use_b2b = cfg.net_model == "b2b"
        if use_b2b:
            ctx = get_csr(netlist)
            if cfg.use_net_weights:
                net_w = np.fromiter(
                    (net.weight for net in netlist.nets),
                    dtype=np.float64,
                    count=len(netlist.nets),
                )
            else:
                net_w = np.ones(len(netlist.nets), dtype=np.float64)

        def _solve_b2b(
            alpha: float, target: np.ndarray, xy_cur: np.ndarray
        ) -> np.ndarray:
            sols = []
            for axis in (0, 1):
                adj = b2b_adjacency(
                    ctx.pin_cell,
                    ctx.pin_ptr,
                    ctx.pin_net,
                    xy_cur[:, axis],
                    net_w,
                    n,
                    eps=cfg.b2b_eps,
                    method=cfg.b2b_method,
                )
                deg = np.asarray(adj.sum(axis=1)).ravel()
                lap_ax = sp.diags(deg) - adj
                a = lap_ax[mov][:, mov].tocsr() + sp.diags(
                    np.full(mov.size, alpha + 1e-9)
                )
                rhs = adj[mov][:, fix].tocsr() @ xy_f[:, axis] + alpha * target[:, axis]
                m = sp.diags(1.0 / np.maximum(a.diagonal(), 1e-12))
                sol, _ = spla.cg(
                    a,
                    rhs,
                    x0=xy_cur[mov, axis],
                    rtol=cfg.cg_rtol,
                    maxiter=cfg.cg_maxiter,
                    M=m,
                )
                sols.append(sol)
            return np.column_stack(sols)

        # bootstrap solve: always the clique model (B2B has no gradients while
        # every movable cell still sits collapsed at the fabric centre)
        with trace.span("global_place.solve", net_model="clique", bootstrap=True):
            pos = _solve(0.0, None)
        pos += rng.normal(scale=1.0, size=pos.shape)
        alpha = cfg.anchor_weight
        for _ in range(cfg.n_iterations):
            spread = self._spread(pos, areas, device)
            if use_b2b:
                xy_cur = place.xy.copy()
                xy_cur[mov] = pos
                with trace.span(
                    "global_place.solve", net_model="b2b", method=cfg.b2b_method
                ):
                    pos = _solve_b2b(alpha, spread, xy_cur)
            else:
                with trace.span("global_place.solve", net_model="clique"):
                    pos = _solve(alpha, spread)
            alpha *= cfg.anchor_growth
        pos = self._spread(pos, areas, device)
        place.xy[mov] = pos
        return place

    # ------------------------------------------------------------------
    def _spread(self, pos: np.ndarray, areas: np.ndarray, device: Device) -> np.ndarray:
        """Histogram-equalize x globally, then y within vertical slabs.

        Slab membership uses clipped ``np.digitize`` so every cell lands in
        exactly one slab. The previous ``>= edge[s] & < edge[s+1]`` scan
        silently skipped cells sitting at (or, via the ``_equalize``
        monotonicity epsilon, just above) the last slab edge — their y was
        never equalized.
        """
        cfg = self.config
        w = device.width * cfg.fabric_scale
        h = device.height * cfg.fabric_scale
        out = pos.copy()
        out[:, 0] = _equalize(out[:, 0], areas, 0.0, w, cfg.n_bins)
        slab = _slab_of(out[:, 0], w, cfg.n_slabs)
        if cfg.spread_method == "vectorized":
            out[:, 1] = _equalize_grouped(
                out[:, 1], areas, slab, cfg.n_slabs, 0.0, h, cfg.n_bins
            )
        else:
            for s in range(cfg.n_slabs):
                sel = slab == s
                if sel.sum() > 2:
                    out[sel, 1] = _equalize(out[sel, 1], areas[sel], 0.0, h, cfg.n_bins)
        out[:, 0] = np.clip(out[:, 0], 1.0, w - 1.0)
        out[:, 1] = np.clip(out[:, 1], 1.0, h - 1.0)
        if cfg.avoid_ps and device.ps is not None:
            out = _push_out_of_ps(out, device)
        return out


def _slab_of(x: np.ndarray, width: float, n_slabs: int) -> np.ndarray:
    """Slab index per cell — clipped digitize, so out-of-range x (possible
    after the epsilon-padded x equalization) still maps to an edge slab."""
    inner = np.linspace(0.0, width, n_slabs + 1)[1:-1]
    return np.digitize(x, inner)


def _equalize_grouped(
    coords: np.ndarray,
    areas: np.ndarray,
    group: np.ndarray,
    n_groups: int,
    lo: float,
    hi: float,
    n_bins: int,
) -> np.ndarray:
    """Equalize each group's coords like ``_equalize``, all groups at once.

    One flat ``np.bincount`` builds every group's area marginal; the interp
    back onto the warped edges is a gathered form of ``np.interp`` (same
    ``fp[j] + slope · (x − xp[j])`` evaluation). Groups with ≤ 2 members or
    zero in-range area keep their coords, matching the loop reference.
    """
    if coords.size == 0:
        return coords
    edges = np.linspace(lo, hi, n_bins + 1)
    # np.histogram semantics: half-open bins, closed last bin, and values
    # outside [lo, hi] contribute no weight
    b = np.searchsorted(edges, coords, side="right") - 1
    j = np.clip(b, 0, n_bins - 1)
    in_range = (coords >= lo) & (coords <= hi)
    hist = np.bincount(
        (group * n_bins + j)[in_range],
        weights=areas[in_range],
        minlength=n_groups * n_bins,
    ).reshape(n_groups, n_bins)
    counts = np.bincount(group, minlength=n_groups)
    cdf = np.concatenate([np.zeros((n_groups, 1)), np.cumsum(hist, axis=1)], axis=1)
    total = cdf[:, -1]
    active = (counts > 2) & (total > 0)
    if not active.any():
        return coords.copy()
    safe_total = np.where(total > 0, total, 1.0)
    new_edges = lo + (cdf / safe_total[:, None]) * (hi - lo)
    new_edges = np.maximum.accumulate(new_edges + np.arange(n_bins + 1) * 1e-9, axis=1)
    fp0 = new_edges[group, j]
    slope = (new_edges[group, j + 1] - fp0) / (edges[j + 1] - edges[j])
    res = slope * (coords - edges[j]) + fp0
    res = np.where(b < 0, new_edges[group, 0], res)
    res = np.where(b >= n_bins, new_edges[group, -1], res)
    return np.where(active[group], res, coords)


def _equalize(coords: np.ndarray, areas: np.ndarray, lo: float, hi: float, n_bins: int) -> np.ndarray:
    """Monotone remap of coords so the area-weighted marginal is uniform."""
    if coords.size == 0:
        return coords
    edges = np.linspace(lo, hi, n_bins + 1)
    hist, _ = np.histogram(coords, bins=edges, weights=areas)
    cdf = np.concatenate(([0.0], np.cumsum(hist)))
    total = cdf[-1]
    if total <= 0:
        return coords
    cdf /= total
    # where each original edge should land so that density is uniform
    new_edges = lo + cdf * (hi - lo)
    # keep strictly monotone for interpolation
    new_edges = np.maximum.accumulate(new_edges + np.arange(n_bins + 1) * 1e-9)
    return np.interp(coords, edges, new_edges)


def _push_out_of_ps(pos: np.ndarray, device: Device) -> np.ndarray:
    """Project any point inside the PS block to its nearest outer edge."""
    ps = device.ps
    inside = (pos[:, 0] < ps.x1) & (pos[:, 1] < ps.y1)
    if not inside.any():
        return pos
    out = pos.copy()
    dx = ps.x1 - out[inside, 0]
    dy = ps.y1 - out[inside, 1]
    go_right = dx <= dy
    xs = out[inside, 0].copy()
    ys = out[inside, 1].copy()
    xs[go_right] = ps.x1 + 1.0
    ys[~go_right] = ps.y1 + 1.0
    out[inside, 0] = xs
    out[inside, 1] = ys
    return out
