"""The unified Placer API: protocol, factory, and job schemas.

Every placement engine exposes one protocol: bind a
:class:`~repro.fpga.Device` at construction, then
``place(netlist, *, seed=...)`` returns a legal
:class:`~repro.placers.Placement`, and :meth:`Placer.cancel` asks an
in-flight run to stop early (cooperatively — engines honour it at their
iteration boundaries). This is what the CLI, the experiment harness, the
serve layer and protocol-generic tests program against:

    >>> placer = get_placer("vivado", device, seed=0)
    >>> placement = placer.place(netlist)

:func:`get_placer` is the single supported entry point for constructing an
engine by name; the legacy ``place(netlist, device)`` positional-device
signature was removed after its deprecation release (bind the device at
construction instead).

This module also defines the serving-first job schemas shared by
``python -m repro place``, ``python -m repro serve submit`` and
:mod:`repro.serve`:

- :class:`PlacementRequest` — one placement job description (tool, suite
  workload, seed, config overrides, portfolio-racing knobs);
- :class:`PlacementResponse` — the typed outcome (status, cache verdict,
  quality numbers, the schema-valid RunReport document, and the placement
  itself when the job ran in-process).

Conforming engines:

- :class:`~repro.placers.vivado_like.VivadoLikePlacer` and
  :class:`~repro.placers.amf_like.AMFLikePlacer` natively;
- :class:`~repro.core.DSPlacer` through :class:`DSPlacerAdapter`, a thin
  wrapper whose ``place`` returns ``DSPlacerResult.placement`` (the full
  result stays reachable as ``adapter.last_result``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

from repro.errors import ConfigurationError, ReproError, ServeError
from repro.netlist.netlist import Netlist
from repro.placers.placement import Placement

if TYPE_CHECKING:  # pragma: no cover
    import argparse

    from repro.core.dsplacer import DSPlacer, DSPlacerConfig, DSPlacerResult
    from repro.fpga.device import Device

__all__ = [
    "Placer",
    "DSPlacerAdapter",
    "get_placer",
    "PLACER_NAMES",
    "PlacementRequest",
    "PlacementResponse",
    "RACE_POLICIES",
]

#: CLI names accepted by :func:`get_placer`.
PLACER_NAMES = ("vivado", "amf", "dsplacer")

#: How a portfolio race picks its winner (see ``docs/SERVING.md``).
RACE_POLICIES = ("best", "first")


@runtime_checkable
class Placer(Protocol):
    """A device-bound placement engine (the unified placement surface)."""

    name: str

    def place(self, netlist: Netlist, *, seed: int | None = None) -> Placement:
        """Fully place ``netlist`` on the bound device; returns a legal placement."""
        ...

    def cancel(self) -> None:
        """Cooperatively ask an in-flight ``place`` to stop early.

        Engines honour the request at their next iteration boundary and
        return their best placement so far; a run that has no boundaries
        left simply completes. Safe to call from another thread.
        """
        ...


class DSPlacerAdapter:
    """Conform :class:`~repro.core.DSPlacer` to the :class:`Placer` protocol.

    ``place`` runs the full Fig. 2 flow and returns just the
    :class:`Placement`; the most recent complete
    :class:`~repro.core.DSPlacerResult` (identification, health, report, …)
    is kept on :attr:`last_result`.
    """

    name = "dsplacer"

    def __init__(self, dsplacer: "DSPlacer") -> None:
        self.dsplacer = dsplacer
        self.last_result: "DSPlacerResult | None" = None

    def place(self, netlist: Netlist, *, seed: int | None = None) -> Placement:
        placer = self.dsplacer
        if seed is not None and seed != placer.config.seed:
            from repro.core.dsplacer import DSPlacer, DSPlacerConfig

            cfg = DSPlacerConfig.from_dict({**placer.config.to_dict(), "seed": seed})
            placer = DSPlacer(placer.device, cfg, identifier=placer.identifier)
        self._running = placer
        result = placer.place(netlist)
        self.last_result = result
        return result.placement

    def cancel(self) -> None:
        """Forward cancellation to the engine driving the current run."""
        running = getattr(self, "_running", None) or self.dsplacer
        running.request_cancel()


# ----------------------------------------------------------------------
# job schemas (shared by the CLI and repro.serve)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementRequest:
    """One placement job: what to place, with which engine, how hard to try.

    The workload is named by (``suite``, ``scale``, ``netlist_seed``) and
    synthesized deterministically by :mod:`repro.accelgen`; the serve layer
    hashes the *materialized netlist content* (not this spec) for its cache
    key, so any other way of producing an identical netlist hits the same
    cache line.

    ``race_k`` > 1 enables portfolio racing: ``k`` attempts run with seeds
    ``seed, seed+1, …`` and the ``race_policy`` picks the winner — ``best``
    waits for every attempt and keeps the lowest-HPWL legal placement
    (guaranteeing best-of-k quality), ``first`` returns the first success
    and cancels the still-running losers (latency over quality).

    ``faults`` carries a serialized
    :meth:`~repro.robustness.FaultInjector.to_specs` script that workers
    replay in-process — chaos-test machinery, never set in production.
    """

    tool: str = "dsplacer"
    suite: str = "skynet"
    scale: float = 0.1
    #: target fabric (see :data:`repro.fpga.FABRIC_NAMES`); the cache key
    #: hashes the materialized device identity, so fabrics never collide
    fabric: str = "zcu104"
    seed: int = 0
    netlist_seed: int | None = None  # defaults to ``seed``
    config: Mapping[str, Any] = field(default_factory=dict)
    race_k: int = 1
    race_policy: str = "best"
    use_cache: bool = True
    with_timing: bool = False
    faults: tuple = ()

    def __post_init__(self) -> None:
        if self.tool not in PLACER_NAMES:
            raise ConfigurationError(
                f"unknown tool {self.tool!r} (expected one of {PLACER_NAMES})"
            )
        if self.race_policy not in RACE_POLICIES:
            raise ConfigurationError(
                f"unknown race policy {self.race_policy!r} "
                f"(expected one of {RACE_POLICIES})"
            )
        if not isinstance(self.race_k, int) or self.race_k < 1:
            raise ConfigurationError(f"race_k must be a positive int, got {self.race_k!r}")
        if not self.scale > 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale!r}")
        from repro.fpga.builders import FABRIC_NAMES

        if self.fabric not in FABRIC_NAMES:
            raise ConfigurationError(
                f"unknown fabric {self.fabric!r} (expected one of {FABRIC_NAMES})"
            )

    # -- derived views --------------------------------------------------
    @property
    def effective_netlist_seed(self) -> int:
        return self.seed if self.netlist_seed is None else self.netlist_seed

    def resolved_config(self, seed: int | None = None) -> "DSPlacerConfig":
        """The full, canonical :class:`~repro.core.DSPlacerConfig` this
        request runs under (``config`` overrides win; ``seed`` overrides
        both — that is how race attempts differentiate)."""
        from repro.core.dsplacer import DSPlacerConfig

        doc: dict[str, Any] = {"seed": self.seed, **dict(self.config)}
        if seed is not None:
            doc["seed"] = seed
        return DSPlacerConfig.from_dict(doc)

    def attempt_seeds(self) -> list[int]:
        """The seeds a portfolio race runs, base seed first."""
        return [self.seed + i for i in range(self.race_k)]

    def with_seed(self, seed: int) -> "PlacementRequest":
        """A copy pinned to one seed (race attempts; cache probes)."""
        return replace(self, seed=seed, netlist_seed=self.effective_netlist_seed)

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "tool": self.tool,
            "suite": self.suite,
            "scale": float(self.scale),
            "fabric": self.fabric,
            "seed": int(self.seed),
            "netlist_seed": self.netlist_seed,
            "config": dict(self.config),
            "race_k": int(self.race_k),
            "race_policy": self.race_policy,
            "use_cache": bool(self.use_cache),
            "with_timing": bool(self.with_timing),
            "faults": list(self.faults),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "PlacementRequest":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                "unknown PlacementRequest key(s): " + ", ".join(map(repr, unknown))
            )
        doc = dict(doc)
        if "faults" in doc:
            doc["faults"] = tuple(doc["faults"])
        return cls(**doc)

    @classmethod
    def from_args(
        cls, args: "argparse.Namespace", config: Mapping[str, Any] | None = None
    ) -> "PlacementRequest":
        """Build a request from parsed CLI flags.

        This is the one parser→request path shared by ``repro place`` and
        ``repro serve submit`` (see :func:`repro.cli.add_request_arguments`).
        ``config`` carries the merged DSPlacerConfig overrides (CLI flags +
        ``--config`` file).
        """
        return cls(
            tool=getattr(args, "tool", "dsplacer"),
            suite=args.suite,
            scale=args.scale,
            fabric=getattr(args, "fabric", "zcu104"),
            seed=args.seed,
            config=dict(config or {}),
            race_k=getattr(args, "race_k", 1),
            race_policy=getattr(args, "race_policy", "best"),
            use_cache=not getattr(args, "no_cache", False),
            with_timing=getattr(args, "with_timing", False),
        )


@dataclass
class PlacementResponse:
    """The typed outcome of one placement job.

    ``status`` is one of ``"ok"`` / ``"failed"`` / ``"cancelled"``;
    ``cache`` records how the result was produced (``"hit"`` — served from
    the content-addressed cache, ``"miss"`` — computed and inserted,
    ``"bypass"`` — caching disabled by the request). ``report`` is the full
    schema-valid :class:`~repro.obs.RunReport` document including the ``job``
    section; ``placement`` is populated for in-process servers (it never
    crosses the wire in serialized form).
    """

    job_id: str
    status: str
    cache: str = "bypass"
    request: PlacementRequest | None = None
    quality: dict[str, Any] = field(default_factory=dict)
    report: dict[str, Any] | None = None
    error: dict[str, str] | None = None
    seed_used: int | None = None
    submitted_unix: float | None = None
    started_unix: float | None = None
    finished_unix: float | None = None
    placement: Placement | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def wall_s(self) -> float | None:
        """Queue-to-finish wall time (None while in flight)."""
        if self.submitted_unix is None or self.finished_unix is None:
            return None
        return self.finished_unix - self.submitted_unix

    def raise_for_status(self) -> "PlacementResponse":
        """Re-raise a failed job's typed error; returns self when ok."""
        if self.ok:
            return self
        if self.error is not None:
            import repro.errors as _errors

            exc_type = getattr(_errors, self.error.get("type", ""), None)
            message = self.error.get("message", "job failed")
            if exc_type is not None and isinstance(exc_type, type) and issubclass(exc_type, ReproError):
                try:
                    exc = exc_type(message)
                except TypeError:  # multi-arg constructors (StageBudgetExceeded)
                    exc = ServeError(f"{self.error.get('type')}: {message}")
                raise exc
        raise ServeError(f"job {self.job_id} {self.status} (no error detail)")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (everything but the placement object)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "cache": self.cache,
            "request": self.request.to_dict() if self.request else None,
            "quality": dict(self.quality),
            "report": self.report,
            "error": dict(self.error) if self.error else None,
            "seed_used": self.seed_used,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
        }


def get_placer(
    name: str,
    device: "Device",
    *,
    seed: int = 0,
    config=None,
) -> Placer:
    """Construct a protocol-conforming placer by its CLI name.

    The single documented entry point for building an engine: binds the
    device at construction so ``place(netlist)`` needs nothing else.
    ``config`` (a :class:`~repro.core.DSPlacerConfig`) only applies to
    ``"dsplacer"``; the baselines take just the seed.
    """
    if name == "vivado":
        from repro.placers.vivado_like import VivadoLikePlacer

        return VivadoLikePlacer(seed=seed, device=device)
    if name == "amf":
        from repro.placers.amf_like import AMFLikePlacer

        return AMFLikePlacer(seed=seed, device=device)
    if name == "dsplacer":
        from repro.core.dsplacer import DSPlacer, DSPlacerConfig

        cfg = config if config is not None else DSPlacerConfig(seed=seed)
        return DSPlacerAdapter(DSPlacer(device, cfg))
    raise ConfigurationError(
        f"unknown placer {name!r} (expected one of {PLACER_NAMES})"
    )
