"""The unified Placer API.

Every placement engine exposes one protocol: bind a
:class:`~repro.fpga.Device` at construction, then
``place(netlist, *, seed=...)`` returns a legal
:class:`~repro.placers.Placement`. This is what the CLI, the experiment
harness, and protocol-generic tests program against:

    >>> placer = get_placer("vivado", device, seed=0)
    >>> placement = placer.place(netlist)

Conforming engines:

- :class:`~repro.placers.vivado_like.VivadoLikePlacer` and
  :class:`~repro.placers.amf_like.AMFLikePlacer` natively (their legacy
  ``place(netlist, device)`` signature survives behind a
  ``DeprecationWarning`` shim);
- :class:`~repro.core.DSPlacer` through :class:`DSPlacerAdapter`, a thin
  wrapper whose ``place`` returns ``DSPlacerResult.placement`` (the full
  result stays reachable as ``adapter.last_result``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.netlist.netlist import Netlist
from repro.placers.placement import Placement

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dsplacer import DSPlacer, DSPlacerResult
    from repro.fpga.device import Device

__all__ = ["Placer", "DSPlacerAdapter", "get_placer", "PLACER_NAMES"]

#: CLI names accepted by :func:`get_placer`.
PLACER_NAMES = ("vivado", "amf", "dsplacer")


@runtime_checkable
class Placer(Protocol):
    """A device-bound placement engine (the unified placement surface)."""

    name: str

    def place(self, netlist: Netlist, *, seed: int | None = None) -> Placement:
        """Fully place ``netlist`` on the bound device; returns a legal placement."""
        ...


class DSPlacerAdapter:
    """Conform :class:`~repro.core.DSPlacer` to the :class:`Placer` protocol.

    ``place`` runs the full Fig. 2 flow and returns just the
    :class:`Placement`; the most recent complete
    :class:`~repro.core.DSPlacerResult` (identification, health, report, …)
    is kept on :attr:`last_result`.
    """

    name = "dsplacer"

    def __init__(self, dsplacer: "DSPlacer") -> None:
        self.dsplacer = dsplacer
        self.last_result: "DSPlacerResult | None" = None

    def place(self, netlist: Netlist, *, seed: int | None = None) -> Placement:
        placer = self.dsplacer
        if seed is not None and seed != placer.config.seed:
            from repro.core.dsplacer import DSPlacer, DSPlacerConfig

            cfg = DSPlacerConfig.from_dict({**placer.config.to_dict(), "seed": seed})
            placer = DSPlacer(placer.device, cfg, identifier=placer.identifier)
        result = placer.place(netlist)
        self.last_result = result
        return result.placement


def get_placer(
    name: str,
    device: "Device",
    *,
    seed: int = 0,
    config=None,
) -> Placer:
    """Construct a protocol-conforming placer by its CLI name.

    ``config`` (a :class:`~repro.core.DSPlacerConfig`) only applies to
    ``"dsplacer"``; the baselines take just the seed.
    """
    if name == "vivado":
        from repro.placers.vivado_like import VivadoLikePlacer

        return VivadoLikePlacer(seed=seed, device=device)
    if name == "amf":
        from repro.placers.amf_like import AMFLikePlacer

        return AMFLikePlacer(seed=seed, device=device)
    if name == "dsplacer":
        from repro.core.dsplacer import DSPlacer, DSPlacerConfig

        cfg = config if config is not None else DSPlacerConfig(seed=seed)
        return DSPlacerAdapter(DSPlacer(device, cfg))
    raise ConfigurationError(
        f"unknown placer {name!r} (expected one of {PLACER_NAMES})"
    )
