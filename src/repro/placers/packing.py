"""BLE packing: LUT→FF pairing before legalization.

FPGA CLBs co-locate a LUT and the flip-flop it drives inside one BLE with a
dedicated (near-zero-delay) connection; packing-aware placers (UTPlaceF and
friends, cited in the paper's Section I) exploit it. This module implements
the classic first-order packing: every flip-flop whose D-input is driven by
a single-fanout LUT forms a rigid pair, and pairs are collapsed onto their
centroid before legalization so CLB legalization drops both into the same
(or an adjacent) site.

Opt-in (``VivadoLikePlacer(pack_ble=True)``); the packing ablation bench
measures what it buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist
from repro.placers.placement import Placement


@dataclass(frozen=True)
class Packing:
    """A set of rigid cell groups (currently LUT→FF pairs)."""

    pairs: tuple[tuple[int, int], ...]  # (lut, ff)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def packed_cells(self) -> set[int]:
        out: set[int] = set()
        for a, b in self.pairs:
            out.add(a)
            out.add(b)
        return out


def pack_lut_ff_pairs(netlist: Netlist) -> Packing:
    """Pair every FF with its driving LUT when the LUT drives only that FF."""
    fanout_count = np.zeros(len(netlist.cells), dtype=np.int64)
    driver_of: dict[int, int] = {}  # ff cell -> driving cell
    for net in netlist.nets:
        fanout_count[net.driver] += len(net.sinks)
        for s in net.sinks:
            if netlist.cells[s].ctype is CellType.FF:
                # an FF has one D input; the first (only) driver wins
                driver_of.setdefault(s, net.driver)
    pairs: list[tuple[int, int]] = []
    used: set[int] = set()
    for ff, drv in driver_of.items():
        if (
            netlist.cells[drv].ctype is CellType.LUT
            and fanout_count[drv] == 1
            and drv not in used
            and ff not in used
        ):
            pairs.append((drv, ff))
            used.add(drv)
            used.add(ff)
    return Packing(pairs=tuple(pairs))


def apply_packing(placement: Placement, packing: Packing) -> None:
    """Collapse each pair onto its centroid (call between global placement
    and legalization; the CLB legalizer then keeps the pair together)."""
    for lut, ff in packing.pairs:
        centroid = (placement.xy[lut] + placement.xy[ff]) / 2.0
        placement.xy[lut] = centroid
        placement.xy[ff] = centroid


def packing_quality(placement: Placement, packing: Packing) -> float:
    """Mean post-legalization LUT↔FF distance over the packed pairs (µm)."""
    if not packing.pairs:
        return 0.0
    d = 0.0
    for lut, ff in packing.pairs:
        delta = placement.xy[lut] - placement.xy[ff]
        d += abs(float(delta[0])) + abs(float(delta[1]))
    return d / len(packing.pairs)
