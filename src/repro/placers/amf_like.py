"""AMF-Placer-2.0-like baseline.

Models the published behaviour the paper observed when running AMF-Placer
2.0 (tuned for the PS-less VCU108) on the ZCU104 (Section V-D / Fig. 9):

- **strong mixed-size packing** — each cascade macro is collapsed to its
  centroid before legalization, so DSP chains come out very compact
  (Fig. 9(b): "a compact layout similar to DSPlacer");
- **no PS-corner awareness** — spreading ignores the PS keep-out, so the
  logic that lands in the PS shadow is displaced during legalization and
  the PS↔PL datapath ordering is destroyed ("fails to maintain the
  datapath information between PS and PL, resulting in a disordered
  datapath"), costing wirelength and timing;
- **heavier optimization loop** — more global-placement iterations, which
  is where its larger runtime in Table II comes from.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.device import Device
from repro.netlist.netlist import Netlist
from repro.obs import trace
from repro.placers.analytical import GlobalPlaceConfig, QuadraticGlobalPlacer
from repro.placers.detailed import refine_sites
from repro.placers.legalizer import Legalizer
from repro.placers.placement import Placement
from repro.placers.vivado_like import bound_device


class AMFLikePlacer:
    """Mixed-size analytical flow without PS awareness."""

    name = "amf"

    def __init__(
        self,
        seed: int = 0,
        n_iterations: int = 14,
        refine_passes: int = 1,
        fabric_scale: float = 1.5,
        device: Device | None = None,
    ) -> None:
        self.seed = seed
        self.n_iterations = n_iterations
        self.refine_passes = refine_passes
        # VCU108 has ~1.5× the ZCU104's fabric in each dimension; AMF's
        # density targets assume that larger part
        self.fabric_scale = fabric_scale
        self.device = device
        self._cancel_requested = False

    def cancel(self) -> None:
        """Cooperative cancel: the single-pass flow completes its pass.

        Present for :class:`~repro.placers.api.Placer` conformance; the
        serve layer cancels baseline attempts by terminating the worker.
        """
        self._cancel_requested = True

    def place(
        self,
        netlist: Netlist,
        placement: Placement | None = None,
        movable_mask: np.ndarray | None = None,
        *,
        seed: int | None = None,
    ) -> Placement:
        """Full placement of all movable cells; returns a legal placement."""
        device = bound_device(self)
        run_seed = self.seed if seed is None else seed
        with trace.span("placer.amf"):
            engine = QuadraticGlobalPlacer(
                GlobalPlaceConfig(
                    n_iterations=self.n_iterations,
                    avoid_ps=False,  # VCU108 tuning: no PS keep-out
                    use_net_weights=False,  # wirelength-only, criticality-blind
                    fabric_scale=self.fabric_scale,
                    seed=run_seed,
                )
            )
            place = engine.place(netlist, device, placement=placement, movable_mask=movable_mask)
            # mixed-size packing: rigid macros collapse onto their centroid so
            # the legalizer stacks each chain as compactly as possible
            for macro in netlist.macros:
                members = list(macro.dsps)
                if movable_mask is not None and not all(movable_mask[i] for i in members):
                    continue
                centroid = place.xy[members].mean(axis=0)
                place.xy[members] = centroid
            Legalizer(device).legalize(place, movable_mask=movable_mask)
            refine_sites(place, passes=self.refine_passes, movable_mask=movable_mask, seed=run_seed)
            return place
