"""Vivado-like baseline placer.

Stands in for AMD Xilinx Vivado 2020.2 in the Table II comparison: a
competent, fast, wirelength-driven flow — quadratic global placement with
PS-aware spreading, macro-aware legalization, then swap refinement. It has
no notion of datapath order (that is DSPlacer's contribution), so cascade
macros land wherever wirelength pulls them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.device import Device
from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist
from repro.obs import trace
from repro.placers.analytical import GlobalPlaceConfig, QuadraticGlobalPlacer
from repro.placers.detailed import refine_sites
from repro.placers.legalizer import Legalizer
from repro.placers.placement import Placement


def td_criticality_weights(
    slack: np.ndarray,
    net_driver: np.ndarray,
    base_weights: np.ndarray,
    current_weights: np.ndarray,
    period: float,
    boost: float,
) -> np.ndarray:
    """Per-net timing-driven weights, one gather over the net→driver array.

    ``crit = clip(1 − slack/period, 0, 1)`` of each net's driver scales the
    net's *base* (pre-reweighting) weight by ``1 + boost·crit``. Drivers
    with NaN slack (cells outside the timed graph) keep the net's *current*
    weight — matching the per-net loop this replaces, which skipped those
    nets and thereby preserved whatever weight the previous round set.
    """
    s = slack[net_driver]
    crit = np.clip(1.0 - s / period, 0.0, 1.0)
    boosted = base_weights * (1.0 + boost * crit)
    return np.where(np.isnan(s), current_weights, boosted)


def bound_device(placer) -> Device:
    """The device a baseline placer is bound to.

    The unified :class:`~repro.placers.api.Placer` protocol binds the
    device at construction; the legacy ``place(netlist, device)`` shim was
    removed after its deprecation release — construct through
    :func:`~repro.placers.api.get_placer` (or pass ``device=`` to the
    constructor) instead.
    """
    if placer.device is None:
        raise ConfigurationError(
            f"{type(placer).__name__} has no device: construct with "
            f"{type(placer).__name__}(device=dev) — or use "
            f"get_placer({placer.name!r}, dev)"
        )
    return placer.device


class VivadoLikePlacer:
    """Wirelength-driven analytical flow (global → legalize → refine).

    With ``timing_driven=True`` the flow adds Vivado-style net reweighting
    rounds: STA computes every cell's output slack (backward required-time
    pass), each net's weight is scaled by its driver's criticality, and the
    design is re-placed. Off by default — the paper evaluates against
    Vivado's stock placement at the break frequency, and Table II's shape
    is defined against that baseline; the ablation bench measures what the
    extra rounds buy.
    """

    name = "vivado"

    def __init__(
        self,
        seed: int = 0,
        n_iterations: int = 6,
        refine_passes: int = 2,
        timing_driven: bool = False,
        td_rounds: int = 1,
        td_boost: float = 2.0,
        pack_ble: bool = False,
        device: Device | None = None,
    ) -> None:
        self.seed = seed
        self.n_iterations = n_iterations
        self.refine_passes = refine_passes
        self.timing_driven = timing_driven
        self.td_rounds = td_rounds
        self.td_boost = td_boost
        self.pack_ble = pack_ble
        self.device = device
        self._cancel_requested = False

    def cancel(self) -> None:
        """Cooperative cancel: stop before the next timing-driven round.

        The wirelength-only flow is a single pass and simply completes; the
        timing-driven loop checks the flag between re-placement rounds.
        """
        self._cancel_requested = True

    def place(
        self,
        netlist: Netlist,
        placement: Placement | None = None,
        movable_mask: np.ndarray | None = None,
        *,
        seed: int | None = None,
    ) -> Placement:
        """Full placement of all movable cells; returns a legal placement."""
        device = bound_device(self)
        run_seed = self.seed if seed is None else seed
        with trace.span("placer.vivado", timing_driven=self.timing_driven):
            place = self._one_pass(netlist, device, placement, movable_mask, run_seed)
            if not self.timing_driven:
                return place
            from repro.timing.sta import StaticTimingAnalyzer

            sta = StaticTimingAnalyzer(netlist)
            period = 1e3 / netlist.target_freq_mhz if netlist.target_freq_mhz else 5.0
            original = [net.weight for net in netlist.nets]
            try:
                for _ in range(self.td_rounds):
                    if self._cancel_requested:
                        self._cancel_requested = False
                        break
                    report = sta.analyze(place, period_ns=period, with_slacks=True)
                    slack = report.cell_output_slack
                    nets = netlist.nets
                    current = np.fromiter(
                        (net.weight for net in nets), dtype=np.float64, count=len(nets)
                    )
                    new_w = td_criticality_weights(
                        np.asarray(slack, dtype=np.float64),
                        get_csr(netlist).net_driver,
                        np.asarray(original, dtype=np.float64),
                        current,
                        period,
                        self.td_boost,
                    )
                    for net, w in zip(nets, new_w.tolist()):
                        net.weight = w
                    place = self._one_pass(netlist, device, place, movable_mask, run_seed)
            finally:
                for net, w0 in zip(netlist.nets, original):
                    net.weight = w0
            return place

    def _one_pass(self, netlist, device, placement, movable_mask, seed) -> Placement:
        engine = QuadraticGlobalPlacer(
            GlobalPlaceConfig(n_iterations=self.n_iterations, avoid_ps=True, seed=seed)
        )
        place = engine.place(netlist, device, placement=placement, movable_mask=movable_mask)
        if self.pack_ble:
            from repro.placers.packing import apply_packing, pack_lut_ff_pairs

            apply_packing(place, pack_lut_ff_pairs(netlist))
        Legalizer(device).legalize(place, movable_mask=movable_mask)
        refine_sites(
            place, passes=self.refine_passes, movable_mask=movable_mask, seed=seed
        )
        return place
