"""Bound2Bound (B2B) net model for quadratic placement.

The clique model the quadratic placer ships with is placement-independent:
every pin pair of a net gets a constant spring, so a p-pin net's quadratic
cost over-counts its HPWL by O(p). Spindler's Kraftwerk2 B2B model fixes
this: per axis, connect the net's two *boundary* pins to each other and
every internal pin to both boundary pins, each edge weighted

    w_edge = net_weight * 2 / ((p - 1) * max(|x_i - x_j|, eps))

so the quadratic form equals the net's HPWL exactly *at the linearization
point*. The model is rebuilt from current positions before every solve,
which is why assembly has to be loop-free: one boundary-pin reduction over
the flattened pin arrays plus one batched COO build.

Both engines produce the same edge multiset; ``method="reference"`` is the
per-net Python loop kept as the equivalence-test oracle (PR-6 style).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["b2b_adjacency"]


def b2b_adjacency(
    pin_cell: np.ndarray,
    pin_ptr: np.ndarray,
    pin_net: np.ndarray,
    coords: np.ndarray,
    net_weights: np.ndarray,
    n_cells: int,
    eps: float = 1.0,
    method: str = "vectorized",
) -> sp.csr_matrix:
    """Symmetric B2B adjacency for one axis at the current positions.

    Args:
        pin_cell / pin_ptr / pin_net: Flattened driver-first pin arrays
            (:class:`~repro.netlist.csr.NetlistCSR` layout).
        coords: Per-cell coordinate along this axis, shape ``(n_cells,)``.
        net_weights: Per-net weight, shape ``(n_nets,)``.
        eps: Distance clamp — collapsed pins get spring ``w·2/((p−1)·eps)``
            instead of a singularity.
        method: ``"vectorized"`` or ``"reference"`` (per-net loop oracle).

    Returns:
        ``(n_cells, n_cells)`` symmetric CSR adjacency; duplicate pin pairs
        and self-edges (a cell appearing twice in one net) are summed /
        dropped identically by both engines.
    """
    if method == "vectorized":
        rows, cols, vals = _b2b_edges_vectorized(
            pin_cell, pin_ptr, pin_net, coords, net_weights, eps
        )
    elif method == "reference":
        rows, cols, vals = _b2b_edges_reference(
            pin_cell, pin_ptr, coords, net_weights, eps
        )
    else:
        raise ValueError(f"unknown b2b method {method!r}")
    adj = sp.coo_matrix((vals, (rows, cols)), shape=(n_cells, n_cells)).tocsr()
    return (adj + adj.T).tocsr()


def _b2b_edges_vectorized(
    pin_cell: np.ndarray,
    pin_ptr: np.ndarray,
    pin_net: np.ndarray,
    coords: np.ndarray,
    net_weights: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list in one pass: reduceat boundary pins, masked gathers."""
    px = coords[pin_cell]
    starts = pin_ptr[:-1]
    npins = np.diff(pin_ptr)
    n_nets = npins.size
    if n_nets == 0 or px.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, np.empty(0, dtype=np.float64)

    lo_val = np.minimum.reduceat(px, starts)
    hi_val = np.maximum.reduceat(px, starts)
    # first-occurrence arg-extreme per net: reduce slot indices where the
    # value matches the extreme, +inf (here: n_pins) elsewhere
    slots = np.arange(px.size, dtype=np.int64)
    sentinel = px.size
    lo_pos = np.minimum.reduceat(
        np.where(px == lo_val[pin_net], slots, sentinel), starts
    )
    hi_pos = np.minimum.reduceat(
        np.where(px == hi_val[pin_net], slots, sentinel), starts
    )

    valid = npins >= 2
    scale = np.zeros(n_nets, dtype=np.float64)
    scale[valid] = 2.0 * net_weights[valid] / (npins[valid] - 1)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    # bound ↔ bound
    bb = valid & (pin_cell[lo_pos] != pin_cell[hi_pos])
    d_bb = np.maximum(hi_val[bb] - lo_val[bb], eps)
    rows.append(pin_cell[lo_pos[bb]])
    cols.append(pin_cell[hi_pos[bb]])
    vals.append(scale[bb] / d_bb)

    # internal → each bound
    is_bound = np.zeros(px.size, dtype=bool)
    is_bound[lo_pos[valid]] = True
    is_bound[hi_pos[valid]] = True
    internal = valid[pin_net] & ~is_bound
    if internal.any():
        u = np.flatnonzero(internal)
        k = pin_net[u]
        cu = pin_cell[u]
        for bound_pos, bound_val in ((lo_pos, lo_val), (hi_pos, hi_val)):
            cb = pin_cell[bound_pos[k]]
            keep = cu != cb
            d = np.maximum(np.abs(px[u[keep]] - bound_val[k[keep]]), eps)
            rows.append(cu[keep])
            cols.append(cb[keep])
            vals.append(scale[k[keep]] / d)

    return (
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
    )


def _b2b_edges_reference(
    pin_cell: np.ndarray,
    pin_ptr: np.ndarray,
    coords: np.ndarray,
    net_weights: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-net loop oracle — same edge multiset as the vectorized engine."""
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for k in range(len(pin_ptr) - 1):
        s, e = int(pin_ptr[k]), int(pin_ptr[k + 1])
        p = e - s
        if p < 2:
            continue
        pins = pin_cell[s:e]
        px = coords[pins]
        lo = int(np.argmin(px))
        hi = int(np.argmax(px))
        scale = 2.0 * float(net_weights[k]) / (p - 1)

        def _add(a: int, b: int) -> None:
            ca, cb = int(pins[a]), int(pins[b])
            if ca == cb:
                return
            d = max(abs(float(px[a]) - float(px[b])), eps)
            rows.append(ca)
            cols.append(cb)
            vals.append(scale / d)

        _add(lo, hi)
        for u in range(p):
            if u != lo and u != hi:
                _add(u, lo)
                _add(u, hi)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )
