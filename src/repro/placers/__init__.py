"""Baseline FPGA placers.

The paper compares DSPlacer against AMD Xilinx Vivado 2020.2 and AMF-Placer
2.0, and uses one of them to produce the prototype placement DSPlacer
iterates on. Neither tool is available offline, so this package implements
stand-ins that exercise the same role:

- :class:`~repro.placers.vivado_like.VivadoLikePlacer` — a competent
  wirelength/timing-weighted analytical placer (quadratic global placement,
  density spreading, macro-aware legalization, swap refinement).
- :class:`~repro.placers.amf_like.AMFLikePlacer` — a mixed-size analytical
  placer modelling AMF-Placer 2.0's published behaviour on ZCU104: strong
  macro packing, but no PS-corner awareness (it was tuned for the PS-less
  VCU108), which displaces logic during legalization and disorders the
  PS↔PL datapath.
- :class:`~repro.placers.sa.SimulatedAnnealingPlacer` — the classic
  small-design alternative (Section I's other placer family).

All engines (and DSPlacer, through its adapter) conform to the unified
:class:`~repro.placers.api.Placer` protocol: bind the device at
construction, then ``place(netlist, *, seed=...)``. See
:func:`~repro.placers.api.get_placer`.
"""

from repro.placers.api import PLACER_NAMES, DSPlacerAdapter, Placer, get_placer
from repro.placers.placement import Placement
from repro.placers.analytical import GlobalPlaceConfig, QuadraticGlobalPlacer
from repro.placers.legalizer import Legalizer
from repro.placers.detailed import refine_sites
from repro.placers.detailed_clb import refine_clb
from repro.placers.packing import apply_packing, pack_lut_ff_pairs
from repro.placers.vivado_like import VivadoLikePlacer
from repro.placers.amf_like import AMFLikePlacer
from repro.placers.sa import SimulatedAnnealingPlacer

__all__ = [
    "Placer",
    "DSPlacerAdapter",
    "get_placer",
    "PLACER_NAMES",
    "Placement",
    "GlobalPlaceConfig",
    "QuadraticGlobalPlacer",
    "Legalizer",
    "refine_sites",
    "refine_clb",
    "apply_packing",
    "pack_lut_ff_pairs",
    "VivadoLikePlacer",
    "AMFLikePlacer",
    "SimulatedAnnealingPlacer",
]
