"""CLB detailed placement: median-improvement relocation.

After legalization, logic cells sit wherever capacity-greedy assignment
dropped them. This pass picks the cells contributing the most weighted
wirelength and tries moving each to the weighted-median position of its
nets' other pins (the classic optimal single-cell relocation), snapped to
the nearest CLB site with spare capacity. Accepted only on actual
improvement, so the pass is monotone in weighted HPWL.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.cell import CellType
from repro.placers.placement import Placement

_CLB_KINDS = (CellType.LUT, CellType.LUTRAM, CellType.FF, CellType.CARRY)


def _incident_cost(placement: Placement, nets, net_ids) -> float:
    total = 0.0
    for nid in net_ids:
        net = nets[nid]
        pts = placement.xy[list(net.cells)]
        total += net.weight * (
            pts[:, 0].max() - pts[:, 0].min() + pts[:, 1].max() - pts[:, 1].min()
        )
    return total


def refine_clb(
    placement: Placement,
    max_cells: int = 2000,
    passes: int = 1,
    movable_mask: np.ndarray | None = None,
) -> int:
    """Relocate the worst CLB cells toward their nets' median point.

    Returns the number of accepted moves; weighted HPWL never increases.
    """
    nl, dev = placement.netlist, placement.device
    nets = nl.nets
    incident = nl.nets_of_cell()
    if movable_mask is None:
        movable_mask = np.array([not c.is_fixed for c in nl.cells])

    # per-CLB-site load bookkeeping
    cap = dev.clb_capacity
    load = np.zeros(dev.n_sites("CLB"), dtype=np.int64)
    for c in nl.cells:
        if c.ctype in _CLB_KINDS and placement.site[c.index] >= 0:
            load[placement.site[c.index]] += 1

    candidates = [
        c.index
        for c in nl.cells
        if c.ctype in _CLB_KINDS and movable_mask[c.index] and placement.site[c.index] >= 0
    ]
    if not candidates:
        return 0

    accepted = 0
    for _ in range(passes):
        # rank by incident weighted wirelength, costliest first
        scores = np.array(
            [_incident_cost(placement, nets, incident[i]) for i in candidates]
        )
        order = np.argsort(-scores)[: min(max_cells, len(candidates))]
        moved = 0
        for oi in order:
            idx = candidates[int(oi)]
            net_ids = incident[idx]
            if not net_ids:
                continue
            # weighted median of the other pins across incident nets
            xs, ys, ws = [], [], []
            for nid in net_ids:
                net = nets[nid]
                others = [p for p in net.cells if p != idx]
                if not others:
                    continue
                pts = placement.xy[others]
                xs.extend(pts[:, 0])
                ys.extend(pts[:, 1])
                ws.extend([net.weight] * len(others))
            if not xs:
                continue
            order_x = np.argsort(xs)
            order_y = np.argsort(ys)
            w = np.asarray(ws)
            half = w.sum() / 2.0
            cum = np.cumsum(w[order_x])
            tx = float(np.asarray(xs)[order_x][np.searchsorted(cum, half)])
            cum = np.cumsum(w[order_y])
            ty = float(np.asarray(ys)[order_y][np.searchsorted(cum, half)])

            before = _incident_cost(placement, nets, net_ids)
            old_site = int(placement.site[idx])
            # nearest CLB sites to the median with spare capacity
            for sid in dev.nearest_sites("CLB", tx, ty, k=8):
                sid = int(sid)
                if sid == old_site or load[sid] >= cap:
                    continue
                placement.assign_site(idx, sid)
                if _incident_cost(placement, nets, net_ids) < before - 1e-9:
                    load[old_site] -= 1
                    load[sid] += 1
                    moved += 1
                    break
                placement.assign_site(idx, old_site)
        accepted += moved
        if moved == 0:
            break
    return accepted
