"""Simulated-annealing placer.

The paper's Section I names simulated annealing as the other classic FPGA
placement family, noting it "might lead to long placement runtime when the
input netlist is large". This implementation exists to make that comparison
concrete (see the ablation benches): it anneals over *legal* states — single
moves/swaps within a site kind, and whole-macro column shifts — so every
intermediate state remains legal.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fpga.device import Device
from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist
from repro.placers.legalizer import Legalizer
from repro.placers.placement import Placement


class SimulatedAnnealingPlacer:
    """Legal-state annealing over DSP/BRAM sites (CLB cells greedy-legalized)."""

    name = "sa"

    def __init__(
        self,
        seed: int = 0,
        n_moves_per_cell: int = 200,
        t0_frac: float = 0.05,
        cooling: float = 0.92,
    ) -> None:
        self.seed = seed
        self.n_moves_per_cell = n_moves_per_cell
        self.t0_frac = t0_frac
        self.cooling = cooling

    def place(
        self,
        netlist: Netlist,
        device: Device,
        placement: Placement | None = None,
        movable_mask: np.ndarray | None = None,
    ) -> Placement:
        """Anneal from a random legal start (or the given placement)."""
        rng = np.random.default_rng(self.seed)
        place = placement.copy() if placement is not None else Placement(netlist, device)
        if placement is None:
            # random-ish start: scatter then legalize everything
            mov = [c.index for c in netlist.cells if not c.is_fixed]
            place.xy[mov, 0] = rng.uniform(0, device.width, len(mov))
            place.xy[mov, 1] = rng.uniform(0, device.height, len(mov))
            Legalizer(device).legalize(place, movable_mask=movable_mask)

        incident = netlist.nets_of_cell()
        in_macro: set[int] = set()
        for m in netlist.macros:
            in_macro.update(m.dsps)
        movers = [
            c.index
            for c in netlist.cells
            if c.ctype in (CellType.DSP, CellType.BRAM)
            and not c.is_fixed
            and c.index not in in_macro
            and (movable_mask is None or movable_mask[c.index])
        ]
        if not movers:
            return place

        kind_of = {i: netlist.cells[i].ctype.site_kind for i in movers}
        owner: dict[str, np.ndarray] = {}
        for kind in ("DSP", "BRAM"):
            arr = np.full(device.n_sites(kind), -1, dtype=np.int64)
            for c in netlist.cells:
                if c.ctype.site_kind == kind and place.site[c.index] >= 0:
                    arr[place.site[c.index]] = c.index
            owner[kind] = arr

        def nets_cost(nids) -> float:
            total = 0.0
            for nid in nids:
                net = netlist.nets[nid]
                pts = place.xy[list(net.cells)]
                total += net.weight * (
                    pts[:, 0].max() - pts[:, 0].min() + pts[:, 1].max() - pts[:, 1].min()
                )
            return total

        temp = self.t0_frac * (device.width + device.height)
        n_rounds = 24
        moves_per_round = max(1, self.n_moves_per_cell * len(movers) // n_rounds)
        for _ in range(n_rounds):
            for _ in range(moves_per_round):
                idx = movers[int(rng.integers(len(movers)))]
                kind = kind_of[idx]
                # candidate site near current position with a temperature-range
                span = max(temp, 50.0)
                cx = place.xy[idx, 0] + rng.uniform(-span, span)
                cy = place.xy[idx, 1] + rng.uniform(-span, span)
                sid = int(device.nearest_sites(kind, cx, cy, k=1)[0])
                if sid == place.site[idx]:
                    continue
                other = int(owner[kind][sid])
                if other >= 0 and (other in in_macro or netlist.cells[other].is_fixed):
                    continue
                if other >= 0 and movable_mask is not None and not movable_mask[other]:
                    continue
                nids = (
                    incident[idx]
                    if other < 0
                    else list(set(incident[idx]) | set(incident[other]))
                )
                before = nets_cost(nids)
                old = int(place.site[idx])
                place.assign_site(idx, sid)
                if other >= 0:
                    place.assign_site(other, old)
                delta = nets_cost(nids) - before
                if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-6)):
                    owner[kind][sid] = idx
                    owner[kind][old] = other if other >= 0 else -1
                else:
                    place.assign_site(idx, old)
                    if other >= 0:
                        place.assign_site(other, sid)
            temp *= self.cooling
        return place
