"""Resource-aware legalization: continuous coordinates → legal sites.

Handles the three site families separately:

- **DSP**: cascade macros first (each needs a run of consecutive free rows
  in one column — the device only wires PCOUT→PCIN between vertical
  neighbours), then single DSPs onto nearest free sites.
- **BRAM**: nearest-free-site assignment.
- **CLB** (LUT/LUTRAM/FF/CARRY): capacity-limited greedy onto CLB sites
  (``device.clb_capacity`` cells per site), with outward spiral search on
  overflow.

Cells outside ``movable_mask`` keep their existing site assignments and
block those sites — this is what lets DSPlacer freeze its datapath DSPs
while the rest of the design is re-legalized around them (paper Fig. 6).

Two engines (PR-6 style): ``method="vectorized"`` (default) batches the
nearest-site queries for all single DSP/BRAM cells into one distance
matrix and scans CLB rows with array reductions; ``method="reference"``
is the original per-cell loop kept as the equivalence-test oracle. Both
produce identical site assignments — the greedy order, tie-breaking, and
escalation sequences are replicated exactly.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.device import Device
from repro.netlist.cell import CellType
from repro.obs import metrics, trace
from repro.placers.placement import Placement


class Legalizer:
    """Legalizes placements on a fixed device.

    Args:
        device: Target device.
        method: ``"vectorized"`` (default) or ``"reference"`` — the
            original per-cell loops, kept for equivalence testing.
    """

    def __init__(self, device: Device, method: str = "vectorized") -> None:
        if method not in ("vectorized", "reference"):
            raise ValueError(f"unknown legalizer method {method!r}")
        self.device = device
        self.method = method

    # ------------------------------------------------------------------
    def legalize(self, placement: Placement, movable_mask: np.ndarray | None = None) -> Placement:
        """Legalize all placeable cells in-place; returns the placement."""
        nl = placement.netlist
        if movable_mask is None:
            movable_mask = np.array([not c.is_fixed for c in nl.cells])
        movable_mask = np.asarray(movable_mask, dtype=bool)
        with trace.span("legalize", method=self.method):
            metrics.inc("legalize.passes")
            self.legalize_dsps(placement, movable_mask)
            self.legalize_brams(placement, movable_mask)
            self.legalize_clb(placement, movable_mask)
        return placement

    # ------------------------------------------------------------------
    def legalize_dsps(self, placement: Placement, movable_mask: np.ndarray) -> None:
        dev = self.device
        nl = placement.netlist
        n_sites = dev.n_sites("DSP")
        occupied = np.zeros(n_sites, dtype=bool)
        dsp_cells = [c for c in nl.cells if c.ctype.is_dsp]
        for c in dsp_cells:
            if movable_mask[c.index]:
                placement.site[c.index] = -1
            elif placement.site[c.index] >= 0:
                occupied[placement.site[c.index]] = True
        # everything without a site gets (re)placed, including locked cells
        # that were never legalized
        movable = [c for c in dsp_cells if placement.site[c.index] < 0]

        # macros first, longest first (hardest to fit)
        in_macro: set[int] = set()
        todo_macros = []
        for macro in sorted(nl.macros, key=lambda m: -len(m)):
            in_macro.update(macro.dsps)
            locked = [i for i in macro.dsps if placement.site[i] >= 0]
            if locked:
                if len(locked) != len(macro.dsps):
                    raise ValueError(
                        f"macro {macro.macro_id} is partially locked; cascade "
                        "chains must be frozen or released as a whole"
                    )
                continue  # fully locked macro keeps its sites
            todo_macros.append(macro)
        # hoisted per-column gathers, shared by every macro placement
        cols = dev.kind_columns("DSP")
        col_ids = [
            np.asarray(dev.column_site_ids("DSP", c), dtype=np.int64)
            for c in range(len(cols))
        ]
        try:
            for macro in todo_macros:
                self._place_macro(placement, occupied, macro.dsps, cols, col_ids)
        except ValueError:
            # high utilization + fragmentation: restart with dense packing
            for macro in todo_macros:
                for i in macro.dsps:
                    if placement.site[i] >= 0:
                        occupied[placement.site[i]] = False
                        placement.site[i] = -1
            self._dense_pack_macros(placement, occupied, todo_macros)
        singles = [c.index for c in movable if c.index not in in_macro]
        # bottom-up for deterministic packing
        singles.sort(key=lambda i: (placement.xy[i, 1], placement.xy[i, 0]))
        self._assign_singles(placement, "DSP", singles, occupied)

    def _place_macro(
        self,
        placement: Placement,
        occupied: np.ndarray,
        chain: tuple[int, ...],
        cols,
        col_ids: list[np.ndarray],
    ) -> None:
        length = len(chain)
        tx = float(placement.xy[list(chain), 0].mean())
        tys = placement.xy[list(chain), 1]
        order = sorted(range(len(cols)), key=lambda c: abs(cols[c].x - tx))
        best = None  # (cost, col, start_row)
        for rank, c in enumerate(order):
            col = cols[c]
            ids = col_ids[c]
            if len(ids) < length:
                continue
            free = ~occupied[ids]
            run = np.cumsum(free)
            col_pen = abs(col.x - tx) * length
            if best is not None and col_pen >= best[0] and rank > 2:
                break  # columns are sorted by distance; no better fit possible
            ys = col.ys
            n_rows = len(ids)
            pitch = float(ys[1] - ys[0]) if n_rows > 1 else 1.0
            for start in range(n_rows - length + 1):
                n_free = run[start + length - 1] - (run[start - 1] if start else 0)
                if n_free != length:
                    continue
                cost = col_pen + float(np.abs(ys[start : start + length] - tys).sum())
                # fragmentation guard: prefer windows flush against occupied
                # rows / column ends so free space stays in long runs
                below_open = start > 0 and not occupied[ids[start - 1]]
                above_open = start + length < n_rows and not occupied[ids[start + length]]
                if below_open and above_open:
                    cost += pitch * length * 0.5
                if best is None or cost < best[0]:
                    best = (cost, c, start)
        if best is None:
            raise ValueError(f"no room for a {length}-long DSP cascade macro")
        _, c, start = best
        ids = col_ids[c]
        for k, cell_idx in enumerate(chain):
            sid = int(ids[start + k])
            occupied[sid] = True
            placement.assign_site(cell_idx, sid)

    def _dense_pack_macros(self, placement: Placement, occupied: np.ndarray, macros) -> None:
        """Fallback for near-saturated devices: zero-fragmentation packing.

        Macros are ordered by target x then y, columns are filled
        bottom-to-top, skipping occupied rows; wasted space is at most the
        residue of each column, so this succeeds whenever the per-column
        capacities admit any packing of the chains.
        """
        dev = self.device
        ordered = sorted(
            macros,
            key=lambda m: (
                float(placement.xy[list(m.dsps), 0].mean()),
                float(placement.xy[list(m.dsps), 1].mean()),
            ),
        )
        n_cols = dev.n_dsp_columns
        cursor = [0] * n_cols
        col = 0
        for macro in ordered:
            length = len(macro.dsps)
            placed = False
            for _ in range(n_cols):
                ids = dev.column_site_ids("DSP", col)
                start = cursor[col]
                while start + length <= len(ids):
                    window = ids[start : start + length]
                    if not occupied[window].any():
                        for k, cell_idx in enumerate(macro.dsps):
                            occupied[window[k]] = True
                            placement.assign_site(cell_idx, window[k])
                        cursor[col] = start + length
                        placed = True
                        break
                    start += 1
                if placed:
                    break
                col = (col + 1) % n_cols
            if not placed:
                raise ValueError(
                    f"device cannot fit a {length}-long DSP cascade macro even densely packed"
                )

    # ------------------------------------------------------------------
    def legalize_brams(self, placement: Placement, movable_mask: np.ndarray) -> None:
        dev = self.device
        nl = placement.netlist
        occupied = np.zeros(dev.n_sites("BRAM"), dtype=bool)
        todo = []
        for c in nl.cells:
            if c.ctype is not CellType.BRAM:
                continue
            if movable_mask[c.index]:
                placement.site[c.index] = -1
                todo.append(c.index)
            elif placement.site[c.index] >= 0:
                occupied[placement.site[c.index]] = True
            else:
                todo.append(c.index)
        todo.sort(key=lambda i: (placement.xy[i, 1], placement.xy[i, 0]))
        self._assign_singles(placement, "BRAM", todo, occupied)

    def _assign_singles(
        self, placement: Placement, kind: str, todo: list[int], occupied: np.ndarray
    ) -> None:
        """Assign each cell of ``todo`` (in order) its nearest free site.

        The greedy order is sequential — each assignment occupies a site the
        next cell can no longer take — but all query coordinates are known
        up front (cells keep their pre-legalization xy until assigned), so
        the vectorized engine batches the initial k-nearest query for every
        cell into one distance matrix and only falls back to the escalating
        per-cell search when a cell's whole candidate prefix is occupied.
        """
        if not todo:
            return
        if self.method == "reference":
            for idx in todo:
                sid = self._nearest_free(kind, placement.xy[idx], occupied)
                occupied[sid] = True
                placement.assign_site(idx, sid)
            return
        dev = self.device
        sxy = dev.site_xy(kind)
        n = occupied.size
        k = min(32, n)
        xys = placement.xy[todo]
        # same op order as Device.nearest_sites: (site - query)**2 per axis
        d2 = (sxy[None, :, 0] - xys[:, 0:1]) ** 2 + (sxy[None, :, 1] - xys[:, 1:2]) ** 2
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        ranks = np.argsort(np.take_along_axis(d2, part, axis=1), axis=1)
        cand = np.take_along_axis(part, ranks, axis=1)
        for row, idx in enumerate(todo):
            sid = -1
            for s in cand[row]:
                if not occupied[s]:
                    sid = int(s)
                    break
            if sid < 0:
                sid = self._nearest_free(kind, xys[row], occupied, skip=k)
            occupied[sid] = True
            placement.assign_site(idx, sid)

    def _nearest_free(
        self, kind: str, xy: np.ndarray, occupied: np.ndarray, skip: int = 0
    ) -> int:
        """Nearest unoccupied site, escalating the query size as needed.

        ``skip`` candidates are known-occupied from a previous (possibly
        batched) query and are not rechecked — each escalation only scans
        the newly revealed suffix instead of restarting from the closest
        site.
        """
        n = occupied.size
        k = min(max(32, skip * 4), n)
        while True:
            cand = self.device.nearest_sites(kind, xy[0], xy[1], k=k)
            for sid in cand[skip:]:
                if not occupied[sid]:
                    return int(sid)
            if k >= n:
                raise ValueError(f"no free {kind} site left")
            skip = k
            k = min(n, k * 4)

    # ------------------------------------------------------------------
    def legalize_clb(self, placement: Placement, movable_mask: np.ndarray) -> None:
        dev = self.device
        nl = placement.netlist
        cap = dev.clb_capacity
        cols = dev.kind_columns("CLB")
        col_x = np.array([c.x for c in cols])
        load = np.zeros(dev.n_sites("CLB"), dtype=np.int64)
        col_start = np.cumsum([0] + [c.n_sites for c in cols])

        todo: list[int] = []
        for c in nl.cells:
            if c.ctype.site_kind != "CLB" or c.is_fixed:
                continue
            if movable_mask[c.index]:
                placement.site[c.index] = -1
                todo.append(c.index)
            elif placement.site[c.index] >= 0:
                load[placement.site[c.index]] += 1
            else:
                todo.append(c.index)
        if sum(c.n_sites for c in cols) * cap < load.sum() + len(todo):
            raise ValueError("design does not fit the device's CLB capacity")

        xys = placement.xy[todo] if todo else np.zeros((0, 2))
        # nearest column and row per cell, vectorized
        ci = np.searchsorted(col_x, xys[:, 0])
        ci = np.clip(ci, 0, len(cols) - 1)
        left = np.clip(ci - 1, 0, len(cols) - 1)
        pick_left = np.abs(col_x[left] - xys[:, 0]) < np.abs(col_x[ci] - xys[:, 0])
        ci = np.where(pick_left, left, ci)

        n_cols = len(cols)
        if self.method == "reference":
            for pos, idx in enumerate(todo):
                c0 = int(ci[pos])
                y = xys[pos, 1]
                sid = self._clb_probe(c0, y, cols, col_start, load, cap, n_cols)
                load[sid] += 1
                placement.assign_site(idx, sid)
        else:
            self._fill_clb_batched(placement, todo, xys, ci, cols, col_start, load, cap)

    def _clb_probe(self, c0, y, cols, col_start, load, cap, n_cols) -> int:
        """Find a CLB site with spare capacity, spiralling out from (c0, y)."""
        for dc in _spiral():
            c = c0 + dc
            if c < 0 or c >= n_cols:
                if abs(dc) > n_cols:
                    raise ValueError("CLB legalization ran out of sites")
                continue
            col = cols[c]
            ys = col.ys
            r0 = int(np.clip(np.searchsorted(ys, y), 0, len(ys) - 1))
            base = int(col_start[c])
            for dr in range(len(ys)):
                for r in (r0 - dr, r0 + dr) if dr else (r0,):
                    if 0 <= r < len(ys) and load[base + r] < cap:
                        return base + r
        raise ValueError("unreachable")

    def _fill_clb_batched(
        self, placement, todo, xys, ci, cols, col_start, load, cap
    ) -> None:
        """Batched CLB fill, identical decisions to the per-cell probe.

        The capacity fill is inherently sequential (each placement consumes
        a slot the next cell can no longer take), so the batching happens
        around it: the home-column row targets are computed with one
        ``searchsorted`` per column, the fill itself runs on plain Python
        lists (constant-time slot checks, no per-cell array dispatch), and
        the resulting sites are written back to the placement in one gather.
        """
        n_cols = len(cols)
        r0s = np.empty(len(todo), dtype=np.int64)
        for c in np.unique(ci):
            m = ci == c
            ys = cols[c].ys
            r0s[m] = np.clip(np.searchsorted(ys, xys[m, 1]), 0, len(ys) - 1)
        load_l = load.tolist()
        col_ys = [col.ys for col in cols]
        nrows = [len(ys) for ys in col_ys]
        bases = [int(b) for b in col_start[:-1]]
        ci_l = ci.tolist()
        r0_l = r0s.tolist()
        y_l = xys[:, 1].tolist()
        sites = np.empty(len(todo), dtype=np.int64)
        for pos in range(len(todo)):
            c0 = ci_l[pos]
            y = y_l[pos]
            sid = -1
            for dc in _spiral():
                c = c0 + dc
                if c < 0 or c >= n_cols:
                    if abs(dc) > n_cols:
                        raise ValueError("CLB legalization ran out of sites")
                    continue
                nr = nrows[c]
                base = bases[c]
                if dc == 0:
                    r0 = r0_l[pos]
                else:
                    r0 = int(np.clip(np.searchsorted(col_ys[c], y), 0, nr - 1))
                found = -1
                for dr in range(nr):
                    r = r0 - dr
                    if r >= 0 and load_l[base + r] < cap:
                        found = r
                        break
                    if dr:
                        r = r0 + dr
                        if r < nr and load_l[base + r] < cap:
                            found = r
                            break
                if found >= 0:
                    sid = base + found
                    break
            load_l[sid] += 1
            sites[pos] = sid
        load[:] = load_l
        if todo:
            idx_arr = np.asarray(todo, dtype=np.int64)
            placement.site[idx_arr] = sites
            placement.xy[idx_arr] = self.device.site_xy("CLB")[sites]


def _spiral():
    """0, -1, +1, -2, +2, ... column offsets."""
    yield 0
    d = 1
    while True:
        yield -d
        yield d
        d += 1
