"""Detailed placement: local swap refinement on legalized DSP/BRAM sites.

A cheap post-legalization cleanup pass in the spirit of commercial placers'
detailed placement: each single (non-macro) DSP or BRAM tries moving to
nearby free sites or swapping with nearby peers, accepting changes that
reduce weighted HPWL of the incident nets. Macro members are left alone —
moving them would break cascade legality (handled by the ILP stage instead).
"""

from __future__ import annotations

import numpy as np

from repro.netlist.cell import CellType
from repro.obs import metrics, trace
from repro.placers.placement import Placement


def _incident_nets(placement: Placement) -> list[list[int]]:
    return placement.netlist.nets_of_cell()


def _nets_cost(placement: Placement, net_ids: list[int]) -> float:
    nl = placement.netlist
    total = 0.0
    for nid in net_ids:
        net = nl.nets[nid]
        pts = placement.xy[list(net.cells)]
        total += net.weight * (
            (pts[:, 0].max() - pts[:, 0].min()) + (pts[:, 1].max() - pts[:, 1].min())
        )
    return total


def refine_sites(
    placement: Placement,
    kinds: tuple[str, ...] = ("DSP", "BRAM"),
    passes: int = 2,
    n_candidates: int = 8,
    movable_mask: np.ndarray | None = None,
    seed: int = 0,
) -> int:
    """Greedy move/swap refinement; returns the number of accepted moves."""
    with trace.span("refine", passes=passes) as sp:
        accepted = _refine_impl(placement, kinds, passes, n_candidates, movable_mask, seed)
        sp.set(accepted_moves=accepted)
        metrics.inc("refine.accepted_moves", accepted)
    return accepted


def _refine_impl(
    placement: Placement,
    kinds: tuple[str, ...],
    passes: int,
    n_candidates: int,
    movable_mask: np.ndarray | None,
    seed: int,
) -> int:
    nl, dev = placement.netlist, placement.device
    incident = _incident_nets(placement)
    rng = np.random.default_rng(seed)
    if movable_mask is None:
        movable_mask = np.array([not c.is_fixed for c in nl.cells])

    in_macro: set[int] = set()
    for macro in nl.macros:
        in_macro.update(macro.dsps)

    accepted = 0
    for kind in kinds:
        ctype = CellType.DSP if kind == "DSP" else CellType.BRAM
        cells = [
            c.index
            for c in nl.cells
            if c.ctype is ctype
            and c.index not in in_macro
            and movable_mask[c.index]
            and placement.site[c.index] >= 0
        ]
        if not cells:
            continue
        site_owner = np.full(dev.n_sites(kind), -1, dtype=np.int64)
        for c in nl.cells:
            if c.ctype is ctype and placement.site[c.index] >= 0:
                site_owner[placement.site[c.index]] = c.index

        for _ in range(passes):
            order = rng.permutation(len(cells))
            moved = 0
            for oi in order:
                idx = cells[oi]
                x, y = placement.xy[idx]
                cand = dev.nearest_sites(kind, x, y, k=n_candidates)
                base_nets = incident[idx]
                for sid in cand:
                    sid = int(sid)
                    if sid == placement.site[idx]:
                        continue
                    other = int(site_owner[sid])
                    if other >= 0 and (
                        other in in_macro or not movable_mask[other] or other == idx
                    ):
                        continue
                    nets = base_nets if other < 0 else list(set(base_nets) | set(incident[other]))
                    before = _nets_cost(placement, nets)
                    old_sid = int(placement.site[idx])
                    placement.assign_site(idx, sid)
                    if other >= 0:
                        placement.assign_site(other, old_sid)
                    after = _nets_cost(placement, nets)
                    if after < before - 1e-9:
                        site_owner[sid] = idx
                        site_owner[old_sid] = other if other >= 0 else -1
                        moved += 1
                        break
                    # revert
                    placement.assign_site(idx, old_sid)
                    if other >= 0:
                        placement.assign_site(other, sid)
            accepted += moved
            if moved == 0:
                break
    return accepted
