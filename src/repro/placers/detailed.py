"""Detailed placement: local swap refinement on legalized DSP/BRAM sites.

A cheap post-legalization cleanup pass in the spirit of commercial placers'
detailed placement: each single (non-macro) DSP or BRAM tries moving to
nearby free sites or swapping with nearby peers, accepting changes that
reduce weighted HPWL of the incident nets. Macro members are left alone —
moving them would break cascade legality (handled by the ILP stage instead).

Two engines share the greedy sequential semantics (PR-6 style):

- ``method="vectorized"`` (default): per cell, the incident nets' pin
  positions are gathered once and every free candidate site is scored in a
  single broadcast ``reduceat`` pass; swap candidates are scored with one
  masked-substitution gather instead of four ``assign_site`` round-trips.
  Accept decisions are bitwise-identical to the reference — candidate
  evaluation has no side effects in either engine, term expressions match
  op-for-op, and ``np.cumsum`` reproduces Python's left-to-right float
  accumulation.
- ``method="reference"``: the original per-cell × per-candidate × per-net
  loop, kept as the equivalence-test oracle.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.cell import CellType
from repro.netlist.csr import SITE_KIND_CODES, get_csr
from repro.obs import metrics, trace
from repro.placers.placement import Placement


def _incident_nets(placement: Placement) -> list[list[int]]:
    return placement.netlist.nets_of_cell()


def _nets_cost(placement: Placement, net_ids: list[int]) -> float:
    nl = placement.netlist
    total = 0.0
    for nid in net_ids:
        net = nl.nets[nid]
        pts = placement.xy[list(net.cells)]
        total += net.weight * (
            (pts[:, 0].max() - pts[:, 0].min()) + (pts[:, 1].max() - pts[:, 1].min())
        )
    return total


def refine_sites(
    placement: Placement,
    kinds: tuple[str, ...] = ("DSP", "BRAM"),
    passes: int = 2,
    n_candidates: int = 8,
    movable_mask: np.ndarray | None = None,
    seed: int = 0,
    method: str = "vectorized",
) -> int:
    """Greedy move/swap refinement; returns the number of accepted moves."""
    if method not in ("vectorized", "reference"):
        raise ValueError(f"unknown refine method {method!r}")
    impl = _refine_vectorized if method == "vectorized" else _refine_impl
    with trace.span("refine", passes=passes, method=method) as sp:
        accepted = impl(placement, kinds, passes, n_candidates, movable_mask, seed)
        sp.set(accepted_moves=accepted)
        metrics.inc("refine.accepted_moves", accepted)
    return accepted


def _refine_impl(
    placement: Placement,
    kinds: tuple[str, ...],
    passes: int,
    n_candidates: int,
    movable_mask: np.ndarray | None,
    seed: int,
) -> int:
    nl, dev = placement.netlist, placement.device
    incident = _incident_nets(placement)
    rng = np.random.default_rng(seed)
    if movable_mask is None:
        movable_mask = np.array([not c.is_fixed for c in nl.cells])

    in_macro: set[int] = set()
    for macro in nl.macros:
        in_macro.update(macro.dsps)

    accepted = 0
    for kind in kinds:
        ctype = CellType.DSP if kind == "DSP" else CellType.BRAM
        cells = [
            c.index
            for c in nl.cells
            if c.ctype is ctype
            and c.index not in in_macro
            and movable_mask[c.index]
            and placement.site[c.index] >= 0
        ]
        if not cells:
            continue
        site_owner = np.full(dev.n_sites(kind), -1, dtype=np.int64)
        for c in nl.cells:
            if c.ctype is ctype and placement.site[c.index] >= 0:
                site_owner[placement.site[c.index]] = c.index

        for _ in range(passes):
            order = rng.permutation(len(cells))
            moved = 0
            for oi in order:
                idx = cells[oi]
                x, y = placement.xy[idx]
                cand = dev.nearest_sites(kind, x, y, k=n_candidates)
                base_nets = incident[idx]
                for sid in cand:
                    sid = int(sid)
                    if sid == placement.site[idx]:
                        continue
                    other = int(site_owner[sid])
                    if other >= 0 and (
                        other in in_macro or not movable_mask[other] or other == idx
                    ):
                        continue
                    nets = base_nets if other < 0 else list(set(base_nets) | set(incident[other]))
                    before = _nets_cost(placement, nets)
                    old_sid = int(placement.site[idx])
                    placement.assign_site(idx, sid)
                    if other >= 0:
                        placement.assign_site(other, old_sid)
                    after = _nets_cost(placement, nets)
                    if after < before - 1e-9:
                        site_owner[sid] = idx
                        site_owner[old_sid] = other if other >= 0 else -1
                        moved += 1
                        break
                    # revert
                    placement.assign_site(idx, old_sid)
                    if other >= 0:
                        placement.assign_site(other, sid)
            accepted += moved
            if moved == 0:
                break
    return accepted


def _flat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], ends[i])`` without a Python loop."""
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    csum = np.cumsum(lens)
    shift = np.repeat(starts - (csum - lens), lens)
    return np.arange(total, dtype=np.int64) + shift


def _refine_vectorized(
    placement: Placement,
    kinds: tuple[str, ...],
    passes: int,
    n_candidates: int,
    movable_mask: np.ndarray | None,
    seed: int,
) -> int:
    """Batched engine: same cell order, same accept decisions, no rescans."""
    nl, dev = placement.netlist, placement.device
    rng = np.random.default_rng(seed)
    n = len(nl.cells)
    ctx = get_csr(nl)
    if movable_mask is None:
        movable_mask = ~ctx.is_fixed
    movable_arr = np.asarray(movable_mask, dtype=bool)

    in_macro: set[int] = set()
    for macro in nl.macros:
        in_macro.update(macro.dsps)
    in_macro_arr = np.zeros(n, dtype=bool)
    if in_macro:
        in_macro_arr[list(in_macro)] = True

    pin_cell, pin_ptr = ctx.pin_cell, ctx.pin_ptr
    all_nets = nl.nets

    def _weights_of(nid: np.ndarray) -> np.ndarray:
        # live read — only for the few nets incident to refined cells
        return np.fromiter(
            (all_nets[k].weight for k in nid.tolist()),
            dtype=np.float64,
            count=nid.size,
        )

    # per-cell incident nets, grouped once from the flat pin arrays: net ids
    # ascending with one entry per pin — exactly ``Netlist.nets_of_cell``
    grp = np.lexsort((ctx.pin_net, pin_cell))
    inc_net = ctx.pin_net[grp]
    inc_counts = np.bincount(pin_cell, minlength=n)
    inc_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(inc_counts, out=inc_ptr[1:])

    inc_list_cache: dict[int, list[int]] = {}

    def _incident_list(cell: int) -> list[int]:
        got = inc_list_cache.get(cell)
        if got is None:
            got = inc_net[inc_ptr[cell] : inc_ptr[cell + 1]].tolist()
            inc_list_cache[cell] = got
        return got

    def _concat(net_ids: list[int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(pins, net_starts, net_weights) for nets in list order; pin order
        per net matches ``net.cells`` (the CSR layout is driver-first).

        Net lists here are tiny (one or two cells' incident nets), so plain
        slice-and-concatenate beats the batched ``_flat_ranges`` gather."""
        if not net_ids:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), np.empty(0, dtype=np.float64)
        segs = [pin_cell[pin_ptr[k] : pin_ptr[k + 1]] for k in net_ids]
        starts = np.zeros(len(segs), dtype=np.int64)
        off = 0
        for i, seg in enumerate(segs):
            starts[i] = off
            off += seg.size
        nid = np.asarray(net_ids, dtype=np.int64)
        return np.concatenate(segs), starts, _weights_of(nid)

    is_dsp_cell = ctx.is_dsp
    is_bram_cell = ctx.site_code == SITE_KIND_CODES.index("BRAM")
    swap_cache: dict[tuple[int, int], tuple] = {}

    accepted = 0
    for kind in kinds:
        kind_mask = is_dsp_cell if kind == "DSP" else is_bram_cell
        sited = kind_mask & (placement.site >= 0)
        cells_arr = np.flatnonzero(sited & ~in_macro_arr & movable_arr)
        if cells_arr.size == 0:
            continue
        site_owner = np.full(dev.n_sites(kind), -1, dtype=np.int64)
        sited_idx = np.flatnonzero(sited)
        site_owner[placement.site[sited_idx]] = sited_idx
        site_xy = dev.site_xy(kind)

        # flat incident-net pin structure for all refined cells at once
        # (structure is static; positions are always read fresh)
        nid_all = inc_net[_flat_ranges(inc_ptr[cells_arr], inc_ptr[cells_arr + 1])]
        net_off = np.zeros(cells_arr.size + 1, dtype=np.int64)
        np.cumsum(inc_counts[cells_arr], out=net_off[1:])
        plen = pin_ptr[nid_all + 1] - pin_ptr[nid_all]
        pins_all = pin_cell[_flat_ranges(pin_ptr[nid_all], pin_ptr[nid_all + 1])]
        pin_csum = np.concatenate(([0], np.cumsum(plen)))
        pin_off = pin_csum[net_off]
        # each net's pin offset *within its cell's block*
        starts_all = pin_csum[:-1] - np.repeat(pin_off[:-1], inc_counts[cells_arr])
        w_all = _weights_of(nid_all)
        # mask of each cell's own slots in its flat pin block: max/min are
        # exact under any grouping, so a net's bbox with the cell at a trial
        # position is max(rest, trial) where "rest" excludes the cell's pins
        is_own_all = pins_all == np.repeat(cells_arr, pin_off[1:] - pin_off[:-1])

        k_eff = min(n_candidates, dev.n_sites(kind))
        sx_col = site_xy[:, 0][None, :]
        sy_col = site_xy[:, 1][None, :]

        # sites whose owner can never participate (macro member / immovable):
        # such owners are never refined and never swapped, so this is
        # invariant for the whole run
        bad_sites = np.zeros(site_owner.size, dtype=bool)
        owned0 = np.flatnonzero(site_owner >= 0)
        bad_owner = site_owner[owned0]
        bad_sites[owned0] = in_macro_arr[bad_owner] | ~movable_arr[bad_owner]

        for _ in range(passes):
            order = rng.permutation(cells_arr.size)
            moved = 0
            # batched k-nearest candidates at pass-start positions; rows of
            # argpartition/argsort on 2D equal the per-cell 1D calls
            pass_xy = placement.xy[cells_arr]
            d2 = (sx_col - pass_xy[:, 0:1]) ** 2 + (sy_col - pass_xy[:, 1:2]) ** 2
            part = np.argpartition(d2, k_eff - 1, axis=1)[:, :k_eff]
            ranks = np.argsort(np.take_along_axis(d2, part, axis=1), axis=1)
            cand_all = np.take_along_axis(part, ranks, axis=1)
            # per-(cell, net) rest extremes at pass-start positions, one
            # reduceat per bound; a net goes stale ("dirty") when any cell
            # on it moves, and only then is its rest recomputed at a visit
            if pins_all.size:
                pxa = placement.xy[pins_all, 0]
                pya = placement.xy[pins_all, 1]
                abs_starts = pin_csum[:-1]
                rest_mxx = np.maximum.reduceat(np.where(is_own_all, -np.inf, pxa), abs_starts)
                rest_mnx = np.minimum.reduceat(np.where(is_own_all, np.inf, pxa), abs_starts)
                rest_mxy = np.maximum.reduceat(np.where(is_own_all, -np.inf, pya), abs_starts)
                rest_mny = np.minimum.reduceat(np.where(is_own_all, np.inf, pya), abs_starts)
            dirty_net = np.zeros(len(all_nets), dtype=bool)
            # every (cell, candidate) improvement verdict in one batch at
            # pass-start state: candidate scores are independent of which
            # other candidates are free, so a clean visit (cell unmoved, no
            # net-mate moved) just gathers its precomputed row. Padded net
            # slots carry weight 0 and ±inf rests — their terms are exactly
            # 0.0 and cannot perturb the sequential cumsum.
            nc = cells_arr.size
            nnets_arr = inc_counts[cells_arr]
            nmax = int(nnets_arr.max()) if nc else 0
            if pins_all.size and nmax:
                row_i = np.repeat(np.arange(nc), nnets_arr)
                col_i = np.arange(nid_all.size) - np.repeat(net_off[:-1], nnets_arr)
                r_xx = np.full((nc, nmax), -np.inf)
                r_nx = np.full((nc, nmax), np.inf)
                r_xy = np.full((nc, nmax), -np.inf)
                r_ny = np.full((nc, nmax), np.inf)
                w_m = np.zeros((nc, nmax))
                r_xx[row_i, col_i] = rest_mxx
                r_nx[row_i, col_i] = rest_mnx
                r_xy[row_i, col_i] = rest_mxy
                r_ny[row_i, col_i] = rest_mny
                w_m[row_i, col_i] = w_all
                c_x = np.empty((nc, k_eff + 1))
                c_y = np.empty((nc, k_eff + 1))
                c_x[:, 0] = pass_xy[:, 0]
                c_y[:, 0] = pass_xy[:, 1]
                sc = site_xy[cand_all]
                c_x[:, 1:] = sc[:, :, 0]
                c_y[:, 1:] = sc[:, :, 1]
                bdx = np.maximum(r_xx[:, :, None], c_x[:, None, :]) - np.minimum(
                    r_nx[:, :, None], c_x[:, None, :]
                )
                bdy = np.maximum(r_xy[:, :, None], c_y[:, None, :]) - np.minimum(
                    r_ny[:, :, None], c_y[:, None, :]
                )
                allcost = np.cumsum(w_m[:, :, None] * (bdx + bdy), axis=1)[:, -1, :]
                improve_all = allcost[:, 1:] < allcost[:, 0:1] - 1e-9
            # per-candidate owner state at pass start, split into free and
            # occupied runs with two batched nonzero calls; a row stays valid
            # until one of its candidate sites changes owner ("touched") or
            # the cell itself moves — then the visit recomputes live
            own_sid_all = placement.site[cells_arr]
            owner_all = site_owner[cand_all]
            usable_all = (cand_all != own_sid_all[:, None]) & ~bad_sites[cand_all]
            free_rows, free_cols = np.nonzero(usable_all & (owner_all < 0))
            fptr = np.zeros(nc + 1, dtype=np.int64)
            np.cumsum(np.bincount(free_rows, minlength=nc), out=fptr[1:])
            occ_rows, occ_cols = np.nonzero(usable_all & (owner_all >= 0))
            optr = np.zeros(nc + 1, dtype=np.int64)
            np.cumsum(np.bincount(occ_rows, minlength=nc), out=optr[1:])
            cand_lists = cand_all.tolist()
            touched: set[int] = set()
            moved_cells: set[int] = set()
            for oi in order:
                idx = int(cells_arr[oi])
                s0, s1 = net_off[oi], net_off[oi + 1]
                if idx in moved_cells:  # moved this pass (swap partner)
                    x, y = placement.xy[idx]
                    cand = np.asarray(dev.nearest_sites(kind, x, y, k=n_candidates))
                    moved_xy = True
                    own_sid = int(placement.site[idx])
                    owner = site_owner[cand]
                    # owner == idx ⇔ cand == own_sid (a cell owns only its
                    # site), so the reference's owner-skip rules reduce to this
                    ucs = np.flatnonzero((cand != own_sid) & ~bad_sites[cand])
                    uo = owner[ucs]
                    free_cs = ucs[uo < 0]
                    occ_cs = ucs[uo >= 0]
                else:
                    x, y = pass_xy[oi]
                    cand = cand_all[oi]
                    moved_xy = False
                    own_sid = int(own_sid_all[oi])
                    if touched and not touched.isdisjoint(cand_lists[oi]):
                        owner = site_owner[cand]
                        ucs = np.flatnonzero((cand != own_sid) & ~bad_sites[cand])
                        uo = owner[ucs]
                        free_cs = ucs[uo < 0]
                        occ_cs = ucs[uo >= 0]
                    else:
                        owner = owner_all[oi]
                        free_cs = free_cols[fptr[oi] : fptr[oi + 1]]
                        occ_cs = occ_cols[optr[oi] : optr[oi + 1]]

                # first free candidate that improves, or cand.size if none;
                # column 0 scores the current position (the shared "before"),
                # remaining columns score every free candidate site at once
                # against the cell's per-net rest extremes
                f0 = cand.size
                if s1 > s0 and free_cs.size:
                    if not moved_xy and not dirty_net[nid_all[s0:s1]].any():
                        # clean: the batched pass-start row is still valid
                        hit = np.flatnonzero(improve_all[oi, free_cs])
                        if hit.size:
                            f0 = int(free_cs[hit[0]])
                    else:
                        if dirty_net[nid_all[s0:s1]].any():
                            # a net-mate moved this pass: redo this cell's
                            # rests at the live positions
                            pins = pins_all[pin_off[oi] : pin_off[oi + 1]]
                            lpx = placement.xy[pins, 0]
                            lpy = placement.xy[pins, 1]
                            lio = is_own_all[pin_off[oi] : pin_off[oi + 1]]
                            lst = starts_all[s0:s1]
                            mxx = np.maximum.reduceat(np.where(lio, -np.inf, lpx), lst)
                            mnx = np.minimum.reduceat(np.where(lio, np.inf, lpx), lst)
                            mxy = np.maximum.reduceat(np.where(lio, -np.inf, lpy), lst)
                            mny = np.minimum.reduceat(np.where(lio, np.inf, lpy), lst)
                        else:
                            mxx = rest_mxx[s0:s1]
                            mnx = rest_mnx[s0:s1]
                            mxy = rest_mxy[s0:s1]
                            mny = rest_mny[s0:s1]
                        w = w_all[s0:s1]
                        csz = free_cs.size + 1
                        cxs = np.empty(csz)
                        cys = np.empty(csz)
                        cxs[0] = x
                        cys[0] = y
                        cxy = site_xy[cand[free_cs]]
                        cxs[1:] = cxy[:, 0]
                        cys[1:] = cxy[:, 1]
                        dx = np.maximum(mxx[:, None], cxs[None, :]) - np.minimum(
                            mnx[:, None], cxs[None, :]
                        )
                        dy = np.maximum(mxy[:, None], cys[None, :]) - np.minimum(
                            mny[:, None], cys[None, :]
                        )
                        cost_rows = np.cumsum(w[:, None] * (dx + dy), axis=0)[-1]
                        acc = np.flatnonzero(cost_rows[1:] < cost_rows[0] - 1e-9)
                        if acc.size:
                            f0 = int(free_cs[acc[0]])

                chosen = -1
                swap_other = -1
                for ci in occ_cs.tolist():
                    if ci > f0:
                        break
                    other = int(owner[ci])
                    # swap: score with a masked-substitution gather over the
                    # union net list (same expression → same net order);
                    # row 0 = before, row 1 = after the position exchange.
                    # The structure (nets, pins, masks, weights) is constant
                    # for the whole run — cache it per (cell, partner) pair.
                    pair = swap_cache.get((idx, other))
                    if pair is None:
                        nets = list(
                            set(_incident_list(idx)) | set(_incident_list(other))
                        )
                        spins, sstarts, sw = _concat(nets)
                        pair = (
                            spins,
                            sstarts,
                            sw,
                            np.flatnonzero(spins == idx),
                            np.flatnonzero(spins == other),
                        )
                        swap_cache[(idx, other)] = pair
                    spins, sstarts, sw, mine_ix, theirs_ix = pair
                    if sw.size == 0:
                        continue  # both cells netless: 0.0 < -1e-9 never holds
                    sxy = placement.xy[spins]
                    nxy = site_xy[int(cand[ci])]
                    oxy = site_xy[own_sid]
                    # rows: before-x, after-x, before-y, after-y; the "after"
                    # rows substitute the exchanged positions in place
                    sm = np.empty((4, spins.size))
                    sm[0] = sxy[:, 0]
                    sm[2] = sxy[:, 1]
                    sm[1] = sm[0]
                    sm[3] = sm[2]
                    sm[1, mine_ix] = nxy[0]
                    sm[1, theirs_ix] = oxy[0]
                    sm[3, mine_ix] = nxy[1]
                    sm[3, theirs_ix] = oxy[1]
                    sd = np.maximum.reduceat(sm, sstarts, axis=1) - np.minimum.reduceat(
                        sm, sstarts, axis=1
                    )
                    sterms = sw[None, :] * (sd[:2] + sd[2:])
                    before_s, after_s = np.cumsum(sterms, axis=1)[:, -1]
                    if after_s < before_s - 1e-9:
                        chosen = ci
                        swap_other = other
                        break

                if chosen < 0 and f0 < cand.size:
                    chosen = f0
                if chosen >= 0:
                    sid = int(cand[chosen])
                    placement.assign_site(idx, sid)
                    dirty_net[_incident_list(idx)] = True
                    moved_cells.add(idx)
                    if swap_other >= 0:
                        placement.assign_site(swap_other, own_sid)
                        dirty_net[_incident_list(swap_other)] = True
                        moved_cells.add(swap_other)
                    site_owner[sid] = idx
                    site_owner[own_sid] = swap_other if swap_other >= 0 else -1
                    touched.add(sid)
                    touched.add(own_sid)
                    moved += 1
            accepted += moved
            if moved == 0:
                break
    return accepted
