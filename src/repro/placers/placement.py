"""Placement state: cell coordinates + site assignments + legality checks."""

from __future__ import annotations

import numpy as np

from repro.fpga.device import Device
from repro.netlist.cell import CellType
from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist


class Placement:
    """Coordinates and site assignments for every cell of a netlist.

    ``xy[i]`` is cell i's location in µm (continuous during global
    placement). ``site[i]`` is the site id *within the cell's site kind*
    after legalization, or −1. Fixed cells (PS, IO) are pinned at
    construction.
    """

    def __init__(self, netlist: Netlist, device: Device) -> None:
        self.netlist = netlist
        self.device = device
        n = len(netlist.cells)
        self.xy = np.zeros((n, 2), dtype=np.float64)
        self.site = np.full(n, -1, dtype=np.int64)
        center = (device.width / 2.0, device.height / 2.0)
        for cell in netlist.cells:
            self.xy[cell.index] = cell.fixed_xy if cell.is_fixed else center
        self._kind_cache: tuple[int, tuple] | None = None

    def copy(self) -> "Placement":
        new = Placement.__new__(Placement)
        new.netlist = self.netlist
        new.device = self.device
        new.xy = self.xy.copy()
        new.site = self.site.copy()
        new._kind_cache = self._kind_cache
        return new

    # ------------------------------------------------------------------
    def assign_site(self, cell_idx: int, site_id: int) -> None:
        """Pin a cell onto a site of its kind and update its coordinates."""
        kind = self.netlist.cells[cell_idx].ctype.site_kind
        self.site[cell_idx] = site_id
        self.xy[cell_idx] = self.device.site_xy(kind)[site_id]

    def _pin_structure(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened (pin_cell, net_ptr) arrays, borrowed from the shared
        :class:`~repro.netlist.csr.NetlistCSR` context (cached per netlist
        revision; nets store pins driver-first, matching ``net.cells``)."""
        ctx = get_csr(self.netlist)
        return ctx.pin_cell, ctx.pin_ptr

    def _net_weights(self) -> np.ndarray:
        """Per-net weights, read **live** on every call: timing-driven
        placers rescale ``net.weight`` in place between rounds, so caching
        here would freeze the weighted HPWL at its first-query value."""
        nets = self.netlist.nets
        return np.fromiter(
            (net.weight for net in nets), dtype=np.float64, count=len(nets)
        )

    def _pin_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened (pin_cell, net_ptr, net_weight) arrays for HPWL."""
        pin_cell, ptr = self._pin_structure()
        return pin_cell, ptr, self._net_weights()

    def net_bboxes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(xmin, xmax, ymin, ymax) per net, vectorized."""
        pin_cell, ptr = self._pin_structure()
        px = self.xy[pin_cell, 0]
        py = self.xy[pin_cell, 1]
        starts = ptr[:-1]
        xmin = np.minimum.reduceat(px, starts)
        xmax = np.maximum.reduceat(px, starts)
        ymin = np.minimum.reduceat(py, starts)
        ymax = np.maximum.reduceat(py, starts)
        return xmin, xmax, ymin, ymax

    def hpwl(self, weighted: bool = False) -> float:
        """Total half-perimeter wirelength (µm); the paper's HPWL metric."""
        xmin, xmax, ymin, ymax = self.net_bboxes()
        lengths = (xmax - xmin) + (ymax - ymin)
        if weighted:
            lengths = lengths * self._net_weights()
        return float(lengths.sum())

    # ------------------------------------------------------------------
    def _legality_arrays(self) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """(fixed_idx, fixed_xy, {kind: placeable cell indices}) — structure
        only, cached per netlist revision (positions are read fresh)."""
        version = getattr(self.netlist, "_version", 0)
        if self._kind_cache is not None and self._kind_cache[0] == version:
            return self._kind_cache[1]
        cells = self.netlist.cells
        fixed = [c for c in cells if c.is_fixed]
        fixed_idx = np.fromiter(
            (c.index for c in fixed), dtype=np.int64, count=len(fixed)
        )
        fixed_xy = np.array([c.fixed_xy for c in fixed], dtype=np.float64).reshape(
            -1, 2
        )
        kind_idx = {
            kind: np.fromiter(
                (
                    c.index
                    for c in cells
                    if not c.is_fixed and c.ctype.site_kind == kind
                ),
                dtype=np.int64,
            )
            for kind in ("DSP", "BRAM", "CLB")
        }
        data = (fixed_idx, fixed_xy, kind_idx)
        self._kind_cache = (version, data)
        return data

    def legality_violations(self) -> list[str]:
        """All legality violations (empty list ⇔ the placement is legal).

        Checks: every placeable cell sits on a site of its kind; DSP/BRAM
        sites hold one cell; CLB sites hold at most ``device.clb_capacity``
        cells; every cascade macro occupies consecutive rows of one DSP
        column, predecessor below successor; fixed cells untouched.

        All per-cell checks run as batched array comparisons; Python-level
        message formatting only happens for actual violators.
        """
        nl, dev = self.netlist, self.device
        cells = nl.cells
        fixed_idx, fixed_xy, kind_idx = self._legality_arrays()
        by_cell: list[tuple[int, str]] = []
        if fixed_idx.size:
            ok = np.isclose(self.xy[fixed_idx], fixed_xy).all(axis=1)
            for i in fixed_idx[~ok]:
                by_cell.append((int(i), f"fixed cell {cells[int(i)].name} moved"))
        cap_msgs: list[str] = []
        for kind, cap in (("DSP", 1), ("BRAM", 1), ("CLB", dev.clb_capacity)):
            idx = kind_idx[kind]
            if idx.size == 0:
                continue
            sid = self.site[idx]
            unsited = (sid < 0) | (sid >= dev.n_sites(kind))
            for i in idx[unsited]:
                by_cell.append((int(i), f"{cells[int(i)].name}: no legal {kind} site"))
            good_idx = idx[~unsited]
            good_sid = sid[~unsited]
            if good_idx.size == 0:
                continue
            ok = np.isclose(
                self.xy[good_idx], dev.site_xy(kind)[good_sid]
            ).all(axis=1)
            for i, s in zip(good_idx[~ok], good_sid[~ok]):
                by_cell.append(
                    (int(i), f"{cells[int(i)].name}: xy out of sync with site {int(s)}")
                )
            uniq, first, counts = np.unique(
                good_sid, return_index=True, return_counts=True
            )
            over = counts > cap
            if over.any():
                # first-seen (ascending-cell) order, matching the loop version
                order = np.argsort(first[over], kind="stable")
                for s, cnt in zip(uniq[over][order], counts[over][order]):
                    cap_msgs.append(
                        f"{kind} site {int(s)} holds {int(cnt)} cells (cap {cap})"
                    )
        by_cell.sort(key=lambda t: t[0])
        out = [msg for _, msg in by_cell]
        out.extend(cap_msgs)
        dsp_sites = dev.sites("DSP")
        for macro in nl.macros:
            sids = [int(self.site[i]) for i in macro.dsps]
            if any(s < 0 for s in sids):
                continue  # already reported above
            cols = {dsp_sites[s].col for s in sids}
            if len(cols) != 1:
                out.append(f"macro {macro.macro_id} spans columns {sorted(cols)}")
                continue
            rows = [dsp_sites[s].row for s in sids]
            if any(r2 - r1 != 1 for r1, r2 in zip(rows, rows[1:])):
                out.append(f"macro {macro.macro_id} rows not consecutive: {rows}")
        return out

    def is_legal(self) -> bool:
        return not self.legality_violations()
