"""Placement state: cell coordinates + site assignments + legality checks."""

from __future__ import annotations

import numpy as np

from repro.fpga.device import Device
from repro.netlist.cell import CellType
from repro.netlist.netlist import Netlist


class Placement:
    """Coordinates and site assignments for every cell of a netlist.

    ``xy[i]`` is cell i's location in µm (continuous during global
    placement). ``site[i]`` is the site id *within the cell's site kind*
    after legalization, or −1. Fixed cells (PS, IO) are pinned at
    construction.
    """

    def __init__(self, netlist: Netlist, device: Device) -> None:
        self.netlist = netlist
        self.device = device
        n = len(netlist.cells)
        self.xy = np.zeros((n, 2), dtype=np.float64)
        self.site = np.full(n, -1, dtype=np.int64)
        center = (device.width / 2.0, device.height / 2.0)
        for cell in netlist.cells:
            self.xy[cell.index] = cell.fixed_xy if cell.is_fixed else center
        self._net_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def copy(self) -> "Placement":
        new = Placement.__new__(Placement)
        new.netlist = self.netlist
        new.device = self.device
        new.xy = self.xy.copy()
        new.site = self.site.copy()
        new._net_arrays = self._net_arrays
        return new

    # ------------------------------------------------------------------
    def assign_site(self, cell_idx: int, site_id: int) -> None:
        """Pin a cell onto a site of its kind and update its coordinates."""
        kind = self.netlist.cells[cell_idx].ctype.site_kind
        self.site[cell_idx] = site_id
        self.xy[cell_idx] = self.device.site_xy(kind)[site_id]

    def _pin_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened (pin_cell, net_ptr, net_weight) arrays for HPWL."""
        if self._net_arrays is None:
            pin_cell: list[int] = []
            ptr: list[int] = [0]
            weights: list[float] = []
            for net in self.netlist.nets:
                pin_cell.extend(net.cells)
                ptr.append(len(pin_cell))
                weights.append(net.weight)
            self._net_arrays = (
                np.array(pin_cell, dtype=np.int64),
                np.array(ptr, dtype=np.int64),
                np.array(weights, dtype=np.float64),
            )
        return self._net_arrays

    def net_bboxes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(xmin, xmax, ymin, ymax) per net, vectorized."""
        pin_cell, ptr, _ = self._pin_arrays()
        px = self.xy[pin_cell, 0]
        py = self.xy[pin_cell, 1]
        starts = ptr[:-1]
        xmin = np.minimum.reduceat(px, starts)
        xmax = np.maximum.reduceat(px, starts)
        ymin = np.minimum.reduceat(py, starts)
        ymax = np.maximum.reduceat(py, starts)
        return xmin, xmax, ymin, ymax

    def hpwl(self, weighted: bool = False) -> float:
        """Total half-perimeter wirelength (µm); the paper's HPWL metric."""
        xmin, xmax, ymin, ymax = self.net_bboxes()
        lengths = (xmax - xmin) + (ymax - ymin)
        if weighted:
            _, _, w = self._pin_arrays()
            lengths = lengths * w
        return float(lengths.sum())

    # ------------------------------------------------------------------
    def legality_violations(self) -> list[str]:
        """All legality violations (empty list ⇔ the placement is legal).

        Checks: every placeable cell sits on a site of its kind; DSP/BRAM
        sites hold one cell; CLB sites hold at most ``device.clb_capacity``
        cells; every cascade macro occupies consecutive rows of one DSP
        column, predecessor below successor; fixed cells untouched.
        """
        out: list[str] = []
        nl, dev = self.netlist, self.device
        used: dict[str, dict[int, int]] = {"DSP": {}, "BRAM": {}, "CLB": {}}
        for cell in nl.cells:
            if cell.is_fixed:
                if not np.allclose(self.xy[cell.index], cell.fixed_xy):
                    out.append(f"fixed cell {cell.name} moved")
                continue
            kind = cell.ctype.site_kind
            sid = int(self.site[cell.index])
            if sid < 0 or sid >= dev.n_sites(kind):
                out.append(f"{cell.name}: no legal {kind} site")
                continue
            used[kind][sid] = used[kind].get(sid, 0) + 1
            if not np.allclose(self.xy[cell.index], dev.site_xy(kind)[sid]):
                out.append(f"{cell.name}: xy out of sync with site {sid}")
        for kind, cap in (("DSP", 1), ("BRAM", 1), ("CLB", dev.clb_capacity)):
            for sid, cnt in used[kind].items():
                if cnt > cap:
                    out.append(f"{kind} site {sid} holds {cnt} cells (cap {cap})")
        dsp_sites = dev.sites("DSP")
        for macro in nl.macros:
            sids = [int(self.site[i]) for i in macro.dsps]
            if any(s < 0 for s in sids):
                continue  # already reported above
            cols = {dsp_sites[s].col for s in sids}
            if len(cols) != 1:
                out.append(f"macro {macro.macro_id} spans columns {sorted(cols)}")
                continue
            rows = [dsp_sites[s].row for s in sids]
            if any(r2 - r1 != 1 for r1, r2 in zip(rows, rows[1:])):
                out.append(f"macro {macro.macro_id} rows not consecutive: {rows}")
        return out

    def is_legal(self) -> bool:
        return not self.legality_violations()
