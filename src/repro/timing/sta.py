"""Graph-based static timing analysis (setup checks).

Builds the combinational timing graph once per netlist (sequential cells —
FF/DSP/BRAM/IO/PS — break paths; LUT/CARRY/LUTRAM propagate), then evaluates
arrival times for any placement + routing in topological order. Reports the
paper's Table II metrics: setup WNS and TNS over all endpoint pins, plus the
critical path.

Two engines share the one timing graph: the default ``method="vectorized"``
propagates arrivals level-by-level over flat edge arrays (per-edge Manhattan
distances, detour gathers, and cascade-adjacency flags are computed once per
placement; per-level maxima via ``np.maximum.reduceat`` segment reductions),
and ``method="reference"`` is the original per-cell Python loop kept as the
equivalence-test oracle. Both produce identical reports to the last bit —
pinned by hypothesis tests in ``tests/test_sta_vectorized.py`` and
``tests/test_clock_skew_sta.py``.

Clock skew is delegated to a :class:`~repro.clock.SkewModel`: every setup
check's data arrival picks up ``model.arrival_penalty(placement, launch,
capture)``. The default (``skew_model=None``) is
:class:`~repro.clock.RegionSkew` built from
``delay_model.clock_skew_per_region`` — bitwise-identical to the historical
inline Chebyshev region-step formula — while :class:`~repro.clock.HTreeSkew`
charges the signed per-sink arrival difference of a synthesized clock tree
and :class:`~repro.clock.ZeroSkew` charges nothing. Devices with
``has_cascades=False`` (slot fabrics) have no dedicated cascade spine, so
cascade edges there are priced as ordinary fabric nets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.placers.placement import Placement
from repro.router.global_router import RoutingResult
from repro.timing.delay_model import DelayModel


@dataclass
class TimingReport:
    """Setup-timing summary for one placement."""

    period_ns: float
    wns_ns: float
    tns_ns: float
    n_endpoints: int
    n_failing: int
    endpoint_slack: np.ndarray
    critical_path: list[int]  # cell indices, start → endpoint
    #: cell index of each endpoint (aligned with endpoint_slack)
    endpoint_cells: np.ndarray | None = None
    #: worst-arrival predecessor of each endpoint / combinational cell,
    #: kept so reports can backtrace any endpoint's critical path
    _end_pred: np.ndarray | None = None
    _best_pred: np.ndarray | None = None
    #: per-cell output-pin slack (only with ``analyze(with_slacks=True)``);
    #: NaN for cells with no downstream timing endpoint
    cell_output_slack: np.ndarray | None = None

    def path_of(self, endpoint_rank: int) -> list[int]:
        """Critical path (start → endpoint) of the k-th worst endpoint."""
        if self.endpoint_cells is None:
            raise ValueError("report carries no endpoint detail")
        order = np.argsort(self.endpoint_slack)
        idx = int(order[endpoint_rank])
        path = [int(self.endpoint_cells[idx])]
        seen = set(path)  # best_pred can cycle on comb-cycle netlists
        u = int(self._end_pred[idx])
        while u >= 0 and u not in seen:
            seen.add(u)
            path.append(u)
            u = int(self._best_pred[u])  # −1 at sequential/unfed cells
        path.reverse()
        return path

    @property
    def met(self) -> bool:
        return self.wns_ns >= 0.0

    @property
    def freq_mhz_limit(self) -> float:
        """Highest frequency this placement could close (from the worst path)."""
        worst_path = self.period_ns - self.wns_ns
        return 1e3 / max(worst_path, 1e-9)


class StaticTimingAnalyzer:
    """Reusable STA engine for one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        delay_model: DelayModel | None = None,
        method: str = "vectorized",
        skew_model=None,
    ) -> None:
        if method not in ("vectorized", "reference"):
            raise ValueError(f"unknown STA method {method!r}")
        self.netlist = netlist
        self.dm = delay_model or DelayModel()
        self.method = method
        if skew_model is None:
            from repro.clock.skew import RegionSkew

            skew_model = RegionSkew(self.dm.clock_skew_per_region)
        self.skew = skew_model
        self._cascade_pairs = set(netlist.cascade_pairs())
        self._seq = np.array([self.dm.is_sequential(c.ctype) for c in netlist.cells])

        # edge lists: (src, dst, net_id); plus per-node fanin adjacency
        self._fanin: list[list[tuple[int, int]]] = [[] for _ in netlist.cells]
        self._fanout: list[list[tuple[int, int]]] = [[] for _ in netlist.cells]
        for net in netlist.nets:
            for s in net.sinks:
                self._fanin[s].append((net.driver, net.index))
                self._fanout[net.driver].append((s, net.index))

        # topological order of combinational cells (Kahn over comb preds)
        n = len(netlist.cells)
        indeg = np.zeros(n, dtype=np.int64)
        for u in range(n):
            if self._seq[u]:
                continue
            indeg[u] = sum(1 for (v, _) in self._fanin[u] if not self._seq[v])
        queue = deque(u for u in range(n) if not self._seq[u] and indeg[u] == 0)
        order: list[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for w, _ in self._fanout[u]:
                if not self._seq[w]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        queue.append(w)
        n_comb = int((~self._seq).sum())
        self.has_comb_cycles = len(order) < n_comb
        n_dag = len(order)
        if self.has_comb_cycles:
            # break cycles by appending the leftovers in index order; their
            # arrivals are then lower bounds (one relaxation round)
            seen = set(order)
            order.extend(u for u in range(n) if not self._seq[u] and u not in seen)
        self._topo = order
        self._build_arrays(n_dag)

    # ------------------------------------------------------------------
    # one-time flat-array views of the timing graph (vectorized engine)
    # ------------------------------------------------------------------
    def _build_arrays(self, n_dag: int) -> None:
        nl = self.netlist
        dm = self.dm
        n = len(nl.cells)
        self._prop_arr = np.array([dm.prop.get(c.ctype, 0.0) for c in nl.cells])
        self._clk2q_arr = np.array([dm.clk_to_q.get(c.ctype, 0.0) for c in nl.cells])
        self._setup_arr = np.array([dm.setup.get(c.ctype, 0.0) for c in nl.cells])

        n_sinks = np.array([len(net.sinks) for net in nl.nets], dtype=np.int64)
        n_edges = int(n_sinks.sum())
        self._e_src = np.repeat(
            np.array([net.driver for net in nl.nets], dtype=np.int64), n_sinks
        )
        self._e_dst = np.fromiter(
            (s for net in nl.nets for s in net.sinks), dtype=np.int64, count=n_edges
        )
        self._e_net = np.repeat(np.arange(len(nl.nets), dtype=np.int64), n_sinks)

        # cascade edges (set C of eq. 5) as a mask over the flat edge list
        if self._cascade_pairs:
            keys = self._e_src * n + self._e_dst
            pair_keys = np.array(
                [s * n + d for s, d in self._cascade_pairs], dtype=np.int64
            )
            self._casc_idx = np.flatnonzero(np.isin(keys, pair_keys))
        else:
            self._casc_idx = np.zeros(0, dtype=np.int64)

        # levelization: DAG cells get longest-path levels (all combinational
        # predecessors strictly earlier); cycle leftovers each get their own
        # level in topo order, replicating the reference's sequential sweep
        level = np.zeros(n, dtype=np.int64)
        for u in self._topo[:n_dag]:
            lv = 0
            for v, _ in self._fanin[u]:
                if not self._seq[v]:
                    lv = max(lv, level[v] + 1)
            level[u] = lv
        nxt = (max((level[u] for u in self._topo[:n_dag]), default=-1)) + 1
        for u in self._topo[n_dag:]:
            level[u] = nxt
            nxt += 1
        self._level = level

        def _segment(edge_idx: np.ndarray, by: np.ndarray, slice_key: np.ndarray | None):
            """Stable-sort edges by (slice_key, by, edge order); return
            (sorted edge ids, segment starts, segment owner, slice ranges)."""
            if slice_key is None:
                perm = np.lexsort((edge_idx, by))
            else:
                perm = np.lexsort((edge_idx, by, slice_key))
            e = edge_idx[perm]
            owner = by[perm]
            if e.size:
                starts = np.flatnonzero(np.r_[True, owner[1:] != owner[:-1]])
            else:
                starts = np.zeros(0, dtype=np.int64)
            seg_owner = owner[starts]
            if slice_key is None:
                slices = [(0, seg_owner.size)] if seg_owner.size else []
            else:
                key = slice_key[perm][starts]
                cut = (
                    np.flatnonzero(np.r_[True, key[1:] != key[:-1]])
                    if key.size
                    else np.zeros(0, dtype=np.int64)
                )
                slices = list(zip(cut, np.r_[cut[1:], key.size]))
            return e, starts, seg_owner, slices

        comb_dst = ~self._seq[self._e_dst]
        comb_src = ~self._seq[self._e_src]
        all_edges = np.arange(n_edges, dtype=np.int64)

        # forward pass: edges into combinational cells, level-grouped by dst
        idx = all_edges[comb_dst]
        self._fwd_e, self._fwd_starts, self._fwd_dst, self._fwd_slices = _segment(
            idx, self._e_dst[idx], level[self._e_dst[idx]]
        )
        # endpoint pass: edges into sequential cells, grouped by dst
        idx = all_edges[~comb_dst]
        self._end_e, self._end_starts, self._end_dst, _ = _segment(
            idx, self._e_dst[idx], None
        )
        # backward pass: comb→comb edges grouped by src, levels descending
        idx = all_edges[comb_dst & comb_src]
        self._bwd_e, self._bwd_starts, self._bwd_src, self._bwd_slices = _segment(
            idx, self._e_src[idx], -level[self._e_src[idx]]
        )
        # backward startpoint pull: seq→comb edges (order-free minimum.at)
        self._sp_e = all_edges[comb_dst & ~comb_src]
        # combinational cells with no fanin at all (arrival = own prop delay)
        fanin_count = np.bincount(self._e_dst, minlength=n)
        self._comb_unfed = np.flatnonzero((~self._seq) & (fanin_count == 0))

    # ------------------------------------------------------------------
    def cascade_adjacent(self, placement: Placement) -> np.ndarray:
        """Dedicated-cascade legality per cascade edge (aligned with the
        flat cascade-edge list), computed with one ``site_col`` fetch.

        A hop is adjacent when predecessor and successor sit on consecutive
        site ids of one DSP column — the reference re-derived the column
        array via ``device.site_col("DSP")`` twice per cascade edge per pass.
        """
        ci = self._casc_idx
        s = placement.site[self._e_src[ci]]
        d = placement.site[self._e_dst[ci]]
        ok = (s >= 0) & (d == s + 1)
        col = placement.device.site_col("DSP")
        if col.size:
            same_col = col[np.clip(s, 0, col.size - 1)] == col[np.clip(d, 0, col.size - 1)]
            ok &= same_col
        else:
            ok[:] = False
        return ok

    def _edge_delays(self, placement: Placement, detour: np.ndarray | None) -> np.ndarray:
        """Per-edge delays for one placement (all edges, one pass)."""
        xy = placement.xy
        es, ed = self._e_src, self._e_dst
        dist = np.abs(xy[es, 0] - xy[ed, 0]) + np.abs(xy[es, 1] - xy[ed, 1])
        det = detour[self._e_net] if detour is not None else 1.0
        dm = self.dm
        delay = dm.net_base + dm.net_per_um * dist * det
        ci = self._casc_idx
        # devices without a dedicated cascade spine (slot fabrics) price
        # cascade nets as ordinary fabric routing
        if ci.size and getattr(placement.device, "has_cascades", True):
            adjacent = self.cascade_adjacent(placement)
            delay[ci] = np.where(
                adjacent, dm.cascade_fixed, dm.cascade_escape_penalty + delay[ci]
            )
        return delay

    # ------------------------------------------------------------------
    def _edge_delay(
        self,
        src: int,
        dst: int,
        net_id: int,
        placement: Placement,
        detour: np.ndarray | None,
    ) -> float:
        dxy = placement.xy[src] - placement.xy[dst]
        dist = abs(float(dxy[0])) + abs(float(dxy[1]))
        det = float(detour[net_id]) if detour is not None else 1.0
        if (src, dst) in self._cascade_pairs and getattr(
            placement.device, "has_cascades", True
        ):
            site_s = int(placement.site[src])
            site_d = int(placement.site[dst])
            adjacent = (
                site_s >= 0
                and site_d == site_s + 1
                and placement.device.site_col("DSP")[site_s]
                == placement.device.site_col("DSP")[site_d]
            )
            return self.dm.cascade_delay(adjacent, dist, det)
        return self.dm.net_delay(dist, det)

    def analyze(
        self,
        placement: Placement,
        routing: RoutingResult | None = None,
        period_ns: float | None = None,
        with_slacks: bool = False,
    ) -> TimingReport:
        """Run setup STA; ``period_ns`` defaults to the netlist's target.

        With ``with_slacks=True`` a backward required-time pass also fills
        ``report.cell_output_slack`` — the slack on every cell's output pin
        (min over all downstream endpoints), which timing-driven placement
        uses for net criticality weighting.
        """
        with trace.span(
            "sta.analyze", with_slacks=with_slacks, method=self.method, skew=self.skew.name
        ) as sp:
            if self.method == "vectorized":
                report = self._analyze_vectorized(placement, routing, period_ns, with_slacks)
            else:
                report = self._analyze_reference(placement, routing, period_ns, with_slacks)
            sp.set(wns_ns=report.wns_ns, n_failing=report.n_failing)
        metrics.inc("sta.analyses")
        metrics.gauge("sta.wns_ns", report.wns_ns)
        metrics.gauge("sta.tns_ns", report.tns_ns)
        return report

    # ------------------------------------------------------------------
    # vectorized engine
    # ------------------------------------------------------------------
    def _resolve_period(self, period_ns: float | None) -> float:
        if period_ns is None:
            if not self.netlist.target_freq_mhz:
                raise ValueError("no period given and netlist has no target frequency")
            period_ns = 1e3 / self.netlist.target_freq_mhz
        return period_ns

    def _skew_penalty_scalar(
        self, placement: Placement, launch_cell: int, capture_cell: int
    ) -> float:
        """One (launch, capture) skew charge — the reference engine's view."""
        p = self.skew.arrival_penalty(
            placement,
            np.array([launch_cell], dtype=np.int64),
            np.array([capture_cell], dtype=np.int64),
        )
        return float(p[0]) if isinstance(p, np.ndarray) else float(p)

    @staticmethod
    def _segment_max_first(vals: np.ndarray, starts: np.ndarray):
        """Per-segment (max, first index attaining it) — the reference's
        strict ``a > best`` scan keeps the earliest maximum, so ties must
        resolve to the first position."""
        m = np.maximum.reduceat(vals, starts)
        counts = np.diff(np.r_[starts, vals.size])
        is_max = vals == np.repeat(m, counts)
        pos = np.where(is_max, np.arange(vals.size), vals.size)
        first = np.minimum.reduceat(pos, starts)
        return m, first

    def _analyze_vectorized(
        self,
        placement: Placement,
        routing: RoutingResult | None,
        period_ns: float | None,
        with_slacks: bool,
    ) -> TimingReport:
        nl = self.netlist
        period_ns = self._resolve_period(period_ns)
        detour = routing.net_detour if routing is not None else None
        n = len(nl.cells)
        es, ed = self._e_src, self._e_dst
        delay = self._edge_delays(placement, detour)

        arrival = np.zeros(n)
        arrival[self._seq] = self._clk2q_arr[self._seq]
        arrival[self._comb_unfed] = self._prop_arr[self._comb_unfed]
        best_pred = np.full(n, -1, dtype=np.int64)
        launch = np.arange(n, dtype=np.int64)  # launch register of worst path

        fe, fstarts = self._fwd_e, self._fwd_starts
        for slo, shi in self._fwd_slices:
            elo = fstarts[slo]
            ehi = fstarts[shi] if shi < fstarts.size else fe.size
            e = fe[elo:ehi]
            a = arrival[es[e]] + delay[e]
            m, first = self._segment_max_first(a, fstarts[slo:shi] - elo)
            d = self._fwd_dst[slo:shi]
            pred = np.where(m > 0.0, es[e[np.minimum(first, e.size - 1)]], -1)
            arrival[d] = np.where(m > 0.0, m, 0.0) + self._prop_arr[d]
            best_pred[d] = pred
            launch[d] = np.where(pred >= 0, launch[np.maximum(pred, 0)], d)

        # endpoints: every sequential cell with fanin
        ee = self._end_e
        skew_term: np.ndarray | float = 0.0
        if ee.size:
            a = arrival[es[ee]] + delay[ee]
            skew_term = self.skew.arrival_penalty(placement, launch[es[ee]], ed[ee])
            if isinstance(skew_term, np.ndarray) or skew_term:
                a = a + skew_term
            worst, first = self._segment_max_first(a, self._end_starts)
            ends = self._end_dst
            end_pred = es[ee[first]]
            slack_arr = (period_ns - self._setup_arr[ends]) - worst
        else:
            ends = np.zeros(0, dtype=np.int64)
            end_pred = np.zeros(0, dtype=np.int64)
            slack_arr = np.zeros(0)

        has_endpoints = slack_arr.size > 0
        if not has_endpoints:
            slack_arr = np.array([period_ns])
        wns = float(slack_arr.min())
        tns = float(np.minimum(slack_arr, 0.0).sum())
        worst_i = int(np.argmin(slack_arr)) if has_endpoints else 0

        crit: list[int] = []
        if has_endpoints:
            crit = [int(ends[worst_i])]
            seen = set(crit)  # best_pred can cycle on comb-cycle netlists
            u = int(end_pred[worst_i])
            while u >= 0 and u not in seen:
                seen.add(u)
                crit.append(u)
                if self._seq[u]:
                    break
                u = int(best_pred[u])
            crit.reverse()

        cell_slack = None
        if with_slacks:
            required = np.full(n, np.inf)
            if ee.size:
                r = (period_ns - self._setup_arr[ed[ee]]) - delay[ee]
                if isinstance(skew_term, np.ndarray) or skew_term:
                    r = r - skew_term
                np.minimum.at(required, es[ee], r)
            be, bstarts = self._bwd_e, self._bwd_starts
            for slo, shi in self._bwd_slices:
                elo = bstarts[slo]
                ehi = bstarts[shi] if shi < bstarts.size else be.size
                e = be[elo:ehi]
                r = (required[ed[e]] - self._prop_arr[ed[e]]) - delay[e]
                m = np.minimum.reduceat(r, bstarts[slo:shi] - elo)
                s = self._bwd_src[slo:shi]
                required[s] = np.minimum(required[s], m)
            sp_e = self._sp_e
            if sp_e.size:
                r = (required[ed[sp_e]] - self._prop_arr[ed[sp_e]]) - delay[sp_e]
                np.minimum.at(required, es[sp_e], r)
            with np.errstate(invalid="ignore"):
                cell_slack = required - arrival
            cell_slack[~np.isfinite(required)] = np.nan  # no downstream endpoint

        return TimingReport(
            period_ns=float(period_ns),
            wns_ns=wns,
            tns_ns=tns,
            n_endpoints=int(ends.size),
            n_failing=int((slack_arr < 0).sum()),
            endpoint_slack=slack_arr,
            critical_path=crit,
            endpoint_cells=ends.copy() if has_endpoints else None,
            _end_pred=end_pred.copy() if has_endpoints else None,
            _best_pred=best_pred,
            cell_output_slack=cell_slack,
        )

    # ------------------------------------------------------------------
    # reference engine (per-cell loops; the equivalence-test oracle)
    # ------------------------------------------------------------------
    def _analyze_reference(
        self,
        placement: Placement,
        routing: RoutingResult | None,
        period_ns: float | None,
        with_slacks: bool,
    ) -> TimingReport:
        nl = self.netlist
        period_ns = self._resolve_period(period_ns)
        detour = routing.net_detour if routing is not None else None
        dm = self.dm

        n = len(nl.cells)
        arrival = np.zeros(n)
        best_pred = np.full(n, -1, dtype=np.int64)
        launch = np.arange(n, dtype=np.int64)  # launch register of worst path
        for u in range(n):
            if self._seq[u]:
                arrival[u] = dm.clk_to_q[nl.cells[u].ctype]

        for u in self._topo:
            best = 0.0
            pred = -1
            for v, nid in self._fanin[u]:
                a = arrival[v] + self._edge_delay(v, u, nid, placement, detour)
                if a > best:
                    best = a
                    pred = v
            arrival[u] = best + dm.prop.get(nl.cells[u].ctype, 0.0)
            best_pred[u] = pred
            if pred >= 0:
                launch[u] = launch[pred]

        # endpoints: every sequential cell with fanin
        slacks: list[float] = []
        ends: list[int] = []
        end_pred: list[int] = []
        for u in range(n):
            if not self._seq[u] or not self._fanin[u]:
                continue
            worst = None
            wpred = -1
            for v, nid in self._fanin[u]:
                a = arrival[v] + self._edge_delay(v, u, nid, placement, detour)
                a += self._skew_penalty_scalar(placement, int(launch[v]), u)
                if worst is None or a > worst:
                    worst = a
                    wpred = v
            slack = period_ns - dm.setup[nl.cells[u].ctype] - worst
            slacks.append(slack)
            ends.append(u)
            end_pred.append(wpred)

        slack_arr = np.array(slacks) if slacks else np.array([period_ns])
        wns = float(slack_arr.min())
        tns = float(np.minimum(slack_arr, 0.0).sum())
        worst_i = int(np.argmin(slack_arr)) if slacks else 0

        crit: list[int] = []
        if slacks:
            crit = [ends[worst_i]]
            seen = set(crit)  # best_pred can cycle on comb-cycle netlists
            u = end_pred[worst_i]
            while u >= 0 and u not in seen:
                seen.add(u)
                crit.append(u)
                if self._seq[u]:
                    break
                u = int(best_pred[u])
            crit.reverse()

        cell_slack = None
        if with_slacks:
            # backward pass: required time at each cell's output pin
            required = np.full(n, np.inf)
            for u in range(n):
                if not self._seq[u]:
                    continue
                for v, nid in self._fanin[u]:
                    r = (
                        period_ns
                        - dm.setup[nl.cells[u].ctype]
                        - self._edge_delay(v, u, nid, placement, detour)
                    )
                    r -= self._skew_penalty_scalar(placement, int(launch[v]), u)
                    required[v] = min(required[v], r)
            for u in reversed(self._topo):
                for w, nid in self._fanout[u]:
                    if self._seq[w]:
                        continue  # handled above via w's fanin
                    r = (
                        required[w]
                        - dm.prop.get(nl.cells[w].ctype, 0.0)
                        - self._edge_delay(u, w, nid, placement, detour)
                    )
                    required[u] = min(required[u], r)
            # sequential startpoints: pull required back through their
            # combinational fanout (all comb required times are final now)
            for u in range(n):
                if not self._seq[u]:
                    continue
                for w, nid in self._fanout[u]:
                    if self._seq[w]:
                        continue
                    r = (
                        required[w]
                        - dm.prop.get(nl.cells[w].ctype, 0.0)
                        - self._edge_delay(u, w, nid, placement, detour)
                    )
                    required[u] = min(required[u], r)
            with np.errstate(invalid="ignore"):
                cell_slack = required - arrival
            cell_slack[~np.isfinite(required)] = np.nan  # no downstream endpoint

        return TimingReport(
            period_ns=float(period_ns),
            wns_ns=wns,
            tns_ns=tns,
            n_endpoints=len(slacks),
            n_failing=int((slack_arr < 0).sum()),
            endpoint_slack=slack_arr,
            critical_path=crit,
            endpoint_cells=np.array(ends, dtype=np.int64) if ends else None,
            _end_pred=np.array(end_pred, dtype=np.int64) if ends else None,
            _best_pred=best_pred,
            cell_output_slack=cell_slack,
        )


def max_frequency(
    sta: StaticTimingAnalyzer,
    placement: Placement,
    routing: RoutingResult | None = None,
    lo_mhz: float = 10.0,
    hi_mhz: float = 1000.0,
) -> float:
    """Highest clock frequency (MHz) with non-negative WNS.

    One STA pass suffices: the worst path delay is period-independent, so
    f_max = 1 / (worst path delay).
    """
    report = sta.analyze(placement, routing, period_ns=1e3 / lo_mhz)
    return float(np.clip(report.freq_mhz_limit, lo_mhz, hi_mhz))
