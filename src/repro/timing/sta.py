"""Graph-based static timing analysis (setup checks).

Builds the combinational timing graph once per netlist (sequential cells —
FF/DSP/BRAM/IO/PS — break paths; LUT/CARRY/LUTRAM propagate), then evaluates
arrival times for any placement + routing in topological order. Reports the
paper's Table II metrics: setup WNS and TNS over all endpoint pins, plus the
critical path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.placers.placement import Placement
from repro.router.global_router import RoutingResult
from repro.timing.delay_model import DelayModel


@dataclass
class TimingReport:
    """Setup-timing summary for one placement."""

    period_ns: float
    wns_ns: float
    tns_ns: float
    n_endpoints: int
    n_failing: int
    endpoint_slack: np.ndarray
    critical_path: list[int]  # cell indices, start → endpoint
    #: cell index of each endpoint (aligned with endpoint_slack)
    endpoint_cells: np.ndarray | None = None
    #: worst-arrival predecessor of each endpoint / combinational cell,
    #: kept so reports can backtrace any endpoint's critical path
    _end_pred: np.ndarray | None = None
    _best_pred: np.ndarray | None = None
    #: per-cell output-pin slack (only with ``analyze(with_slacks=True)``);
    #: NaN for cells with no downstream timing endpoint
    cell_output_slack: np.ndarray | None = None

    def path_of(self, endpoint_rank: int) -> list[int]:
        """Critical path (start → endpoint) of the k-th worst endpoint."""
        if self.endpoint_cells is None:
            raise ValueError("report carries no endpoint detail")
        order = np.argsort(self.endpoint_slack)
        idx = int(order[endpoint_rank])
        path = [int(self.endpoint_cells[idx])]
        u = int(self._end_pred[idx])
        while u >= 0:
            path.append(u)
            u = int(self._best_pred[u])  # −1 at sequential/unfed cells
        path.reverse()
        return path

    @property
    def met(self) -> bool:
        return self.wns_ns >= 0.0

    @property
    def freq_mhz_limit(self) -> float:
        """Highest frequency this placement could close (from the worst path)."""
        worst_path = self.period_ns - self.wns_ns
        return 1e3 / max(worst_path, 1e-9)


class StaticTimingAnalyzer:
    """Reusable STA engine for one netlist."""

    def __init__(self, netlist: Netlist, delay_model: DelayModel | None = None) -> None:
        self.netlist = netlist
        self.dm = delay_model or DelayModel()
        self._cascade_pairs = set(netlist.cascade_pairs())
        self._seq = np.array([self.dm.is_sequential(c.ctype) for c in netlist.cells])

        # edge lists: (src, dst, net_id); plus per-node fanin adjacency
        self._fanin: list[list[tuple[int, int]]] = [[] for _ in netlist.cells]
        self._fanout: list[list[tuple[int, int]]] = [[] for _ in netlist.cells]
        for net in netlist.nets:
            for s in net.sinks:
                self._fanin[s].append((net.driver, net.index))
                self._fanout[net.driver].append((s, net.index))

        # topological order of combinational cells (Kahn over comb preds)
        n = len(netlist.cells)
        indeg = np.zeros(n, dtype=np.int64)
        for u in range(n):
            if self._seq[u]:
                continue
            indeg[u] = sum(1 for (v, _) in self._fanin[u] if not self._seq[v])
        queue = deque(u for u in range(n) if not self._seq[u] and indeg[u] == 0)
        order: list[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for w, _ in self._fanout[u]:
                if not self._seq[w]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        queue.append(w)
        n_comb = int((~self._seq).sum())
        self.has_comb_cycles = len(order) < n_comb
        if self.has_comb_cycles:
            # break cycles by appending the leftovers in index order; their
            # arrivals are then lower bounds (one relaxation round)
            seen = set(order)
            order.extend(u for u in range(n) if not self._seq[u] and u not in seen)
        self._topo = order

    # ------------------------------------------------------------------
    def _edge_delay(
        self,
        src: int,
        dst: int,
        net_id: int,
        placement: Placement,
        detour: np.ndarray | None,
    ) -> float:
        dxy = placement.xy[src] - placement.xy[dst]
        dist = abs(float(dxy[0])) + abs(float(dxy[1]))
        det = float(detour[net_id]) if detour is not None else 1.0
        if (src, dst) in self._cascade_pairs:
            site_s = int(placement.site[src])
            site_d = int(placement.site[dst])
            adjacent = (
                site_s >= 0
                and site_d == site_s + 1
                and placement.device.site_col("DSP")[site_s]
                == placement.device.site_col("DSP")[site_d]
            )
            return self.dm.cascade_delay(adjacent, dist, det)
        return self.dm.net_delay(dist, det)

    def analyze(
        self,
        placement: Placement,
        routing: RoutingResult | None = None,
        period_ns: float | None = None,
        with_slacks: bool = False,
    ) -> TimingReport:
        """Run setup STA; ``period_ns`` defaults to the netlist's target.

        With ``with_slacks=True`` a backward required-time pass also fills
        ``report.cell_output_slack`` — the slack on every cell's output pin
        (min over all downstream endpoints), which timing-driven placement
        uses for net criticality weighting.
        """
        with trace.span("sta.analyze", with_slacks=with_slacks) as sp:
            report = self._analyze_impl(placement, routing, period_ns, with_slacks)
            sp.set(wns_ns=report.wns_ns, n_failing=report.n_failing)
        metrics.inc("sta.analyses")
        metrics.gauge("sta.wns_ns", report.wns_ns)
        metrics.gauge("sta.tns_ns", report.tns_ns)
        return report

    def _analyze_impl(
        self,
        placement: Placement,
        routing: RoutingResult | None,
        period_ns: float | None,
        with_slacks: bool,
    ) -> TimingReport:
        nl = self.netlist
        if period_ns is None:
            if not nl.target_freq_mhz:
                raise ValueError("no period given and netlist has no target frequency")
            period_ns = 1e3 / nl.target_freq_mhz
        detour = routing.net_detour if routing is not None else None
        dm = self.dm

        n = len(nl.cells)
        arrival = np.zeros(n)
        best_pred = np.full(n, -1, dtype=np.int64)
        # clock region of each cell and, along worst paths, of the launch
        # register (for the cross-region skew charge)
        dev = placement.device
        ncx, ncy = dev.clock_region_shape
        region_x = np.clip(
            (placement.xy[:, 0] / max(dev.width, 1e-9) * ncx).astype(np.int64), 0, ncx - 1
        )
        region_y = np.clip(
            (placement.xy[:, 1] / max(dev.height, 1e-9) * ncy).astype(np.int64), 0, ncy - 1
        )
        launch = np.arange(n, dtype=np.int64)  # launch register of worst path
        for u in range(n):
            if self._seq[u]:
                arrival[u] = dm.clk_to_q[nl.cells[u].ctype]

        for u in self._topo:
            best = 0.0
            pred = -1
            for v, nid in self._fanin[u]:
                a = arrival[v] + self._edge_delay(v, u, nid, placement, detour)
                if a > best:
                    best = a
                    pred = v
            arrival[u] = best + dm.prop.get(nl.cells[u].ctype, 0.0)
            best_pred[u] = pred
            if pred >= 0:
                launch[u] = launch[pred]

        # endpoints: every sequential cell with fanin
        slacks: list[float] = []
        ends: list[int] = []
        end_pred: list[int] = []
        for u in range(n):
            if not self._seq[u] or not self._fanin[u]:
                continue
            worst = None
            wpred = -1
            for v, nid in self._fanin[u]:
                a = arrival[v] + self._edge_delay(v, u, nid, placement, detour)
                if dm.clock_skew_per_region:
                    lv = int(launch[v])
                    a += dm.clock_skew_per_region * max(
                        abs(int(region_x[lv]) - int(region_x[u])),
                        abs(int(region_y[lv]) - int(region_y[u])),
                    )
                if worst is None or a > worst:
                    worst = a
                    wpred = v
            slack = period_ns - dm.setup[nl.cells[u].ctype] - worst
            slacks.append(slack)
            ends.append(u)
            end_pred.append(wpred)

        slack_arr = np.array(slacks) if slacks else np.array([period_ns])
        wns = float(slack_arr.min())
        tns = float(np.minimum(slack_arr, 0.0).sum())
        worst_i = int(np.argmin(slack_arr)) if slacks else 0

        crit: list[int] = []
        if slacks:
            crit = [ends[worst_i]]
            u = end_pred[worst_i]
            while u >= 0:
                crit.append(u)
                if self._seq[u]:
                    break
                u = int(best_pred[u])
            crit.reverse()

        cell_slack = None
        if with_slacks:
            # backward pass: required time at each cell's output pin
            required = np.full(n, np.inf)
            for u in range(n):
                if not self._seq[u]:
                    continue
                for v, nid in self._fanin[u]:
                    r = (
                        period_ns
                        - dm.setup[nl.cells[u].ctype]
                        - self._edge_delay(v, u, nid, placement, detour)
                    )
                    if dm.clock_skew_per_region:
                        lv = int(launch[v])
                        r -= dm.clock_skew_per_region * max(
                            abs(int(region_x[lv]) - int(region_x[u])),
                            abs(int(region_y[lv]) - int(region_y[u])),
                        )
                    required[v] = min(required[v], r)
            for u in reversed(self._topo):
                for w, nid in self._fanout[u]:
                    if self._seq[w]:
                        continue  # handled above via w's fanin
                    r = (
                        required[w]
                        - dm.prop.get(nl.cells[w].ctype, 0.0)
                        - self._edge_delay(u, w, nid, placement, detour)
                    )
                    required[u] = min(required[u], r)
            # sequential startpoints: pull required back through their
            # combinational fanout (all comb required times are final now)
            for u in range(n):
                if not self._seq[u]:
                    continue
                for w, nid in self._fanout[u]:
                    if self._seq[w]:
                        continue
                    r = (
                        required[w]
                        - dm.prop.get(nl.cells[w].ctype, 0.0)
                        - self._edge_delay(u, w, nid, placement, detour)
                    )
                    required[u] = min(required[u], r)
            with np.errstate(invalid="ignore"):
                cell_slack = required - arrival
            cell_slack[~np.isfinite(required)] = np.nan  # no downstream endpoint

        return TimingReport(
            period_ns=float(period_ns),
            wns_ns=wns,
            tns_ns=tns,
            n_endpoints=len(slacks),
            n_failing=int((slack_arr < 0).sum()),
            endpoint_slack=slack_arr,
            critical_path=crit,
            endpoint_cells=np.array(ends, dtype=np.int64) if ends else None,
            _end_pred=np.array(end_pred, dtype=np.int64) if ends else None,
            _best_pred=best_pred,
            cell_output_slack=cell_slack,
        )


def max_frequency(
    sta: StaticTimingAnalyzer,
    placement: Placement,
    routing: RoutingResult | None = None,
    lo_mhz: float = 10.0,
    hi_mhz: float = 1000.0,
) -> float:
    """Highest clock frequency (MHz) with non-negative WNS.

    One STA pass suffices: the worst path delay is period-independent, so
    f_max = 1 / (worst path delay).
    """
    report = sta.analyze(placement, routing, period_ns=1e3 / lo_mhz)
    return float(np.clip(report.freq_mhz_limit, lo_mhz, hi_mhz))
