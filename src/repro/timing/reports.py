"""Timing report utilities: slack histograms and critical-path listings.

The analogue of a PnR tool's ``report_timing``: top-k worst paths with
per-stage cell names, and slack distribution summaries used by the
evaluation harness and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist
from repro.timing.sta import TimingReport


@dataclass(frozen=True)
class PathEntry:
    """One reported timing path."""

    slack_ns: float
    cells: tuple[int, ...]
    names: tuple[str, ...]

    @property
    def n_stages(self) -> int:
        return len(self.cells)


def top_critical_paths(
    report: TimingReport, netlist: Netlist, k: int = 5
) -> list[PathEntry]:
    """The k worst endpoints with their critical paths, worst first."""
    if report.endpoint_cells is None:
        return []
    k = min(k, report.n_endpoints)
    order = np.argsort(report.endpoint_slack)
    out = []
    for rank in range(k):
        path = report.path_of(rank)
        out.append(
            PathEntry(
                slack_ns=float(report.endpoint_slack[order[rank]]),
                cells=tuple(path),
                names=tuple(netlist.cells[i].name for i in path),
            )
        )
    return out


def slack_histogram(report: TimingReport, n_bins: int = 10) -> list[tuple[float, float, int]]:
    """(bin_lo, bin_hi, count) rows over the endpoint slack distribution."""
    slack = report.endpoint_slack
    counts, edges = np.histogram(slack, bins=n_bins)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i])) for i in range(len(counts))
    ]


def format_timing_report(
    report: TimingReport, netlist: Netlist, k_paths: int = 3
) -> str:
    """Human-readable multi-line summary (report_timing-style)."""
    lines = [
        f"period {report.period_ns:.3f} ns  WNS {report.wns_ns:+.3f}  "
        f"TNS {report.tns_ns:+.1f}  endpoints {report.n_endpoints}  "
        f"failing {report.n_failing}",
    ]
    for i, entry in enumerate(top_critical_paths(report, netlist, k_paths)):
        chain = " -> ".join(entry.names)
        lines.append(f"  path {i + 1}: slack {entry.slack_ns:+.3f} ns  [{chain}]")
    return "\n".join(lines)
