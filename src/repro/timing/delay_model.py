"""Delay model: logic delays + distance/congestion-dependent net delays.

Numbers are UltraScale+-flavoured (speed grade -2-ish orders of magnitude,
not datasheet-exact): LUT ≈ 0.15 ns, DSP48E2 used pipelined (registered
inputs/outputs), BRAM synchronous read ≈ 0.9 ns clock-to-out, and general
fabric routing around 0.7 ns per mm plus congestion detours.

The dedicated DSP cascade wiring is the load-bearing detail for this paper:
a PCOUT→PCIN hop between *vertically adjacent* sites of one column costs a
fixed ~0.03 ns, while a cascade that has to leave the dedicated spine and
cross the fabric pays routed delay plus an escape-mux penalty. Compact,
legal cascades are therefore exactly what closes timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.netlist.cell import CellType

#: cell kinds that begin/end timing paths (registered elements + pads)
SEQUENTIAL_KINDS = frozenset(
    {CellType.FF, CellType.DSP, CellType.BRAM, CellType.IO, CellType.PS}
)


@dataclass(frozen=True)
class DelayModel:
    """All timing constants, in nanoseconds (and ns/µm for wire)."""

    prop: dict = field(
        default_factory=lambda: {
            CellType.LUT: 0.15,
            CellType.CARRY: 0.08,
            CellType.LUTRAM: 0.45,  # asynchronous distributed-RAM read
        }
    )
    clk_to_q: dict = field(
        default_factory=lambda: {
            CellType.FF: 0.10,
            CellType.DSP: 0.55,
            CellType.BRAM: 0.90,
            CellType.IO: 0.30,
            CellType.PS: 0.40,
        }
    )
    setup: dict = field(
        default_factory=lambda: {
            CellType.FF: 0.05,
            CellType.DSP: 0.25,
            CellType.BRAM: 0.30,
            CellType.IO: 0.30,
            CellType.PS: 0.40,
        }
    )
    net_base: float = 0.05
    net_per_um: float = 0.0007
    cascade_fixed: float = 0.03
    cascade_escape_penalty: float = 0.25
    #: clock skew charged per clock-region (Chebyshev) step between a
    #: path's launch register and its capture register — the UltraScale+
    #: clock network is balanced within a region, skewed across regions
    clock_skew_per_region: float = 0.03

    def __post_init__(self) -> None:
        """Reject physically meaningless constants at construction.

        Negative propagation/clk-to-q/setup times, wire delays, cascade
        costs or skew were silently accepted before and produced quietly
        wrong slacks downstream; now they raise a
        :class:`~repro.errors.ConfigurationError` naming the knob.
        """
        for family in ("prop", "clk_to_q", "setup"):
            table = getattr(self, family)
            for ctype, v in table.items():
                if not math.isfinite(v) or v < 0.0:
                    raise ConfigurationError(
                        f"DelayModel.{family}[{getattr(ctype, 'value', ctype)}] "
                        f"must be a finite non-negative delay (ns), got {v!r}"
                    )
        for name in (
            "net_base",
            "net_per_um",
            "cascade_fixed",
            "cascade_escape_penalty",
            "clock_skew_per_region",
        ):
            v = getattr(self, name)
            if not math.isfinite(v) or v < 0.0:
                raise ConfigurationError(
                    f"DelayModel.{name} must be a finite non-negative number, "
                    f"got {v!r}"
                )

    def is_sequential(self, ctype: CellType) -> bool:
        return ctype in SEQUENTIAL_KINDS

    def net_delay(self, dist_um: float, detour: float = 1.0) -> float:
        """Routed point-to-point delay for a fabric net."""
        return self.net_base + self.net_per_um * dist_um * detour

    def cascade_delay(self, adjacent: bool, dist_um: float, detour: float = 1.0) -> float:
        """DSP→DSP cascade hop delay.

        ``adjacent`` means the two DSPs sit on consecutive rows of the same
        column (legal dedicated cascade). Otherwise the signal must escape
        into the fabric.
        """
        if adjacent:
            return self.cascade_fixed
        return self.cascade_escape_penalty + self.net_delay(dist_um, detour)
