"""Static timing analysis substrate.

Replaces Vivado's post-route timing reports: a graph-based STA over the
placed-and-routed netlist producing the paper's Table II metrics — setup
WNS (worst negative slack) and TNS (total negative slack) — plus critical
paths and slack histograms.
"""

from repro.timing.delay_model import DelayModel
from repro.timing.reports import (
    PathEntry,
    format_timing_report,
    slack_histogram,
    top_critical_paths,
)
from repro.timing.sta import StaticTimingAnalyzer, TimingReport, max_frequency

__all__ = [
    "DelayModel",
    "StaticTimingAnalyzer",
    "TimingReport",
    "max_frequency",
    "PathEntry",
    "format_timing_report",
    "slack_histogram",
    "top_critical_paths",
]
