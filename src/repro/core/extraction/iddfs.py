"""Iterative deepening DFS between DSP nodes (paper Section III-B).

The paper adopts IDDFS for DSP-graph construction because plain DFS misses
shortest paths and BFS's frontier is too large for netlist-scale graphs;
IDDFS combines DFS space with BFS shortest-path guarantees. Traversal
follows signal direction (driver → sink), stops when it reaches another DSP
(DSP-graph edges are DSP-to-DSP datapaths with no DSP in between), skips
very-high-fanout nets (clock/reset/enable broadcast, never datapath), and
records the distance and the number of storage cells along each found path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace


@dataclass(frozen=True)
class DSPPath:
    """Shortest driver→sink path between two DSP cells."""

    src: int
    dst: int
    dist: int  # edges along the netlist path
    n_storage: int  # FF/BRAM/LUTRAM cells strictly inside the path


def iddfs_dsp_paths(
    netlist: Netlist,
    max_depth: int = 6,
    max_fanout: int = 16,
    sources: list[int] | None = None,
) -> list[DSPPath]:
    """All shortest DSP→DSP paths up to ``max_depth`` netlist hops.

    Args:
        max_depth: Depth cutoff; datapath DSP-to-DSP connections (cascades,
            adder trees) are short, control broadcast is not.
        max_fanout: Nets wider than this are not traversed.
        sources: Restrict path search to these source DSPs.

    Returns:
        One :class:`DSPPath` per (src, dst) pair found, shortest distance.
    """
    with trace.span("extraction.iddfs", max_depth=max_depth) as sp:
        out = _iddfs_impl(netlist, max_depth, max_fanout, sources)
        sp.set(n_paths=len(out))
    metrics.inc("extraction.iddfs.paths", len(out))
    return out


def _iddfs_impl(
    netlist: Netlist,
    max_depth: int,
    max_fanout: int,
    sources: list[int] | None,
) -> list[DSPPath]:
    adj: list[list[int]] = [[] for _ in netlist.cells]
    for net in netlist.nets:
        if len(net.sinks) > max_fanout:
            continue
        for s in net.sinks:
            adj[net.driver].append(s)

    is_dsp = [c.ctype.is_dsp for c in netlist.cells]
    is_storage = [c.ctype.is_storage for c in netlist.cells]
    dsps = sources if sources is not None else netlist.dsp_indices()

    out: list[DSPPath] = []
    for src in dsps:
        found: dict[int, tuple[int, int]] = {}  # dst -> (dist, n_storage)
        for limit in range(1, max_depth + 1):
            targets_before = len(found)
            # depth-limited DFS with best-depth pruning: a node reached at
            # depth d is only re-expanded if reached cheaper later
            best_depth: dict[int, int] = {src: 0}
            stack: list[tuple[int, int, int]] = [(src, 0, 0)]  # node, depth, storage
            while stack:
                node, depth, storage = stack.pop()
                if depth >= limit:
                    continue
                for nxt in adj[node]:
                    nd = depth + 1
                    if is_dsp[nxt]:
                        if nxt != src and nxt not in found:
                            found[nxt] = (nd, storage)
                        continue  # do not pass through DSPs
                    prev = best_depth.get(nxt)
                    if prev is not None and prev <= nd:
                        continue
                    best_depth[nxt] = nd
                    stack.append((nxt, nd, storage + (1 if is_storage[nxt] else 0)))
            if len(found) == targets_before and limit > 1:
                # nothing new at this depth; deeper search can still find
                # more, but iterative deepening re-explores everything, so
                # keep going only while the frontier grows
                continue
        for dst, (dist, storage) in found.items():
            out.append(DSPPath(src=src, dst=dst, dist=dist, n_storage=storage))
    return out
