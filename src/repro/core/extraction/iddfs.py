"""DSP-to-DSP datapath search (paper Section III-B).

The paper adopts IDDFS for DSP-graph construction because plain DFS misses
shortest paths and BFS's frontier is too large for netlist-scale graphs;
IDDFS combines DFS space with BFS shortest-path guarantees. Traversal
follows signal direction (driver → sink), stops when it reaches another DSP
(DSP-graph edges are DSP-to-DSP datapaths with no DSP in between), skips
very-high-fanout nets (clock/reset/enable broadcast, never datapath), and
records the distance and the number of storage cells along each found path.

Two engines produce identical results:

- ``method="bfs"`` (default) — a depth-bounded multi-source level-synchronous
  BFS over the fanout-filtered CSR adjacency from the shared
  :class:`~repro.netlist.csr.NetlistCSR` context. Per-(source, node)
  shortest distance and minimum storage count propagate through frontier
  matrices with batched numpy gathers/scatters, over blocks of DSP sources.
- ``method="python"`` — the paper-faithful per-source iterative-deepening
  DFS, kept as the property-test reference. It stops deepening as soon as
  no node's shortest distance equals the current limit (the frontier stopped
  growing, so no deeper path can exist through an unexplored node).

Both record, per reached (src, dst) pair, the shortest distance and the
*minimum* storage count over the shortest paths — a deterministic quantity
(the old DFS recorded whichever shortest path it happened to walk first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace

METHODS = ("bfs", "python")

#: sources per BFS block; bounds the dense (block, n_cells) work arrays
_BLOCK = 256


@dataclass(frozen=True)
class DSPPath:
    """Shortest driver→sink path between two DSP cells."""

    src: int
    dst: int
    dist: int  # edges along the netlist path
    n_storage: int  # FF/BRAM/LUTRAM cells strictly inside the path


def iddfs_dsp_paths(
    netlist: Netlist,
    max_depth: int = 6,
    max_fanout: int = 16,
    sources: list[int] | None = None,
    method: str = "bfs",
) -> list[DSPPath]:
    """All shortest DSP→DSP paths up to ``max_depth`` netlist hops.

    Args:
        max_depth: Depth cutoff; datapath DSP-to-DSP connections (cascades,
            adder trees) are short, control broadcast is not.
        max_fanout: Nets wider than this are not traversed.
        sources: Restrict path search to these source DSPs.
        method: ``"bfs"`` (batched kernel) or ``"python"`` (IDDFS reference).

    Returns:
        One :class:`DSPPath` per (src, dst) pair found — shortest distance,
        minimum storage count over the shortest paths — sorted by (src, dst).
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    with trace.span("extraction.iddfs", max_depth=max_depth, method=method) as sp:
        if method == "bfs":
            out = _bfs_impl(netlist, max_depth, max_fanout, sources)
        else:
            out = _iddfs_impl(netlist, max_depth, max_fanout, sources)
        sp.set(n_paths=len(out))
    metrics.inc("extraction.iddfs.paths", len(out))
    return out


# ----------------------------------------------------------------------
# batched level-synchronous BFS kernel
# ----------------------------------------------------------------------


def _bfs_impl(
    netlist: Netlist,
    max_depth: int,
    max_fanout: int,
    sources: list[int] | None,
) -> list[DSPPath]:
    ctx = get_csr(netlist)
    n = ctx.n
    adj = ctx.fanout_filtered(max_fanout)
    indptr, indices = adj.indptr, adj.indices
    storage_w = ctx.is_storage.astype(np.int32)
    srcs = np.asarray(
        sources if sources is not None else ctx.dsp_indices, dtype=np.int64
    )
    out: list[DSPPath] = []
    if n == 0 or srcs.size == 0:
        return out
    dsp_cols = ctx.dsp_indices
    unreached = np.int32(n + 1)  # storage sentinel > any possible count

    # the dense (block, n) work arrays dominate runtime if reallocated per
    # block, so they are allocated once and only the keys a block actually
    # touched are reset afterwards — per-block work stays proportional to
    # the reached set, not to block·n
    s_max = min(_BLOCK, srcs.size)
    dflat = np.full(s_max * n, -1, dtype=np.int32)
    sflat = np.full(s_max * n, unreached, dtype=np.int32)
    tag = np.empty(s_max * n, dtype=np.int64)  # scatter-based dedup scratch

    for start in range(0, srcs.size, _BLOCK):
        block = srcs[start : start + _BLOCK]
        s = block.size
        rows = np.arange(s)
        # frontier as flat (block-row * n, node) pairs
        rowkeys, fnode = rows * n, block
        fkeys = rowkeys + fnode
        src_keys = fkeys
        dflat[src_keys] = 0
        sflat[src_keys] = 0
        touched = [src_keys]
        for depth in range(max_depth):
            if fnode.size == 0:
                break
            starts = indptr[fnode]
            counts = indptr[fnode + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # expand every frontier entry's edge list in one fused gather
            running = np.cumsum(counts) - counts
            pos = np.arange(total) + np.repeat(starts - running, counts)
            targets = indices[pos]
            cand = np.repeat(sflat[fkeys], counts) + storage_w[targets]
            keys = np.repeat(rowkeys, counts) + targets
            # a node reached at an earlier level is final; only unvisited
            # (src, node) pairs take this level's distance / storage minimum
            fresh = np.flatnonzero(dflat[keys] == -1)
            keys, cand = keys[fresh], cand[fresh]
            np.minimum.at(sflat, keys, cand)
            dflat[keys] = depth + 1
            # dedup without sorting/hashing: last scatter wins
            eidx = np.arange(keys.size)
            tag[keys] = eidx
            sel = np.flatnonzero(tag[keys] == eidx)
            fkeys = keys[sel]
            touched.append(fkeys)
            fnode = targets[fresh[sel]]
            interior = ~ctx.is_dsp[fnode]  # DSPs terminate the path
            fkeys, fnode = fkeys[interior], fnode[interior]
            rowkeys = fkeys - fnode
        # every DSP with a positive distance is a found destination
        ddist = dflat[: s * n].reshape(s, n)[:, dsp_cols]
        hit_r, hit_c = np.nonzero(ddist > 0)
        dstor = sflat[: s * n].reshape(s, n)[:, dsp_cols]
        out.extend(
            DSPPath(src=int(block[r]), dst=int(dsp_cols[c]),
                    dist=int(ddist[r, c]), n_storage=int(dstor[r, c]))
            for r, c in zip(hit_r.tolist(), hit_c.tolist())
        )
        for keys in touched:
            dflat[keys] = -1
            sflat[keys] = unreached
    out.sort(key=lambda p: (p.src, p.dst))
    return out


# ----------------------------------------------------------------------
# pure-Python iterative-deepening reference
# ----------------------------------------------------------------------


def _iddfs_single_source(
    adj: list[list[int]],
    is_dsp: list[bool],
    is_storage: list[bool],
    src: int,
    max_depth: int,
) -> tuple[dict[int, tuple[int, int]], int]:
    """IDDFS from one source; returns ``(found, deepest_limit_run)``.

    ``found`` maps destination DSPs to the lexicographically minimal
    ``(dist, n_storage)`` label. Deepening stops early once no node's
    shortest distance equals the current limit: every longer path must pass
    through an interior node at exactly the limit depth, so an empty "new at
    the limit" frontier proves deeper limits cannot discover anything.
    """
    found: dict[int, tuple[int, int]] = {}
    limit = 0
    for limit in range(1, max_depth + 1):
        # depth-limited DFS with lexicographic (depth, storage) pruning: a
        # node is re-expanded whenever reached with a strictly better label
        best: dict[int, tuple[int, int]] = {src: (0, 0)}
        stack: list[tuple[int, int, int]] = [(src, 0, 0)]
        while stack:
            node, depth, storage = stack.pop()
            if depth >= limit:
                continue
            for nxt in adj[node]:
                nd = depth + 1
                if is_dsp[nxt]:
                    if nxt != src:
                        label = (nd, storage)
                        prev = found.get(nxt)
                        if prev is None or label < prev:
                            found[nxt] = label
                    continue  # do not pass through DSPs
                label = (nd, storage + (1 if is_storage[nxt] else 0))
                prev = best.get(nxt)
                if prev is not None and prev <= label:
                    continue
                best[nxt] = label
                stack.append((nxt, *label))
        if not any(d == limit for d, _ in best.values()):
            break  # frontier stopped growing; deeper search cannot find more
    return found, limit


def _iddfs_impl(
    netlist: Netlist,
    max_depth: int,
    max_fanout: int,
    sources: list[int] | None,
) -> list[DSPPath]:
    adj: list[list[int]] = [[] for _ in netlist.cells]
    for net in netlist.nets:
        if len(net.sinks) > max_fanout:
            continue
        for s in net.sinks:
            adj[net.driver].append(s)

    is_dsp = [c.ctype.is_dsp for c in netlist.cells]
    is_storage = [c.ctype.is_storage for c in netlist.cells]
    dsps = sources if sources is not None else netlist.dsp_indices()

    out: list[DSPPath] = []
    for src in dsps:
        found, _ = _iddfs_single_source(adj, is_dsp, is_storage, src, max_depth)
        for dst, (dist, storage) in found.items():
            out.append(DSPPath(src=src, dst=dst, dist=dist, n_storage=storage))
    out.sort(key=lambda p: (p.src, p.dst))
    return out
