"""Datapath DSP identification (paper Section III-A / Fig. 7).

Wraps the learning substrate into netlist-level classifiers:

- ``"gcn"`` — the paper's method: the Fig. 3(c) GCN over the full netlist
  graph with the seven global+local features, trained leave-one-out.
- ``"svm"`` — the PADE [28] baseline: a linear SVM restricted to *local*
  features (degrees, feedback membership), mirroring its automorphism-only
  view; this is the Fig. 7(a) comparison point.
- ``"heuristic"`` — the storage-association rule of Section III-B (control
  DSPs neighbour many storage elements): a training-free 1-D two-means
  split on storage-neighbour counts.
- ``"oracle"`` — ground-truth labels from the generator (ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.extraction.features import FeatureConfig, extract_node_features
from repro.ml.gcn import normalized_adjacency
from repro.ml.metrics import accuracy
from repro.ml.svm import LinearSVM
from repro.ml.train import GraphSample, TrainResult, train_gcn
from repro.netlist.cell import CellType
from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace

#: Fallback feature columns for the local-only SVM baseline when a sample
#: carries no automorphism features: the two strictly-local columns
#: (indegree, outdegree). The preferred SVM input is
#: :func:`repro.core.extraction.automorphism.automorphism_features` —
#: PADE-style Weisfeiler-Lehman local-regularity fingerprints. Feedback-loop
#: membership (SCC) and the centralities are global information reserved
#: for the GCN.
LOCAL_FEATURE_COLUMNS = (3, 4)


def _svm_features(sample) -> np.ndarray:
    x = sample.x_local if sample.x_local is not None else sample.x[:, LOCAL_FEATURE_COLUMNS]
    return np.asarray(x)

METHODS = ("gcn", "svm", "heuristic", "oracle")


@dataclass
class IdentificationResult:
    """Outcome of classifying one netlist's DSPs."""

    flags: dict[int, bool]  # dsp cell index -> is_datapath prediction
    method: str
    accuracy: float | None = None  # vs. ground truth, when available

    @property
    def n_datapath(self) -> int:
        return sum(self.flags.values())


def build_graph_sample(
    netlist: Netlist,
    features: np.ndarray | None = None,
    feature_config: FeatureConfig | None = None,
) -> GraphSample:
    """Prepare a netlist for the node classifiers.

    Labels come from the generator's ground truth; the mask restricts the
    loss/accuracy to DSP nodes (the only labeled class in the paper). The
    sample also carries the strictly-local automorphism features the
    PADE-style SVM baseline consumes.
    """
    from repro.core.extraction.automorphism import automorphism_features

    if features is None:
        features = extract_node_features(netlist, feature_config)
    local = automorphism_features(netlist)
    ctx = get_csr(netlist)
    n = ctx.n
    # the binary symmetrized adjacency comes straight from the shared CSR
    # context instead of a per-call Python edge walk
    a_hat = normalized_adjacency(ctx.undirected)

    labels = np.zeros(n, dtype=np.int64)
    mask = ctx.is_dsp.copy()
    for idx in ctx.dsp_indices:
        labels[idx] = 1 if netlist.cells[idx].is_datapath else 0
    return GraphSample(
        a_hat=a_hat,
        x=features,
        labels=labels,
        mask=mask,
        name=netlist.name,
        x_local=local,
    )


def _storage_neighbor_counts(netlist: Netlist) -> dict[int, int]:
    ctx = get_csr(netlist)
    counts = ctx.undirected[ctx.dsp_indices] @ ctx.is_storage.astype(np.float64)
    return {int(idx): int(c) for idx, c in zip(ctx.dsp_indices, np.asarray(counts).ravel())}


def _two_means_split(values: np.ndarray) -> float:
    """1-D two-means threshold (control DSPs = the high-count cluster)."""
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        return hi + 0.5
    c0, c1 = lo, hi
    for _ in range(32):
        mid = (c0 + c1) / 2.0
        left = values[values <= mid]
        right = values[values > mid]
        if left.size == 0 or right.size == 0:
            break
        n0, n1 = left.mean(), right.mean()
        if np.isclose(n0, c0) and np.isclose(n1, c1):
            break
        c0, c1 = n0, n1
    return (c0 + c1) / 2.0


@dataclass
class DatapathIdentifier:
    """Train-once / predict-many datapath-DSP classifier."""

    method: str = "gcn"
    epochs: int = 300
    seed: int = 0
    feature_config: FeatureConfig | None = None
    _gcn: TrainResult | None = field(default=None, repr=False)
    _svm: LinearSVM | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown method {self.method!r}; choose from {METHODS}")

    # ------------------------------------------------------------------
    def fit(self, samples: list[GraphSample]) -> "DatapathIdentifier":
        """Train on prepared samples (no-op for heuristic/oracle)."""
        if self.method == "gcn":
            result = train_gcn(samples, epochs=self.epochs, seed=self.seed)
            self._gcn = result
        elif self.method == "svm":
            x = np.vstack([_svm_features(s)[s.mask] for s in samples])
            y = np.concatenate([s.labels[s.mask] for s in samples])
            self._svm = LinearSVM(epochs=self.epochs, seed=self.seed).fit(x, y)
        return self

    # ------------------------------------------------------------------
    def predict(
        self, netlist: Netlist, sample: GraphSample | None = None
    ) -> IdentificationResult:
        """Classify every DSP of a netlist."""
        with trace.span("extraction.identify", method=self.method) as sp:
            result = self._predict_impl(netlist, sample)
            sp.set(n_dsps=len(result.flags))
        if result.accuracy is not None:
            metrics.gauge("extraction.identify.accuracy", float(result.accuracy))
        return result

    def _predict_impl(
        self, netlist: Netlist, sample: GraphSample | None = None
    ) -> IdentificationResult:
        dsps = netlist.dsp_indices()
        if self.method == "oracle":
            flags = {i: bool(netlist.cells[i].is_datapath) for i in dsps}
            return IdentificationResult(flags=flags, method="oracle", accuracy=1.0)

        if self.method == "heuristic":
            counts = _storage_neighbor_counts(netlist)
            vals = np.array([counts[i] for i in dsps], dtype=np.float64)
            thr = _two_means_split(vals)
            flags = {i: counts[i] <= thr for i in dsps}
        else:
            if sample is None:
                sample = build_graph_sample(netlist, feature_config=self.feature_config)
            if self.method == "gcn":
                if self._gcn is None:
                    raise RuntimeError("gcn identifier: call fit() first")
                pred = self._gcn.predict(sample)
            else:
                if self._svm is None:
                    raise RuntimeError("svm identifier: call fit() first")
                pred_dsp = self._svm.predict(_svm_features(sample)[sample.mask])
                pred = np.zeros(len(sample.labels), dtype=int)
                pred[np.flatnonzero(sample.mask)] = pred_dsp
            flags = {i: bool(pred[i] == 1) for i in dsps}

        acc = None
        if all(netlist.cells[i].is_datapath is not None for i in dsps):
            truth = np.array([1 if netlist.cells[i].is_datapath else 0 for i in dsps])
            predicted = np.array([1 if flags[i] else 0 for i in dsps])
            acc = accuracy(predicted, truth)
        return IdentificationResult(flags=flags, method=self.method, accuracy=acc)
