"""Datapath DSP extraction (paper Section III)."""

from repro.core.extraction.brandes import betweenness_csr
from repro.core.extraction.features import FeatureConfig, extract_node_features, FEATURE_NAMES
from repro.core.extraction.iddfs import iddfs_dsp_paths, DSPPath
from repro.core.extraction.dsp_graph import build_dsp_graph, prune_control_dsps
from repro.core.extraction.identification import (
    DatapathIdentifier,
    IdentificationResult,
    build_graph_sample,
)

__all__ = [
    "betweenness_csr",
    "FeatureConfig",
    "extract_node_features",
    "FEATURE_NAMES",
    "iddfs_dsp_paths",
    "DSPPath",
    "build_dsp_graph",
    "prune_control_dsps",
    "DatapathIdentifier",
    "IdentificationResult",
    "build_graph_sample",
]
