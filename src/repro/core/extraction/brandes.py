"""Sparse-frontier Brandes betweenness over a CSR adjacency.

Brandes' algorithm is one BFS per source plus a reverse dependency
accumulation. Pure-Python per-node loops (networkx) dominate feature
extraction on netlist-scale graphs, so this kernel batches sources into
blocks and runs both passes over flattened ``(source, node)`` key arrays:

- *forward*: each BFS level expands the frontier's CSR edge lists in one
  gather and accumulates the shortest-path counts ``sigma`` of newly
  reached keys with ``np.add.at``. The edges into newly reached keys are
  exactly the shortest-path DAG edges, and are saved per level;
- *backward*: the saved DAG edges are replayed deepest-first,
  accumulating the dependency ``delta`` onto predecessor keys — no
  second adjacency expansion (and no transpose for directed graphs).

Because only reached keys are ever touched, total work is
``O(sources · edges)`` independent of graph diameter — netlist graphs are
long and thin, which makes dense per-level formulations (``O(n² · diam)``)
pathological.

The forward pass is a full multi-source BFS, so the kernel can hand back
the per-source distance matrix for free (``return_distances=True``); the
exact feature branch feeds closeness/eccentricity/DSP-distance from it
instead of running a second all-pairs pass.

Normalization mirrors ``nx.betweenness_centrality`` (``endpoints=False``)
exactly, including the sampled-source source/non-source split, which is what
lets the equivalence tests pin the kernel to networkx at 1e-9.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

DEFAULT_BLOCK = 1024


def _binary(adj: sp.spmatrix) -> sp.csr_matrix:
    a = sp.csr_matrix(adj, dtype=np.float64, copy=True)
    a.sum_duplicates()
    a.data[:] = 1.0
    return a


def betweenness_csr(
    adj: sp.spmatrix,
    sources: np.ndarray | None = None,
    normalized: bool = True,
    directed: bool = False,
    block_size: int = DEFAULT_BLOCK,
    return_distances: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Betweenness centrality of every node of ``adj`` (unweighted).

    Args:
        adj: Square adjacency; nonzero pattern defines edges. Pass a
            symmetric matrix for the undirected convention.
        sources: BFS sources (pivot sampling). ``None`` = exact (all nodes).
        normalized: Apply networkx's ``normalized=True`` rescale.
        directed: Rescale with the directed conventions (no pair-double
            counting correction).
        block_size: Sources per batch; memory is ``O(block_size · n)``.
        return_distances: Also return the ``(len(sources), n)`` BFS distance
            matrix (``inf`` for unreached pairs) as a second value.

    Returns:
        ``(n,)`` float array matching ``nx.betweenness_centrality`` (same
        ``normalized``/``k`` semantics, ``endpoints=False``); with
        ``return_distances`` a ``(bc, dist)`` tuple.
    """
    a = _binary(adj)
    n = a.shape[0]
    srcs = np.arange(n) if sources is None else np.asarray(sources, dtype=np.int64)
    bc = np.zeros(n)
    dist = np.empty((srcs.size, n)) if return_distances else None
    for start in range(0, srcs.size, block_size):
        block = srcs[start : start + block_size]
        delta, ddist = _accumulate_block(a, block)
        bc += delta
        if dist is not None:
            block_dist = ddist.astype(np.float64)
            block_dist[ddist < 0] = np.inf
            dist[start : start + block.size] = block_dist
    bc = _rescale(bc, n, k=None if sources is None else srcs.size,
                  normalized=normalized, directed=directed,
                  sources=None if sources is None else srcs)
    return (bc, dist) if return_distances else bc


def _expand(indptr: np.ndarray, indices: np.ndarray, rowkeys: np.ndarray, fnode: np.ndarray):
    """Gather every CSR edge leaving the frontier.

    ``rowkeys`` is the per-frontier-entry flat key base (``row * n``);
    returns ``(edge_rowkeys, edge_targets, counts)``. The edge positions are
    one fused repeat: ``arange(total) + repeat(starts - running_offset)``.
    """
    starts = indptr[fnode]
    counts = indptr[fnode + 1] - starts
    running = np.cumsum(counts, dtype=np.int64)
    total = int(running[-1]) if counts.size else 0
    if total == 0:
        return None, None, None
    pos = np.arange(total) + np.repeat(starts - (running - counts), counts)
    return np.repeat(rowkeys, counts), indices[pos], counts


def _accumulate_block(a: sp.csr_matrix, block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(Σ_s delta_s(v), BFS distances)`` for one block of sources."""
    n = a.shape[0]
    s = block.size
    size = s * n
    # int32 keys halve gather/scatter bandwidth whenever the flat key space
    # fits (it always does for feature-extraction-sized graphs)
    dt = np.int32 if size <= np.iinfo(np.int32).max else np.int64
    dflat = np.full(size, -1, dtype=np.int32)
    sigflat = np.zeros(size)
    tag = np.empty(size, dtype=dt)  # scatter scratch for frontier dedup
    src_keys = np.arange(s, dtype=dt) * dt(n) + block.astype(dt)
    dflat[src_keys] = 0
    sigflat[src_keys] = 1.0

    # forward BFS over flat (source, node) keys. At the level that first
    # reaches a key, *every* frontier edge into it is a shortest-path DAG
    # edge, so the fresh (parent key, child key) pairs are saved per level —
    # the backward pass then never re-expands or filters adjacency at all.
    dag: list[tuple[np.ndarray, np.ndarray]] = []
    fnode, fkeys = block.astype(dt), src_keys
    rowkeys = src_keys - fnode
    level = 0
    while True:
        ekeys, targets, counts = _expand(a.indptr, a.indices, rowkeys, fnode)
        if ekeys is None:
            break
        keys = ekeys + targets.astype(dt, copy=False)
        fresh = np.flatnonzero(dflat[keys] == -1)
        if fresh.size == 0:
            break
        fk = keys[fresh]
        uk = np.repeat(fkeys, counts)[fresh]
        # every edge into an unvisited key comes from the current level, so
        # one add.at over the fresh edges sums sigma over all predecessors
        np.add.at(sigflat, fk, sigflat[uk])
        dag.append((uk, fk))
        # dedup without sorting/hashing: last scatter wins, keep those edges
        eidx = np.arange(fk.size, dtype=dt)
        tag[fk] = eidx
        sel = np.flatnonzero(tag[fk] == eidx)
        new_keys = fk[sel]
        level += 1
        dflat[new_keys] = level
        fnode = targets[fresh[sel]].astype(dt, copy=False)
        fkeys = new_keys
        rowkeys = fkeys - fnode

    # backward: deepest level first, push dependencies along the DAG edges
    deltaflat = np.zeros(size)
    for uk, fk in reversed(dag):
        np.add.at(deltaflat, uk, sigflat[uk] / sigflat[fk] * (1.0 + deltaflat[fk]))
    deltaflat[src_keys] = 0.0
    return deltaflat.reshape(s, n).sum(axis=0), dflat.reshape(s, n)


def _rescale(
    bc: np.ndarray,
    n: int,
    k: int | None,
    normalized: bool,
    directed: bool,
    sources: np.ndarray | None,
) -> np.ndarray:
    """networkx ``_rescale`` for ``endpoints=False`` (N = n - 1)."""
    big_n = n - 1
    if big_n < 2:
        return bc
    if k is None:
        if normalized:
            scale = 1.0 / (big_n * (big_n - 1))
        else:
            scale = 1.0 if directed else 0.5
        return bc * scale
    # sampled sources: source nodes exclude themselves from the (s, t) pairs
    correction = 1.0 if directed else 2.0
    if normalized:
        scale_nonsource = 1.0 / (k * (big_n - 1))
        scale_source = 1.0 / ((k - 1) * (big_n - 1)) if k > 1 else scale_nonsource
    else:
        scale_nonsource = big_n / (k * correction)
        scale_source = big_n / ((k - 1) * correction) if k > 1 else scale_nonsource
    out = bc * scale_nonsource
    out[sources] = bc[sources] * scale_source
    return out
