"""Node features for datapath DSP identification (paper Section III-A).

Each node gets the paper's seven-dimensional feature vector:

(a) closeness centrality, (b) feedback-loop membership, (c) eccentricity,
(d) indegree, (e) outdegree, (f) betweenness centrality, and (g) — DSP
nodes only — the average shortest-path distance to other DSP nodes.

Exact centralities are O(V·E); on netlists with 10⁵ cells we use the
standard pivot-sampling approximations (distances from ``n_pivots`` BFS
sources via :mod:`scipy.sparse.csgraph`; Brandes betweenness sampled over
``n_pivots`` sources via networkx). Graphs below ``exact_threshold`` nodes
are computed exactly, which is what the definition unit tests check against
(Definitions 1–3 / Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.netlist.graph import netlist_to_digraph
from repro.netlist.netlist import Netlist
from repro.obs import trace

FEATURE_NAMES = (
    "closeness",
    "feedback",
    "eccentricity",
    "indegree",
    "outdegree",
    "betweenness",
    "avg_dsp_dist",
)


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-extraction knobs."""

    n_pivots: int = 48
    exact_threshold: int = 2500
    seed: int = 0


def _unweighted_csr(g: nx.DiGraph, n: int) -> sp.csr_matrix:
    rows, cols = [], []
    for u, v in g.edges:
        rows.append(u)
        cols.append(v)
    data = np.ones(len(rows))
    a = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    a = a + a.T  # undirected view for distances
    a.data[:] = 1.0
    return a.tocsr()


def extract_node_features(netlist: Netlist, config: FeatureConfig | None = None) -> np.ndarray:
    """Compute the ``(n_cells, 7)`` feature matrix of a netlist graph."""
    config = config or FeatureConfig()
    with trace.span("extraction.features", n_cells=len(netlist.cells)):
        return _features_impl(netlist, config)


def _features_impl(netlist: Netlist, config: FeatureConfig) -> np.ndarray:
    g = netlist_to_digraph(netlist)
    n = len(netlist.cells)
    feats = np.zeros((n, len(FEATURE_NAMES)))

    # (d)/(e) degrees
    feats[:, 3] = [g.in_degree(i) for i in range(n)]
    feats[:, 4] = [g.out_degree(i) for i in range(n)]

    # (b) feedback loops: membership in a non-trivial strongly connected
    # component of the directed graph (control feedback per the paper)
    for comp in nx.strongly_connected_components(g):
        if len(comp) > 1:
            for u in comp:
                feats[u, 1] = 1.0

    dsp_nodes = np.array(netlist.dsp_indices(), dtype=np.int64)
    exact = n <= config.exact_threshold
    if exact:
        ug = g.to_undirected(reciprocal=False)
        closeness = nx.closeness_centrality(ug)
        betweenness = nx.betweenness_centrality(ug, normalized=True)
        feats[:, 0] = [closeness[i] for i in range(n)]
        feats[:, 5] = [betweenness[i] for i in range(n)]
        # eccentricity / DSP distances per connected component: one dense
        # BFS distance matrix via csgraph (inf across components) instead
        # of walking networkx's all-pairs dict-of-dicts
        dist = csgraph.shortest_path(_unweighted_csr(g, n), method="D", unweighted=True)
        finite = np.isfinite(dist)
        feats[:, 2] = np.where(finite, dist, 0.0).max(axis=1)
        if dsp_nodes.size:
            dd = dist[np.ix_(dsp_nodes, dsp_nodes)]
            mask = np.isfinite(dd)
            np.fill_diagonal(mask, False)
            sums = np.where(mask, dd, 0.0).sum(axis=1)
            counts = mask.sum(axis=1)
            feats[dsp_nodes, 6] = np.where(
                counts > 0, sums / np.maximum(counts, 1), 0.0
            )
        return feats

    # ---- sampled approximations for large graphs ----
    rng = np.random.default_rng(config.seed)
    adj = _unweighted_csr(g, n)
    k = min(config.n_pivots, n)
    pivots = rng.choice(n, size=k, replace=False)
    dist = csgraph.dijkstra(adj, indices=pivots, unweighted=True)  # (k, n)
    finite = np.isfinite(dist)
    # (a) closeness ≈ (reachable pivots) / Σ distance-to-pivots
    sums = np.where(finite, dist, 0.0).sum(axis=0)
    counts = finite.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        feats[:, 0] = np.where(sums > 0, (counts - 1).clip(min=0) / sums, 0.0) * (
            counts / max(k, 1)
        )
    # (c) eccentricity ≈ max distance to any pivot (lower bound of true ecc)
    feats[:, 2] = np.where(finite, dist, 0.0).max(axis=0)

    # (f) sampled Brandes betweenness
    ug = g.to_undirected(reciprocal=False)
    bw = nx.betweenness_centrality(ug, k=min(k, n - 1), normalized=True, seed=int(config.seed))
    feats[:, 5] = [bw[i] for i in range(n)]

    # (g) avg shortest-path distance to other DSPs ≈ via DSP pivots
    if dsp_nodes.size >= 2:
        kd = min(config.n_pivots, dsp_nodes.size)
        dsp_pivots = rng.choice(dsp_nodes, size=kd, replace=False)
        ddist = csgraph.dijkstra(adj, indices=dsp_pivots, unweighted=True)[:, dsp_nodes]
        dfinite = np.isfinite(ddist)
        dsums = np.where(dfinite, ddist, 0.0).sum(axis=0)
        dcounts = np.maximum(dfinite.sum(axis=0), 1)
        feats[dsp_nodes, 6] = dsums / dcounts
    return feats
