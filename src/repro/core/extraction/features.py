"""Node features for datapath DSP identification (paper Section III-A).

Each node gets the paper's seven-dimensional feature vector:

(a) closeness centrality, (b) feedback-loop membership, (c) eccentricity,
(d) indegree, (e) outdegree, (f) betweenness centrality, and (g) — DSP
nodes only — the average shortest-path distance to other DSP nodes.

The default backend computes everything on the shared
:class:`~repro.netlist.csr.NetlistCSR` context with compiled/vectorized
kernels: degrees from CSR ``indptr`` diffs, feedback loops via
``csgraph.connected_components(connection="strong")``, closeness and
eccentricity from the dense BFS distance matrix, and betweenness via the
level-synchronous Brandes kernel (:mod:`repro.core.extraction.brandes`).
On netlists above ``exact_threshold`` nodes the standard pivot-sampling
approximations kick in (distances from ``n_pivots`` BFS sources, Brandes
over sampled pivots). ``FeatureConfig(backend="networkx")`` selects the
original pure-Python networkx implementation, kept as the equivalence-test
reference (Definitions 1–3 / Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.core.extraction.brandes import betweenness_csr
from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist
from repro.obs import trace

FEATURE_NAMES = (
    "closeness",
    "feedback",
    "eccentricity",
    "indegree",
    "outdegree",
    "betweenness",
    "avg_dsp_dist",
)

BACKENDS = ("kernels", "networkx")


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-extraction knobs."""

    n_pivots: int = 48
    exact_threshold: int = 2500
    seed: int = 0
    backend: str = "kernels"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")


def extract_node_features(netlist: Netlist, config: FeatureConfig | None = None) -> np.ndarray:
    """Compute the ``(n_cells, 7)`` feature matrix of a netlist graph."""
    config = config or FeatureConfig()
    with trace.span(
        "extraction.features", n_cells=len(netlist.cells), backend=config.backend
    ):
        if config.backend == "networkx":
            return _features_networkx(netlist, config)
        return _features_impl(netlist, config)


def _sampled_closeness(
    dist: np.ndarray, pivots: np.ndarray, n: int, k: int
) -> np.ndarray:
    """(a) closeness ≈ (reachable pivots, excluding self) / Σ distance.

    Only pivot nodes carry their own zero self-distance in the pivot-distance
    matrix, so only pivot rows discount one reachable pivot; subtracting 1
    for every node biased non-pivot closeness low by one pivot.
    """
    finite = np.isfinite(dist)
    sums = np.where(finite, dist, 0.0).sum(axis=0)
    counts = finite.sum(axis=0)
    is_pivot = np.zeros(n, dtype=np.int64)
    is_pivot[pivots] = 1
    reachable_others = counts - is_pivot
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(sums > 0, reachable_others / sums, 0.0) * (counts / max(k, 1))


def _features_impl(netlist: Netlist, config: FeatureConfig) -> np.ndarray:
    ctx = get_csr(netlist)
    n = ctx.n
    feats = np.zeros((n, len(FEATURE_NAMES)))
    if n == 0:
        return feats

    # (d)/(e) degrees straight off the CSR index pointers
    feats[:, 3] = ctx.indegree
    feats[:, 4] = ctx.outdegree

    # (b) feedback loops: membership in a non-trivial strongly connected
    # component of the directed graph (control feedback per the paper)
    n_comp, labels = csgraph.connected_components(
        ctx.directed, directed=True, connection="strong"
    )
    comp_sizes = np.bincount(labels, minlength=n_comp)
    feats[:, 1] = (comp_sizes[labels] > 1).astype(np.float64)

    dsp_nodes = ctx.dsp_indices
    adj = ctx.undirected
    if n <= config.exact_threshold:
        # (f) exact betweenness via the batched Brandes kernel; its forward
        # BFS hands back the dense distance matrix feeding (a), (c) and (g)
        feats[:, 5], dist = betweenness_csr(
            adj, normalized=True, directed=False, return_distances=True
        )
        finite = np.isfinite(dist)
        # (a) exact closeness with the Wasserman-Faust component scaling
        # (networkx's wf_improved convention): ((r-1)/Σd) · ((r-1)/(n-1))
        # where r counts reachable nodes including self
        totdist = np.where(finite, dist, 0.0).sum(axis=1)
        reach = finite.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            feats[:, 0] = np.where(
                totdist > 0, (reach - 1) ** 2 / (totdist * max(n - 1, 1)), 0.0
            )
        # (c) eccentricity per connected component (inf pairs masked out)
        feats[:, 2] = np.where(finite, dist, 0.0).max(axis=1)
        if dsp_nodes.size:
            dd = dist[np.ix_(dsp_nodes, dsp_nodes)]
            mask = np.isfinite(dd)
            np.fill_diagonal(mask, False)
            sums = np.where(mask, dd, 0.0).sum(axis=1)
            counts = mask.sum(axis=1)
            feats[dsp_nodes, 6] = np.where(
                counts > 0, sums / np.maximum(counts, 1), 0.0
            )
        return feats

    # ---- sampled approximations for large graphs ----
    rng = np.random.default_rng(config.seed)
    k = min(config.n_pivots, n)
    pivots = rng.choice(n, size=k, replace=False)
    dist = csgraph.dijkstra(adj, indices=pivots, unweighted=True)  # (k, n)
    feats[:, 0] = _sampled_closeness(dist, pivots, n, k)
    # (c) eccentricity ≈ max distance to any pivot (lower bound of true ecc)
    feats[:, 2] = np.where(np.isfinite(dist), dist, 0.0).max(axis=0)

    # (f) Brandes betweenness over sampled pivot sources
    kb = min(k, n - 1)
    bw_sources = rng.choice(n, size=kb, replace=False)
    feats[:, 5] = betweenness_csr(adj, sources=bw_sources, normalized=True)

    # (g) avg shortest-path distance to other DSPs ≈ via DSP pivots
    if dsp_nodes.size >= 2:
        kd = min(config.n_pivots, dsp_nodes.size)
        dsp_pivots = rng.choice(dsp_nodes, size=kd, replace=False)
        ddist = csgraph.dijkstra(adj, indices=dsp_pivots, unweighted=True)[:, dsp_nodes]
        dfinite = np.isfinite(ddist)
        dsums = np.where(dfinite, ddist, 0.0).sum(axis=0)
        dcounts = np.maximum(dfinite.sum(axis=0), 1)
        feats[dsp_nodes, 6] = dsums / dcounts
    return feats


# ----------------------------------------------------------------------
# networkx reference backend (pure Python; the equivalence-test pin)
# ----------------------------------------------------------------------


def _unweighted_csr_nx(g, n: int) -> sp.csr_matrix:
    rows, cols = [], []
    for u, v in g.edges:
        rows.append(u)
        cols.append(v)
    data = np.ones(len(rows))
    a = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    a = a + a.T  # undirected view for distances
    a.data[:] = 1.0
    return a.tocsr()


def _features_networkx(netlist: Netlist, config: FeatureConfig) -> np.ndarray:
    import networkx as nx

    from repro.netlist.graph import netlist_to_digraph

    g = netlist_to_digraph(netlist)
    n = len(netlist.cells)
    feats = np.zeros((n, len(FEATURE_NAMES)))
    if n == 0:
        return feats

    feats[:, 3] = [g.in_degree(i) for i in range(n)]
    feats[:, 4] = [g.out_degree(i) for i in range(n)]

    for comp in nx.strongly_connected_components(g):
        if len(comp) > 1:
            for u in comp:
                feats[u, 1] = 1.0

    dsp_nodes = np.array(netlist.dsp_indices(), dtype=np.int64)
    if n <= config.exact_threshold:
        ug = g.to_undirected(reciprocal=False)
        closeness = nx.closeness_centrality(ug)
        betweenness = nx.betweenness_centrality(ug, normalized=True)
        feats[:, 0] = [closeness[i] for i in range(n)]
        feats[:, 5] = [betweenness[i] for i in range(n)]
        dist = csgraph.shortest_path(_unweighted_csr_nx(g, n), method="D", unweighted=True)
        finite = np.isfinite(dist)
        feats[:, 2] = np.where(finite, dist, 0.0).max(axis=1)
        if dsp_nodes.size:
            dd = dist[np.ix_(dsp_nodes, dsp_nodes)]
            mask = np.isfinite(dd)
            np.fill_diagonal(mask, False)
            sums = np.where(mask, dd, 0.0).sum(axis=1)
            counts = mask.sum(axis=1)
            feats[dsp_nodes, 6] = np.where(
                counts > 0, sums / np.maximum(counts, 1), 0.0
            )
        return feats

    rng = np.random.default_rng(config.seed)
    adj = _unweighted_csr_nx(g, n)
    k = min(config.n_pivots, n)
    pivots = rng.choice(n, size=k, replace=False)
    dist = csgraph.dijkstra(adj, indices=pivots, unweighted=True)
    feats[:, 0] = _sampled_closeness(dist, pivots, n, k)
    feats[:, 2] = np.where(np.isfinite(dist), dist, 0.0).max(axis=0)

    ug = g.to_undirected(reciprocal=False)
    bw = nx.betweenness_centrality(ug, k=min(k, n - 1), normalized=True, seed=int(config.seed))
    feats[:, 5] = [bw[i] for i in range(n)]

    if dsp_nodes.size >= 2:
        kd = min(config.n_pivots, dsp_nodes.size)
        dsp_pivots = rng.choice(dsp_nodes, size=kd, replace=False)
        ddist = csgraph.dijkstra(adj, indices=dsp_pivots, unweighted=True)[:, dsp_nodes]
        dfinite = np.isfinite(ddist)
        dsums = np.where(dfinite, ddist, 0.0).sum(axis=0)
        dcounts = np.maximum(dfinite.sum(axis=0), 1)
        feats[dsp_nodes, 6] = dsums / dcounts
    return feats
