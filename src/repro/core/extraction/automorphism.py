"""Local automorphism-style features (the PADE [28] feature family).

PADE classifies datapath structures from *local wiring regularity* —
automorphism features that fingerprint a node's neighbourhood shape without
any global graph information. We reproduce that family with 1-dimensional
Weisfeiler-Lehman colour refinement: each node starts from its cell kind
and repeatedly absorbs the multiset of neighbour colours. Nodes whose
k-hop neighbourhoods are isomorphic get identical colours, which is exactly
the local-regularity signal automorphism detection exploits.

The SVM baseline of Fig. 7(a) consumes these features (optionally alongside
plain degrees); the paper's critique — "while this method identifies local
regularities, it struggles to capture global graph properties" — is then
directly testable against the GCN.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.csr import get_csr
from repro.netlist.netlist import Netlist


def wl_colors(netlist: Netlist, n_rounds: int = 2) -> list[tuple[int, ...]]:
    """Per-node Weisfeiler-Lehman colour after each refinement round.

    Returns, for each cell, the tuple of its colour ids over rounds
    (round 0 = cell kind). Colour ids are dense ints per round.
    """
    ctx = get_csr(netlist)
    n = ctx.n
    neigh: list[list[int]] = [[] for _ in range(n)]
    for u, v in zip(ctx.edge_src.tolist(), ctx.edge_dst.tolist()):
        neigh[u].append(v)
        neigh[v].append(u)

    # round 0: cell kind
    kinds = {c.ctype.value for c in netlist.cells}
    kind_id = {k: i for i, k in enumerate(sorted(kinds))}
    colors = [kind_id[c.ctype.value] for c in netlist.cells]
    history = [[(c,) for c in colors]]

    for _ in range(n_rounds):
        signatures = [
            (colors[u], tuple(sorted(colors[v] for v in neigh[u]))) for u in range(n)
        ]
        table: dict = {}
        new_colors = []
        for sig in signatures:
            if sig not in table:
                table[sig] = len(table)
            new_colors.append(table[sig])
        colors = new_colors
        history.append([(c,) for c in colors])

    return [tuple(h[u][0] for h in history) for u in range(n)]


def automorphism_features(
    netlist: Netlist, n_rounds: int = 2, max_class_feature: bool = True
) -> np.ndarray:
    """PADE-style local feature matrix.

    Per node: in/out degree, a histogram of neighbour cell kinds, and — per
    WL round — the (log) size of the node's colour class. Large colour
    classes mean many locally isomorphic copies (regular datapath tiles,
    e.g. identical PEs); small classes mean irregular (control) structure.
    All strictly local (1–2 hops).
    """
    from repro.netlist.cell import CellType

    ctx = get_csr(netlist)
    n = ctx.n
    colors = wl_colors(netlist, n_rounds=n_rounds)
    kind_ids = {k: i for i, k in enumerate(CellType)}
    n_kinds = len(kind_ids)
    kind = np.fromiter((kind_ids[c.ctype] for c in netlist.cells), dtype=np.int64, count=n)
    # multi-edge (per-pin) degrees and neighbour-kind histograms as
    # bincounts over the flattened edge arrays — no per-edge Python loop
    src, dst = ctx.edge_src, ctx.edge_dst
    outdeg = np.bincount(src, minlength=n).astype(np.float64)
    indeg = np.bincount(dst, minlength=n).astype(np.float64)
    kind_hist = (
        np.bincount(src * n_kinds + kind[dst], minlength=n * n_kinds)
        + np.bincount(dst * n_kinds + kind[src], minlength=n * n_kinds)
    ).reshape(n, n_kinds).astype(np.float64)

    cols = [indeg, outdeg, kind_hist]
    if max_class_feature:
        color_mat = np.array(colors, dtype=np.int64).reshape(n, n_rounds + 1)
        for r in range(n_rounds + 1):
            counts = np.bincount(color_mat[:, r])
            cols.append(np.log1p(counts[color_mat[:, r]].astype(np.float64)))
    return np.column_stack(cols)
