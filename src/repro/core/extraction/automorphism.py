"""Local automorphism-style features (the PADE [28] feature family).

PADE classifies datapath structures from *local wiring regularity* —
automorphism features that fingerprint a node's neighbourhood shape without
any global graph information. We reproduce that family with 1-dimensional
Weisfeiler-Lehman colour refinement: each node starts from its cell kind
and repeatedly absorbs the multiset of neighbour colours. Nodes whose
k-hop neighbourhoods are isomorphic get identical colours, which is exactly
the local-regularity signal automorphism detection exploits.

The SVM baseline of Fig. 7(a) consumes these features (optionally alongside
plain degrees); the paper's critique — "while this method identifies local
regularities, it struggles to capture global graph properties" — is then
directly testable against the GCN.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist


def wl_colors(netlist: Netlist, n_rounds: int = 2) -> list[tuple[int, ...]]:
    """Per-node Weisfeiler-Lehman colour after each refinement round.

    Returns, for each cell, the tuple of its colour ids over rounds
    (round 0 = cell kind). Colour ids are dense ints per round.
    """
    n = len(netlist.cells)
    neigh: list[list[int]] = [[] for _ in range(n)]
    for u, v, _w in netlist.iter_edges():
        neigh[u].append(v)
        neigh[v].append(u)

    # round 0: cell kind
    kinds = {c.ctype.value for c in netlist.cells}
    kind_id = {k: i for i, k in enumerate(sorted(kinds))}
    colors = [kind_id[c.ctype.value] for c in netlist.cells]
    history = [[(c,) for c in colors]]

    for _ in range(n_rounds):
        signatures = [
            (colors[u], tuple(sorted(colors[v] for v in neigh[u]))) for u in range(n)
        ]
        table: dict = {}
        new_colors = []
        for sig in signatures:
            if sig not in table:
                table[sig] = len(table)
            new_colors.append(table[sig])
        colors = new_colors
        history.append([(c,) for c in colors])

    return [tuple(h[u][0] for h in history) for u in range(n)]


def automorphism_features(
    netlist: Netlist, n_rounds: int = 2, max_class_feature: bool = True
) -> np.ndarray:
    """PADE-style local feature matrix.

    Per node: in/out degree, a histogram of neighbour cell kinds, and — per
    WL round — the (log) size of the node's colour class. Large colour
    classes mean many locally isomorphic copies (regular datapath tiles,
    e.g. identical PEs); small classes mean irregular (control) structure.
    All strictly local (1–2 hops).
    """
    from repro.netlist.cell import CellType

    n = len(netlist.cells)
    colors = wl_colors(netlist, n_rounds=n_rounds)
    indeg = np.zeros(n)
    outdeg = np.zeros(n)
    kind_ids = {k: i for i, k in enumerate(CellType)}
    kind_hist = np.zeros((n, len(kind_ids)))
    for u, v, _w in netlist.iter_edges():
        outdeg[u] += 1
        indeg[v] += 1
        kind_hist[u, kind_ids[netlist.cells[v].ctype]] += 1
        kind_hist[v, kind_ids[netlist.cells[u].ctype]] += 1

    cols = [indeg, outdeg, kind_hist]
    if max_class_feature:
        for r in range(n_rounds + 1):
            counts: dict[int, int] = {}
            for u in range(n):
                counts[colors[u][r]] = counts.get(colors[u][r], 0) + 1
            cols.append(np.array([np.log1p(counts[colors[u][r]]) for u in range(n)]))
    return np.column_stack(cols)
