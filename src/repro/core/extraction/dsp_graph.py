"""Datapath DSP graph construction and refinement (paper Section III-B).

The DSP graph keeps only DSP nodes; a directed edge p→s means a datapath
flows from DSP p to DSP s through non-DSP logic, annotated with the netlist
path length and storage-cell count. The refinement step removes control-path
DSPs (per the GCN labels) so the placement stage optimizes a *datapath-only*
graph — keeping control DSPs would loosen the layout (Section III-B).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.extraction.iddfs import DSPPath, iddfs_dsp_paths
from repro.netlist.netlist import Netlist
from repro.obs import trace


def _dedupe_paths(paths: list[DSPPath]) -> list[DSPPath]:
    """Keep one path per (src, dst): min dist, then min storage — batched.

    The BFS engine already emits unique pairs; externally supplied path
    lists (ablations, fault injection) may not, so dedupe lexicographically
    in one ``np.lexsort`` instead of per-edge dict probing.
    """
    if len(paths) < 2:
        return paths
    arr = np.array([(p.src, p.dst, p.dist, p.n_storage) for p in paths], dtype=np.int64)
    order = np.lexsort((arr[:, 3], arr[:, 2], arr[:, 1], arr[:, 0]))
    arr = arr[order]
    first = np.ones(len(arr), dtype=bool)
    first[1:] = (arr[1:, 0] != arr[:-1, 0]) | (arr[1:, 1] != arr[:-1, 1])
    return [
        DSPPath(src=int(s), dst=int(d), dist=int(di), n_storage=int(st))
        for s, d, di, st in arr[first]
    ]


def build_dsp_graph(
    netlist: Netlist,
    paths: list[DSPPath] | None = None,
    max_depth: int = 6,
    max_fanout: int = 16,
) -> nx.DiGraph:
    """Construct the initial DSP graph (all DSPs, incl. control path).

    Edge weights favour tight coupling: ``weight = 1 / dist``. Cascade
    macro pairs are additionally marked ``cascade=True``. Duplicate
    (src, dst) paths collapse to the (min dist, min storage) edge.
    """
    if paths is None:
        paths = iddfs_dsp_paths(netlist, max_depth=max_depth, max_fanout=max_fanout)
    with trace.span("extraction.dsp_graph", n_paths=len(paths)) as sp:
        g = nx.DiGraph()
        for idx in netlist.dsp_indices():
            g.add_node(idx, name=netlist.cells[idx].name)
        for p in _dedupe_paths(paths):
            g.add_edge(p.src, p.dst, dist=p.dist, n_storage=p.n_storage, weight=1.0 / p.dist)
        for pred, succ in netlist.cascade_pairs():
            if g.has_edge(pred, succ):
                g[pred][succ]["cascade"] = True
            else:
                g.add_edge(pred, succ, dist=1, n_storage=0, weight=1.0, cascade=True)
        sp.set(n_edges=g.number_of_edges())
    return g


def prune_control_dsps(dsp_graph: nx.DiGraph, datapath_flags: dict[int, bool]) -> nx.DiGraph:
    """Refinement: drop DSP nodes classified as control path.

    Args:
        datapath_flags: ``{dsp_cell_index: is_datapath}`` — typically the
            GCN predictions (or oracle labels for ablations).

    Returns:
        The datapath-only subgraph (copy).
    """
    keep = [n for n in dsp_graph.nodes if datapath_flags.get(n, False)]
    return dsp_graph.subgraph(keep).copy()


def average_dsp_distances(netlist: Netlist, paths: list[DSPPath]) -> dict[int, float]:
    """Mean shortest-path distance from each DSP to the DSPs it reaches.

    This is feature (g) of Section III-A computed from the IDDFS pass
    itself (the features module uses a sampled approximation when it runs
    standalone).
    """
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for p in paths:
        sums[p.src] = sums.get(p.src, 0.0) + p.dist
        counts[p.src] = counts.get(p.src, 0) + 1
    return {
        idx: (sums[idx] / counts[idx] if counts.get(idx) else 0.0)
        for idx in netlist.dsp_indices()
    }
