"""DSP placement constraint export (the paper's output interface).

DSPlacer's product is a set of DSP location constraints consumed by the
downstream PnR tool ("Using our output DSP placement results as
constraints, the off-the-shelf FPGA PnR tool iteratively places other
components and performs routing"). This module emits them in Vivado XDC
form — ``set_property LOC DSP48E2_X<col>Y<row> [get_cells <name>]`` — and
parses them back, so a placement can round-trip through the constraint
file exactly like the real flow hands off to Vivado.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.fpga.device import Device
from repro.netlist.netlist import Netlist
from repro.placers.placement import Placement

_LOC_RE = re.compile(
    r"set_property\s+LOC\s+DSP48E2_X(\d+)Y(\d+)\s+\[get_cells\s+\{?([^\}\]]+?)\}?\s*\]"
)


def dsp_constraints_to_xdc(
    placement: Placement, dsps: list[int] | None = None
) -> str:
    """Render DSP LOC constraints for (a subset of) placed DSP cells.

    Args:
        dsps: Cell indices to constrain; defaults to every DSP with an
            assigned site (DSPlacer passes its datapath set).

    Returns:
        XDC text, one ``set_property LOC`` line per DSP, sorted by site.
    """
    nl = placement.netlist
    dev = placement.device
    sites = dev.sites("DSP")
    if dsps is None:
        dsps = [c.index for c in nl.cells if c.ctype.is_dsp and placement.site[c.index] >= 0]
    lines = ["# DSP placement constraints emitted by DSPlacer (repro)"]
    rows = []
    for idx in dsps:
        sid = int(placement.site[idx])
        if sid < 0:
            raise ValueError(f"cell {nl.cells[idx].name!r} has no DSP site to constrain")
        site = sites[sid]
        rows.append((site.col, site.row, nl.cells[idx].name))
    for col, row, name in sorted(rows):
        lines.append(f"set_property LOC DSP48E2_X{col}Y{row} [get_cells {{{name}}}]")
    return "\n".join(lines) + "\n"


def apply_xdc_constraints(
    xdc_text: str, netlist: Netlist, device: Device, placement: Placement | None = None
) -> Placement:
    """Parse XDC LOC lines and pin the named DSPs onto their sites.

    Returns a placement with those DSPs site-assigned (other cells
    untouched); unknown cell names or out-of-range sites raise.
    """
    place = placement.copy() if placement is not None else Placement(netlist, device)
    for m in _LOC_RE.finditer(xdc_text):
        col, row, name = int(m.group(1)), int(m.group(2)), m.group(3).strip()
        cell = netlist.cell_by_name(name)
        if not cell.ctype.is_dsp:
            raise ValueError(f"constraint targets non-DSP cell {name!r}")
        ids = device.column_site_ids("DSP", col)
        if row >= len(ids):
            raise ValueError(f"DSP48E2_X{col}Y{row} does not exist on {device.name}")
        place.assign_site(cell.index, ids[row])
    return place
