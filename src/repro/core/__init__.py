"""DSPlacer core: the paper's contribution.

- :mod:`repro.core.extraction` — datapath DSP extraction (Section III):
  graph features, GCN identification, IDDFS DSP-graph construction.
- :mod:`repro.core.placement` — datapath-driven DSP placement (Section IV):
  linearized min-cost-flow assignment, ILP inter-column + exact intra-column
  cascade legalization, and the incremental alternating loop.
- :mod:`repro.core.dsplacer` — the :class:`DSPlacer` facade tying the whole
  Fig. 2 flow together.
"""

__all__ = ["DSPlacer", "DSPlacerConfig", "DSPlacerResult"]


def __getattr__(name: str):
    if name in __all__:
        from repro.core import dsplacer

        return getattr(dsplacer, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
