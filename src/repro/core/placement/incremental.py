"""Incremental alternation (paper Fig. 6).

DSPlacer's outer loop alternates between (a) placing the datapath DSPs with
everything else fixed — the assignment + legalization stages — and
(b) fixing the datapath DSPs and re-placing the remaining components, which
lets the rest of the design contract around the new DSP skeleton and
"alleviat[es] detours caused by the datapath-driven approach".
"""

from __future__ import annotations

import numpy as np

from repro.fpga.device import Device
from repro.netlist.netlist import Netlist
from repro.obs import metrics
from repro.placers.analytical import GlobalPlaceConfig, QuadraticGlobalPlacer
from repro.placers.detailed import refine_sites
from repro.placers.legalizer import Legalizer
from repro.placers.placement import Placement


def replace_other_components(
    netlist: Netlist,
    device: Device,
    placement: Placement,
    frozen_dsps: list[int],
    n_iterations: int = 3,
    seed: int = 0,
) -> Placement:
    """Re-place every movable cell except the frozen datapath DSPs.

    The frozen DSPs keep their legalized sites and act as fixed anchors for
    the quadratic solve; everything else (logic, BRAM, control DSPs) is
    globally re-placed, legalized around them and locally refined.
    """
    movable = np.array([not c.is_fixed for c in netlist.cells])
    movable[list(frozen_dsps)] = False
    metrics.inc("incremental.replaces")
    metrics.gauge("incremental.frozen_dsps", len(frozen_dsps))
    engine = QuadraticGlobalPlacer(
        GlobalPlaceConfig(n_iterations=n_iterations, avoid_ps=True, seed=seed)
    )
    place = engine.place(netlist, device, placement=placement, movable_mask=movable)
    Legalizer(device).legalize(place, movable_mask=movable)
    refine_sites(place, passes=1, movable_mask=movable, seed=seed)
    return place
