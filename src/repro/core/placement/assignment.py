"""Linearized min-cost-flow DSP assignment (paper Section IV-A).

The 0-1 quadratic program (eq. 7/8) is linearized around the previous
iterate (eq. 9, TILA-style), giving each (DSP i, site j) pair a closed-form
cost:

- **wirelength**: ``Σ_p w_ip · ‖site_j − pos'(p)‖²`` over i's netlist
  neighbours p at their previous positions — expanded to
  ``W_i·|s_j|² − 2·s_j·m_i + q_i`` so the whole N×M cost matrix is three
  rank-1 numpy operations;
- **datapath angle** (eq. 6): ``λ·(outdeg_D(i) − indeg_D(i))·cos θ_j`` with
  ``cos θ_j = x_j/√(x_j²+y_j²)`` measured from the PS corner — DSP-graph
  predecessors prefer small cos (above the PS), successors large cos
  (right of the PS);
- **cascade** (eq. 5 relaxed with η): a reward for landing next to the
  previous position of a cascade partner.

Each iterate is an assignment problem under constraints (4); its constraint
matrix is totally unimodular, so the min-cost-flow solution is integral.
The ``engine`` knob selects the MCF formulation over K-nearest candidate
arcs (paper-faithful; solved by the compiled sparse kernel in
:mod:`repro.solvers.mcf`) or a dense Hungarian solve (`scipy`) — both
exact, cross-checked in the tests.

The whole iterate is vectorized (see ``docs/PERFORMANCE.md``): neighbour
lists live in padded ``(N, K)`` index/weight matrices built once in
``__init__`` and reused across all iterates, the cascade penalty is a
scatter-add over precomputed partner index arrays, the true objective is a
gather/einsum over a canonical DSP–DSP pair list, and per-row candidate
windows are cached keyed on the cost-row hash so unchanged rows never
re-run ``argpartition``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.optimize

from repro.errors import (
    ConfigurationError,
    SolverError,
    SolverInfeasibleError,
    SolverInputError,
)
from repro.fpga.device import Device
from repro.netlist.graph import connectivity_matrix
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.placers.placement import Placement
from repro.robustness.faults import maybe_fault
from repro.robustness.guard import SolverGuard
from repro.solvers.mcf import min_cost_assignment

#: deterministic fallback order: the configured engine first, then the rest
#: of this tuple in order (so mcf → lsa → auction, and auction → lsa → mcf)
ENGINE_FALLBACK_ORDER = ("lsa", "mcf", "auction")


def engine_chain(primary: str) -> list[str]:
    """The deterministic engine fallback chain starting at ``primary``."""
    if primary not in ("mcf", "lsa", "auction"):
        raise ConfigurationError(f"unknown assignment engine {primary!r}")
    return [primary] + [e for e in ENGINE_FALLBACK_ORDER if e != primary]


@dataclass(frozen=True)
class AssignmentConfig:
    """Knobs of the linearized assignment loop.

    ``lam`` is the paper's λ (set to 100 in Section V-C); ``eta`` the
    cascade penalty η; ``max_iterations`` the internal MCF iteration count
    (the paper uses 50; the loop stops early once the assignment is stable).
    """

    lam: float = 100.0
    eta: float = 25.0
    wl_scale: float = 1e-4  # µm² → cost units (100 µm ≡ 1)
    candidate_k: int = 48
    max_iterations: int = 50
    #: stop when the true eq. (7) objective has not improved for this many
    #: consecutive linearization iterates
    patience: int = 3
    max_neighbors: int = 32
    #: per-iterate assignment solver: "mcf" (this repo's successive
    #: shortest paths — the paper's formulation), "lsa" (scipy Hungarian),
    #: or "auction" (this repo's ε-auction; exact to auction_tol)
    engine: str = "mcf"
    auction_tol: float = 1e-6
    #: extension beyond the paper: penalize sites in congested routing
    #: bins (the paper observes its compact layouts raise congestion to a
    #: "medium" level; this knob trades compactness against it). 0 = off.
    congestion_weight: float = 0.0
    #: extension beyond the paper: penalize sites whose clock arrival (from
    #: the skew model passed to the assigner) strays from the weighted mean
    #: arrival of the DSP's netlist neighbours — keeps tightly coupled
    #: logic under nearby clock taps. 0 = off; needs a skew model exposing
    #: per-point arrivals (HTreeSkew) to have any effect.
    skew_weight: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not np.isfinite(self.skew_weight) or self.skew_weight < 0.0:
            raise ConfigurationError(
                f"skew_weight must be finite and non-negative, got {self.skew_weight!r}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations} "
                "(the loop needs at least one linearization iterate)"
            )
        if self.patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {self.patience}")
        if self.candidate_k < 1:
            raise ConfigurationError(f"candidate_k must be >= 1, got {self.candidate_k}")
        if self.max_neighbors < 1:
            raise ConfigurationError(
                f"max_neighbors must be >= 1, got {self.max_neighbors}"
            )


class DatapathDSPAssigner:
    """Iterative linearized MCF assignment of datapath DSPs to device sites."""

    def __init__(
        self,
        netlist: Netlist,
        device: Device,
        dsp_graph: nx.DiGraph,
        datapath_dsps: list[int],
        config: AssignmentConfig | None = None,
        skew_model=None,
    ) -> None:
        self.netlist = netlist
        self.device = device
        self.config = config or AssignmentConfig()
        self.dsps = list(datapath_dsps)
        if not self.dsps:
            raise SolverInputError("no datapath DSPs to assign")

        self.site_xy = device.site_xy("DSP")
        m = self.site_xy.shape[0]
        if len(self.dsps) > m:
            raise SolverInfeasibleError(
                f"{len(self.dsps)} datapath DSPs exceed {m} device sites"
            )
        self._site_sq = (self.site_xy**2).sum(axis=1)
        norms = np.sqrt(np.maximum(self._site_sq, 1e-12))
        self._site_cos = self.site_xy[:, 0] / norms
        self._site_col = device.site_col("DSP")
        self._site_congestion: np.ndarray | None = None
        # per-site clock arrival for the skew-aware term; stays None when
        # the term is off or the model has no per-point arrival notion
        self._skew_model = skew_model
        self._site_skew: np.ndarray | None = None
        if self.config.skew_weight > 0 and skew_model is not None:
            self._site_skew = skew_model.arrivals_at(device, self.site_xy)

        # netlist neighbourhoods (top-weighted, bounded)
        w = connectivity_matrix(netlist)
        self._base_neighbors: list[tuple[np.ndarray, np.ndarray]] = []
        for i in self.dsps:
            row = w.getrow(i)
            idx = row.indices
            val = row.data
            if idx.size > self.config.max_neighbors:
                top = np.argpartition(val, -self.config.max_neighbors)[
                    -self.config.max_neighbors :
                ]
                idx, val = idx[top], val[top]
            self._base_neighbors.append((idx, val))
        self._neighbors = list(self._base_neighbors)

        # datapath-angle coefficient per DSP: λ·(outdeg − indeg) in E_D
        pos_in_dsps = {d: k for k, d in enumerate(self.dsps)}
        self._angle_coef = np.zeros(len(self.dsps))
        for u, v in dsp_graph.edges:
            if u in pos_in_dsps:
                self._angle_coef[pos_in_dsps[u]] += 1.0
            if v in pos_in_dsps:
                self._angle_coef[pos_in_dsps[v]] -= 1.0
        self._angle_coef *= self.config.lam

        # cascade partners among the assigned DSPs. The linearized *cost*
        # only pulls the successor toward (site of pred)+1 — a symmetric
        # pull makes the pair chase each other's previous site and cycle;
        # one-sided anchoring converges. The true objective still scores
        # every pair.
        self._partners: list[list[tuple[int, int]]] = [[] for _ in self.dsps]
        self._pairs: list[tuple[int, int]] = []  # (pred_k, succ_k)
        for pred, succ in netlist.cascade_pairs():
            if pred in pos_in_dsps and succ in pos_in_dsps:
                kp, ks = pos_in_dsps[pred], pos_in_dsps[succ]
                self._partners[ks].append((kp, +1))
                self._pairs.append((kp, ks))
        self._pos_in_dsps = pos_in_dsps
        # flattened cascade-pull arrays for the cost matrix's scatter-add:
        # row k of the cost gets +η and −η at (prev site of partner)+offset
        casc = [
            (k, partner, offset)
            for k, plist in enumerate(self._partners)
            for partner, offset in plist
        ]
        self._casc_row = np.array([c[0] for c in casc], dtype=np.int64)
        self._casc_partner = np.array([c[1] for c in casc], dtype=np.int64)
        self._casc_offset = np.array([c[2] for c in casc], dtype=np.int64)
        # (pred_k, succ_k) arrays for the objective's adjacency check
        self._pair_kp = np.array([p[0] for p in self._pairs], dtype=np.int64)
        self._pair_ks = np.array([p[1] for p in self._pairs], dtype=np.int64)
        self._rebuild_neighbor_arrays()
        #: per-row candidate-window cache: row -> (k, cost-row hash, window)
        self._cand_cache: dict[int, tuple[int, int, np.ndarray]] = {}

    def _rebuild_neighbor_arrays(self) -> None:
        """Derive the vectorized views of ``self._neighbors``.

        Called at construction and whenever the neighbour weights change
        (:meth:`set_criticality` / :meth:`clear_criticality`):

        - ``_nbr_idx`` / ``_nbr_w``: the ragged neighbour lists padded into
          ``(N, K)`` matrices (pad weight 0 ⇒ padded entries contribute
          nothing), so the linearized wirelength is three stacked rank-1
          numpy ops per iterate;
        - ``_ext_*``: flattened (row, neighbour-cell, weight) triples for
          neighbours *outside* the assigned DSP set;
        - ``_dd_a``/``_dd_b``/``_dd_w``: the canonical DSP–DSP pair list.
          Each unordered pair appears exactly once with the mean of the
          per-side weights that survived top-K truncation — equal to the
          old both-sides-halved accounting when both sides are present, and
          the full weight (not half) when truncation kept only one side.
        """
        n = len(self.dsps)
        kmax = max((idx.size for idx, _ in self._neighbors), default=1)
        self._nbr_idx = np.zeros((n, max(kmax, 1)), dtype=np.int64)
        self._nbr_w = np.zeros((n, max(kmax, 1)))
        ext_k: list[int] = []
        ext_j: list[int] = []
        ext_w: list[float] = []
        pair_acc: dict[tuple[int, int], tuple[float, int]] = {}
        for k, (idx, val) in enumerate(self._neighbors):
            self._nbr_idx[k, : idx.size] = idx
            self._nbr_w[k, : idx.size] = val
            for j, w in zip(idx.tolist(), val.tolist()):
                kj = self._pos_in_dsps.get(j)
                if kj is None:
                    ext_k.append(k)
                    ext_j.append(j)
                    ext_w.append(w)
                elif kj != k:
                    key = (k, kj) if k < kj else (kj, k)
                    acc, cnt = pair_acc.get(key, (0.0, 0))
                    pair_acc[key] = (acc + w, cnt + 1)
        self._ext_k = np.array(ext_k, dtype=np.int64)
        self._ext_j = np.array(ext_j, dtype=np.int64)
        self._ext_w = np.array(ext_w)
        keys = sorted(pair_acc)
        self._dd_a = np.array([a for a, _ in keys], dtype=np.int64)
        self._dd_b = np.array([b for _, b in keys], dtype=np.int64)
        self._dd_w = np.array([pair_acc[k][0] / pair_acc[k][1] for k in keys])

    # ------------------------------------------------------------------
    def set_criticality(self, cell_output_slack: np.ndarray, period_ns: float, boost: float = 2.0) -> None:
        """Timing-driven extension: upweight attraction to critical neighbours.

        ``cell_output_slack`` comes from
        :meth:`repro.timing.StaticTimingAnalyzer.analyze` with
        ``with_slacks=True``; a neighbour with slack s gets its connection
        weight scaled by ``1 + boost·clip(1 − s/period, 0, 1)``, so DSPs are
        pulled harder toward the cells on failing paths.
        """
        scaled: list[tuple[np.ndarray, np.ndarray]] = []
        for idx, val in self._base_neighbors:
            s = cell_output_slack[idx]
            crit = np.clip(1.0 - s / period_ns, 0.0, 1.0)
            crit = np.where(np.isnan(crit), 0.0, crit)
            scaled.append((idx, val * (1.0 + boost * crit)))
        self._neighbors = scaled
        self._rebuild_neighbor_arrays()

    def clear_criticality(self) -> None:
        self._neighbors = list(self._base_neighbors)
        self._rebuild_neighbor_arrays()

    def set_congestion_map(self, congestion: np.ndarray) -> None:
        """Sample a routing-congestion bin map at every DSP site.

        ``congestion`` is the (gx, gy) utilization grid from a
        :class:`~repro.router.RoutingResult`; sites falling in overloaded
        bins are surcharged by ``congestion_weight × max(0, util − 1)``.
        """
        gx, gy = congestion.shape
        bx = np.clip(
            (self.site_xy[:, 0] / max(self.device.width, 1e-9) * gx).astype(int), 0, gx - 1
        )
        by = np.clip(
            (self.site_xy[:, 1] / max(self.device.height, 1e-9) * gy).astype(int), 0, gy - 1
        )
        self._site_congestion = np.maximum(0.0, congestion[bx, by] - 1.0)

    def cost_matrix(
        self, placement: Placement, prev_sites: np.ndarray | None
    ) -> np.ndarray:
        """Linearized (N, M) cost of placing DSP k on site j (eq. 9).

        Fully batched: the wirelength expansion
        ``W_k·|s_j|² − 2·s_j·m_k + q_k`` runs as three stacked rank-1 numpy
        ops over the padded ``(N, K)`` neighbour matrices, and the cascade
        reward is a scatter-add over the precomputed partner index arrays.
        """
        cfg = self.config
        n = len(self.dsps)
        m = self.site_xy.shape[0]
        pts = placement.xy[self._nbr_idx]  # (n, K, 2); padded weights are 0
        w = self._nbr_w
        w_sum = w.sum(axis=1)
        mvec = np.einsum("nk,nkd->nd", w, pts)
        q = np.einsum("nk,nkd->n", w, pts**2)
        cost = cfg.wl_scale * (
            w_sum[:, None] * self._site_sq[None, :]
            - 2.0 * (mvec @ self.site_xy.T)
            + q[:, None]
        )
        cost += self._angle_coef[:, None] * self._site_cos[None, :]
        if cfg.congestion_weight > 0 and self._site_congestion is not None:
            cost += cfg.congestion_weight * self._site_congestion[None, :]
        if self._site_skew is not None:
            # skew-aware pull: per DSP, the weighted-mean clock arrival of
            # its neighbours is the reference; sites whose arrival strays
            # from it are surcharged. Rows with no neighbours are skipped.
            nbr_arr = self._skew_model.arrivals_at(
                self.device, pts
            ).reshape(w.shape)
            ref = (w * nbr_arr).sum(axis=1) / np.maximum(w_sum, 1e-12)
            pen = cfg.skew_weight * np.abs(self._site_skew[None, :] - ref[:, None])
            cost += np.where(w_sum[:, None] > 0, pen, 0.0)
        if prev_sites is not None and cfg.eta > 0 and self._casc_row.size:
            ps = prev_sites[self._casc_partner]
            live = ps >= 0
            rows, ps = self._casc_row[live], ps[live]
            row_bias = np.zeros(n)
            np.add.at(row_bias, rows, cfg.eta)
            cost += row_bias[:, None]
            target = ps + self._casc_offset[live]
            ok = (target >= 0) & (target < m)
            ok[ok] &= self._site_col[target[ok]] == self._site_col[ps[ok]]
            np.subtract.at(cost, (rows[ok], target[ok]), cfg.eta)
        return cost

    def _solve_engine(
        self, engine: str, cost: np.ndarray, prev_sites: np.ndarray | None
    ) -> np.ndarray:
        """One per-iterate assignment solve on a single named engine."""
        cfg = self.config
        n, m = cost.shape
        maybe_fault(f"assignment.{engine}")
        metrics.inc(f"assignment.solves.{engine}")
        if engine == "lsa":
            _, cols = scipy.optimize.linear_sum_assignment(cost)
            return np.asarray(cols, dtype=np.int64)
        if engine == "auction":
            from repro.solvers.auction import auction_assignment

            # relative ε: n·ε suboptimality ≈ auction_tol × cost spread.
            # (identical PE chains produce near-tied cost rows; a much
            # tighter ε degenerates into eps-increment price wars)
            spread = float(cost.max() - cost.min())
            eps = max(cfg.auction_tol, 1e-4) * spread / max(n, 1)
            cols, _total = auction_assignment(cost, eps_min=eps if spread > 0 else None)
            return cols
        if engine != "mcf":
            raise ConfigurationError(f"unknown assignment engine {engine!r}")
        # MCF over K-nearest candidate arcs (+ previous site for feasibility)
        k = min(cfg.candidate_k, m)
        while True:
            arcs = self._candidate_arcs(cost, k, prev_sites)
            try:
                assignment = min_cost_assignment(n, m, arcs)
                break
            except SolverInfeasibleError:
                if k >= m:
                    raise
                k = min(m, k * 2)  # widen the candidate windows and retry
        out = np.empty(n, dtype=np.int64)
        for i, j in assignment.items():
            out[i] = j
        return out

    def _candidate_arcs(
        self, cost: np.ndarray, k: int, prev_sites: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """K-nearest candidate arc arrays, with per-row window caching.

        Windows are keyed on ``(k, hash(row bytes))``: a cost row that is
        bit-identical to the previous solve (e.g. a DSP whose neighbourhood
        and cascade pulls did not move between iterates) reuses its cached
        ``argpartition`` result instead of re-ranking all M sites. Any stale
        rows are re-partitioned together in one batched call.
        """
        n, m = cost.shape
        digests = [hash(cost[i].tobytes()) for i in range(n)]
        cand = np.empty((n, k), dtype=np.int64)
        stale = []
        for i in range(n):
            hit = self._cand_cache.get(i)
            if hit is not None and hit[0] == k and hit[1] == digests[i]:
                cand[i] = hit[2]
            else:
                stale.append(i)
        metrics.inc("assignment.cand_cache.hits", n - len(stale))
        metrics.inc("assignment.cand_cache.misses", len(stale))
        if stale:
            rows = np.asarray(stale, dtype=np.int64)
            fresh = np.argpartition(cost[rows], k - 1, axis=1)[:, :k]
            cand[rows] = fresh
            for i, window in zip(stale, fresh):
                self._cand_cache[i] = (k, digests[i], window.copy())
        agents = np.repeat(np.arange(n, dtype=np.int64), k)
        slots = cand.reshape(-1)
        if prev_sites is not None:
            prev_rows = np.flatnonzero(prev_sites >= 0)
            agents = np.concatenate([agents, prev_rows])
            slots = np.concatenate([slots, prev_sites[prev_rows]])
        return agents, slots, cost[agents, slots]

    def _solve_once(
        self,
        cost: np.ndarray,
        prev_sites: np.ndarray | None,
        guard: SolverGuard | None = None,
    ) -> np.ndarray:
        """One per-iterate solve with the deterministic engine fallback chain.

        A failing engine (e.g. the auction's non-convergence) degrades to
        the next engine in :func:`engine_chain` instead of killing the run;
        with a guard the fallback is recorded in its
        :class:`~repro.robustness.RunHealth` and the stage budget is
        enforced between attempts.
        """
        chain = engine_chain(self.config.engine)
        attempts = [
            (engine, lambda e=engine: self._solve_engine(e, cost, prev_sites))
            for engine in chain
        ]
        if guard is not None:
            _, sites = guard.run(attempts)
            return sites
        last: SolverError | None = None
        for _, thunk in attempts:
            try:
                return thunk()
            except SolverError as exc:
                last = exc
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    def objective(self, sites: np.ndarray, placement: Placement) -> float:
        """True eq. (7) objective of an assignment (not the linearization).

        Wirelength is evaluated with every datapath DSP moved to its
        assigned site (other cells at their placement coordinates); the
        angle term is λ·Σ(cos θ_pred − cos θ_succ) over DSP-graph edges and
        the cascade term charges η per non-adjacent cascade pair.

        DSP–DSP wirelength runs over the canonical pair list built in
        :meth:`_rebuild_neighbor_arrays`, charging each unordered pair
        exactly once. (Until PR 3 every DSP–DSP term was halved on the
        assumption the pair shows up in both neighbour lists; top-K
        truncation can keep the edge on one side only, which undercounted
        that connection's wirelength by 2×.)
        """
        cfg = self.config
        dsp_xy = self.site_xy[sites]  # (n, 2): assigned coordinates
        total = 0.0
        if self._ext_k.size:
            d = dsp_xy[self._ext_k] - placement.xy[self._ext_j]
            total += float(self._ext_w @ np.einsum("ij,ij->i", d, d))
        if self._dd_a.size:
            d = dsp_xy[self._dd_a] - dsp_xy[self._dd_b]
            total += float(self._dd_w @ np.einsum("ij,ij->i", d, d))
        total *= cfg.wl_scale
        total += float(self._angle_coef @ self._site_cos[sites])
        if cfg.eta > 0 and self._pair_kp.size:
            sp_, ss_ = sites[self._pair_kp], sites[self._pair_ks]
            adjacent = (ss_ == sp_ + 1) & (self._site_col[ss_] == self._site_col[sp_])
            total += cfg.eta * float(np.count_nonzero(~adjacent))
        return total

    def solve(
        self, placement: Placement, guard: SolverGuard | None = None
    ) -> tuple[dict[int, int], int]:
        """Run the linearization loop from the current placement.

        Returns ``({dsp_cell_index: dsp_site_id}, iterations_used)``. The
        placement's coordinates are updated to the assigned sites (callers
        still must run cascade legalization — the η term is soft).

        With a ``guard``, every per-iterate solve runs under its fallback
        chain and the loop honours the stage's wall-clock budget: once the
        budget is exhausted the best-so-far assignment is returned (or, if
        there is none yet, :class:`~repro.errors.StageBudgetExceeded` is
        raised).
        """
        cfg = self.config
        place = placement
        prev_sites: np.ndarray | None = None
        best_sites: np.ndarray | None = None
        best_cost = np.inf
        seen: set[bytes] = set()
        iters = 0
        stale = 0
        for iters in range(1, cfg.max_iterations + 1):
            if guard is not None and guard.over_budget:
                if best_sites is not None:
                    guard.note_budget(
                        f"budget exhausted after {iters - 1} linearization "
                        "iterate(s); returning best-so-far assignment"
                    )
                    break
                guard.check_budget()  # no iterate finished: raises
            with trace.span("assignment.iterate", i=iters) as it_sp:
                with trace.span("assignment.cost_matrix"):
                    cost = self.cost_matrix(place, prev_sites)
                with trace.span("assignment.solve", engine=cfg.engine):
                    sites = self._solve_once(cost, prev_sites, guard)
                with trace.span("assignment.objective"):
                    true_obj = self.objective(sites, placement)
                it_sp.set(objective=true_obj)
            metrics.inc("assignment.iterates")
            metrics.observe("assignment.objective", true_obj)
            if true_obj < best_cost - 1e-9:
                best_cost = true_obj
                best_sites = sites
                stale = 0
            else:
                stale += 1
            key = sites.tobytes()
            if (
                (prev_sites is not None and np.array_equal(sites, prev_sites))
                or key in seen
                or stale >= cfg.patience
            ):
                break  # converged, cycled, or stopped improving
            seen.add(key)
            prev_sites = sites
            place.xy[self.dsps] = self.site_xy[sites]
        if best_sites is None:
            # unreachable while AssignmentConfig enforces max_iterations >= 1
            # (the guard's budget path breaks out only with a best-so-far);
            # kept so a future loop edit fails loudly instead of with a
            # TypeError on the dereference below.
            raise SolverError(
                "assignment loop finished without completing a single iterate"
            )
        place.xy[self.dsps] = self.site_xy[best_sites]
        result = {cell: int(best_sites[k]) for k, cell in enumerate(self.dsps)}
        return result, iters
