"""Linearized min-cost-flow DSP assignment (paper Section IV-A).

The 0-1 quadratic program (eq. 7/8) is linearized around the previous
iterate (eq. 9, TILA-style), giving each (DSP i, site j) pair a closed-form
cost:

- **wirelength**: ``Σ_p w_ip · ‖site_j − pos'(p)‖²`` over i's netlist
  neighbours p at their previous positions — expanded to
  ``W_i·|s_j|² − 2·s_j·m_i + q_i`` so the whole N×M cost matrix is three
  rank-1 numpy operations;
- **datapath angle** (eq. 6): ``λ·(outdeg_D(i) − indeg_D(i))·cos θ_j`` with
  ``cos θ_j = x_j/√(x_j²+y_j²)`` measured from the PS corner — DSP-graph
  predecessors prefer small cos (above the PS), successors large cos
  (right of the PS);
- **cascade** (eq. 5 relaxed with η): a reward for landing next to the
  previous position of a cascade partner.

Each iterate is an assignment problem under constraints (4); its constraint
matrix is totally unimodular, so the min-cost-flow solution is integral.
The ``engine`` knob selects this repo's successive-shortest-paths MCF over
K-nearest candidate arcs (paper-faithful) or a dense Hungarian solve
(`scipy`) — both exact, cross-checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.optimize

from repro.errors import (
    ConfigurationError,
    SolverError,
    SolverInfeasibleError,
    SolverInputError,
)
from repro.fpga.device import Device
from repro.netlist.graph import connectivity_matrix
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.placers.placement import Placement
from repro.robustness.faults import maybe_fault
from repro.robustness.guard import SolverGuard
from repro.solvers.mcf import min_cost_assignment

#: deterministic fallback order: the configured engine first, then the rest
#: of this tuple in order (so mcf → lsa → auction, and auction → lsa → mcf)
ENGINE_FALLBACK_ORDER = ("lsa", "mcf", "auction")


def engine_chain(primary: str) -> list[str]:
    """The deterministic engine fallback chain starting at ``primary``."""
    if primary not in ("mcf", "lsa", "auction"):
        raise ConfigurationError(f"unknown assignment engine {primary!r}")
    return [primary] + [e for e in ENGINE_FALLBACK_ORDER if e != primary]


@dataclass(frozen=True)
class AssignmentConfig:
    """Knobs of the linearized assignment loop.

    ``lam`` is the paper's λ (set to 100 in Section V-C); ``eta`` the
    cascade penalty η; ``max_iterations`` the internal MCF iteration count
    (the paper uses 50; the loop stops early once the assignment is stable).
    """

    lam: float = 100.0
    eta: float = 25.0
    wl_scale: float = 1e-4  # µm² → cost units (100 µm ≡ 1)
    candidate_k: int = 48
    max_iterations: int = 50
    #: stop when the true eq. (7) objective has not improved for this many
    #: consecutive linearization iterates
    patience: int = 3
    max_neighbors: int = 32
    #: per-iterate assignment solver: "mcf" (this repo's successive
    #: shortest paths — the paper's formulation), "lsa" (scipy Hungarian),
    #: or "auction" (this repo's ε-auction; exact to auction_tol)
    engine: str = "mcf"
    auction_tol: float = 1e-6
    #: extension beyond the paper: penalize sites in congested routing
    #: bins (the paper observes its compact layouts raise congestion to a
    #: "medium" level; this knob trades compactness against it). 0 = off.
    congestion_weight: float = 0.0
    seed: int = 0


class DatapathDSPAssigner:
    """Iterative linearized MCF assignment of datapath DSPs to device sites."""

    def __init__(
        self,
        netlist: Netlist,
        device: Device,
        dsp_graph: nx.DiGraph,
        datapath_dsps: list[int],
        config: AssignmentConfig | None = None,
    ) -> None:
        self.netlist = netlist
        self.device = device
        self.config = config or AssignmentConfig()
        self.dsps = list(datapath_dsps)
        if not self.dsps:
            raise SolverInputError("no datapath DSPs to assign")

        self.site_xy = device.site_xy("DSP")
        m = self.site_xy.shape[0]
        if len(self.dsps) > m:
            raise SolverInfeasibleError(
                f"{len(self.dsps)} datapath DSPs exceed {m} device sites"
            )
        self._site_sq = (self.site_xy**2).sum(axis=1)
        norms = np.sqrt(np.maximum(self._site_sq, 1e-12))
        self._site_cos = self.site_xy[:, 0] / norms
        self._site_col = device.site_col("DSP")
        self._site_congestion: np.ndarray | None = None

        # netlist neighbourhoods (top-weighted, bounded)
        w = connectivity_matrix(netlist)
        self._base_neighbors: list[tuple[np.ndarray, np.ndarray]] = []
        for i in self.dsps:
            row = w.getrow(i)
            idx = row.indices
            val = row.data
            if idx.size > self.config.max_neighbors:
                top = np.argpartition(val, -self.config.max_neighbors)[
                    -self.config.max_neighbors :
                ]
                idx, val = idx[top], val[top]
            self._base_neighbors.append((idx, val))
        self._neighbors = list(self._base_neighbors)

        # datapath-angle coefficient per DSP: λ·(outdeg − indeg) in E_D
        pos_in_dsps = {d: k for k, d in enumerate(self.dsps)}
        self._angle_coef = np.zeros(len(self.dsps))
        for u, v in dsp_graph.edges:
            if u in pos_in_dsps:
                self._angle_coef[pos_in_dsps[u]] += 1.0
            if v in pos_in_dsps:
                self._angle_coef[pos_in_dsps[v]] -= 1.0
        self._angle_coef *= self.config.lam

        # cascade partners among the assigned DSPs. The linearized *cost*
        # only pulls the successor toward (site of pred)+1 — a symmetric
        # pull makes the pair chase each other's previous site and cycle;
        # one-sided anchoring converges. The true objective still scores
        # every pair.
        self._partners: list[list[tuple[int, int]]] = [[] for _ in self.dsps]
        self._pairs: list[tuple[int, int]] = []  # (pred_k, succ_k)
        for pred, succ in netlist.cascade_pairs():
            if pred in pos_in_dsps and succ in pos_in_dsps:
                kp, ks = pos_in_dsps[pred], pos_in_dsps[succ]
                self._partners[ks].append((kp, +1))
                self._pairs.append((kp, ks))

    # ------------------------------------------------------------------
    def set_criticality(self, cell_output_slack: np.ndarray, period_ns: float, boost: float = 2.0) -> None:
        """Timing-driven extension: upweight attraction to critical neighbours.

        ``cell_output_slack`` comes from
        :meth:`repro.timing.StaticTimingAnalyzer.analyze` with
        ``with_slacks=True``; a neighbour with slack s gets its connection
        weight scaled by ``1 + boost·clip(1 − s/period, 0, 1)``, so DSPs are
        pulled harder toward the cells on failing paths.
        """
        scaled: list[tuple[np.ndarray, np.ndarray]] = []
        for idx, val in self._base_neighbors:
            s = cell_output_slack[idx]
            crit = np.clip(1.0 - s / period_ns, 0.0, 1.0)
            crit = np.where(np.isnan(crit), 0.0, crit)
            scaled.append((idx, val * (1.0 + boost * crit)))
        self._neighbors = scaled

    def clear_criticality(self) -> None:
        self._neighbors = list(self._base_neighbors)

    def set_congestion_map(self, congestion: np.ndarray) -> None:
        """Sample a routing-congestion bin map at every DSP site.

        ``congestion`` is the (gx, gy) utilization grid from a
        :class:`~repro.router.RoutingResult`; sites falling in overloaded
        bins are surcharged by ``congestion_weight × max(0, util − 1)``.
        """
        gx, gy = congestion.shape
        bx = np.clip(
            (self.site_xy[:, 0] / max(self.device.width, 1e-9) * gx).astype(int), 0, gx - 1
        )
        by = np.clip(
            (self.site_xy[:, 1] / max(self.device.height, 1e-9) * gy).astype(int), 0, gy - 1
        )
        self._site_congestion = np.maximum(0.0, congestion[bx, by] - 1.0)

    def cost_matrix(
        self, placement: Placement, prev_sites: np.ndarray | None
    ) -> np.ndarray:
        """Linearized (N, M) cost of placing DSP k on site j (eq. 9)."""
        cfg = self.config
        n = len(self.dsps)
        m = self.site_xy.shape[0]
        cost = np.empty((n, m))
        for k in range(n):
            idx, val = self._neighbors[k]
            if idx.size:
                pts = placement.xy[idx]
                w_sum = float(val.sum())
                mvec = (val[:, None] * pts).sum(axis=0)
                q = float((val * (pts**2).sum(axis=1)).sum())
                wl = w_sum * self._site_sq - 2.0 * (self.site_xy @ mvec) + q
            else:
                wl = np.zeros(m)
            cost[k] = cfg.wl_scale * wl
        cost += self._angle_coef[:, None] * self._site_cos[None, :]
        if cfg.congestion_weight > 0 and self._site_congestion is not None:
            cost += cfg.congestion_weight * self._site_congestion[None, :]
        if prev_sites is not None and cfg.eta > 0:
            for k in range(n):
                for partner, offset in self._partners[k]:
                    ps = prev_sites[partner]
                    if ps < 0:
                        continue
                    target = ps + offset
                    cost[k] += cfg.eta
                    if 0 <= target < m and self._site_col[target] == self._site_col[ps]:
                        cost[k, target] -= cfg.eta
        return cost

    def _solve_engine(
        self, engine: str, cost: np.ndarray, prev_sites: np.ndarray | None
    ) -> np.ndarray:
        """One per-iterate assignment solve on a single named engine."""
        cfg = self.config
        n, m = cost.shape
        maybe_fault(f"assignment.{engine}")
        metrics.inc(f"assignment.solves.{engine}")
        if engine == "lsa":
            _, cols = scipy.optimize.linear_sum_assignment(cost)
            return np.asarray(cols, dtype=np.int64)
        if engine == "auction":
            from repro.solvers.auction import auction_assignment

            # relative ε: n·ε suboptimality ≈ auction_tol × cost spread.
            # (identical PE chains produce near-tied cost rows; a much
            # tighter ε degenerates into eps-increment price wars)
            spread = float(cost.max() - cost.min())
            eps = max(cfg.auction_tol, 1e-4) * spread / max(n, 1)
            cols, _total = auction_assignment(cost, eps_min=eps if spread > 0 else None)
            return cols
        if engine != "mcf":
            raise ConfigurationError(f"unknown assignment engine {engine!r}")
        # MCF over K-nearest candidate arcs (+ previous site for feasibility)
        k = min(cfg.candidate_k, m)
        while True:
            arcs: list[tuple[int, int, float]] = []
            for i in range(n):
                cand = np.argpartition(cost[i], k - 1)[:k]
                for j in cand:
                    arcs.append((i, int(j), float(cost[i, j])))
                if prev_sites is not None and prev_sites[i] >= 0:
                    arcs.append((i, int(prev_sites[i]), float(cost[i, prev_sites[i]])))
            try:
                assignment = min_cost_assignment(n, m, arcs)
                break
            except SolverInfeasibleError:
                if k >= m:
                    raise
                k = min(m, k * 2)  # widen the candidate windows and retry
        out = np.empty(n, dtype=np.int64)
        for i, j in assignment.items():
            out[i] = j
        return out

    def _solve_once(
        self,
        cost: np.ndarray,
        prev_sites: np.ndarray | None,
        guard: SolverGuard | None = None,
    ) -> np.ndarray:
        """One per-iterate solve with the deterministic engine fallback chain.

        A failing engine (e.g. the auction's non-convergence) degrades to
        the next engine in :func:`engine_chain` instead of killing the run;
        with a guard the fallback is recorded in its
        :class:`~repro.robustness.RunHealth` and the stage budget is
        enforced between attempts.
        """
        chain = engine_chain(self.config.engine)
        attempts = [
            (engine, lambda e=engine: self._solve_engine(e, cost, prev_sites))
            for engine in chain
        ]
        if guard is not None:
            _, sites = guard.run(attempts)
            return sites
        last: SolverError | None = None
        for _, thunk in attempts:
            try:
                return thunk()
            except SolverError as exc:
                last = exc
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    def objective(self, sites: np.ndarray, placement: Placement) -> float:
        """True eq. (7) objective of an assignment (not the linearization).

        Wirelength is evaluated with every datapath DSP moved to its
        assigned site (other cells at their placement coordinates); the
        angle term is λ·Σ(cos θ_pred − cos θ_succ) over DSP-graph edges and
        the cascade term charges η per non-adjacent cascade pair.
        """
        cfg = self.config
        pos = placement.xy
        new_xy = {cell: self.site_xy[sites[k]] for k, cell in enumerate(self.dsps)}

        def _pos(cell: int) -> np.ndarray:
            return new_xy.get(cell, pos[cell])

        in_dsps = {d: k for k, d in enumerate(self.dsps)}
        total = 0.0
        for k, cell in enumerate(self.dsps):
            idx, val = self._neighbors[k]
            p0 = new_xy[cell]
            for j, w in zip(idx, val):
                d = p0 - _pos(int(j))
                term = w * float(d @ d)
                # dsp-dsp pairs appear from both endpoints: halve
                total += term / 2.0 if int(j) in in_dsps else term
        total *= cfg.wl_scale
        cos = self._site_cos
        for k in range(len(self.dsps)):
            total += self._angle_coef[k] * cos[sites[k]]
        if cfg.eta > 0:
            for kp, ks in self._pairs:
                adjacent = (
                    sites[ks] == sites[kp] + 1
                    and self._site_col[sites[ks]] == self._site_col[sites[kp]]
                )
                if not adjacent:
                    total += cfg.eta
        return total

    def solve(
        self, placement: Placement, guard: SolverGuard | None = None
    ) -> tuple[dict[int, int], int]:
        """Run the linearization loop from the current placement.

        Returns ``({dsp_cell_index: dsp_site_id}, iterations_used)``. The
        placement's coordinates are updated to the assigned sites (callers
        still must run cascade legalization — the η term is soft).

        With a ``guard``, every per-iterate solve runs under its fallback
        chain and the loop honours the stage's wall-clock budget: once the
        budget is exhausted the best-so-far assignment is returned (or, if
        there is none yet, :class:`~repro.errors.StageBudgetExceeded` is
        raised).
        """
        cfg = self.config
        place = placement
        prev_sites: np.ndarray | None = None
        best_sites: np.ndarray | None = None
        best_cost = np.inf
        seen: set[bytes] = set()
        iters = 0
        stale = 0
        for iters in range(1, cfg.max_iterations + 1):
            if guard is not None and guard.over_budget:
                if best_sites is not None:
                    guard.note_budget(
                        f"budget exhausted after {iters - 1} linearization "
                        "iterate(s); returning best-so-far assignment"
                    )
                    break
                guard.check_budget()  # no iterate finished: raises
            with trace.span("assignment.iterate", i=iters) as it_sp:
                cost = self.cost_matrix(place, prev_sites)
                sites = self._solve_once(cost, prev_sites, guard)
                true_obj = self.objective(sites, placement)
                it_sp.set(objective=true_obj)
            metrics.inc("assignment.iterates")
            metrics.observe("assignment.objective", true_obj)
            if true_obj < best_cost - 1e-9:
                best_cost = true_obj
                best_sites = sites
                stale = 0
            else:
                stale += 1
            key = sites.tobytes()
            if (
                (prev_sites is not None and np.array_equal(sites, prev_sites))
                or key in seen
                or stale >= cfg.patience
            ):
                break  # converged, cycled, or stopped improving
            seen.add(key)
            prev_sites = sites
            for k, cell in enumerate(self.dsps):
                place.xy[cell] = self.site_xy[sites[k]]
        for k, cell in enumerate(self.dsps):
            place.xy[cell] = self.site_xy[best_sites[k]]
        result = {cell: int(best_sites[k]) for k, cell in enumerate(self.dsps)}
        return result, iters
