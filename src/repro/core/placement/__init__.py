"""Datapath-driven DSP placement (paper Section IV)."""

from repro.core.placement.assignment import AssignmentConfig, DatapathDSPAssigner
from repro.core.placement.legalization import CascadeLegalizer, LegalizationResult
from repro.core.placement.incremental import replace_other_components

__all__ = [
    "AssignmentConfig",
    "DatapathDSPAssigner",
    "CascadeLegalizer",
    "LegalizationResult",
    "replace_other_components",
]
