"""ILP-based cascade legalization (paper Section IV-B, Fig. 5(b)).

The soft η-penalty of the MCF stage does not guarantee that cascade macros
occupy consecutive rows of one column; this stage enforces it exactly:

1. **inter-column ILP** (eq. 10): each entity — a whole cascade macro
   (constraint 10b forces its members into one column, so the macro is one
   decision variable) or a single DSP — is assigned to a column, minimizing
   horizontal displacement under column capacities. Solved with this repo's
   branch-and-bound ILP; a greedy fallback covers node-limit blowups.
2. **intra-column legalization** (eq. 11): per column, entities become
   rigid :class:`~repro.solvers.isotonic.ColumnBlock`s ordered by desired
   vertical position (macros by their mean y, per the paper), and the exact
   DP of :func:`~repro.solvers.isotonic.legalize_column_rows` minimizes
   total vertical displacement with cascade pairs adjacent (11a) and no
   overlaps (11b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LegalizationError, SolverConvergenceError, SolverError
from repro.fpga.device import Device
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.robustness.faults import maybe_fault
from repro.robustness.guard import SolverGuard
from repro.solvers.ilp import solve_ilp
from repro.solvers.isotonic import ColumnBlock, legalize_column_rows


@dataclass(frozen=True)
class _Entity:
    """One inter-column decision unit: a macro chain or a single DSP."""

    cells: tuple[int, ...]  # bottom-to-top order for macros
    x: float
    ys: tuple[float, ...]

    @property
    def size(self) -> int:
        return len(self.cells)

    @property
    def y_mean(self) -> float:
        return float(np.mean(self.ys))


@dataclass
class LegalizationResult:
    """Outcome of cascade legalization."""

    site_of: dict[int, int]  # dsp cell index -> DSP site id
    total_displacement_um: float
    used_ilp: bool
    ilp_nodes: int


class CascadeLegalizer:
    """Legalizes a set of DSPs (desired coordinates → legal cascade sites)."""

    def __init__(self, netlist: Netlist, device: Device, max_ilp_nodes: int = 20_000) -> None:
        self.netlist = netlist
        self.device = device
        self.max_ilp_nodes = max_ilp_nodes

    # ------------------------------------------------------------------
    def legalize(
        self,
        desired_xy: dict[int, tuple[float, float]],
        guard: SolverGuard | None = None,
    ) -> LegalizationResult:
        """Place every DSP in ``desired_xy`` onto legal sites.

        Macros whose members all appear in ``desired_xy`` are kept as rigid
        chains; all listed DSPs (datapath and control alike) compete for
        the same columns, so the result is overlap-free. With a ``guard``
        the ILP → greedy inter-column fallback is recorded in its
        :class:`~repro.robustness.RunHealth` and the stage budget applies.
        """
        entities = self._build_entities(desired_xy)
        cols = self.device.kind_columns("DSP")
        caps = [c.n_sites for c in cols]
        if sum(e.size for e in entities) > sum(caps):
            raise LegalizationError("more DSPs than device DSP sites")
        metrics.gauge("legalization.entities", len(entities))

        with trace.span("legalization.inter_column", n_entities=len(entities)) as ic_sp:
            col_of, used_ilp, ilp_nodes = self._inter_column(entities, cols, caps, guard)
            ic_sp.set(used_ilp=used_ilp, ilp_nodes=ilp_nodes)
        metrics.inc("legalization.ilp_used" if used_ilp else "legalization.greedy_used")
        site_of: dict[int, int] = {}
        total_disp = 0.0
        with trace.span("legalization.intra_column") as col_sp:
            n_used = 0
            for j in range(len(cols)):
                members = [e for e, cj in zip(entities, col_of) if cj == j]
                if not members:
                    continue
                n_used += 1
                total_disp += self._intra_column(members, j, site_of)
            col_sp.set(n_columns=n_used)
        # horizontal displacement component
        for e, cj in zip(entities, col_of):
            total_disp += abs(cols[cj].x - e.x) * e.size
        metrics.observe("legalization.displacement_um", total_disp)
        return LegalizationResult(
            site_of=site_of,
            total_displacement_um=total_disp,
            used_ilp=used_ilp,
            ilp_nodes=ilp_nodes,
        )

    # ------------------------------------------------------------------
    def _build_entities(self, desired_xy: dict[int, tuple[float, float]]) -> list[_Entity]:
        covered: set[int] = set()
        entities: list[_Entity] = []
        for macro in self.netlist.macros:
            if all(i in desired_xy for i in macro.dsps):
                xs = [desired_xy[i][0] for i in macro.dsps]
                ys = [desired_xy[i][1] for i in macro.dsps]
                entities.append(
                    _Entity(cells=tuple(macro.dsps), x=float(np.mean(xs)), ys=tuple(ys))
                )
                covered.update(macro.dsps)
        for idx, (x, y) in desired_xy.items():
            if idx not in covered:
                entities.append(_Entity(cells=(idx,), x=float(x), ys=(float(y),)))
        return entities

    # ------------------------------------------------------------------
    def _inter_column(
        self,
        entities: list[_Entity],
        cols,
        caps: list[int],
        guard: SolverGuard | None = None,
    ) -> tuple[list[int], bool, int]:
        n, ncol = len(entities), len(cols)
        col_x = np.array([c.x for c in cols])
        sizes = np.array([e.size for e in entities], dtype=np.float64)
        ilp_nodes = 0

        def _ilp() -> list[int]:
            nonlocal ilp_nodes
            maybe_fault("legalization.ilp")
            disp = np.abs(np.array([e.x for e in entities])[:, None] - col_x[None, :])
            cost = (disp * sizes[:, None]).ravel()  # D_col(i, j) (eq. 10)
            # Σ_j t_ij = 1 per entity
            a_eq = np.zeros((n, n * ncol))
            for i in range(n):
                a_eq[i, i * ncol : (i + 1) * ncol] = 1.0
            b_eq = np.ones(n)
            # Σ_i size_i · t_ij ≤ M_j per column
            a_ub = np.zeros((ncol, n * ncol))
            for j in range(ncol):
                a_ub[j, j::ncol] = sizes
            b_ub = np.array(caps, dtype=np.float64)
            res = solve_ilp(
                cost,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=[(0.0, 1.0)] * (n * ncol),
                max_nodes=self.max_ilp_nodes,
            )
            ilp_nodes = res.n_nodes
            if not res.ok:
                raise SolverConvergenceError(
                    f"inter-column ILP gave up ({res.status}) after "
                    f"{res.n_nodes} of {self.max_ilp_nodes} nodes"
                )
            x = res.x.reshape(n, ncol)
            return [int(np.argmax(row)) for row in x]

        def _greedy() -> list[int]:
            # biggest entities first, nearest column with room
            maybe_fault("legalization.greedy")
            order = sorted(range(n), key=lambda i: -entities[i].size)
            free = list(caps)
            col_of = [0] * n
            for i in order:
                ranked = np.argsort(np.abs(col_x - entities[i].x))
                for j in ranked:
                    if free[j] >= entities[i].size:
                        free[j] -= entities[i].size
                        col_of[i] = int(j)
                        break
                else:
                    raise LegalizationError(
                        "greedy inter-column fallback failed to fit entities"
                    )
            return col_of

        attempts = [("ilp", _ilp), ("greedy", _greedy)]
        if guard is not None:
            name, col_of = guard.run(attempts)
            return col_of, name == "ilp", ilp_nodes
        try:
            return _ilp(), True, ilp_nodes
        except SolverError:
            return _greedy(), False, ilp_nodes

    # ------------------------------------------------------------------
    def _intra_column(self, members: list[_Entity], col_j: int, site_of: dict[int, int]) -> float:
        """Exact eq. (11) solve for one column; fills ``site_of``."""
        col = self.device.kind_columns("DSP")[col_j]
        ids = self.device.column_site_ids("DSP", col_j)
        ys = col.ys
        pitch = float(ys[1] - ys[0]) if len(ys) > 1 else 1.0
        y0 = float(ys[0])

        members = sorted(members, key=lambda e: e.y_mean)  # paper's ordering
        blocks = []
        for e in members:
            targets = tuple((y - y0) / pitch for y in e.ys)
            blocks.append(ColumnBlock(targets=targets))
        starts = legalize_column_rows(blocks, len(ids))
        disp = 0.0
        for e, start in zip(members, starts):
            for k, cell in enumerate(e.cells):
                row = start + k
                site_of[cell] = ids[row]
                disp += abs(ys[row] - e.ys[k])
        return disp
