"""The DSPlacer facade (paper Fig. 2).

Ties the full flow together:

1. **prototype placement** — an off-the-shelf placer (the Vivado-like or
   AMF-like baseline) places everything;
2. **datapath DSP extraction** — node features + classifier identify the
   datapath DSPs; IDDFS builds the DSP graph; control DSPs are pruned;
3. **datapath-driven DSP placement** — iterate: linearized MCF assignment
   (λ datapath-angle, η cascade penalties) → ILP inter-column + exact
   intra-column cascade legalization → freeze the datapath DSPs and
   re-place the other components (Fig. 6 alternation);
4. emit the final placement; routing/STA are the caller's (see
   :mod:`repro.eval`), matching the paper's use of external PnR.

Run under :func:`repro.obs.observe` the flow emits a full span tree
(``place`` → ``place.prototype`` / ``place.extraction`` / per-iteration
``place.outer`` → ``place.assignment`` / ``place.legalization`` /
``place.incremental``) and attaches the :class:`~repro.obs.RunReport`
snapshot to ``result.report``.

Example:
    >>> from repro.fpga import small_device
    >>> from repro.accelgen import generate_suite
    >>> from repro.core import DSPlacer
    >>> dev = small_device()
    >>> netlist = generate_suite("ismartdnn", scale=0.02, device=dev)
    >>> result = DSPlacer(dev).place(netlist)
    >>> result.placement.is_legal()
    True
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, fields
from typing import get_type_hints

import numpy as np

from repro.core.extraction.dsp_graph import build_dsp_graph, prune_control_dsps
from repro.core.extraction.iddfs import iddfs_dsp_paths
from repro.core.extraction.identification import (
    DatapathIdentifier,
    IdentificationResult,
)
from repro.core.placement.assignment import AssignmentConfig, DatapathDSPAssigner
from repro.core.placement.incremental import replace_other_components
from repro.core.placement.legalization import CascadeLegalizer
from repro.errors import ConfigurationError, NetlistValidationError, ReproError
from repro.fpga.device import Device
from repro.ml.train import GraphSample
from repro.netlist.netlist import Netlist
from repro.netlist.validate import netlist_problems
from repro.obs import active as obs_active
from repro.obs import metrics, trace
from repro.obs.report import RunReport
from repro.placers.amf_like import AMFLikePlacer
from repro.placers.placement import Placement
from repro.placers.vivado_like import VivadoLikePlacer
from repro.robustness import RunHealth, SolverGuard, maybe_fault


@dataclass(frozen=True)
class DSPlacerConfig:
    """DSPlacer knobs (paper defaults where stated).

    Attributes:
        identification: Classifier used when no trained identifier is
            passed to :class:`DSPlacer` — ``"heuristic"`` (training-free
            storage rule) or ``"oracle"``. The paper's GCN requires
            training, so pass a fitted
            :class:`~repro.core.extraction.DatapathIdentifier` instead.
        lam: Datapath-angle trade-off λ (paper: 100).
        eta: Cascade penalty η.
        mcf_iterations: Internal MCF linearization iterations (paper: 50;
            the loop stops early on convergence).
        outer_iterations: Fig. 6 alternations between DSP placement and
            other-component placement.
    """

    identification: str = "heuristic"
    base_placer: str = "vivado"
    lam: float = 100.0
    eta: float = 25.0
    candidate_k: int = 48
    mcf_iterations: int = 50
    outer_iterations: int = 2
    iddfs_max_depth: int = 6
    #: Per-iterate assignment solver. "mcf" = this repo's successive-
    #: shortest-paths min-cost flow (the paper's formulation, solved by
    #: LEMON's C++ network simplex there); "lsa" = scipy's Hungarian;
    #: "auction" = this repo's vectorized ε-auction (ε-optimal; degrades to
    #: price wars on near-tied dense rows, so not the default). All solve
    #: the same linearized assignment — cross-checked in the tests — and
    #: "auto" picks mcf for small instances and lsa above 64 datapath DSPs,
    #: standing in for LEMON's C++ speed.
    assignment_engine: str = "auto"
    #: > 0 enables the congestion-aware extension: DSP sites in overloaded
    #: routing bins are surcharged during assignment (see
    #: :class:`~repro.core.placement.AssignmentConfig`).
    congestion_weight: float = 0.0
    #: enables the timing-driven extension: before each outer iteration an
    #: STA required-time pass computes per-cell slacks and the assignment
    #: pulls DSPs harder toward neighbours on failing paths.
    timing_driven: bool = False
    #: clock-skew model for STA and the skew-aware assignment term:
    #: "region" (historical per-clock-region penalty, the default),
    #: "htree" (per-sink arrivals from a synthesized H-tree — reuses the
    #: device's attached clock tree when one exists), or "zero" (ideal
    #: clock). See :mod:`repro.clock`.
    skew_model: str = "region"
    #: > 0 enables the skew-aware assignment term: DSP sites whose clock
    #: arrival strays from the weighted-mean arrival of the DSP's
    #: neighbours are surcharged. Only effective with ``skew_model="htree"``
    #: (the other models expose no per-point arrivals).
    skew_weight: float = 0.0
    seed: int = 0
    #: strict mode: stage failures, budget overruns and validation problems
    #: raise their typed :class:`~repro.errors.ReproError` instead of
    #: degrading gracefully to the last-good placement.
    strict: bool = False
    #: wall-clock budget (seconds) for each assignment / legalization stage
    #: invocation; ``None`` disables budgets. Cooperative: checked between
    #: solver attempts and linearization iterates, never preemptive.
    stage_budget_s: float | None = None

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical plain-dict view of every knob.

        Canonical means: **every** field present (defaults filled), keys
        sorted, and values coerced to the field's declared type — so
        ``from_dict({"lam": 100})`` (an int) and the default ``lam=100.0``
        serialize identically. The serve result cache hashes this form
        (:meth:`content_hash`); equivalent configs must collide there.
        Round-trips via :meth:`from_dict`.
        """
        hints = get_type_hints(type(self))
        doc: dict = {}
        for f in fields(self):
            v = getattr(self, f.name)
            t = hints.get(f.name)
            if v is not None:
                if t is bool:
                    v = bool(v)
                elif t is int:
                    v = int(v)
                elif t is float or t == float | None:
                    v = float(v)
                elif t is str:
                    v = str(v)
            doc[f.name] = v
        return dict(sorted(doc.items()))

    def canonical_json(self) -> str:
        """Deterministic JSON of :meth:`to_dict` (sorted keys, no spaces)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the cache-key config part."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, doc: dict) -> "DSPlacerConfig":
        """Build a config from a plain dict, rejecting unknown keys.

        Raises:
            ConfigurationError: If ``doc`` is not a mapping or contains a
                key that is not a :class:`DSPlacerConfig` field — typo
                protection for ``--config`` files.
        """
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"DSPlacer config must be a JSON object, got {type(doc).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                "unknown DSPlacer config key(s): "
                + ", ".join(repr(k) for k in unknown)
                + f"; known keys: {', '.join(sorted(known))}"
            )
        return cls(**doc)


@dataclass
class DSPlacerResult:
    """Everything DSPlacer produced, plus profiling for Fig. 8."""

    placement: Placement
    identification: IdentificationResult
    n_datapath_dsps: int
    dsp_graph_nodes: int
    dsp_graph_edges: int
    mcf_iterations_used: list[int] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: incident log of the resilience layer; ``health.degraded`` is True
    #: when a stage failure/budget/rollback affected the result.
    health: RunHealth = field(default_factory=RunHealth)
    #: span/metric snapshot, attached when the run executed under an active
    #: :func:`repro.obs.observe` block; ``None`` otherwise.
    report: RunReport | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def to_report(self, meta: dict | None = None) -> RunReport:
        """This result as a :class:`~repro.obs.RunReport`.

        Uses the attached observation snapshot when the run was traced;
        otherwise synthesizes a minimal span tree from
        :attr:`phase_seconds` so consumers see one uniform schema either
        way.
        """
        if self.report is not None:
            if meta:
                self.report.meta.update(meta)
            return self.report
        spans = [
            {
                "name": "place",
                "attrs": {"synthesized": True},
                "counters": {},
                "wall_s": float(self.total_seconds),
                "cpu_s": 0.0,
                "children": [
                    {
                        "name": f"place.{name}",
                        "attrs": {},
                        "counters": {},
                        "wall_s": float(secs),
                        "cpu_s": 0.0,
                        "children": [],
                    }
                    for name, secs in self.phase_seconds.items()
                ],
            }
        ]
        gauges = {
            "extraction.datapath_dsps": float(self.n_datapath_dsps),
            "extraction.dsp_graph_nodes": float(self.dsp_graph_nodes),
            "extraction.dsp_graph_edges": float(self.dsp_graph_edges),
        }
        return RunReport(
            meta=dict(meta or {}),
            spans=spans,
            metrics={"counters": {}, "gauges": gauges, "histograms": {}},
            health=self.health.to_dict(),
            quality=self._quality(),
        )

    def to_dict(self, meta: dict | None = None) -> dict:
        """JSON-ready view of the result (the RunReport document)."""
        return self.to_report(meta=meta).to_dict()

    def _quality(self) -> dict:
        return {
            "legal": bool(self.placement.is_legal()),
            "hpwl_um": float(self.placement.hpwl()),
            "n_datapath_dsps": int(self.n_datapath_dsps),
            "dsp_graph_nodes": int(self.dsp_graph_nodes),
            "dsp_graph_edges": int(self.dsp_graph_edges),
        }


class DSPlacer:
    """Datapath-driven DSP placement framework for CNN accelerators."""

    def __init__(
        self,
        device: Device,
        config: DSPlacerConfig | None = None,
        identifier: DatapathIdentifier | None = None,
    ) -> None:
        self.device = device
        self.config = config or DSPlacerConfig()
        self._cancel_requested = False
        self.identifier = identifier or DatapathIdentifier(
            method=self.config.identification, seed=self.config.seed
        )
        if self.identifier.method in ("gcn", "svm") and identifier is None:
            raise ConfigurationError(
                f"{self.identifier.method!r} identification needs a trained "
                "DatapathIdentifier passed in (see repro.eval.experiments for "
                "the leave-one-out training protocol)"
            )

    def _skew_model_obj(self):
        """The configured :class:`~repro.clock.SkewModel` over this device."""
        from repro.clock import get_skew_model

        return get_skew_model(self.config.skew_model, self.device)

    def _base_placer(self):
        if self.config.base_placer == "vivado":
            return VivadoLikePlacer(seed=self.config.seed, device=self.device)
        if self.config.base_placer == "amf":
            return AMFLikePlacer(seed=self.config.seed, device=self.device)
        raise ConfigurationError(f"unknown base placer {self.config.base_placer!r}")

    def as_placer(self):
        """This engine behind the unified :class:`~repro.placers.api.Placer`
        protocol (``place(netlist, *, seed=...) -> Placement``)."""
        from repro.placers.api import DSPlacerAdapter

        return DSPlacerAdapter(self)

    def request_cancel(self) -> None:
        """Ask the in-flight (or next) :meth:`place` to stop early.

        Cooperative, like the stage budgets: the flow checks the flag at
        each outer-iteration boundary, keeps the best-so-far legal
        placement, records a ``cancelled`` health event and returns. The
        flag is consumed by the run that honours it.
        """
        self._cancel_requested = True

    # ------------------------------------------------------------------
    def place(
        self,
        netlist: Netlist,
        initial_placement: Placement | None = None,
        sample: GraphSample | None = None,
    ) -> DSPlacerResult:
        """Run the full Fig. 2 flow on a netlist.

        Args:
            initial_placement: Skip the prototype stage and start from this
                legal placement.
            sample: Pre-computed features/graph for the identifier (avoids
                recomputing features when the caller already has them).

        Returns:
            :class:`DSPlacerResult` with a fully legal placement. Under the
            default permissive mode, stage failures / budget overruns roll
            the run back to the best-so-far legal placement and set
            ``result.health.degraded`` instead of raising; with
            ``DSPlacerConfig(strict=True)`` the typed
            :class:`~repro.errors.ReproError` propagates.
        """
        cfg = self.config
        with trace.span(
            "place",
            netlist=netlist.name,
            base_placer=cfg.base_placer,
            engine=cfg.assignment_engine,
        ) as root:
            result = self._place_flow(netlist, initial_placement, sample)
            root.set(degraded=result.health.degraded)
        ob = obs_active()
        if ob is not None:
            metrics.gauge("placement.hpwl_um", float(result.placement.hpwl()))
            result.report = ob.report(
                meta={
                    "tool": "dsplacer",
                    "netlist": netlist.name,
                    "config": cfg.to_dict(),
                },
                health=result.health.to_dict(),
                quality=result._quality(),
            )
            if cfg.skew_model != "region" or cfg.skew_weight > 0:
                # non-default clocking: record the versioned clock section
                # (schema v3) — default runs keep their historical report
                from repro.clock import clock_report_section

                result.report.clock = clock_report_section(
                    self._skew_model_obj(), result.placement, netlist
                )
        return result

    def _place_flow(
        self,
        netlist: Netlist,
        initial_placement: Placement | None,
        sample: GraphSample | None,
    ) -> DSPlacerResult:
        cfg = self.config
        phases: dict[str, float] = {}
        health = RunHealth()

        # 0. input validation (strict raises; permissive downgrades)
        problems = netlist_problems(netlist, self.device)
        if problems:
            if cfg.strict:
                raise NetlistValidationError(
                    f"netlist {netlist.name!r} failed validation "
                    f"({len(problems)} problem(s)):\n"
                    + "\n".join(f"  - {p}" for p in problems)
                )
            for p in problems:
                health.warn("validation", p)

        # 1. prototype placement
        t0 = time.perf_counter()
        maybe_fault("prototype")
        with trace.span("place.prototype"):
            if initial_placement is None:
                placement = self._base_placer().place(netlist)
            else:
                placement = initial_placement.copy()
        phases["prototype_placement"] = time.perf_counter() - t0

        # 2. datapath DSP extraction
        t0 = time.perf_counter()
        with trace.span("place.extraction") as ext_sp:
            ident = self.identifier.predict(netlist, sample=sample)
            # cascade macros are placement-atomic: harmonize the classifier's
            # per-DSP labels over each chain (majority vote) so a chain is
            # either fully datapath or fully control
            flags = dict(ident.flags)
            for macro in netlist.macros:
                votes = sum(1 for i in macro.dsps if flags.get(i, False))
                verdict = 2 * votes >= len(macro.dsps)
                for i in macro.dsps:
                    flags[i] = verdict
            paths = iddfs_dsp_paths(netlist, max_depth=cfg.iddfs_max_depth)
            with trace.span("extraction.dsp_graph"):
                dsp_graph = build_dsp_graph(netlist, paths)
                datapath_graph = prune_control_dsps(dsp_graph, flags)
            datapath_dsps = sorted(datapath_graph.nodes)
            ext_sp.set(n_datapath_dsps=len(datapath_dsps))
        metrics.gauge("extraction.datapath_dsps", len(datapath_dsps))
        metrics.gauge("extraction.dsp_graph_nodes", dsp_graph.number_of_nodes())
        metrics.gauge("extraction.dsp_graph_edges", dsp_graph.number_of_edges())
        phases["datapath_extraction"] = time.perf_counter() - t0

        result = DSPlacerResult(
            placement=placement,
            identification=ident,
            n_datapath_dsps=len(datapath_dsps),
            dsp_graph_nodes=dsp_graph.number_of_nodes(),
            dsp_graph_edges=dsp_graph.number_of_edges(),
            health=health,
        )
        if not datapath_dsps:
            phases["dsp_placement"] = 0.0
            phases["other_placement"] = 0.0
            result.phase_seconds = phases
            return result

        engine = cfg.assignment_engine
        if engine == "auto":
            engine = "mcf" if len(datapath_dsps) <= 64 else "lsa"
        skew = self._skew_model_obj()
        assigner = DatapathDSPAssigner(
            netlist,
            self.device,
            datapath_graph,
            datapath_dsps,
            AssignmentConfig(
                lam=cfg.lam,
                eta=cfg.eta,
                candidate_k=cfg.candidate_k,
                max_iterations=cfg.mcf_iterations,
                engine=engine,
                congestion_weight=cfg.congestion_weight,
                skew_weight=cfg.skew_weight,
                seed=cfg.seed,
            ),
            skew_model=skew,
        )
        legalizer = CascadeLegalizer(netlist, self.device)
        site_xy = self.device.site_xy("DSP")
        t_dsp = 0.0
        t_other = 0.0

        # checkpoint: best-so-far legal placement by HPWL (the rollback
        # target on stage failure / budget overrun / final regression)
        best: Placement | None = None
        best_hpwl = np.inf
        if placement.is_legal():
            best = placement.copy()
            best_hpwl = placement.hpwl()

        # 3. incremental datapath-driven placement (Fig. 6)
        sta = None
        if cfg.timing_driven and netlist.target_freq_mhz:
            from repro.timing.sta import StaticTimingAnalyzer

            sta = StaticTimingAnalyzer(netlist, skew_model=skew)
        for outer in range(1, cfg.outer_iterations + 1):
            if self._cancel_requested:
                self._cancel_requested = False
                health.record(
                    "pipeline",
                    "cancelled",
                    f"cancellation requested before outer iteration {outer}; "
                    "keeping best-so-far placement",
                )
                health.degraded = True
                if best is not None:
                    placement = best.copy()
                break
            budget_hit = False
            with trace.span("place.outer", i=outer):
                try:
                    t0 = time.perf_counter()
                    if cfg.congestion_weight > 0:
                        from repro.router.global_router import GlobalRouter

                        assigner.set_congestion_map(
                            GlobalRouter().route(placement).congestion
                        )
                    if sta is not None:
                        period = 1e3 / netlist.target_freq_mhz
                        report = sta.analyze(
                            placement, period_ns=period, with_slacks=True
                        )
                        assigner.set_criticality(report.cell_output_slack, period)
                    assign_guard = SolverGuard("assignment", health, cfg.stage_budget_s)
                    with trace.span("place.assignment"):
                        assignment, iters = assigner.solve(placement, guard=assign_guard)
                    result.mcf_iterations_used.append(iters)
                    desired = {
                        cell: tuple(site_xy[sid]) for cell, sid in assignment.items()
                    }
                    # control DSPs join legalization at their current coordinates
                    # so the shared columns stay overlap-free
                    for i in netlist.dsp_indices():
                        if i not in desired:
                            desired[i] = (
                                float(placement.xy[i, 0]),
                                float(placement.xy[i, 1]),
                            )
                    legal_guard = SolverGuard("legalization", health, cfg.stage_budget_s)
                    with trace.span("place.legalization"):
                        legal = legalizer.legalize(desired, guard=legal_guard)
                        for cell, sid in legal.site_of.items():
                            placement.assign_site(cell, sid)
                    t_dsp += time.perf_counter() - t0
                    budget_hit = assign_guard.over_budget or legal_guard.over_budget

                    if not budget_hit:
                        t0 = time.perf_counter()
                        maybe_fault("incremental")
                        with trace.span("place.incremental"):
                            placement = replace_other_components(
                                netlist,
                                self.device,
                                placement,
                                datapath_dsps,
                                seed=cfg.seed,
                            )
                        t_other += time.perf_counter() - t0
                except ReproError as exc:
                    if cfg.strict or best is None:
                        raise
                    health.record(
                        "pipeline",
                        "rollback",
                        f"outer iteration {outer} failed ({exc}); rolled back to "
                        f"best-so-far placement (HPWL {best_hpwl:.4g})",
                    )
                    health.degraded = True
                    placement = best.copy()
                    break

            if placement.is_legal():
                hpwl = placement.hpwl()
                if hpwl < best_hpwl:
                    best = placement.copy()
                    best_hpwl = hpwl
            if budget_hit:
                # the stage budget truncated this iteration's work; stop
                # alternating and keep what is legal so far
                if cfg.strict:
                    assign_guard.check_budget()
                    legal_guard.check_budget()
                health.degraded = True
                break

        phases["dsp_placement"] = t_dsp
        phases["other_placement"] = t_other

        # final selection: never return worse than the checkpoint (strict
        # mode opts out and keeps the paper-faithful last iterate). The
        # HPWL-regression half of the guard only applies when wirelength is
        # the flow's sole objective — a skew-weighted run deliberately
        # trades HPWL for clock-tap alignment, and the wirelength yardstick
        # would revert every such trade.
        if best is not None and not cfg.strict:
            final_legal = placement.is_legal()
            final_hpwl = placement.hpwl() if final_legal else np.inf
            hpwl_is_objective = cfg.skew_weight == 0
            if not final_legal or (
                hpwl_is_objective and final_hpwl > best_hpwl * (1.0 + 1e-12)
            ):
                reason = (
                    f"final placement HPWL {final_hpwl:.4g} regressed past "
                    f"best-so-far {best_hpwl:.4g}"
                    if final_legal
                    else "final placement is not legal"
                )
                health.record("pipeline", "rollback", f"{reason}; rolled back")
                health.degraded = True
                placement = best.copy()

        result.placement = placement
        result.phase_seconds = phases
        return result
