"""Layout visualization (paper Fig. 9): SVG dumps + datapath-order metrics.

The SVG shows the device outline, the PS block, DSP/BRAM columns, every DSP
(datapath red, control amber), BRAMs (blue), and the datapath DSP-graph
edges as connecting lines — the same visual the paper uses to contrast the
"compact and regular" DSPlacer datapath against Vivado's scatter and AMF's
PS-disordered layout.

Because figures cannot be eyeballed in a test log, the module also computes
scalar *datapath-order metrics*: cascade-adjacency rate, mean datapath-edge
length, and the Spearman-style monotonicity of the PS angle along the
pipeline order — the quantitative content of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import networkx as nx
import numpy as np

from repro.netlist.cell import CellType
from repro.placers.placement import Placement


@dataclass(frozen=True)
class DatapathLayoutMetrics:
    """Quantified Fig. 9: how compact/ordered is the datapath?"""

    cascade_adjacent_frac: float  # fraction of cascade pairs on dedicated wiring
    mean_datapath_edge_um: float  # mean length of datapath DSP-graph edges
    angle_monotonicity: float  # −1..1; 1 = angles decrease along the pipeline
    dsp_bbox_area_frac: float  # datapath DSP bounding box / device area


def layout_metrics(placement: Placement, dsp_graph: nx.DiGraph) -> DatapathLayoutMetrics:
    """Compute the Fig. 9 order metrics for a placement."""
    nl, dev = placement.netlist, placement.device
    site_col = dev.site_col("DSP")

    pairs = nl.cascade_pairs()
    adjacent = 0
    for p, s in pairs:
        sp, ss = int(placement.site[p]), int(placement.site[s])
        if sp >= 0 and ss == sp + 1 and site_col[sp] == site_col[ss]:
            adjacent += 1
    adj_frac = adjacent / len(pairs) if pairs else 1.0

    lengths = []
    deltas = []
    for u, v, attrs in dsp_graph.edges(data=True):
        du = placement.xy[u] - placement.xy[v]
        lengths.append(abs(float(du[0])) + abs(float(du[1])))
        if attrs.get("cascade"):
            # intra-chain edges are vertical by legality; the PS-angle
            # ordering (eq. 6) is about the *dataflow between* chains
            continue
        cu = _ps_cos(placement, u)
        cv = _ps_cos(placement, v)
        deltas.append(np.sign(cv - cu))  # +1 when cos increases pred→succ
    mean_len = float(np.mean(lengths)) if lengths else 0.0
    monotonicity = float(np.mean(deltas)) if deltas else 0.0

    dp = [c.index for c in nl.cells if c.ctype.is_dsp and c.is_datapath]
    if dp:
        xs, ys = placement.xy[dp, 0], placement.xy[dp, 1]
        area = (xs.max() - xs.min()) * (ys.max() - ys.min())
        bbox_frac = float(area / (dev.width * dev.height))
    else:
        bbox_frac = 0.0
    return DatapathLayoutMetrics(
        cascade_adjacent_frac=adj_frac,
        mean_datapath_edge_um=mean_len,
        angle_monotonicity=monotonicity,
        dsp_bbox_area_frac=bbox_frac,
    )


def _ps_cos(placement: Placement, cell: int) -> float:
    x, y = placement.xy[cell]
    return float(x / max(np.hypot(x, y), 1e-9))


# ----------------------------------------------------------------------
_ROLE_COLORS = {
    "pe_dsp": "#d62728",
    "ctrl_dsp": "#ff9f1c",
    "act_buf": "#1f77b4",
    "wt_buf": "#4ba3d4",
    "out_buf": "#2ca02c",
}


def placement_to_svg(
    placement: Placement,
    dsp_graph: nx.DiGraph | None = None,
    path: str | Path | None = None,
    scale: float = 0.15,
    title: str = "",
) -> str:
    """Render a placement to SVG (returned; optionally written to ``path``)."""
    dev = placement.device
    w, h = dev.width * scale, dev.height * scale

    def sx(x: float) -> float:
        return x * scale

    def sy(y: float) -> float:
        return (dev.height - y) * scale  # SVG y grows downward

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" height="{h + 18:.0f}" '
        f'viewBox="0 0 {w:.0f} {h + 18:.0f}">',
        f'<rect x="0" y="18" width="{w:.0f}" height="{h:.0f}" fill="#fafafa" stroke="#444"/>',
        f'<text x="4" y="13" font-size="11" font-family="monospace">{title}</text>',
    ]
    # site columns
    for kind, color in (("DSP", "#f3c6c6"), ("BRAM", "#c6d8f3")):
        for col in dev.kind_columns(kind):
            parts.append(
                f'<rect x="{sx(col.x) - 1.5:.1f}" y="18" width="3" height="{h:.0f}" '
                f'fill="{color}"/>'
            )
    if dev.ps is not None:
        ps = dev.ps
        parts.append(
            f'<rect x="{sx(ps.x0):.1f}" y="{18 + sy(ps.y1):.1f}" '
            f'width="{sx(ps.x1 - ps.x0):.1f}" height="{(ps.y1 - ps.y0) * scale:.1f}" '
            f'fill="#d9d9d9" stroke="#777"/>'
        )
    # datapath edges
    if dsp_graph is not None:
        for u, v in dsp_graph.edges:
            x1, y1 = placement.xy[u]
            x2, y2 = placement.xy[v]
            parts.append(
                f'<line x1="{sx(x1):.1f}" y1="{18 + sy(y1):.1f}" x2="{sx(x2):.1f}" '
                f'y2="{18 + sy(y2):.1f}" stroke="#d62728" stroke-width="0.5" opacity="0.45"/>'
            )
    # cells
    for cell in placement.netlist.cells:
        if cell.ctype not in (CellType.DSP, CellType.BRAM):
            continue
        role = cell.attrs.get("role", "")
        color = _ROLE_COLORS.get(role, "#888888")
        x, y = placement.xy[cell.index]
        parts.append(
            f'<rect x="{sx(x) - 1.2:.1f}" y="{18 + sy(y) - 1.2:.1f}" width="2.4" '
            f'height="2.4" fill="{color}"/>'
        )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg
