"""Runtime profiling (paper Fig. 8): per-phase breakdown of a DSPlacer run."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Seconds and percentages per flow phase."""

    benchmark: str
    seconds: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    @property
    def percentages(self) -> dict[str, float]:
        total = max(self.total, 1e-12)
        return {k: 100.0 * v / total for k, v in self.seconds.items()}

    def rows(self) -> list[tuple[str, float, float]]:
        """(phase, seconds, pct) rows sorted by share, for table rendering."""
        pct = self.percentages
        return sorted(
            ((k, v, pct[k]) for k, v in self.seconds.items()),
            key=lambda r: -r[1],
        )
