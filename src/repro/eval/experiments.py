"""Experiment runners for every table and figure of the paper's Section V.

Scale protocol
    Full-scale placement/routing/STA of 100k-cell netlists is hours of pure
    Python, so experiments default to ``scale=0.25`` (set ``REPRO_SCALE=1``
    for full scale): benchmark resource budgets shrink by the scale factor
    and the device shrinks geometrically to keep utilization — DSP% is the
    quantity the paper sweeps — faithful to Table I.

Frequency protocol (paper Section V-C)
    "We first use Vivado for placement while progressively increasing the
    clock frequency for each benchmark until a negative WNS is observed. At
    the same frequency, DSPlacer is then employed." We implement exactly
    that: the evaluation clock of each suite is the Vivado-like baseline's
    f_max × (1 + margin), which makes the baseline's WNS slightly negative;
    AMF and DSPlacer are then evaluated at the same clock.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.accelgen import SUITE_NAMES, generate_suite, suite_config
from repro.core.dsplacer import DSPlacer, DSPlacerConfig
from repro.core.extraction.dsp_graph import build_dsp_graph, prune_control_dsps
from repro.core.extraction.features import FeatureConfig
from repro.core.extraction.iddfs import iddfs_dsp_paths
from repro.core.extraction.identification import (
    DatapathIdentifier,
    build_graph_sample,
)
from repro.eval.profiling import RuntimeBreakdown
from repro.eval.visualization import DatapathLayoutMetrics, layout_metrics, placement_to_svg
from repro.fpga.builders import scaled_zcu104, zcu104
from repro.ml.train import GraphSample, leave_one_out
from repro.netlist.netlist import Netlist
from repro.placers.amf_like import AMFLikePlacer
from repro.placers.placement import Placement
from repro.placers.vivado_like import VivadoLikePlacer
from repro.router.global_router import GlobalRouter
from repro.timing.sta import StaticTimingAnalyzer

TOOLS = ("vivado", "amf", "dsplacer")


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared experiment configuration."""

    scale: float = float(os.environ.get("REPRO_SCALE", "0.25"))
    suites: tuple[str, ...] = SUITE_NAMES
    identification: str = os.environ.get("REPRO_IDENT", "gcn")
    gcn_epochs: int = int(os.environ.get("REPRO_GCN_EPOCHS", "100"))
    freq_margin: float = 0.03
    feature_pivots: int = 32
    seed: int = 0


# ----------------------------------------------------------------------
# shared per-process cache (netlists and features are expensive)
# ----------------------------------------------------------------------
_CACHE: dict = {}


def _cached(key, builder):
    if key not in _CACHE:
        _CACHE[key] = builder()
    return _CACHE[key]


def _disk_cached(key, builder):
    """Pickle-backed cache for expensive artifacts (feature matrices,
    trained identification models). Controlled by ``REPRO_CACHE`` (set to
    ``0`` to disable) and ``REPRO_CACHE_DIR`` (default
    ``benchmarks/_cache`` next to this repo's benchmarks)."""
    if key in _CACHE:
        return _CACHE[key]
    if os.environ.get("REPRO_CACHE", "1") == "0":
        return _cached(key, builder)
    import hashlib
    import pathlib
    import pickle

    cache_dir = pathlib.Path(
        os.environ.get(
            "REPRO_CACHE_DIR",
            pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "_cache",
        )
    )
    cache_dir.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha1(repr(key).encode()).hexdigest()[:16]
    path = cache_dir / f"{key[0]}_{digest}.pkl"
    if path.exists():
        try:
            with path.open("rb") as fh:
                _CACHE[key] = pickle.load(fh)
            return _CACHE[key]
        except Exception:
            path.unlink(missing_ok=True)
    value = builder()
    _CACHE[key] = value
    try:
        with path.open("wb") as fh:
            pickle.dump(value, fh)
    except Exception:
        path.unlink(missing_ok=True)
    return value


def get_device(settings: ExperimentSettings):
    return _cached(("device", settings.scale), lambda: scaled_zcu104(settings.scale))


def get_netlist(settings: ExperimentSettings, suite: str) -> Netlist:
    return _cached(
        ("netlist", suite, settings.scale),
        lambda: generate_suite(suite, scale=settings.scale, device=get_device(settings)),
    )


def get_sample(settings: ExperimentSettings, suite: str) -> GraphSample:
    return _disk_cached(
        ("sample", suite, settings.scale, settings.feature_pivots),
        lambda: build_graph_sample(
            get_netlist(settings, suite),
            feature_config=FeatureConfig(n_pivots=settings.feature_pivots, seed=settings.seed),
        ),
    )


# ======================================================================
# Table I — benchmark details
# ======================================================================
def run_table1(settings: ExperimentSettings | None = None) -> list[dict]:
    """Generate all suites at FULL scale and report Table I's columns."""
    settings = settings or ExperimentSettings()
    device = _cached(("device", 1.0), zcu104)
    rows = []
    for suite in settings.suites:
        netlist = _cached(
            ("netlist", suite, 1.0), lambda s=suite: generate_suite(s, 1.0, device=device)
        )
        st = netlist.stats(device.n_dsp)
        rows.append(
            {
                "design": st.name,
                "lut": st.n_lut,
                "lutram": st.n_lutram,
                "ff": st.n_ff,
                "bram": st.n_bram,
                "dsp": st.n_dsp,
                "dsp_pct": round(100 * st.dsp_pct),
                "freq_mhz": st.target_freq_mhz,
            }
        )
    return rows


# ======================================================================
# Fig. 7 — datapath DSP identification (GCN vs SVM, leave-one-out)
# ======================================================================
@dataclass
class Fig7Result:
    """Fig. 7(a) accuracies and Fig. 7(b) curves, plus reusable models."""

    gcn_accuracy: dict[str, float]
    svm_accuracy: dict[str, float]
    train_curves: dict[str, list[float]]
    test_curves: dict[str, list[float]]
    identifiers: dict[str, DatapathIdentifier] = field(default_factory=dict)

    @property
    def gcn_mean(self) -> float:
        return float(np.mean(list(self.gcn_accuracy.values())))

    @property
    def svm_mean(self) -> float:
        return float(np.mean(list(self.svm_accuracy.values())))


def run_fig7(settings: ExperimentSettings | None = None) -> Fig7Result:
    """Leave-one-out identification across the suites (paper Section V-B)."""
    settings = settings or ExperimentSettings()

    def build() -> Fig7Result:
        samples = [get_sample(settings, s) for s in settings.suites]
        loo = leave_one_out(samples, epochs=settings.gcn_epochs, seed=settings.seed)
        gcn_acc, curves_tr, curves_te, identifiers = {}, {}, {}, {}
        for name, result in loo.items():
            gcn_acc[name] = result.final_test_accuracy
            curves_tr[name] = result.train_curve
            curves_te[name] = result.test_curve
            ident = DatapathIdentifier(method="gcn", seed=settings.seed)
            ident._gcn = result
            identifiers[name] = ident
        svm_acc = {}
        for i, suite in enumerate(settings.suites):
            train = [s for j, s in enumerate(samples) if j != i]
            svm = DatapathIdentifier(method="svm", seed=settings.seed).fit(train)
            res = svm.predict(get_netlist(settings, suite), sample=samples[i])
            svm_acc[samples[i].name] = res.accuracy
        return Fig7Result(
            gcn_accuracy=gcn_acc,
            svm_accuracy=svm_acc,
            train_curves=curves_tr,
            test_curves=curves_te,
            identifiers=identifiers,
        )

    return _disk_cached(("fig7", settings.scale, settings.gcn_epochs), build)


def _identifier_for(settings: ExperimentSettings, suite: str) -> DatapathIdentifier:
    """The identifier DSPlacer uses for one suite under the settings."""
    method = settings.identification
    if method in ("oracle", "heuristic"):
        return DatapathIdentifier(method=method, seed=settings.seed)
    if method == "gcn":
        fig7 = run_fig7(settings)
        sample_name = get_sample(settings, suite).name
        return fig7.identifiers[sample_name]
    raise ValueError(f"unsupported identification {method!r} for placement runs")


# ======================================================================
# Table II — placement performance comparison
# ======================================================================
@dataclass
class ToolRow:
    """One (benchmark, tool) result row."""

    benchmark: str
    tool: str
    wns_ns: float
    tns_ns: float
    hpwl_um: float
    routed_wl_um: float
    runtime_s: float
    eval_freq_mhz: float
    placement: Placement | None = None


@dataclass
class Table2Result:
    """All rows + the paper's "Normalize" ratios (vs. DSPlacer = 1.0)."""

    rows: list[ToolRow]

    def tool_rows(self, tool: str) -> list[ToolRow]:
        return [r for r in self.rows if r.tool == tool]

    def normalize(self) -> dict[str, dict[str, float]]:
        """Per-tool ratios against DSPlacer (>1 ⇒ worse, as in Table II).

        WNS is normalized through the worst path delay (period − WNS), TNS
        through 1+|TNS| (both are scale-free and sign-safe); HPWL and
        runtime are plain sums.
        """
        out: dict[str, dict[str, float]] = {}
        ref = {r.benchmark: r for r in self.tool_rows("dsplacer")}
        for tool in TOOLS:
            wns_r, tns_r, hp, rt, hp_ref, rt_ref = [], [], 0.0, 0.0, 0.0, 0.0
            for r in self.tool_rows(tool):
                b = ref[r.benchmark]
                period = 1e3 / r.eval_freq_mhz
                wns_r.append((period - r.wns_ns) / (period - b.wns_ns))
                tns_r.append((1.0 + abs(r.tns_ns)) / (1.0 + abs(b.tns_ns)))
                hp += r.hpwl_um
                rt += r.runtime_s
                hp_ref += b.hpwl_um
                rt_ref += b.runtime_s
            out[tool] = {
                "wns": float(np.mean(wns_r)),
                "tns": float(np.mean(tns_r)),
                "hpwl": hp / hp_ref,
                "runtime": rt / rt_ref,
            }
        return out


def run_suite_tool(
    settings: ExperimentSettings, suite: str, tool: str
) -> tuple[Placement, float, dict[str, float]]:
    """Place one suite with one tool; returns (placement, seconds, phases)."""
    device = get_device(settings)
    netlist = get_netlist(settings, suite)
    t0 = time.perf_counter()
    phases: dict[str, float] = {}
    if tool == "vivado":
        placement = VivadoLikePlacer(seed=settings.seed, device=device).place(netlist)
    elif tool == "amf":
        placement = AMFLikePlacer(seed=settings.seed, device=device).place(netlist)
    elif tool == "dsplacer":
        identifier = _identifier_for(settings, suite)
        placer = DSPlacer(
            device,
            DSPlacerConfig(seed=settings.seed),
            identifier=identifier,
        )
        result = placer.place(netlist, sample=get_sample(settings, suite))
        placement = result.placement
        phases = dict(result.phase_seconds)
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return placement, time.perf_counter() - t0, phases


def run_table2(settings: ExperimentSettings | None = None) -> Table2Result:
    """The paper's headline comparison (Table II)."""
    settings = settings or ExperimentSettings()

    def build() -> Table2Result:
        device = get_device(settings)
        router = GlobalRouter()
        rows: list[ToolRow] = []
        for suite in settings.suites:
            netlist = get_netlist(settings, suite)
            sta = StaticTimingAnalyzer(netlist)
            results: dict[str, tuple[Placement, float]] = {}
            for tool in TOOLS:
                placement, seconds, _ = run_suite_tool(settings, suite, tool)
                results[tool] = (placement, seconds)
            # frequency protocol: push the clock just past Vivado's f_max
            base_placement, _ = results["vivado"]
            base_route = router.route(base_placement)
            base_rep = sta.analyze(base_placement, base_route, period_ns=10.0)
            eval_freq = base_rep.freq_mhz_limit * (1.0 + settings.freq_margin)
            period = 1e3 / eval_freq
            for tool in TOOLS:
                placement, seconds = results[tool]
                route = router.route(placement)
                rep = sta.analyze(placement, route, period_ns=period)
                rows.append(
                    ToolRow(
                        benchmark=netlist.name,
                        tool=tool,
                        wns_ns=rep.wns_ns,
                        tns_ns=rep.tns_ns,
                        hpwl_um=placement.hpwl(),
                        routed_wl_um=route.total_wirelength,
                        runtime_s=seconds,
                        eval_freq_mhz=eval_freq,
                        placement=placement,
                    )
                )
        return Table2Result(rows=rows)

    return _cached(("table2", settings.scale, settings.identification), build)


# ======================================================================
# Fig. 8 — runtime profiling
# ======================================================================
def run_fig8(
    settings: ExperimentSettings | None = None,
    suites: tuple[str, ...] = ("ismartdnn", "skynet"),
) -> list[RuntimeBreakdown]:
    """Phase breakdown of a DSPlacer run (+ routing), per Fig. 8."""
    settings = settings or ExperimentSettings()
    out = []
    router = GlobalRouter()
    for suite in suites:
        placement, _seconds, phases = run_suite_tool(settings, suite, "dsplacer")
        t0 = time.perf_counter()
        router.route(placement)
        phases["routing"] = time.perf_counter() - t0
        out.append(RuntimeBreakdown(benchmark=get_netlist(settings, suite).name, seconds=phases))
    return out


# ======================================================================
# Frequency sweep — the §V-C protocol as a curve (extension)
# ======================================================================
@dataclass
class FreqSweepResult:
    """WNS vs clock frequency per tool for one suite."""

    benchmark: str
    freqs_mhz: list[float]
    wns_by_tool: dict[str, list[float]]

    def break_frequency(self, tool: str) -> float:
        """Highest swept frequency with non-negative WNS for a tool."""
        best = 0.0
        for f, w in zip(self.freqs_mhz, self.wns_by_tool[tool]):
            if w >= 0:
                best = max(best, f)
        return best


def run_freq_sweep(
    settings: ExperimentSettings | None = None,
    suite: str = "skrskr1",
    n_points: int = 8,
) -> FreqSweepResult:
    """Sweep the clock across the three tools' feasible band.

    The paper applies its protocol at a single point (the Vivado break
    frequency); the sweep shows the whole crossover structure — where each
    tool's WNS crosses zero and how the gap between DSPlacer and the
    baselines widens with frequency.
    """
    settings = settings or ExperimentSettings()
    netlist = get_netlist(settings, suite)
    sta = StaticTimingAnalyzer(netlist)
    router = GlobalRouter()
    placements = {}
    for tool in TOOLS:
        placement, _seconds, _ = run_suite_tool(settings, suite, tool)
        placements[tool] = (placement, router.route(placement))
    # band: spans every tool's f_max
    fmaxes = {
        tool: sta.analyze(p, r, period_ns=100.0).freq_mhz_limit
        for tool, (p, r) in placements.items()
    }
    lo = min(fmaxes.values()) * 0.85
    hi = max(fmaxes.values()) * 1.1
    freqs = list(np.linspace(lo, hi, n_points))
    wns_by_tool = {
        tool: [
            sta.analyze(p, r, period_ns=1e3 / f).wns_ns for f in freqs
        ]
        for tool, (p, r) in placements.items()
    }
    return FreqSweepResult(
        benchmark=netlist.name, freqs_mhz=freqs, wns_by_tool=wns_by_tool
    )


# ======================================================================
# Fig. 9 — layout visualization
# ======================================================================
@dataclass
class Fig9Result:
    """Fig. 9 for one benchmark: metrics + SVGs per tool."""

    benchmark: str
    metrics: dict[str, DatapathLayoutMetrics]
    svg_paths: dict[str, str]


def run_fig9(
    settings: ExperimentSettings | None = None,
    suite: str = "skrskr1",
    out_dir: str = "fig9_layouts",
) -> Fig9Result:
    """Generate the three SkrSkr-1 layouts and their order metrics."""
    import pathlib

    settings = settings or ExperimentSettings()
    netlist = get_netlist(settings, suite)
    paths = iddfs_dsp_paths(netlist)
    graph = build_dsp_graph(netlist, paths)
    oracle = {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()}
    datapath_graph = prune_control_dsps(graph, oracle)

    pathlib.Path(out_dir).mkdir(parents=True, exist_ok=True)
    metrics: dict[str, DatapathLayoutMetrics] = {}
    svgs: dict[str, str] = {}
    for tool in TOOLS:
        placement, _, _ = run_suite_tool(settings, suite, tool)
        metrics[tool] = layout_metrics(placement, datapath_graph)
        svg_path = str(pathlib.Path(out_dir) / f"{suite}_{tool}.svg")
        placement_to_svg(
            placement,
            datapath_graph,
            path=svg_path,
            title=f"{netlist.name} — {tool}",
        )
        svgs[tool] = svg_path
    return Fig9Result(benchmark=netlist.name, metrics=metrics, svg_paths=svgs)
