"""Aggregate experiment report generation.

Collects the artifacts the benchmark harness wrote under
``benchmarks/results/`` into one markdown document — the mechanical half of
EXPERIMENTS.md (the paper-vs-measured commentary is written by humans).
"""

from __future__ import annotations

from pathlib import Path

#: artifact name -> (section title, paper reference)
SECTIONS = {
    "table1": ("Table I — Benchmarks detail", "Table I"),
    "fig7a": ("Fig. 7(a) — Identification accuracy", "Fig. 7(a)"),
    "fig7b": ("Fig. 7(b) — Training curves", "Fig. 7(b)"),
    "table2": ("Table II — Placement comparison", "Table II"),
    "fig8": ("Fig. 8 — Runtime profiling", "Fig. 8"),
    "fig9": ("Fig. 9 — Layout visualization", "Fig. 9"),
    "ablation_identification": ("Ablation A1 — control-DSP pruning", "§III-B"),
    "ablation_lambda": ("Ablation A2 — λ sweep", "§V-C"),
    "ablation_candidates": ("Ablation A3 — MCF candidate window", "—"),
    "ablation_legalization": ("Ablation A4 — ILP vs greedy legalization", "eq. 10"),
    "ablation_alternation": ("Ablation A5 — alternation depth", "Fig. 6"),
    "ablation_timing_driven": ("Ablation A6 — timing-driven baseline", "§I"),
    "ablation_packing": ("Ablation A7 — BLE packing", "§I (UTPlaceF)"),
    "ablation_gcn_depth": ("Ablation A8 — GCN depth vs MLP", "§V-B"),
    "systolic_extension": ("Extension — systolic arrays", "§I (R-SAD)"),
    "freq_sweep": ("Extension — WNS vs clock sweep", "§V-C protocol"),
    "seed_robustness": ("Robustness — seed sensitivity", "—"),
    "router_models": ("Infrastructure — router model agreement", "—"),
    "bench_hotpaths": ("Infrastructure — hot-path timings", "—"),
    "bench_serve": ("Infrastructure — serve throughput", "—"),
}


def collect_results(results_dir: str | Path) -> dict[str, str]:
    """Read every known artifact present in the results directory."""
    results_dir = Path(results_dir)
    out: dict[str, str] = {}
    for name in SECTIONS:
        path = results_dir / f"{name}.txt"
        if path.exists():
            out[name] = path.read_text().rstrip()
    return out


def build_report(results_dir: str | Path, title: str = "Experiment results") -> str:
    """Render all collected artifacts as one markdown document."""
    artifacts = collect_results(results_dir)
    lines = [f"# {title}", ""]
    if not artifacts:
        lines.append(
            "_No artifacts found — run `pytest benchmarks/ --benchmark-only` first._"
        )
    for name, (section, ref) in SECTIONS.items():
        if name not in artifacts:
            continue
        lines.append(f"## {section}")
        lines.append(f"_Paper reference: {ref}_")
        lines.append("")
        lines.append("```")
        lines.append(artifacts[name])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str | Path, output: str | Path) -> Path:
    """Write the aggregate report; returns the output path."""
    output = Path(output)
    output.write_text(build_report(results_dir))
    return output
