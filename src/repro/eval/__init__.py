"""Evaluation harness: regenerates every table and figure of Section V.

- :mod:`repro.eval.experiments` — one runner per experiment (Table I,
  Table II, Fig. 7(a), Fig. 7(b), Fig. 8, Fig. 9) plus the ablations
  listed in DESIGN.md.
- :mod:`repro.eval.tables` — ASCII / markdown / CSV rendering.
- :mod:`repro.eval.visualization` — SVG layout dumps (Fig. 9).
- :mod:`repro.eval.profiling` — runtime breakdowns (Fig. 8).
"""

from repro.eval.experiments import (
    ExperimentSettings,
    run_table1,
    run_table2,
    run_fig7,
    run_fig8,
    run_fig9,
)
from repro.eval.report import build_report, write_report
from repro.eval.tables import render_table

__all__ = [
    "ExperimentSettings",
    "run_table1",
    "run_table2",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "render_table",
    "build_report",
    "write_report",
]
