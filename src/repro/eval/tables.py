"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (monospace, benchmark-log friendly)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV rendering of the same data."""
    out = [",".join(str(h) for h in headers)]
    for row in rows:
        out.append(",".join(_fmt(v) for v in row))
    return "\n".join(out)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
