"""The placement worker: one attempt, one process, one pipe message.

:func:`run_attempt` is the child-process entry point the server forks for
every race attempt. It is deliberately boring: build the placer, place,
measure quality, snapshot telemetry, send exactly one ``(status, body)``
tuple back, exit. All policy (racing, caching, retries, crash handling)
lives in the parent — a worker that dies mid-run simply never sends, and
the server turns the silent exit into a
:class:`~repro.errors.WorkerCrashError`.

The payload is a plain dict (picklable under both ``fork`` and ``spawn``):

``netlist`` / ``device``
    The materialized workload — workers never re-generate, so every
    attempt of a race places the *same* netlist.
``tool`` / ``seed`` / ``config``
    Engine name, this attempt's seed, and the resolved
    :class:`~repro.core.DSPlacerConfig` document for that seed.
``with_timing``
    Also route and run STA (slower; adds WNS/TNS/fmax to quality).
``faults``
    :meth:`~repro.robustness.FaultInjector.to_specs` output to replay
    inside this worker (chaos testing); empty for real serving.
``meta``
    Opaque report metadata from the request (suite, scale, ...).

The success body carries the placement as raw coordinate/site arrays —
the parent already holds the netlist and device, so shipping the full
:class:`~repro.placers.placement.Placement` (which drags the netlist
through pickle a second time) would only slow the pipe down.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any

from repro import obs
from repro.errors import ReproError
from repro.placers.api import get_placer
from repro.placers.placement import Placement
from repro.robustness import FaultInjector, RunHealth, inject

__all__ = ["run_attempt", "rebuild_placement"]


def _execute(payload: dict[str, Any]) -> dict[str, Any]:
    """Place the payload's workload and collect the result body."""
    from repro.core import DSPlacerConfig

    netlist = payload["netlist"]
    device = payload["device"]
    tool: str = payload["tool"]
    seed: int = payload["seed"]
    with_timing: bool = payload.get("with_timing", False)
    meta: dict[str, Any] = dict(payload.get("meta") or {})

    config = DSPlacerConfig.from_dict(payload.get("config") or {"seed": seed})
    placer = get_placer(tool, device, seed=seed, config=config)

    faults = payload.get("faults") or ()
    fault_ctx = inject(FaultInjector.from_specs(faults)) if faults else nullcontext(None)

    with obs.observe() as ob, fault_ctx:
        with obs.trace.span("serve.attempt", tool=tool, seed=seed):
            placement = placer.place(netlist)
            quality: dict[str, Any] = {
                "legal": bool(placement.is_legal()),
                "hpwl_um": float(placement.hpwl()),
            }
            if with_timing:
                from repro.router import GlobalRouter
                from repro.timing import StaticTimingAnalyzer, max_frequency

                route = GlobalRouter().route(placement)
                sta = StaticTimingAnalyzer(netlist)
                rep = sta.analyze(placement, route)
                quality.update(
                    routed_wl_um=float(route.total_wirelength),
                    wns_ns=float(rep.wns_ns),
                    tns_ns=float(rep.tns_ns),
                    fmax_mhz=float(max_frequency(sta, placement, route)),
                )

    if tool == "dsplacer":
        health = placer.last_result.health
    else:
        health = RunHealth()

    meta.update(tool=tool, seed=seed, config=config.to_dict())
    report = obs.RunReport.from_observation(
        ob, meta=meta, health=health.to_dict(), quality=quality
    )
    return {
        "seed": seed,
        "quality": quality,
        "report": report.to_dict(),
        "health": health.to_dict(),
        "xy": placement.xy,
        "site": placement.site,
    }


def run_attempt(conn, payload: dict[str, Any]) -> None:
    """Child-process entry: run one attempt, send one message, exit.

    Never raises: typed pipeline errors come back as ``("error", ...)``
    bodies with the exception class name (the parent rehydrates them via
    :meth:`~repro.placers.api.PlacementResponse.raise_for_status`); a
    ``crash`` fault bypasses this entirely via ``os._exit``.
    """
    try:
        message = ("ok", _execute(payload))
    except ReproError as exc:
        message = ("error", {"type": type(exc).__name__, "message": str(exc)})
    except BaseException as exc:  # noqa: BLE001 — a worker must never hang the server
        message = ("error", {"type": "ServeError", "message": f"{type(exc).__name__}: {exc}"})
    try:
        conn.send(message)
    finally:
        conn.close()


def rebuild_placement(netlist, device, body: dict[str, Any]) -> Placement:
    """Reassemble a worker's coordinate arrays into a full Placement."""
    placement = Placement(netlist, device)
    placement.xy = body["xy"]
    placement.site = body["site"]
    return placement
