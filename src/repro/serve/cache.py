"""Content-addressed placement result cache.

The serve layer never trusts a request's *description* of a workload — it
hashes what it is actually about to place. A cache key is the SHA-256 of:

- the **netlist content hash** — canonical JSON of
  :func:`~repro.netlist.io.netlist_to_json` (cells, nets, weights, macros),
  so any two identical netlists collide regardless of how they were
  produced (generated, loaded, hand-built);
- the **device id** — name, dimensions, and a digest of the DSP site
  geometry (two differently-scaled ``zcu104`` builds never collide);
- the **canonical config hash** —
  :meth:`~repro.core.DSPlacerConfig.content_hash` of the fully-resolved,
  default-filled, type-normalized config (see its docstring: equivalent
  configs *must* collide);
- the engine (``tool``) and the race fingerprint (``race_k`` /
  ``race_policy`` / ``with_timing``) — a best-of-3 artifact is not the same
  artifact as a single-seed run.

Chaos requests (non-empty ``faults``) are never cached.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.netlist.io import netlist_to_json

if TYPE_CHECKING:  # pragma: no cover
    from repro.fpga.device import Device
    from repro.netlist.netlist import Netlist
    from repro.placers.api import PlacementRequest

__all__ = ["netlist_content_hash", "device_id", "cache_key", "CacheEntry", "ResultCache"]


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def netlist_content_hash(netlist: "Netlist") -> str:
    """SHA-256 of the netlist's canonical JSON document."""
    doc = netlist_to_json(netlist)
    return _sha256(json.dumps(doc, sort_keys=True, separators=(",", ":")))


def device_id(device: "Device") -> str:
    """A stable identity string for a device build.

    Name and dimensions catch the common cases; the DSP site-geometry
    digest catches two same-named builds with different fabrics (e.g.
    ``scaled_zcu104`` at different scales keeps the base name).
    """
    xy = device.site_xy("DSP")
    geom = _sha256(xy.tobytes().hex())[:16]
    return f"{device.name}/{device.width:g}x{device.height:g}/dsp{xy.shape[0]}/{geom}"


def cache_key(netlist: "Netlist", device: "Device", request: "PlacementRequest") -> str:
    """The content-addressed key one (netlist, device, request) resolves to."""
    fingerprint = {
        "netlist": netlist_content_hash(netlist),
        "device": device_id(device),
        "tool": request.tool,
        "config": request.resolved_config().content_hash(),
        "race_k": int(request.race_k),
        "race_policy": request.race_policy,
        "with_timing": bool(request.with_timing),
    }
    return _sha256(json.dumps(fingerprint, sort_keys=True, separators=(",", ":")))


@dataclass
class CacheEntry:
    """What a cache line stores: enough to synthesize a fresh response."""

    quality: dict[str, Any]
    report: dict[str, Any] | None
    placement: Any
    seed_used: int | None
    cold_wall_s: float  # how long the miss took (observability: hit speedup)


@dataclass
class ResultCache:
    """Thread-safe, bounded, in-memory LRU of finished placements.

    ``max_entries`` bounds memory (placements hold the full coordinate
    array); eviction is least-recently-*used* — a hit refreshes the line.
    """

    max_entries: int = 256
    _lines: "OrderedDict[str, CacheEntry]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    hits: int = 0
    misses: int = 0

    def get(self, key: str) -> CacheEntry | None:
        with self._lock:
            entry = self._lines.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._lines.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            self._lines[key] = entry
            self._lines.move_to_end(key)
            while len(self._lines) > self.max_entries:
                self._lines.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._lines)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._lines

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._lines), "hits": self.hits, "misses": self.misses}
