"""Placement-as-a-service: job queue + multi-process worker pool + racing.

:class:`PlacementServer` turns placement runs into *jobs*: a
:class:`~repro.placers.api.PlacementRequest` goes in, a
:class:`~repro.placers.api.PlacementResponse` (carrying a schema-valid
:class:`~repro.obs.RunReport`) comes out. Between the two sit:

- a **content-addressed result cache** (:mod:`repro.serve.cache`) — a
  duplicate submission is answered without placing anything;
- a bounded **worker pool** — each attempt runs in its own OS process
  (placement is CPU-bound; processes sidestep the GIL and make a crashed
  solver an *observable event* instead of a dead server), at most
  ``workers`` concurrent;
- **portfolio racing** — a job with ``race_k > 1`` fans out to ``k``
  seeds. Policy ``"best"`` waits for every attempt and keeps the lowest
  HPWL; ``"first"`` keeps the first success and terminates the losers.
  Either way the race is recorded in the winner's RunHealth and in the
  report's ``job.race`` section.

Concurrency model: the server is **caller-pumped**. ``submit`` enqueues
and starts whatever fits in the pool; every ``Job.wait``/``Job.result``/
``drain`` call pumps the scheduler (launch queued attempts, poll worker
pipes, reap finished processes). There is no background thread by
default, so worker processes are always forked from the calling thread —
deterministic for tests and safe under CPython 3.12's multithreaded-fork
restrictions. Pass ``background=True`` to run the pump in a daemon thread
for embedding scenarios where nobody polls.

Crash containment: an attempt whose process exits without sending a
result (OOM kill, segfault, a chaos ``crash`` fault) becomes a
:class:`~repro.errors.WorkerCrashError` on that attempt. The job only
fails when *every* attempt failed — a race absorbs individual crashes.
"""

from __future__ import annotations

import copy
import itertools
import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mpconn
from typing import Any, Callable

from repro.errors import ServeError, WorkerCrashError
from repro.obs import metrics
from repro.placers.api import PlacementRequest, PlacementResponse
from repro.robustness import RunHealth
from repro.serve import worker as worker_mod
from repro.serve.cache import CacheEntry, ResultCache, cache_key

__all__ = ["Job", "PlacementServer"]

#: how long one pump blocks waiting for worker messages (seconds)
_POLL_S = 0.02


@dataclass(eq=False)
class _Attempt:
    """One seed of one job, from queued through running to a terminal state."""

    job: "Job"
    seed: int
    status: str = "queued"  # queued | running | ok | failed | cancelled
    proc: Any = None
    conn: Any = None
    body: dict[str, Any] | None = None  # worker's success payload
    error: dict[str, str] | None = None
    started: float | None = None
    finished: float | None = None

    @property
    def done(self) -> bool:
        return self.status in ("ok", "failed", "cancelled")

    @property
    def wall_s(self) -> float | None:
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def summary(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"seed": self.seed, "status": self.status}
        if self.body is not None:
            doc["hpwl_um"] = self.body["quality"]["hpwl_um"]
        if self.error is not None:
            doc["error"] = self.error["type"]
        if self.wall_s is not None:
            doc["wall_s"] = round(self.wall_s, 6)
        return doc


@dataclass(eq=False)
class Job:
    """A submitted placement: poll it, wait on it, or cancel it."""

    id: str
    request: PlacementRequest
    server: "PlacementServer" = field(repr=False)
    netlist: Any = field(repr=False, default=None)
    device: Any = field(repr=False, default=None)
    key: str | None = None
    submitted_unix: float = 0.0
    started_unix: float | None = None
    finished_unix: float | None = None
    cache: str = "bypass"  # hit | miss | bypass
    attempts: list[_Attempt] = field(default_factory=list, repr=False)
    response: PlacementResponse | None = field(default=None, repr=False)
    #: duplicate submissions coalesced onto this in-flight job
    followers: list["Job"] = field(default_factory=list, repr=False)
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def status(self) -> str:
        return self.response.status if self.response else "running"

    def wait(self, timeout: float | None = None) -> bool:
        """Pump the server until this job finishes (or ``timeout`` passes)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._event.is_set():
            if self.server._background:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._event.wait(_POLL_S if remaining is None else min(_POLL_S, remaining))
            else:
                self.server._pump(block_s=_POLL_S)
                if deadline is not None and time.monotonic() >= deadline:
                    return self._event.is_set()
        return True

    def result(self, timeout: float | None = None) -> PlacementResponse:
        """Block for the response; raises :class:`ServeError` on timeout."""
        if not self.wait(timeout):
            raise ServeError(f"job {self.id} did not finish within {timeout}s")
        assert self.response is not None
        return self.response

    def cancel(self) -> None:
        """Stop the job: queued attempts are dropped, running ones killed."""
        self.server._cancel_job(self)


class PlacementServer:
    """The job orchestrator. Use as a context manager::

        with PlacementServer(workers=4) as server:
            job = server.submit(PlacementRequest(suite="skynet", scale=0.05))
            response = job.result(timeout=300)
            response.raise_for_status()

    Args:
        workers: Max concurrent placement processes (≥ 1).
        cache: A shared :class:`ResultCache`; default a fresh per-server one.
        start_method: ``multiprocessing`` start method; default ``fork``
            where available (cheap, inherits imports) else ``spawn``.
        device_factory: ``scale -> Device`` used when a submission doesn't
            bring its own device; default builds the request's fabric via
            :func:`repro.fpga.fabric_device`.
        attempt_timeout_s: Hard wall-clock cap per attempt — a worker past
            it is terminated and counted as crashed. ``None`` disables.
        background: Run the scheduler pump in a daemon thread instead of
            piggybacking on ``Job.wait`` calls.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        cache: ResultCache | None = None,
        start_method: str | None = None,
        device_factory: Callable[[float], Any] | None = None,
        attempt_timeout_s: float | None = None,
        background: bool = False,
    ) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache if cache is not None else ResultCache()
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._device_factory = device_factory
        self.attempt_timeout_s = attempt_timeout_s
        self.jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._queue: deque[_Attempt] = deque()
        self._running: list[_Attempt] = []
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._closed = False
        self._background = background
        self._pump_thread: threading.Thread | None = None
        if background:
            self._pump_thread = threading.Thread(
                target=self._pump_forever, name="repro-serve-pump", daemon=True
            )
            self._pump_thread.start()

    # -- submission -----------------------------------------------------
    def submit(
        self, request: PlacementRequest, *, netlist: Any = None, device: Any = None
    ) -> Job:
        """Enqueue a placement job; returns immediately.

        ``netlist``/``device`` default to materializing the request's
        suite at its scale — passed explicitly they let callers serve
        arbitrary workloads (and tests serve tiny ones). The workload is
        materialized *here*, once, so every race attempt places the same
        netlist and the cache key covers real content, not a description.
        """
        if self._closed:
            raise ServeError("server is closed")
        if device is None:
            device = self._make_device(request.scale, request.fabric)
        if netlist is None:
            from repro.accelgen import generate_suite

            netlist = generate_suite(
                request.suite,
                scale=request.scale,
                device=device,
                seed=request.effective_netlist_seed,
            )

        now = time.time()
        with self._lock:
            job = Job(
                id=f"job-{next(self._ids):04d}",
                request=request,
                server=self,
                netlist=netlist,
                device=device,
                submitted_unix=now,
            )
            self.jobs[job.id] = job
            cacheable = request.use_cache and not request.faults
            if cacheable:
                job.key = cache_key(netlist, device, request)
                job.cache = "miss"
                entry = self.cache.get(job.key)
                if entry is not None:
                    self._finish_from_cache(job, entry)
                    return job
                leader = self._inflight.get(job.key)
                if leader is not None and not leader.done:
                    # identical job already running: coalesce instead of
                    # placing the same workload twice concurrently
                    leader.followers.append(job)
                    metrics.inc("serve.jobs.coalesced")
                    return job
                self._inflight[job.key] = job
            metrics.inc("serve.jobs.submitted")
            job.attempts = [_Attempt(job=job, seed=s) for s in request.attempt_seeds()]
            self._queue.extend(job.attempts)
            self._launch_ready()
        return job

    def drain(self, timeout: float | None = None) -> bool:
        """Pump until every submitted job is finished."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                pending = [j for j in self.jobs.values() if not j.done]
            if not pending:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            if self._background:
                time.sleep(_POLL_S)
            else:
                self._pump(block_s=_POLL_S)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Cancel everything in flight and reap all worker processes."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for job in list(self.jobs.values()):
                if not job.done:
                    self._cancel_job_locked(job)
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=2.0)

    def __enter__(self) -> "PlacementServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.status] = states.get(job.status, 0) + 1
            return {
                "jobs": dict(sorted(states.items())),
                "queued_attempts": len(self._queue),
                "running_attempts": len(self._running),
                "cache": self.cache.stats(),
            }

    # -- scheduler ------------------------------------------------------
    def _pump_forever(self) -> None:
        while not self._closed:
            self._pump(block_s=_POLL_S)

    def _pump(self, block_s: float = 0.0) -> None:
        """One scheduler step: launch, poll worker pipes, reap, finalize."""
        with self._lock:
            self._launch_ready()
            conns = [a.conn for a in self._running]
        if conns:
            try:
                ready = set(mpconn.wait(conns, timeout=block_s))
            except OSError:
                # a concurrent cancel closed a pipe mid-wait; re-enter
                ready = set()
        else:
            ready = set()
            if block_s:
                time.sleep(min(block_s, 0.005))
        with self._lock:
            now = time.time()
            touched: list[Job] = []
            for attempt in list(self._running):
                if attempt.conn in ready or attempt.conn.poll():
                    self._read_attempt(attempt)
                elif attempt.proc is not None and not attempt.proc.is_alive():
                    self._crash_attempt(attempt)
                elif (
                    self.attempt_timeout_s is not None
                    and attempt.started is not None
                    and now - attempt.started > self.attempt_timeout_s
                ):
                    self._kill_attempt(attempt)
                    attempt.status = "failed"
                    attempt.error = {
                        "type": "WorkerCrashError",
                        "message": (
                            f"attempt seed={attempt.seed} exceeded "
                            f"{self.attempt_timeout_s}s and was terminated"
                        ),
                    }
                    attempt.finished = time.time()
                else:
                    continue
                self._running.remove(attempt)
                touched.append(attempt.job)
            for job in dict.fromkeys(touched):
                self._maybe_finish_job(job)
            self._launch_ready()

    def _launch_ready(self) -> None:
        while len(self._running) < self.workers and self._queue:
            attempt = self._queue.popleft()
            if attempt.done or attempt.job.done:
                continue
            self._start_attempt(attempt)

    def _start_attempt(self, attempt: _Attempt) -> None:
        job = attempt.job
        request = job.request
        payload = {
            "netlist": job.netlist,
            "device": job.device,
            "tool": request.tool,
            "seed": attempt.seed,
            "config": request.resolved_config(attempt.seed).to_dict(),
            "with_timing": request.with_timing,
            "faults": list(request.faults),
            "meta": {"suite": request.suite, "scale": request.scale, "job": job.id},
        }
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_mod.run_attempt,
            args=(send_conn, payload),
            name=f"repro-serve-{job.id}-s{attempt.seed}",
            daemon=True,
        )
        proc.start()
        send_conn.close()  # parent's copy — EOF now means "child is gone"
        attempt.proc = proc
        attempt.conn = recv_conn
        attempt.status = "running"
        attempt.started = time.time()
        if job.started_unix is None:
            job.started_unix = attempt.started
        self._running.append(attempt)
        metrics.inc("serve.attempts.started")

    def _read_attempt(self, attempt: _Attempt) -> None:
        try:
            status, body = attempt.conn.recv()
        except (EOFError, OSError):
            self._crash_attempt(attempt)
            return
        attempt.finished = time.time()
        if status == "ok":
            attempt.status = "ok"
            attempt.body = body
        else:
            attempt.status = "failed"
            attempt.error = body
        self._reap(attempt)

    def _crash_attempt(self, attempt: _Attempt) -> None:
        """The worker exited without sending a result."""
        self._reap(attempt)
        exitcode = attempt.proc.exitcode if attempt.proc is not None else None
        attempt.status = "failed"
        attempt.finished = time.time()
        crash = WorkerCrashError(
            f"worker for attempt seed={attempt.seed} of {attempt.job.id} "
            "exited without a result",
            exitcode=exitcode,
        )
        attempt.error = {"type": "WorkerCrashError", "message": str(crash)}
        metrics.inc("serve.attempts.crashed")

    def _kill_attempt(self, attempt: _Attempt) -> None:
        if attempt.proc is not None and attempt.proc.is_alive():
            attempt.proc.terminate()
        self._reap(attempt)

    def _reap(self, attempt: _Attempt) -> None:
        if attempt.proc is not None:
            attempt.proc.join(timeout=2.0)
        if attempt.conn is not None:
            attempt.conn.close()

    # -- job resolution -------------------------------------------------
    def _maybe_finish_job(self, job: Job) -> None:
        if job.done:
            return
        oks = [a for a in job.attempts if a.status == "ok"]
        open_ = [a for a in job.attempts if not a.done]
        if job.request.race_policy == "first" and oks:
            self._cancel_attempts(open_)
            self._finish_ok(job, oks[0])
        elif not open_:
            if oks:
                winner = min(
                    oks,
                    key=lambda a: (
                        not a.body["quality"]["legal"],
                        a.body["quality"]["hpwl_um"],
                        a.seed,
                    ),
                )
                self._finish_ok(job, winner)
            else:
                self._finish_failed(job)

    def _cancel_attempts(self, attempts: list[_Attempt]) -> None:
        for attempt in attempts:
            if attempt.status == "running":
                self._kill_attempt(attempt)
                if attempt in self._running:
                    self._running.remove(attempt)
                metrics.inc("serve.attempts.cancelled")
            attempt.status = "cancelled"
            attempt.finished = time.time()

    def _cancel_job(self, job: Job) -> None:
        with self._lock:
            self._cancel_job_locked(job)

    def _cancel_job_locked(self, job: Job) -> None:
        if job.done:
            return
        self._cancel_attempts([a for a in job.attempts if not a.done])
        job.finished_unix = time.time()
        job.response = PlacementResponse(
            job_id=job.id,
            status="cancelled",
            cache=job.cache,
            request=job.request,
            error={"type": "JobCancelledError", "message": f"job {job.id} was cancelled"},
            submitted_unix=job.submitted_unix,
            started_unix=job.started_unix,
            finished_unix=job.finished_unix,
        )
        metrics.inc("serve.jobs.cancelled")
        job._event.set()
        self._resolve_followers(job)

    def _resolve_followers(self, job: Job) -> None:
        """Settle every submission that coalesced onto ``job``.

        A follower of a successful leader is a cache hit (the leader's
        entry landed in the cache just before this runs); a follower of a
        failed or cancelled leader inherits that outcome — it asked for
        exactly the leader's computation.
        """
        if job.key is not None and self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        followers, job.followers = job.followers, []
        for follower in followers:
            if follower.done:
                continue
            entry = self.cache.get(job.key) if job.key is not None else None
            if job.response is not None and job.response.status == "ok" and entry is not None:
                self._finish_from_cache(follower, entry)
            else:
                follower.finished_unix = time.time()
                leader_resp = job.response
                follower.response = PlacementResponse(
                    job_id=follower.id,
                    status=leader_resp.status if leader_resp else "failed",
                    cache=follower.cache,
                    request=follower.request,
                    error=dict(leader_resp.error) if leader_resp and leader_resp.error else None,
                    submitted_unix=follower.submitted_unix,
                    started_unix=follower.started_unix,
                    finished_unix=follower.finished_unix,
                )
                follower._event.set()

    def _race_section(self, job: Job, winner: _Attempt | None) -> dict[str, Any] | None:
        if job.request.race_k <= 1:
            return None
        return {
            "k": job.request.race_k,
            "policy": job.request.race_policy,
            "winner_seed": None if winner is None else winner.seed,
            "attempts": [a.summary() for a in job.attempts],
            "cancelled": sum(1 for a in job.attempts if a.status == "cancelled"),
        }

    def _job_section(self, job: Job, race: dict[str, Any] | None) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": job.id,
            "submitted_unix": job.submitted_unix,
            "started_unix": job.started_unix,
            "finished_unix": job.finished_unix,
            "cache": job.cache,
        }
        if race is not None:
            doc["race"] = race
        return doc

    def _finish_ok(self, job: Job, winner: _Attempt) -> None:
        job.finished_unix = time.time()
        race = self._race_section(job, winner)
        report = copy.deepcopy(winner.body["report"])
        if race is not None:
            # fold the race outcome into the winner's RunHealth so a
            # report reader sees losers/crashes without a side channel
            health = RunHealth.from_dict(report.get("health") or {})
            for attempt in job.attempts:
                if attempt is winner:
                    continue
                kind = "cancelled" if attempt.status == "cancelled" else (
                    "failure" if attempt.status == "failed" else "warning"
                )
                health.record(
                    "serve.race",
                    kind,
                    f"attempt seed={attempt.seed} {attempt.status}"
                    + (f": {attempt.error['message']}" if attempt.error else ""),
                )
            report["health"] = health.to_dict()
        report["job"] = self._job_section(job, race)
        placement = worker_mod.rebuild_placement(job.netlist, job.device, winner.body)
        job.response = PlacementResponse(
            job_id=job.id,
            status="ok",
            cache=job.cache,
            request=job.request,
            quality=dict(winner.body["quality"]),
            report=report,
            seed_used=winner.seed,
            submitted_unix=job.submitted_unix,
            started_unix=job.started_unix,
            finished_unix=job.finished_unix,
            placement=placement,
        )
        if job.key is not None and job.cache == "miss":
            self.cache.put(
                job.key,
                CacheEntry(
                    quality=dict(winner.body["quality"]),
                    report=copy.deepcopy(report),
                    placement=placement,
                    seed_used=winner.seed,
                    cold_wall_s=job.finished_unix - job.submitted_unix,
                ),
            )
        metrics.inc("serve.jobs.ok")
        job._event.set()
        self._resolve_followers(job)

    def _finish_failed(self, job: Job) -> None:
        job.finished_unix = time.time()
        failures = [a for a in job.attempts if a.error is not None]
        error = failures[-1].error if failures else {
            "type": "ServeError",
            "message": f"job {job.id} produced no successful attempt",
        }
        job.response = PlacementResponse(
            job_id=job.id,
            status="failed",
            cache=job.cache,
            request=job.request,
            error=dict(error),
            submitted_unix=job.submitted_unix,
            started_unix=job.started_unix,
            finished_unix=job.finished_unix,
        )
        metrics.inc("serve.jobs.failed")
        job._event.set()
        self._resolve_followers(job)

    def _finish_from_cache(self, job: Job, entry: CacheEntry) -> None:
        now = time.time()
        job.cache = "hit"
        job.started_unix = now
        job.finished_unix = now
        report = copy.deepcopy(entry.report)
        if report is not None:
            job_doc = dict(report.get("job") or {})
            race = job_doc.get("race")
            report["job"] = self._job_section(job, race)
        job.response = PlacementResponse(
            job_id=job.id,
            status="ok",
            cache="hit",
            request=job.request,
            quality=dict(entry.quality),
            report=report,
            seed_used=entry.seed_used,
            submitted_unix=job.submitted_unix,
            started_unix=job.started_unix,
            finished_unix=job.finished_unix,
            placement=entry.placement,
        )
        metrics.inc("serve.jobs.cache_hits")
        job._event.set()

    # -- helpers --------------------------------------------------------
    def _make_device(self, scale: float, fabric: str = "zcu104") -> Any:
        if self._device_factory is not None:
            return self._device_factory(scale)
        from repro.fpga import fabric_device

        return fabric_device(fabric, scale)
