"""Placement-as-a-service: jobs, workers, racing, and the result cache.

Public surface::

    from repro.serve import PlacementServer
    from repro.placers.api import PlacementRequest

    with PlacementServer(workers=4) as server:
        job = server.submit(PlacementRequest(suite="skynet", scale=0.05))
        response = job.result(timeout=300).raise_for_status()

See ``docs/SERVING.md`` for the architecture and the cache-key contract.
"""

from repro.serve.cache import (
    CacheEntry,
    ResultCache,
    cache_key,
    device_id,
    netlist_content_hash,
)
from repro.serve.server import Job, PlacementServer

__all__ = [
    "PlacementServer",
    "Job",
    "ResultCache",
    "CacheEntry",
    "cache_key",
    "device_id",
    "netlist_content_hash",
]
