"""First-order optimizers over flat parameter dictionaries."""

from __future__ import annotations

import numpy as np


class SGD:
    """Vanilla (optionally momentum) stochastic gradient descent."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._vel: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        for key, g in grads.items():
            if self.momentum:
                v = self._vel.get(key)
                v = self.momentum * v + g if v is not None else g.copy()
                self._vel[key] = v
                params[key] -= self.lr * v
            else:
                params[key] -= self.lr * g


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for key, g in grads.items():
            if self.weight_decay:
                g = g + self.weight_decay * params[key]
            m = self._m.get(key, np.zeros_like(g))
            v = self._v.get(key, np.zeros_like(g))
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g)
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
