"""Learning substrate: from-scratch numpy GCN and SVM.

The paper uses PyTorch Geometric for the datapath-DSP classifier (Fig. 3(c):
two 32-unit graph-convolution layers, three fully-connected layers, softmax,
dropout, class-weighted loss) and compares against PADE's SVM. Both are
implemented here on numpy with hand-derived, gradient-checked backprop.
"""

from repro.ml.gcn import GCN, GCNConfig, normalized_adjacency
from repro.ml.losses import weighted_cross_entropy
from repro.ml.optim import Adam, SGD
from repro.ml.svm import LinearSVM
from repro.ml.metrics import accuracy, confusion_matrix, f1_score
from repro.ml.train import TrainResult, train_gcn, leave_one_out

__all__ = [
    "GCN",
    "GCNConfig",
    "normalized_adjacency",
    "weighted_cross_entropy",
    "Adam",
    "SGD",
    "LinearSVM",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "TrainResult",
    "train_gcn",
    "leave_one_out",
]
