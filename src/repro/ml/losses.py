"""Classification losses.

The paper addresses datapath/control class imbalance with a weighted loss,
"assigning higher penalties to minority class misclassifications based on
class ratios" (Section III-A); :func:`class_weights_from_labels` implements
exactly that inverse-frequency rule.
"""

from __future__ import annotations

import numpy as np


def class_weights_from_labels(labels: np.ndarray, n_classes: int = 2) -> np.ndarray:
    """Inverse-frequency class weights, normalized to mean 1."""
    counts = np.bincount(labels.astype(int), minlength=n_classes).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    w = counts.sum() / (n_classes * counts)
    return w / w.mean()


def weighted_cross_entropy(
    probs: np.ndarray,
    labels: np.ndarray,
    class_weights: np.ndarray | None = None,
    mask: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Weighted CE over (optionally masked) rows of a softmax output.

    Args:
        probs: ``(n, k)`` softmax probabilities.
        labels: ``(n,)`` integer labels.
        class_weights: Per-class penalty; defaults to uniform.
        mask: Boolean row mask — only labeled nodes (the DSPs) contribute.

    Returns:
        ``(loss, dlogits)`` where ``dlogits`` is the gradient w.r.t. the
        pre-softmax logits (the usual fused softmax+CE backward).
    """
    n, k = probs.shape
    labels = labels.astype(int)
    if class_weights is None:
        class_weights = np.ones(k)
    if mask is None:
        mask = np.ones(n, dtype=bool)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        raise ValueError("empty mask: nothing to train on")
    w = class_weights[labels[idx]]
    p = np.clip(probs[idx, labels[idx]], 1e-12, 1.0)
    denom = w.sum()
    loss = float((w * -np.log(p)).sum() / denom)

    dlogits = np.zeros_like(probs)
    grad_rows = probs[idx] * w[:, None]
    grad_rows[np.arange(idx.size), labels[idx]] -= w
    dlogits[idx] = grad_rows / denom
    return loss, dlogits
