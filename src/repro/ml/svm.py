"""Linear SVM (the PADE [28] baseline of Fig. 7(a)).

Class-weighted soft-margin linear SVM trained by deterministic full-batch
subgradient descent on the primal objective
``λ/2 ||w||² + (1/Σc) Σ_i c_{y_i} max(0, 1 − y_i (w·x_i + b))``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.losses import class_weights_from_labels


class LinearSVM:
    """Binary linear SVM over {0, 1} labels with inverse-frequency weighting."""

    def __init__(
        self,
        lam: float = 1e-3,
        lr: float = 0.1,
        epochs: int = 300,
        class_weighted: bool = True,
        seed: int = 0,
    ) -> None:
        self.lam = lam
        self.lr = lr
        self.epochs = epochs
        self.class_weighted = class_weighted
        self.seed = seed
        self.w: np.ndarray | None = None
        self.b: float = 0.0
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def _standardize(self, x: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mu = x.mean(axis=0)
            self._sigma = np.maximum(x.std(axis=0), 1e-9)
        return (x - self._mu) / self._sigma

    def fit(self, x: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on ``(n, d)`` features and ``(n,)`` {0,1} labels."""
        x = np.asarray(x, dtype=np.float64)
        labels = np.asarray(labels).astype(int)
        if x.ndim != 2 or x.shape[0] != labels.size:
            raise ValueError("feature/label shape mismatch")
        xs = self._standardize(x, fit=True)
        y = 2.0 * labels - 1.0  # {-1, +1}
        cw = class_weights_from_labels(labels) if self.class_weighted else np.ones(2)
        c = cw[labels]
        c = c / c.sum()
        rng = np.random.default_rng(self.seed)
        d = x.shape[1]
        self.w = rng.normal(0, 0.01, d)
        self.b = 0.0
        for t in range(1, self.epochs + 1):
            margin = y * (xs @ self.w + self.b)
            active = margin < 1.0
            grad_w = self.lam * self.w - ((c * y * active)[:, None] * xs).sum(axis=0)
            grad_b = -float((c * y * active).sum())
            step = self.lr / np.sqrt(t)
            self.w -= step * grad_w
            self.b -= step * grad_b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.w is None:
            raise RuntimeError("fit() first")
        xs = self._standardize(np.asarray(x, dtype=np.float64), fit=False)
        return xs @ self.w + self.b

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(int)
