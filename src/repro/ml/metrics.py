"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(pred: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Fraction of (masked) predictions matching the labels."""
    pred = np.asarray(pred)
    labels = np.asarray(labels)
    if mask is not None:
        pred = pred[mask]
        labels = labels[mask]
    if pred.size == 0:
        raise ValueError("no samples")
    return float((pred == labels).mean())


def confusion_matrix(pred: np.ndarray, labels: np.ndarray, n_classes: int = 2) -> np.ndarray:
    """``cm[i, j]`` = count of true class i predicted as j."""
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(np.asarray(labels).astype(int), np.asarray(pred).astype(int)):
        cm[t, p] += 1
    return cm


def f1_score(pred: np.ndarray, labels: np.ndarray, positive: int = 1) -> float:
    """Binary F1 for the given positive class (0 when degenerate)."""
    pred = np.asarray(pred) == positive
    labels = np.asarray(labels) == positive
    tp = int((pred & labels).sum())
    fp = int((pred & ~labels).sum())
    fn = int((~pred & labels).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)
