"""GCN training harness: multi-graph epochs, accuracy curves, leave-one-out.

Implements the paper's evaluation protocol (Section V-B): "four benchmarks
are used for training, and the resulting model is tested on the remaining
benchmark", repeated for all benchmarks, with accuracy recorded per epoch
(Fig. 7(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.ml.gcn import GCN, GCNConfig
from repro.ml.losses import class_weights_from_labels, weighted_cross_entropy
from repro.ml.metrics import accuracy
from repro.ml.optim import Adam


@dataclass
class GraphSample:
    """One netlist graph prepared for node classification.

    Attributes:
        a_hat: Normalized adjacency.
        x: ``(n, d)`` node features.
        labels: ``(n,)`` labels (only meaningful under ``mask``).
        mask: Labeled nodes — the DSP nodes.
        name: Benchmark name, for reporting.
    """

    a_hat: sp.csr_matrix
    x: np.ndarray
    labels: np.ndarray
    mask: np.ndarray
    name: str = ""
    #: strictly-local (automorphism-style) features for the SVM baseline
    x_local: np.ndarray | None = None


@dataclass
class TrainResult:
    """Training outcome with per-epoch accuracy curves (Fig. 7(b))."""

    model: GCN
    train_curve: list[float] = field(default_factory=list)
    test_curve: list[float] = field(default_factory=list)
    loss_curve: list[float] = field(default_factory=list)
    feature_mean: np.ndarray | None = None
    feature_std: np.ndarray | None = None

    @property
    def final_test_accuracy(self) -> float:
        return self.test_curve[-1] if self.test_curve else float("nan")

    def predict(self, sample: "GraphSample") -> np.ndarray:
        """Per-node class predictions with the training-time normalization."""
        x = sample.x
        if self.feature_mean is not None:
            x = (x - self.feature_mean) / self.feature_std
        return self.model.predict(x, sample.a_hat)


def _standardize_features(samples: list[GraphSample]) -> tuple[np.ndarray, np.ndarray]:
    """Mean/std over all training nodes; applied in-place to each sample."""
    stacked = np.vstack([s.x for s in samples])
    mu = stacked.mean(axis=0)
    sigma = np.maximum(stacked.std(axis=0), 1e-9)
    return mu, sigma


def train_gcn(
    train_samples: list[GraphSample],
    test_samples: list[GraphSample] | None = None,
    *,
    epochs: int = 300,
    lr: float = 0.01,
    dropout: float = 0.3,
    hidden: int = 32,
    n_conv: int = 2,
    seed: int = 0,
    eval_every: int = 1,
) -> TrainResult:
    """Train the Fig. 3(c) classifier over one or more graphs.

    Each epoch does one full-batch forward/backward per training graph
    with the class-weighted loss masked to DSP nodes.
    """
    if not train_samples:
        raise ValueError("no training graphs")
    mu, sigma = _standardize_features(train_samples)
    xs_train = [(s.x - mu) / sigma for s in train_samples]
    xs_test = [(s.x - mu) / sigma for s in (test_samples or [])]

    all_labels = np.concatenate([s.labels[s.mask] for s in train_samples])
    cw = class_weights_from_labels(all_labels)

    config = GCNConfig(
        in_dim=train_samples[0].x.shape[1],
        hidden=hidden,
        n_conv=n_conv,
        dropout=dropout,
        seed=seed,
    )
    model = GCN(config)
    opt = Adam(lr=lr)
    rng = np.random.default_rng(seed + 1)
    result = TrainResult(model=model, feature_mean=mu, feature_std=sigma)

    for epoch in range(epochs):
        losses = []
        for s, x in zip(train_samples, xs_train):
            probs, cache = model.forward(x, s.a_hat, training=True, rng=rng)
            loss, dlogits = weighted_cross_entropy(probs, s.labels, cw, s.mask)
            grads = model.backward(cache, dlogits)
            opt.step(model.params, grads)
            losses.append(loss)
        result.loss_curve.append(float(np.mean(losses)))
        if epoch % eval_every == 0 or epoch == epochs - 1:
            result.train_curve.append(
                _multi_accuracy(model, train_samples, xs_train)
            )
            if test_samples:
                result.test_curve.append(_multi_accuracy(model, test_samples, xs_test))
    return result


def _multi_accuracy(model: GCN, samples: list[GraphSample], xs: list[np.ndarray]) -> float:
    correct = 0
    total = 0
    for s, x in zip(samples, xs):
        pred = model.predict(x, s.a_hat)
        correct += int((pred[s.mask] == s.labels[s.mask]).sum())
        total += int(s.mask.sum())
    return correct / max(total, 1)


def leave_one_out(
    samples: list[GraphSample],
    *,
    epochs: int = 300,
    seed: int = 0,
    **train_kwargs,
) -> dict[str, TrainResult]:
    """Paper Section V-B protocol: hold out each benchmark once.

    Returns ``{held_out_name: TrainResult}``; each result's test curve is the
    held-out benchmark's accuracy over epochs.
    """
    if len(samples) < 2:
        raise ValueError("leave-one-out needs at least two graphs")
    results: dict[str, TrainResult] = {}
    for i, held_out in enumerate(samples):
        train = [s for j, s in enumerate(samples) if j != i]
        results[held_out.name or f"fold{i}"] = train_gcn(
            train, [held_out], epochs=epochs, seed=seed, **train_kwargs
        )
    return results
