"""Graph convolutional network with hand-derived backprop (numpy).

Architecture per the paper's Fig. 3(c): two graph-convolution layers with 32
hidden units, followed by three fully-connected layers and softmax, with
dropout regularization. A graph convolution computes ``Â · H · W + b`` with
the Kipf-Welling symmetric normalization ``Â = D^{-1/2}(A + I)D^{-1/2}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.obs import metrics


def normalized_adjacency(adj: sp.spmatrix) -> sp.csr_matrix:
    """Kipf-Welling normalization with self-loops: D^{-1/2}(A+I)D^{-1/2}.

    Scales the nonzeros in place on the COO triplets (one pass) instead of
    two diagonal sparse-sparse products.
    """
    n = adj.shape[0]
    a = ((sp.csr_matrix(adj, dtype=np.float64) + sp.eye(n, format="csr"))).tocoo()
    deg = np.zeros(n)
    np.add.at(deg, a.row, a.data)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    a.data *= d_inv_sqrt[a.row] * d_inv_sqrt[a.col]
    return a.tocsr()


@dataclass(frozen=True)
class GCNConfig:
    """Hyper-parameters (defaults = paper Fig. 3(c)).

    ``n_conv=0`` degenerates the model into a plain MLP over node features
    (no neighbourhood aggregation) — the ablation showing what the graph
    structure itself contributes to identification accuracy.
    """

    in_dim: int
    hidden: int = 32
    n_conv: int = 2
    fc_dims: tuple[int, ...] = (32, 16)
    n_classes: int = 2
    dropout: float = 0.3
    seed: int = 0


class GCN:
    """2×GCNConv(32) → 3×FC → softmax node classifier.

    Parameters live in a flat dict so the optimizers in
    :mod:`repro.ml.optim` can update them generically. All gradients are
    derived by hand and validated by a numerical-gradient test.
    """

    def __init__(self, config: GCNConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        dims = [config.in_dim] + [config.hidden] * config.n_conv
        self._conv_keys: list[str] = []
        self.params: dict[str, np.ndarray] = {}
        for i in range(config.n_conv):
            self._glorot(rng, f"conv{i}", dims[i], dims[i + 1])
            self._conv_keys.append(f"conv{i}")
        fc_in = dims[-1]
        self._fc_keys: list[str] = []
        for i, out in enumerate((*config.fc_dims, config.n_classes)):
            self._glorot(rng, f"fc{i}", fc_in, out)
            self._fc_keys.append(f"fc{i}")
            fc_in = out

    def _glorot(self, rng: np.random.Generator, key: str, fan_in: int, fan_out: int) -> None:
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        self.params[f"{key}_W"] = rng.uniform(-limit, limit, (fan_in, fan_out))
        self.params[f"{key}_b"] = np.zeros(fan_out)

    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        a_hat: sp.csr_matrix,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, dict]:
        """Return ``(probs, cache)``; cache feeds :meth:`backward`."""
        if training and rng is None:
            rng = np.random.default_rng(0)
        p_drop = self.config.dropout if training else 0.0
        cache: dict = {"a_hat": a_hat, "layers": []}
        h = np.asarray(x, dtype=np.float64)
        for key in self._conv_keys:
            ax = a_hat @ h
            z = ax @ self.params[f"{key}_W"] + self.params[f"{key}_b"]
            relu_mask = z > 0
            h_out = z * relu_mask
            drop_mask = None
            if p_drop > 0:
                drop_mask = (rng.random(h_out.shape) >= p_drop) / (1.0 - p_drop)
                h_out = h_out * drop_mask
            cache["layers"].append(
                {"kind": "conv", "key": key, "ax": ax, "relu": relu_mask, "drop": drop_mask}
            )
            h = h_out
        for i, key in enumerate(self._fc_keys):
            last = i == len(self._fc_keys) - 1
            z = h @ self.params[f"{key}_W"] + self.params[f"{key}_b"]
            if last:
                cache["layers"].append({"kind": "fc", "key": key, "h_in": h, "relu": None, "drop": None})
                h = z
            else:
                relu_mask = z > 0
                h_out = z * relu_mask
                drop_mask = None
                if p_drop > 0:
                    drop_mask = (rng.random(h_out.shape) >= p_drop) / (1.0 - p_drop)
                    h_out = h_out * drop_mask
                cache["layers"].append(
                    {"kind": "fc", "key": key, "h_in": h, "relu": relu_mask, "drop": drop_mask}
                )
                h = h_out
        logits = h
        logits = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(logits)
        probs = e / e.sum(axis=1, keepdims=True)
        cache["x"] = np.asarray(x, dtype=np.float64)
        return probs, cache

    def backward(self, cache: dict, dlogits: np.ndarray) -> dict[str, np.ndarray]:
        """Gradients of the loss w.r.t. every parameter given dL/dlogits."""
        grads: dict[str, np.ndarray] = {}
        a_hat = cache["a_hat"]
        grad = dlogits
        layers = cache["layers"]
        for li in range(len(layers) - 1, -1, -1):
            layer = layers[li]
            key = layer["key"]
            if layer["drop"] is not None:
                grad = grad * layer["drop"]
            if layer["relu"] is not None:
                grad = grad * layer["relu"]
            if layer["kind"] == "fc":
                h_in = layer["h_in"]
                grads[f"{key}_W"] = h_in.T @ grad
                grads[f"{key}_b"] = grad.sum(axis=0)
                grad = grad @ self.params[f"{key}_W"].T
            else:  # conv: z = (A h) W + b
                ax = layer["ax"]
                grads[f"{key}_W"] = ax.T @ grad
                grads[f"{key}_b"] = grad.sum(axis=0)
                grad = a_hat.T @ (grad @ self.params[f"{key}_W"].T)
        return grads

    def predict(self, x: np.ndarray, a_hat: sp.csr_matrix) -> np.ndarray:
        metrics.inc("gcn.predicts")
        probs, _ = self.forward(x, a_hat, training=False)
        return probs.argmax(axis=1)

    def predict_proba(self, x: np.ndarray, a_hat: sp.csr_matrix) -> np.ndarray:
        probs, _ = self.forward(x, a_hat, training=False)
        return probs

    def state_dict(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self.params.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for k in self.params:
            self.params[k] = state[k].copy()
