"""DSPlacer reproduction: datapath-driven DSP placement for FPGA CNN accelerators.

This package reproduces the system described in *"DSPlacer: DSP Placement for
FPGA-based CNN Accelerator"* (DAC 2025), including every substrate the paper
depends on: a netlist model, an UltraScale+-style device model, a synthetic
CNN-accelerator benchmark generator, baseline analytical placers, a pattern
router, a static timing analyzer, a from-scratch GCN/SVM learning stack, and
min-cost-flow / ILP / isotonic optimization solvers.

The headline entry point is :class:`repro.core.DSPlacer`.
"""

__all__ = ["DSPlacer", "DSPlacerConfig", "DSPlacerResult", "__version__"]

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy re-export so `import repro.netlist` etc. do not pull in the whole
    # core stack (and its numpy/scipy machinery) when only a substrate is used.
    if name in ("DSPlacer", "DSPlacerConfig", "DSPlacerResult"):
        from repro.core import dsplacer

        return getattr(dsplacer, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
