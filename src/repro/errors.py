"""Typed error taxonomy for the whole pipeline.

Every failure the Fig. 2 flow can produce is a :class:`ReproError` subclass,
so callers can catch one root type and the resilience layer
(:mod:`repro.robustness`) can tell *recoverable* solver trouble apart from
*unrecoverable* input trouble:

- :class:`NetlistValidationError` — the input netlist (or netlist/device
  pairing) is malformed; no amount of fallback fixes it.
- :class:`ConfigurationError` — a config knob names an unknown engine,
  placer, or method.
- :class:`SolverError` — a solve failed; a :class:`~repro.robustness.SolverGuard`
  may retry it on a different engine.

  - :class:`SolverInputError` — the solver was called with malformed
    arguments (shape mismatch, negative capacity, free variables, …).
  - :class:`SolverInfeasibleError` — the instance has no feasible solution
    (or none within the solver's candidate structure).
  - :class:`SolverConvergenceError` — the solver gave up before reaching a
    solution (iteration/node/round limits).

- :class:`LegalizationError` — a legal placement could not be constructed
  even after every legalization fallback.
- :class:`StageBudgetExceeded` — a pipeline stage blew its wall-clock
  budget.
- :class:`ReportSchemaError` — a RunReport document does not conform to the
  versioned schema (:mod:`repro.obs.report`).
- :class:`ServeError` — the placement service (:mod:`repro.serve`) could not
  run or complete a job.

  - :class:`WorkerCrashError` — a placement worker process died without
    reporting a result (hard crash, OOM kill, ``os._exit``).
  - :class:`JobCancelledError` — the job (or a race attempt) was cancelled
    before producing a placement.

Several classes also inherit from the builtin exception they historically
were (``ValueError`` / ``RuntimeError`` / ``TimeoutError``) so that code and
tests written against the old bare raises keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistValidationError",
    "ConfigurationError",
    "SolverError",
    "SolverInputError",
    "SolverInfeasibleError",
    "SolverConvergenceError",
    "LegalizationError",
    "StageBudgetExceeded",
    "ReportSchemaError",
    "ServeError",
    "WorkerCrashError",
    "JobCancelledError",
]


class ReproError(Exception):
    """Root of every typed error raised by this package."""


class NetlistValidationError(ReproError, ValueError):
    """The netlist (or netlist/device pairing) violates an invariant.

    Messages are actionable: they name the offending cell/net/macro and what
    to change (see :mod:`repro.netlist.validate`).
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration knob names an unknown engine/placer/method."""


class SolverError(ReproError):
    """Base class for solver failures — the unit of fallback.

    :class:`~repro.robustness.SolverGuard` catches this (and only this,
    besides :class:`LegalizationError`) when deciding to try the next engine
    in a fallback chain.
    """


class SolverInputError(SolverError, ValueError):
    """The solver was called with malformed arguments."""


class SolverInfeasibleError(SolverError, ValueError):
    """The instance admits no feasible solution."""


class SolverConvergenceError(SolverError, RuntimeError):
    """The solver hit an iteration/round/node limit before converging."""


class LegalizationError(ReproError, ValueError):
    """No legal placement could be constructed for the given cells."""


class ReportSchemaError(ReproError, ValueError):
    """A RunReport document violates the versioned report schema."""


class ServeError(ReproError):
    """The placement service could not run or complete a job."""


class WorkerCrashError(ServeError, RuntimeError):
    """A placement worker process died without reporting a result.

    Carries the process exit code when one is known; the serve layer marks
    the owning job attempt failed (never hung) and records the crash in the
    job's :class:`~repro.robustness.RunHealth`.
    """

    def __init__(self, detail: str, exitcode: int | None = None) -> None:
        self.exitcode = exitcode
        suffix = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"{detail}{suffix}")


class JobCancelledError(ServeError):
    """The job (or one of its race attempts) was cancelled."""


class StageBudgetExceeded(ReproError, TimeoutError):
    """A pipeline stage exhausted its wall-clock budget."""

    def __init__(self, stage: str, budget_s: float, elapsed_s: float) -> None:
        self.stage = stage
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        super().__init__(
            f"stage {stage!r} exceeded its {budget_s:.3g}s budget "
            f"(elapsed {elapsed_s:.3g}s)"
        )
