"""Extension — WNS vs clock frequency sweep (the §V-C protocol as a curve).

Sweeps the evaluation clock across the feasible band and reports each
tool's WNS at every point. The crossover structure generalizes Table II:
below every tool's f_max all WNS are positive; as frequency rises the
AMF-like baseline fails first, then the Vivado-like baseline, and DSPlacer
holds out longest (its break frequency is the highest).
"""

from repro.eval import render_table
from repro.eval.experiments import run_freq_sweep


def test_freq_sweep(benchmark, settings, emit):
    result = benchmark.pedantic(
        run_freq_sweep, args=(settings,), kwargs={"suite": "skrskr1"}, rounds=1, iterations=1
    )
    rows = []
    for i, f in enumerate(result.freqs_mhz):
        rows.append(
            [
                f"{f:.0f}",
                f"{result.wns_by_tool['vivado'][i]:+.3f}",
                f"{result.wns_by_tool['amf'][i]:+.3f}",
                f"{result.wns_by_tool['dsplacer'][i]:+.3f}",
            ]
        )
    emit(
        "freq_sweep",
        render_table(
            ["f (MHz)", "vivado WNS", "amf WNS", "dsplacer WNS"],
            rows,
            title=f"Extension: WNS vs clock — {result.benchmark}.",
        ),
    )
    # monotonicity: WNS decreases as the clock rises, for every tool
    for tool, curve in result.wns_by_tool.items():
        assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:])), tool
    # crossover ordering: DSPlacer breaks last, AMF no later than vivado
    assert result.break_frequency("dsplacer") >= result.break_frequency("vivado")
    assert result.break_frequency("amf") <= result.break_frequency("vivado") * 1.05
