"""Robustness — is the Table II gap a seed artifact?

Re-runs the Vivado-vs-DSPlacer comparison on two suites across three
placement seeds (the netlists stay fixed — the paper's benchmarks are fixed
designs) and checks the f_max gap survives every seed.
"""

import numpy as np

from repro.core import DSPlacer, DSPlacerConfig
from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

SUITES = ("skynet", "skrskr3")
SEEDS = (0, 1, 2)


def test_seed_robustness(benchmark, settings, emit):
    device = get_device(settings)

    def run():
        out = {}
        for suite in SUITES:
            netlist = get_netlist(settings, suite)
            sta = StaticTimingAnalyzer(netlist)
            router = GlobalRouter()
            base_f, dsp_f = [], []
            for seed in SEEDS:
                p = VivadoLikePlacer(seed=seed, device=device).place(netlist)
                base_f.append(max_frequency(sta, p, router.route(p)))
                res = DSPlacer(
                    device, DSPlacerConfig(identification="oracle", seed=seed)
                ).place(netlist)
                dsp_f.append(
                    max_frequency(sta, res.placement, router.route(res.placement))
                )
            out[suite] = (base_f, dsp_f)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for suite, (base_f, dsp_f) in results.items():
        rows.append(
            [
                suite,
                f"{np.mean(base_f):.0f} ± {np.std(base_f):.0f}",
                f"{np.mean(dsp_f):.0f} ± {np.std(dsp_f):.0f}",
                f"{np.mean(dsp_f) / np.mean(base_f):.3f}x",
            ]
        )
    emit(
        "seed_robustness",
        render_table(
            ["suite", "vivado f_max (MHz)", "dsplacer f_max (MHz)", "ratio"],
            rows,
            title=f"Robustness: f_max across seeds {SEEDS}.",
        ),
    )
    for suite, (base_f, dsp_f) in results.items():
        # the gap holds on every seed, not just on average
        for b, d in zip(base_f, dsp_f):
            assert d >= b * 0.98, (suite, b, d)
        assert np.mean(dsp_f) >= np.mean(base_f)