"""Fig. 8 — runtime profiling of the DSPlacer flow.

The paper profiles iSmartDNN and SkyNet: prototype placement + other
component placement dominate (≈90% of total), datapath DSP extraction is
small, and routing takes the rest. We reproduce the same breakdown with our
flow; note (documented in EXPERIMENTS.md) that the *datapath DSP placement*
slice is relatively heavier here because the paper's MCF/ILP run in C++
(LEMON/Gurobi) while ours are pure Python.
"""

from repro.eval import render_table, run_fig8


def test_fig8_runtime_breakdown(benchmark, settings, emit):
    breakdowns = benchmark.pedantic(
        run_fig8, args=(settings,), rounds=1, iterations=1
    )
    rows = []
    for rb in breakdowns:
        for phase, sec, pct in rb.rows():
            rows.append([rb.benchmark, phase, f"{sec:.2f}", f"{pct:.1f}%"])
        rows.append([rb.benchmark, "total", f"{rb.total:.2f}", "100%"])
    emit(
        "fig8",
        render_table(
            ["Benchmark", "Phase", "seconds", "share"],
            rows,
            title="Fig. 8 (reproduced): Runtime profiling.",
        ),
    )

    for rb in breakdowns:
        pct = rb.percentages
        # placement stages (prototype + incremental other-components)
        # dominate the flow, as in the paper (90.6% / 88.3%)
        placement_share = pct["prototype_placement"] + pct["other_placement"]
        assert placement_share > 40.0
        # extraction is a small slice (paper: ~2%)
        assert pct["datapath_extraction"] < 15.0
        assert set(pct) == {
            "prototype_placement",
            "datapath_extraction",
            "dsp_placement",
            "other_placement",
            "routing",
        }
