"""Table I — benchmark details.

Regenerates the paper's Table I: per-design LUT/LUTRAM/FF/BRAM/DSP counts,
DSP utilization against the ZCU104, and the target frequency. Benchmarks
are generated at FULL scale here (generation is cheap; only placement
experiments are scale-reduced).
"""

from repro.accelgen.suites import PAPER_TABLE1
from repro.eval import render_table, run_table1


def test_table1(benchmark, emit):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    headers = ["Design", "#LUT", "#LUTRAM", "#FF", "#BRAM", "#DSP", "DSP%", "freq.(MHz)"]
    table = [
        [r["design"], r["lut"], r["lutram"], r["ff"], r["bram"], r["dsp"], f"{r['dsp_pct']}%", r["freq_mhz"]]
        for r in rows
    ]
    emit("table1", render_table(headers, table, title="TABLE I (reproduced): Benchmarks detail."))

    # shape assertions vs the published numbers
    paper = list(PAPER_TABLE1.values())
    for row, ref in zip(rows, paper):
        assert row["dsp"] == ref["dsp"]
        assert row["lut"] == ref["lut"]
        assert row["lutram"] == ref["lutram"]
        assert row["ff"] == ref["ff"]
        assert row["freq_mhz"] == ref["freq"]
        # BRAM totals match; DSP% is vs usable (PS-clipped) sites, so it can
        # sit a point or two above the paper's grid-based percentage
        assert row["bram"] == ref["bram"]
        assert abs(row["dsp_pct"] - round(100 * ref["dsp"] / 1728)) <= 3
