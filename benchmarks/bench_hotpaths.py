"""Hot-path perf-regression bench (gated against ``BENCH_hotpaths.json``).

Unlike the figure/table benches, this one reproduces no paper artifact: it
guards the flow's measured hot paths — the linearized MCF assignment
iterate, the extraction kernels (feature centralities, DSP path search,
DSP-graph build), the outer-flow kernels (pattern ``router.route``,
``sta.analyze`` incl. the backward slack pass, and the end-to-end
``place`` span), and the analytical-placer core (B2B
``global_place.solve`` and the greedy ``refine`` pass at the pinned
passes=4 / n_candidates=16 protocol) — against wall-clock regressions. The
workload protocol lives in :mod:`repro.obs.bench`; the committed baseline
at the repo root records the expected per-stage timings (plus the
pre-vectorization reference measurements, see ``docs/PERFORMANCE.md``).

Knobs (env): ``REPRO_BENCH_SUITE`` / ``REPRO_BENCH_SCALE`` pick the
workload (default: the small CI suite), ``REPRO_BENCH_THRESHOLD`` the
allowed slowdown fraction (default 0.25).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.obs.bench import compare, run_hotpaths

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"


def test_hotpaths_no_regression(emit, results_dir):
    suite = os.environ.get("REPRO_BENCH_SUITE", "skynet")
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
    threshold = float(os.environ.get("REPRO_BENCH_THRESHOLD", "0.25"))

    doc = run_hotpaths(suite=suite, scale=scale)
    (results_dir / "BENCH_hotpaths.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    lines = [f"{name:<28} {agg['wall_s']:8.4f}s  x{agg['count']}"
             for name, agg in sorted(doc["stages"].items())]
    emit("bench_hotpaths", f"hot paths on {doc['workload']}:\n" + "\n".join(lines))

    baseline = json.loads(BASELINE_PATH.read_text())
    problems = compare(doc, baseline, threshold=threshold)
    assert not problems, "\n".join(problems)


def test_serve_throughput_no_regression(emit, results_dir):
    """Sustained placements/minute through the serve worker pool.

    Cold-places the five Table I suites via :class:`repro.serve.PlacementServer`
    and gates the end-to-end ``serve.throughput`` span. The band is wider
    than the kernel gates (default 60%) because the span covers process
    scheduling and netlist generation, not one deterministic hot loop.
    """
    from repro.obs.bench import SERVE_GATED_STAGES, run_serve_throughput

    threshold = float(os.environ.get("REPRO_BENCH_SERVE_THRESHOLD", "0.6"))
    doc = run_serve_throughput()
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "bench_serve",
        f"serve throughput on {doc['workload']}: "
        f"{doc['placements_per_minute']:.1f} placements/min "
        f"({doc['n_ok']}/{doc['n_jobs']} ok, {doc['workers']} workers)",
    )
    assert doc["n_ok"] == doc["n_jobs"]

    baseline = json.loads(BASELINE_PATH.read_text())
    problems = compare(doc, baseline, threshold=threshold, stages=SERVE_GATED_STAGES)
    assert not problems, "\n".join(problems)
