"""Ablation A2 — the λ datapath-angle trade-off (paper sets λ=100).

λ trades wirelength against PS↔PL datapath order (eq. 6/7). We sweep λ and
report datapath order (angle monotonicity), HPWL and f_max: λ=0 ignores the
datapath; very large λ sacrifices wirelength for order.
"""

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import (
    DatapathIdentifier,
    build_dsp_graph,
    iddfs_dsp_paths,
    prune_control_dsps,
)
from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.eval.visualization import layout_metrics
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

SUITE = "skynet"
LAMBDAS = (0.0, 10.0, 100.0, 1000.0)


def test_ablation_lambda(benchmark, settings, emit):
    device = get_device(settings)
    netlist = get_netlist(settings, SUITE)
    paths = iddfs_dsp_paths(netlist)
    graph = build_dsp_graph(netlist, paths)
    oracle = {i: bool(netlist.cells[i].is_datapath) for i in netlist.dsp_indices()}
    dgraph = prune_control_dsps(graph, oracle)
    router = GlobalRouter()
    sta = StaticTimingAnalyzer(netlist)

    def sweep():
        out = []
        for lam in LAMBDAS:
            placer = DSPlacer(
                device,
                DSPlacerConfig(identification="oracle", lam=lam, seed=settings.seed),
            )
            res = placer.place(netlist)
            m = layout_metrics(res.placement, dgraph)
            fmax = max_frequency(sta, res.placement, router.route(res.placement))
            out.append((lam, m, res.placement.hpwl(), fmax))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_lambda",
        render_table(
            ["lambda", "angle order", "HPWL (um)", "f_max (MHz)"],
            [[lam, f"{m.angle_monotonicity:+.2f}", f"{hp:.3g}", f"{f:.0f}"] for lam, m, hp, f in results],
            title="Ablation A2: datapath-angle weight λ (paper: λ=100).",
        ),
    )
    order = {lam: m.angle_monotonicity for lam, m, _, _ in results}
    # the angle term must actually steer the layout
    assert order[1000.0] >= order[0.0] - 1e-9
    fmax = {lam: f for lam, _, _, f in results}
    # the paper's λ=100 should not be dominated by switching the term off
    assert fmax[100.0] >= fmax[0.0] * 0.95
