"""Ablation A7 — BLE packing in the baseline flow.

Measures what LUT→FF pair packing (the UTPlaceF-style preprocessing the
paper's Section I cites) buys the baseline, and confirms DSPlacer's edge is
orthogonal to it.
"""

from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.placers import VivadoLikePlacer
from repro.placers.packing import pack_lut_ff_pairs, packing_quality
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

SUITE = "ismartdnn"


def test_ablation_packing(benchmark, settings, emit):
    device = get_device(settings)
    netlist = get_netlist(settings, SUITE)
    packing = pack_lut_ff_pairs(netlist)
    sta = StaticTimingAnalyzer(netlist)
    router = GlobalRouter()

    def run():
        out = {}
        for name, flag in (("unpacked", False), ("packed", True)):
            p = VivadoLikePlacer(seed=settings.seed, pack_ble=flag, device=device).place(netlist)
            out[name] = (
                p,
                max_frequency(sta, p, router.route(p)),
                packing_quality(p, packing),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_packing",
        render_table(
            ["flow", "f_max (MHz)", "HPWL (um)", "mean LUT-FF dist (um)"],
            [
                [k, f"{f:.0f}", f"{p.hpwl():.4g}", f"{q:.1f}"]
                for k, (p, f, q) in results.items()
            ],
            title=f"Ablation A7: BLE packing ({packing.n_pairs} LUT→FF pairs).",
        ),
    )
    assert results["packed"][2] <= results["unpacked"][2]
