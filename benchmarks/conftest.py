"""Benchmark harness configuration.

Every bench regenerates one table or figure of the paper's Section V (see
DESIGN.md's experiment index) at ``REPRO_SCALE`` (default 0.25, see the
scale protocol in ``repro.eval.experiments``). Rendered tables are printed
and also written to ``benchmarks/results/`` so `pytest benchmarks/
--benchmark-only` leaves artifacts behind.

Unless ``REPRO_OBS=0``, every bench also runs under a
:func:`repro.obs.observe` block and appends its per-stage wall/CPU
breakdown and metric snapshot to ``benchmarks/results/stage_breakdown.json``
(one entry per bench node) — the artifact CI uploads.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import obs
from repro.eval import ExperimentSettings
from repro.obs import SCHEMA_VERSION, aggregate_spans

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
STAGE_BREAKDOWN = RESULTS_DIR / "stage_breakdown.json"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered experiment artifact and persist it."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(autouse=True)
def observed_run(request, results_dir):
    """Trace each bench and persist its stage breakdown.

    Set ``REPRO_OBS=0`` to opt out (e.g. when measuring the
    observability-disabled overhead — see ``bench_fig8_runtime.py``).
    """
    if os.environ.get("REPRO_OBS", "1") == "0":
        yield None
        return
    with obs.observe() as ob:
        yield ob
    spans = ob.tracer.to_dicts()
    if not spans and not ob.metrics.names():
        return  # nothing instrumented ran; keep the artifact focused
    doc: dict = {}
    if STAGE_BREAKDOWN.exists():
        try:
            doc = json.loads(STAGE_BREAKDOWN.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[request.node.name] = {
        "schema_version": SCHEMA_VERSION,
        "stages": aggregate_spans(spans),
        "metrics": ob.metrics.to_dict(),
    }
    STAGE_BREAKDOWN.write_text(json.dumps(doc, indent=2, sort_keys=True))
