"""Benchmark harness configuration.

Every bench regenerates one table or figure of the paper's Section V (see
DESIGN.md's experiment index) at ``REPRO_SCALE`` (default 0.25, see the
scale protocol in ``repro.eval.experiments``). Rendered tables are printed
and also written to ``benchmarks/results/`` so `pytest benchmarks/
--benchmark-only` leaves artifacts behind.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval import ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered experiment artifact and persist it."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
