"""Fig. 7(b) — GCN training/testing accuracy curves.

The paper plots train/test accuracy vs epoch for the identification GCN;
the shape to reproduce is fast convergence to a high plateau with the test
curve tracking the train curve (no overfit collapse).
"""

import numpy as np

from repro.eval import render_table, run_fig7


def _sparkline(values, width=30):
    marks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    idx = np.linspace(0, len(values) - 1, num=min(width, len(values))).astype(int)
    lo, hi = min(values), max(values)
    span = max(hi - lo, 1e-9)
    return "".join(marks[int((values[i] - lo) / span * (len(marks) - 1))] for i in idx)


def test_fig7b_training_curves(benchmark, settings, emit):
    result = benchmark.pedantic(run_fig7, args=(settings,), rounds=1, iterations=1)
    lines = ["Fig. 7(b) (reproduced): Training and Testing accuracy vs epoch."]
    rows = []
    for name in result.train_curves:
        tr = result.train_curves[name]
        te = result.test_curves[name]
        rows.append([name, f"{tr[0]:.2f}→{tr[-1]:.2f}", _sparkline(tr)])
        rows.append([f"  (test)", f"{te[0]:.2f}→{te[-1]:.2f}", _sparkline(te)])
    emit(
        "fig7b",
        "\n".join(lines)
        + "\n"
        + render_table(["fold (held-out)", "accuracy", "curve"], rows),
    )

    for name in result.train_curves:
        tr, te = result.train_curves[name], result.test_curves[name]
        assert tr[-1] >= tr[0] - 0.02  # learning, not collapsing
        assert te[-1] >= 0.85  # high test plateau
        assert max(tr) - te[-1] < 0.15  # no drastic train/test gap
