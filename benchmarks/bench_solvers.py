"""Micro-benchmarks of the optimization substrate.

These are true pytest-benchmark timings (multiple rounds) for the solvers
the DSPlacer inner loop leans on — useful to spot regressions in the pure
Python kernels.
"""

import numpy as np
import pytest

from repro.solvers import (
    ColumnBlock,
    MinCostFlow,
    hungarian,
    legalize_column_rows,
    min_cost_assignment,
    solve_ilp,
)


@pytest.fixture(scope="module")
def assignment_instance():
    rng = np.random.default_rng(0)
    n, m, k = 100, 150, 24
    arcs = []
    for i in range(n):
        for j in rng.choice(m, size=k, replace=False):
            arcs.append((i, int(j), float(rng.uniform(0, 100))))
        arcs.append((i, i, float(rng.uniform(0, 100))))  # guarantee feasibility
    return n, m, arcs


def test_bench_mcf_assignment(benchmark, assignment_instance):
    n, m, arcs = assignment_instance
    result = benchmark(min_cost_assignment, n, m, arcs)
    assert len(result) == n


def test_bench_hungarian_dense(benchmark):
    rng = np.random.default_rng(1)
    cost = rng.uniform(0, 100, (80, 120))
    cols, total = benchmark(hungarian, cost)
    assert len(set(cols.tolist())) == 80


def test_bench_mcf_raw_flow(benchmark):
    def run():
        rng = np.random.default_rng(2)
        net = MinCostFlow(200)
        for _ in range(1200):
            u, v = rng.integers(0, 200, 2)
            if u != v:
                net.add_edge(int(u), int(v), int(rng.integers(1, 5)), float(rng.uniform(0, 10)))
        return net.min_cost_flow(0, 199)

    flow, cost = benchmark(run)
    assert flow >= 0


def test_bench_intra_column_dp(benchmark):
    rng = np.random.default_rng(3)
    blocks = []
    total = 0
    while total < 100:
        size = int(rng.integers(1, 9))
        blocks.append(ColumnBlock(targets=tuple(sorted(rng.uniform(0, 144, size)))))
        total += size
    blocks.sort(key=lambda b: np.mean(b.targets))
    starts = benchmark(legalize_column_rows, blocks, 144)
    assert len(starts) == len(blocks)


def test_bench_ilp_intercolumn_shape(benchmark):
    """An eq.-(10)-shaped ILP: 60 entities x 6 columns."""
    rng = np.random.default_rng(4)
    n, ncol = 60, 6
    sizes = rng.integers(1, 9, n).astype(float)
    cost = rng.uniform(0, 100, (n, ncol)).ravel()
    a_eq = np.zeros((n, n * ncol))
    for i in range(n):
        a_eq[i, i * ncol : (i + 1) * ncol] = 1.0
    a_ub = np.zeros((ncol, n * ncol))
    for j in range(ncol):
        a_ub[j, j::ncol] = sizes
    caps = np.full(ncol, sizes.sum() / ncol * 1.3)

    res = benchmark(
        solve_ilp,
        cost,
        A_ub=a_ub,
        b_ub=caps,
        A_eq=a_eq,
        b_eq=np.ones(n),
        bounds=[(0.0, 1.0)] * (n * ncol),
    )
    assert res.ok
