"""Fig. 9 — datapath visualizations of the SkrSkr-1 placement layouts.

Writes one SVG per tool (Vivado-like / AMF-like / DSPlacer) with the
datapath DSP graph overlaid, and checks the figure's quantitative content:
DSPlacer's datapath is compact and *ordered* along the PS angle, Vivado's
is legal but unordered, AMF's is compact but PS-disordered.
"""

from repro.eval import render_table, run_fig9


def test_fig9_layout_visualization(benchmark, settings, emit, results_dir):
    result = benchmark.pedantic(
        run_fig9,
        args=(settings,),
        kwargs={"out_dir": str(results_dir / "fig9_layouts")},
        rounds=1,
        iterations=1,
    )
    rows = []
    for tool, m in result.metrics.items():
        rows.append(
            [
                tool,
                f"{m.cascade_adjacent_frac:.0%}",
                f"{m.mean_datapath_edge_um:.0f}",
                f"{m.angle_monotonicity:+.2f}",
                f"{m.dsp_bbox_area_frac:.0%}",
                result.svg_paths[tool],
            ]
        )
    emit(
        "fig9",
        render_table(
            ["Tool", "cascades adj.", "mean dp-edge (um)", "angle order", "dsp bbox", "svg"],
            rows,
            title=f"Fig. 9 (reproduced): {result.benchmark} datapath layout metrics.",
        ),
    )

    m = result.metrics
    # every flow legalizes cascades onto dedicated wiring
    for tool in m:
        assert m[tool].cascade_adjacent_frac == 1.0
    # DSPlacer orders the datapath along the PS angle at least as well as
    # both baselines (paper: AMF "fails to maintain the datapath
    # information between PS and PL")
    assert m["dsplacer"].angle_monotonicity >= m["amf"].angle_monotonicity - 1e-9
    assert m["dsplacer"].angle_monotonicity >= m["vivado"].angle_monotonicity - 1e-9
    # and keeps the datapath at least as tight as Vivado's
    assert m["dsplacer"].mean_datapath_edge_um <= m["vivado"].mean_datapath_edge_um * 1.1
