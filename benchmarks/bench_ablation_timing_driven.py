"""Ablation A6 — is DSPlacer's gain just missing timing-driven placement?

The baseline flow is wirelength-driven (plus static net weights). This
ablation turns on Vivado-style criticality reweighting rounds in the
baseline and checks whether generic timing-driven placement closes the gap
to DSPlacer's datapath-specific optimization (the paper's claim is that it
does not — regularity/datapath information is the missing ingredient, cf.
Section I's discussion of [21]).
"""

from repro.core import DSPlacer, DSPlacerConfig
from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

SUITE = "skrskr2"


def test_ablation_timing_driven(benchmark, settings, emit):
    device = get_device(settings)
    netlist = get_netlist(settings, SUITE)
    sta = StaticTimingAnalyzer(netlist)
    router = GlobalRouter()

    def run():
        out = {}
        for name, make in (
            ("vivado (WL)", lambda: VivadoLikePlacer(seed=settings.seed, device=device).place(netlist)),
            (
                "vivado (TD)",
                lambda: VivadoLikePlacer(seed=settings.seed, timing_driven=True, device=device).place(netlist
                ),
            ),
            (
                "dsplacer",
                lambda: DSPlacer(
                    device, DSPlacerConfig(identification="oracle", seed=settings.seed)
                )
                .place(netlist)
                .placement,
            ),
            (
                "dsplacer (TD)",
                lambda: DSPlacer(
                    device,
                    DSPlacerConfig(
                        identification="oracle", seed=settings.seed, timing_driven=True
                    ),
                )
                .place(netlist)
                .placement,
            ),
        ):
            p = make()
            out[name] = (p, max_frequency(sta, p, router.route(p)))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_timing_driven",
        render_table(
            ["flow", "f_max (MHz)", "HPWL (um)"],
            [[k, f"{f:.0f}", f"{p.hpwl():.4g}"] for k, (p, f) in results.items()],
            title="Ablation A6: generic timing-driven rounds vs datapath-driven DSP placement.",
        ),
    )
    f = {k: v[1] for k, v in results.items()}
    # datapath-specific optimization is not subsumed by generic TD rounds
    assert f["dsplacer"] >= max(f["vivado (WL)"], f["vivado (TD)"]) * 0.98
    # slack-weighted assignment never collapses the plain DSPlacer result
    assert f["dsplacer (TD)"] >= f["dsplacer"] * 0.95
