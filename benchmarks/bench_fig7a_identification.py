"""Fig. 7(a) — datapath DSP identification: GCN vs PADE-style SVM.

Leave-one-out over the five suites (paper Section V-B): four benchmarks
train, the held-out one tests; repeated for every benchmark. The paper
reports GCN ≈ 96% average vs SVM ≈ 81% average; the shape to reproduce is
GCN ≥ SVM on every suite with a clear average gap.
"""

from repro.eval import render_table, run_fig7


def test_fig7a_identification(benchmark, settings, emit):
    result = benchmark.pedantic(run_fig7, args=(settings,), rounds=1, iterations=1)
    names = list(result.gcn_accuracy)
    rows = [
        [n, f"{result.svm_accuracy[n]:.1%}", f"{result.gcn_accuracy[n]:.1%}"] for n in names
    ]
    rows.append(["average", f"{result.svm_mean:.1%}", f"{result.gcn_mean:.1%}"])
    emit(
        "fig7a",
        render_table(
            ["Benchmark", "SVM [28]", "GCN"],
            rows,
            title="Fig. 7(a) (reproduced): Datapath DSP identification comparison.",
        ),
    )

    # paper shape: GCN wins on average with a real gap, and never loses badly
    assert result.gcn_mean > result.svm_mean + 0.02
    assert result.gcn_mean >= 0.9
    for n in names:
        assert result.gcn_accuracy[n] >= result.svm_accuracy[n] - 0.02
