"""Extension — DSPlacer on a systolic-array accelerator.

The paper's Section I argues that R-SAD's systolic-only specialization is a
limitation while DSPlacer "supports various FPGA-based CNN accelerator
architectures". This bench generates a weight-stationary systolic array
(the architecture family DSPlacer was *not* tuned for) and shows the flow
remains *applicable*: every partial-sum cascade legalizes onto dedicated
wiring, wirelength improves, and f_max stays within ~10% of the generic
baseline. (Losing a few percent of f_max here is the expected counterpart
of the paper's R-SAD discussion — a mesh-specialized placer would win on
this architecture, which is exactly why the paper contrasts against one.)
"""

from repro.accelgen import SystolicConfig, generate_systolic
from repro.core import DSPlacer, DSPlacerConfig
from repro.eval import render_table
from repro.eval.experiments import get_device
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency


def test_systolic_extension(benchmark, settings, emit):
    device = get_device(settings)
    rows = max(8, int(16 * settings.scale * 2))
    cfg = SystolicConfig(
        name=f"systolic{rows}x{rows}",
        rows=rows,
        cols=rows,
        max_chain=8,
        n_lut=rows * rows * 20,
        n_ff=rows * rows * 30,
        n_lutram=rows * rows,
        n_bram=4 * rows // 2,
        freq_mhz=250.0,
    )
    netlist = generate_systolic(cfg, device=device)
    sta = StaticTimingAnalyzer(netlist)
    router = GlobalRouter()

    def run():
        base = VivadoLikePlacer(seed=settings.seed, device=device).place(netlist)
        f_base = max_frequency(sta, base, router.route(base))
        res = DSPlacer(
            device, DSPlacerConfig(identification="heuristic", seed=settings.seed)
        ).place(netlist)
        f_dsp = max_frequency(sta, res.placement, router.route(res.placement))
        return base, f_base, res, f_dsp

    base, f_base, res, f_dsp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "systolic_extension",
        render_table(
            ["flow", "f_max (MHz)", "HPWL (um)", "legal"],
            [
                ["vivado-like", f"{f_base:.0f}", f"{base.hpwl():.4g}", base.is_legal()],
                [
                    "dsplacer",
                    f"{f_dsp:.0f}",
                    f"{res.placement.hpwl():.4g}",
                    res.placement.is_legal(),
                ],
            ],
            title=f"Extension: {netlist.name} ({netlist.stats().n_dsp} DSPs) — "
            "diverse-architecture support.",
        ),
    )
    assert res.placement.is_legal()
    assert f_dsp >= f_base * 0.9  # applicable, never collapses
    assert res.placement.hpwl() <= base.hpwl() * 1.05  # wirelength holds up
