"""Ablation A1 — what identification buys the placement.

Section III-B claims that keeping control-path DSPs in the datapath graph
"can result in a less compact datapath layout, potentially degrading the
improvements in timing performance". We compare DSPlacer runs whose
datapath set is (a) the oracle labels, (b) everything (no pruning), on one
mid-size suite, reporting f_max and datapath compactness.
"""

import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import DatapathIdentifier
from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

SUITE = "skrskr1"


class _AllDatapath(DatapathIdentifier):
    """No-pruning ablation: every DSP is treated as datapath."""

    def __init__(self):
        super().__init__(method="oracle")

    def predict(self, netlist, sample=None):
        from repro.core.extraction.identification import IdentificationResult

        flags = {i: True for i in netlist.dsp_indices()}
        truth = [1 if netlist.cells[i].is_datapath else 0 for i in netlist.dsp_indices()]
        acc = sum(truth) / len(truth)
        return IdentificationResult(flags=flags, method="all", accuracy=acc)


def _run(settings, identifier):
    device = get_device(settings)
    netlist = get_netlist(settings, SUITE)
    placer = DSPlacer(
        device, DSPlacerConfig(identification="oracle", seed=settings.seed), identifier=identifier
    )
    res = placer.place(netlist)
    router = GlobalRouter()
    sta = StaticTimingAnalyzer(netlist)
    fmax = max_frequency(sta, res.placement, router.route(res.placement))
    return res, fmax


def test_ablation_identification(benchmark, settings, emit):
    def run_all():
        oracle = _run(settings, DatapathIdentifier(method="oracle"))
        nopruning = _run(settings, _AllDatapath())
        return oracle, nopruning

    (oracle_res, f_oracle), (all_res, f_all) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    emit(
        "ablation_identification",
        render_table(
            ["variant", "datapath DSPs", "f_max (MHz)"],
            [
                ["oracle labels (pruned)", oracle_res.n_datapath_dsps, f"{f_oracle:.0f}"],
                ["no pruning (all DSPs)", all_res.n_datapath_dsps, f"{f_all:.0f}"],
            ],
            title="Ablation A1: control-DSP pruning (Section III-B claim).",
        ),
    )
    assert all_res.n_datapath_dsps > oracle_res.n_datapath_dsps
    # pruning should never lose much and typically wins
    assert f_oracle >= f_all * 0.97
