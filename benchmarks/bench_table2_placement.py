"""Table II — placement performance comparison (the headline experiment).

Reproduces the paper's Table II at REPRO_SCALE: post-route WNS/TNS, HPWL
and runtime for Vivado-like, AMF-like and DSPlacer on all five suites, plus
the "Normalize" row (ratios vs DSPlacer; >1 = worse, matching the paper's
1.325×/1.658× WNS presentation).

Frequency protocol per paper V-C: the clock of each suite is pushed just
past the Vivado baseline's f_max, so the baseline shows a small negative
WNS and DSPlacer must recover it.

Shape assertions (who wins, roughly by how much):
- DSPlacer's WNS beats Vivado's on ≥4/5 suites and on the normalized mean;
- AMF is the worst performer overall (VCU108-maladapted on ZCU104);
- Vivado is the fastest flow; DSPlacer pays extra runtime;
- normalized WNS ratios land in the paper's ballpark (Vivado ≈ 1.3×,
  AMF ≈ 1.7× worse path delay is not expected to match exactly — we only
  require ordering and >1 margins).
"""

import numpy as np

from repro.eval import render_table, run_table2


def test_table2_placement_comparison(benchmark, settings, emit):
    result = benchmark.pedantic(run_table2, args=(settings,), rounds=1, iterations=1)

    headers = [
        "Benchmark",
        "Tool",
        "WNS (ns)",
        "TNS (ns)",
        "HPWL (um)",
        "routedWL (um)",
        "Runtime (s)",
        "eval f (MHz)",
    ]
    rows = []
    for r in result.rows:
        rows.append(
            [
                r.benchmark,
                r.tool,
                r.wns_ns,
                r.tns_ns,
                r.hpwl_um,
                r.routed_wl_um,
                r.runtime_s,
                r.eval_freq_mhz,
            ]
        )
    norm = result.normalize()
    for tool in ("vivado", "amf", "dsplacer"):
        n = norm[tool]
        rows.append(
            [
                "Normalize",
                tool,
                f"{n['wns']:.3f}x",
                f"{n['tns']:.3f}x",
                f"{n['hpwl']:.3f}x",
                "-",
                f"{n['runtime']:.3f}x",
                "-",
            ]
        )
    emit(
        "table2",
        render_table(headers, rows, title="TABLE II (reproduced): Experiment Result."),
    )

    # ---- shape assertions ----
    by = {(r.benchmark, r.tool): r for r in result.rows}
    suites = sorted({r.benchmark for r in result.rows})
    wins = sum(
        1 for s in suites if by[(s, "dsplacer")].wns_ns > by[(s, "vivado")].wns_ns
    )
    assert wins >= 4, f"DSPlacer beats Vivado WNS on only {wins}/5 suites"
    # Vivado slightly negative by protocol; DSPlacer recovers most of them
    assert all(by[(s, "vivado")].wns_ns < 0 for s in suites)
    recovered = sum(1 for s in suites if by[(s, "dsplacer")].wns_ns >= 0)
    assert recovered >= 3, f"DSPlacer recovers WNS on only {recovered}/5"
    # normalized ordering: dsplacer == 1, vivado worse, amf worst
    assert norm["dsplacer"]["wns"] == 1.0
    assert norm["vivado"]["wns"] > 1.0
    assert norm["amf"]["wns"] > norm["vivado"]["wns"]
    assert norm["amf"]["tns"] > norm["vivado"]["tns"]
    # runtime: vivado fastest, amf and dsplacer pay more (paper: 0.485x / 2.145x)
    assert norm["vivado"]["runtime"] < 1.0
    # HPWL: amf is the wirelength loser (paper: 1.446x vs vivado 0.550x)
    assert norm["amf"]["hpwl"] > norm["vivado"]["hpwl"]
