"""Ablation A4 — ILP inter-column legalization vs greedy fallback.

Eq. (10)'s ILP minimizes total horizontal displacement under column
capacities; the greedy fallback (biggest-first nearest-fit) is the
comparison point. The ILP must never displace more, and the gap widens at
high DSP utilization.
"""

import numpy as np

from repro.core.placement import CascadeLegalizer
from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist


def _desired(netlist, device, seed):
    rng = np.random.default_rng(seed)
    return {
        c.index: tuple(rng.uniform([0, 0], [device.width, device.height]))
        for c in netlist.cells
        if c.ctype.is_dsp
    }


def test_ablation_legalization(benchmark, settings, emit):
    device = get_device(settings)
    rows = []

    def run():
        out = []
        for suite in ("skynet", "skrskr3"):
            netlist = get_netlist(settings, suite)
            desired = _desired(netlist, device, settings.seed)
            ilp = CascadeLegalizer(netlist, device).legalize(desired)
            greedy = CascadeLegalizer(netlist, device, max_ilp_nodes=0).legalize(desired)
            out.append((netlist.name, ilp, greedy))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, ilp, greedy in results:
        rows.append(
            [
                name,
                f"{ilp.total_displacement_um:.0f}",
                f"{greedy.total_displacement_um:.0f}",
                f"{greedy.total_displacement_um / max(ilp.total_displacement_um, 1e-9):.2f}x",
            ]
        )
    emit(
        "ablation_legalization",
        render_table(
            ["Benchmark", "ILP disp (um)", "greedy disp (um)", "greedy/ILP"],
            rows,
            title="Ablation A4: eq. (10) ILP vs greedy inter-column legalization.",
        ),
    )
    for name, ilp, greedy in results:
        assert ilp.used_ilp and not greedy.used_ilp
        assert ilp.total_displacement_um <= greedy.total_displacement_um * 1.001
