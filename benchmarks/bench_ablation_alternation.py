"""Ablation A5 — the Fig. 6 incremental alternation depth.

DSPlacer alternates "place datapath DSPs" with "re-place everything else".
One alternation leaves the rest of the design stranded around the old DSP
skeleton; more alternations let it contract. We sweep outer iterations.
"""

from repro.core import DSPlacer, DSPlacerConfig
from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.router import GlobalRouter
from repro.timing import StaticTimingAnalyzer, max_frequency

SUITE = "skrskr1"
DEPTHS = (1, 2, 3)


def test_ablation_alternation(benchmark, settings, emit):
    device = get_device(settings)
    netlist = get_netlist(settings, SUITE)
    router = GlobalRouter()
    sta = StaticTimingAnalyzer(netlist)

    def sweep():
        out = []
        for depth in DEPTHS:
            placer = DSPlacer(
                device,
                DSPlacerConfig(
                    identification="oracle", outer_iterations=depth, seed=settings.seed
                ),
            )
            res = placer.place(netlist)
            fmax = max_frequency(sta, res.placement, router.route(res.placement))
            out.append((depth, res.placement.hpwl(), fmax, res.total_seconds))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_alternation",
        render_table(
            ["outer iters", "HPWL (um)", "f_max (MHz)", "runtime (s)"],
            [[d, f"{hp:.4g}", f"{f:.0f}", f"{t:.1f}"] for d, hp, f, t in results],
            title="Ablation A5: incremental alternation depth (Fig. 6).",
        ),
    )
    fmax = {d: f for d, _, f, _ in results}
    # alternating at least twice should not lose to a single pass
    assert max(fmax[2], fmax[3]) >= fmax[1] * 0.97


def test_ablation_candidate_window(benchmark, settings, emit):
    """Ablation A3 — MCF candidate-window size K (quality/runtime trade)."""
    device = get_device(settings)
    netlist = get_netlist(settings, "skynet")
    router = GlobalRouter()
    sta = StaticTimingAnalyzer(netlist)

    def sweep():
        out = []
        for k in (8, 48, 128):
            placer = DSPlacer(
                device,
                DSPlacerConfig(
                    identification="oracle",
                    candidate_k=k,
                    assignment_engine="mcf",
                    seed=settings.seed,
                ),
            )
            res = placer.place(netlist)
            fmax = max_frequency(sta, res.placement, router.route(res.placement))
            out.append((k, fmax, res.phase_seconds["dsp_placement"]))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_candidates",
        render_table(
            ["K (candidate sites/DSP)", "f_max (MHz)", "dsp-placement time (s)"],
            [[k, f"{f:.0f}", f"{t:.1f}"] for k, f, t in results],
            title="Ablation A3: MCF candidate-window size.",
        ),
    )
    fmax = {k: f for k, f, _ in results}
    # wider windows can only help quality (same optimal subproblem or better)
    assert fmax[128] >= fmax[8] * 0.95
