"""Router-model study: RUDY estimator vs edge-capacity pattern router.

Not a paper figure — an infrastructure validation bench: the cheap RUDY
model used inside the Table II loop must agree with the more physical
pattern router on congestion geography and relative wirelength, otherwise
the detour-driven timing conclusions would be model artifacts.
"""

import numpy as np

from repro.eval import render_table
from repro.eval.experiments import get_device, get_netlist
from repro.placers import VivadoLikePlacer
from repro.router import GlobalRouter, PatternRouter


def test_router_model_agreement(benchmark, settings, emit):
    device = get_device(settings)
    netlist = get_netlist(settings, "skynet")
    placement = VivadoLikePlacer(seed=settings.seed, device=device).place(netlist)

    def run():
        rudy = GlobalRouter(grid=(24, 24)).route(placement)
        pattern = PatternRouter(grid=(24, 24), n_rounds=2).route(placement)
        return rudy, pattern

    rudy, pattern = benchmark.pedantic(run, rounds=1, iterations=1)
    a, b = rudy.congestion.ravel(), pattern.congestion.ravel()
    keep = (a > 0) | (b > 0)
    corr = float(np.corrcoef(a[keep], b[keep])[0, 1])
    wl_ratio = pattern.total_wirelength / rudy.total_wirelength
    emit(
        "router_models",
        render_table(
            ["model", "total WL (um)", "max congestion", "overflow frac"],
            [
                ["RUDY", f"{rudy.total_wirelength:.4g}", f"{rudy.max_congestion:.2f}", f"{rudy.overflow_frac:.3f}"],
                ["pattern", f"{pattern.total_wirelength:.4g}", f"{pattern.max_congestion:.2f}", f"{pattern.overflow_frac:.3f}"],
                ["congestion-map corr", f"{corr:.3f}", "-", "-"],
            ],
            title="Router models: RUDY estimator vs pattern router.",
        ),
    )
    assert corr > 0.4
    assert 0.7 <= wl_ratio <= 1.6
