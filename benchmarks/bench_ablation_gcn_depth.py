"""Ablation A8 — graph convolutions vs a plain MLP for identification.

The paper attributes the GCN's edge over PADE's SVM to "global centrality
features over local automorphism-based methods" *and* to neighbourhood
aggregation. This ablation separates the two: the same features, trained
with 0 (MLP), 1 and 2 graph-convolution layers, leave-one-out on two folds.
"""

import numpy as np

from repro.eval import render_table
from repro.eval.experiments import get_netlist, get_sample
from repro.ml.train import train_gcn

FOLDS = ("skynet", "skrskr2")


def test_ablation_gcn_depth(benchmark, settings, emit):
    samples = {s: get_sample(settings, s) for s in settings.suites}

    def run():
        accs = {}
        for n_conv in (0, 1, 2):
            fold_accs = []
            for held in FOLDS:
                train = [v for k, v in samples.items() if k != held]
                res = train_gcn(
                    train,
                    [samples[held]],
                    epochs=settings.gcn_epochs,
                    n_conv=n_conv,
                    seed=settings.seed,
                )
                fold_accs.append(res.final_test_accuracy)
            accs[n_conv] = float(np.mean(fold_accs))
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_gcn_depth",
        render_table(
            ["conv layers", "mean held-out accuracy"],
            [[k, f"{v:.1%}"] for k, v in accs.items()],
            title="Ablation A8: graph convolutions vs MLP (same features).",
        ),
    )
    # aggregation should never hurt; the paper's 2-layer config is best-or-tied
    assert accs[2] >= accs[0] - 0.02
