"""GCN tests: normalization, shapes, gradient checks, dropout."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.ml import GCN, GCNConfig, normalized_adjacency, weighted_cross_entropy
from repro.ml.losses import class_weights_from_labels


@pytest.fixture()
def toy():
    rng = np.random.default_rng(3)
    n, d = 10, 4
    a = sp.csr_matrix((rng.random((n, n)) < 0.3).astype(float))
    a = ((a + a.T) > 0).astype(np.float64)
    x = rng.normal(size=(n, d))
    labels = rng.integers(0, 2, n)
    return normalized_adjacency(sp.csr_matrix(a)), x, labels


class TestNormalizedAdjacency:
    def test_symmetric(self, toy):
        a_hat, _, _ = toy
        assert abs(a_hat - a_hat.T).max() < 1e-12

    def test_isolated_node_self_loop(self):
        a = sp.csr_matrix((3, 3))
        a_hat = normalized_adjacency(a)
        assert np.allclose(a_hat.toarray(), np.eye(3))

    def test_row_scale(self):
        # complete graph on 2: A+I = all-ones; deg=2 → entries 1/2
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        a_hat = normalized_adjacency(a).toarray()
        assert np.allclose(a_hat, 0.5)


class TestForward:
    def test_probs_are_distributions(self, toy):
        a_hat, x, _ = toy
        model = GCN(GCNConfig(in_dim=x.shape[1]))
        probs, _ = model.forward(x, a_hat)
        assert probs.shape == (x.shape[0], 2)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_architecture_paper_defaults(self):
        model = GCN(GCNConfig(in_dim=7))
        # 2 conv layers with 32 units, then FC 32→16→2
        assert model.params["conv0_W"].shape == (7, 32)
        assert model.params["conv1_W"].shape == (32, 32)
        assert model.params["fc0_W"].shape == (32, 32)
        assert model.params["fc1_W"].shape == (32, 16)
        assert model.params["fc2_W"].shape == (16, 2)

    def test_mlp_degenerate(self, toy):
        """n_conv=0 yields a pure MLP whose output ignores the graph."""
        a_hat, x, _ = toy
        model = GCN(GCNConfig(in_dim=x.shape[1], n_conv=0))
        assert not any(k.startswith("conv") for k in model.params)
        import scipy.sparse as sp

        p1, _ = model.forward(x, a_hat)
        p2, _ = model.forward(x, sp.eye(x.shape[0], format="csr"))
        assert np.allclose(p1, p2)

    def test_single_conv_layer(self, toy):
        a_hat, x, _ = toy
        model = GCN(GCNConfig(in_dim=x.shape[1], n_conv=1))
        probs, _ = model.forward(x, a_hat)
        assert probs.shape == (x.shape[0], 2)

    def test_deterministic_inference(self, toy):
        a_hat, x, _ = toy
        model = GCN(GCNConfig(in_dim=x.shape[1]))
        p1, _ = model.forward(x, a_hat)
        p2, _ = model.forward(x, a_hat)
        assert np.array_equal(p1, p2)

    def test_dropout_varies_training_forward(self, toy):
        a_hat, x, _ = toy
        model = GCN(GCNConfig(in_dim=x.shape[1], dropout=0.5))
        rng = np.random.default_rng(0)
        p1, _ = model.forward(x, a_hat, training=True, rng=rng)
        p2, _ = model.forward(x, a_hat, training=True, rng=rng)
        assert not np.array_equal(p1, p2)

    def test_state_dict_roundtrip(self, toy):
        a_hat, x, _ = toy
        m1 = GCN(GCNConfig(in_dim=x.shape[1], seed=0))
        m2 = GCN(GCNConfig(in_dim=x.shape[1], seed=9))
        m2.load_state_dict(m1.state_dict())
        p1, _ = m1.forward(x, a_hat)
        p2, _ = m2.forward(x, a_hat)
        assert np.allclose(p1, p2)


class TestBackward:
    def test_gradient_check(self, toy):
        """Analytic gradients match central differences to 1e-5."""
        a_hat, x, labels = toy
        model = GCN(GCNConfig(in_dim=x.shape[1], hidden=6, fc_dims=(5, 4), dropout=0.0, seed=1))
        mask = np.ones(len(labels), dtype=bool)
        cw = class_weights_from_labels(labels)

        probs, cache = model.forward(x, a_hat)
        _, dlog = weighted_cross_entropy(probs, labels, cw, mask)
        grads = model.backward(cache, dlog)

        rng = np.random.default_rng(0)
        eps = 1e-6
        for key, p in model.params.items():
            flat_ids = rng.choice(p.size, size=min(4, p.size), replace=False)
            for fid in flat_ids:
                idx = np.unravel_index(fid, p.shape)
                orig = p[idx]
                p[idx] = orig + eps
                l1, _ = weighted_cross_entropy(
                    model.forward(x, a_hat)[0], labels, cw, mask
                )
                p[idx] = orig - eps
                l2, _ = weighted_cross_entropy(
                    model.forward(x, a_hat)[0], labels, cw, mask
                )
                p[idx] = orig
                num = (l1 - l2) / (2 * eps)
                rel = abs(num - grads[key][idx]) / max(1e-8, abs(num) + abs(grads[key][idx]))
                assert rel < 1e-4, f"{key}{idx}: {num} vs {grads[key][idx]}"

    def test_grads_cover_all_params(self, toy):
        a_hat, x, labels = toy
        model = GCN(GCNConfig(in_dim=x.shape[1]))
        probs, cache = model.forward(x, a_hat)
        _, dlog = weighted_cross_entropy(probs, labels)
        grads = model.backward(cache, dlog)
        assert set(grads) == set(model.params)
        for key in grads:
            assert grads[key].shape == model.params[key].shape


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 20), st.integers(1, 6), st.integers(0, 10_000))
def test_forward_on_random_graphs(n, d, seed):
    """Property: forward never produces NaN and rows always sum to 1."""
    rng = np.random.default_rng(seed)
    a = sp.csr_matrix((rng.random((n, n)) < 0.4).astype(float))
    a_hat = normalized_adjacency(((a + a.T) > 0).astype(np.float64).tocsr())
    x = rng.normal(size=(n, d)) * 10
    model = GCN(GCNConfig(in_dim=d, seed=seed % 7))
    probs, _ = model.forward(x, a_hat)
    assert np.isfinite(probs).all()
    assert np.allclose(probs.sum(axis=1), 1.0)
