"""Aggregate report generator."""

from repro.eval.report import SECTIONS, build_report, collect_results, write_report


class TestReport:
    def test_empty_dir(self, tmp_path):
        text = build_report(tmp_path)
        assert "No artifacts" in text

    def test_collects_known_artifacts(self, tmp_path):
        (tmp_path / "table1.txt").write_text("T1 CONTENT")
        (tmp_path / "unknown.txt").write_text("IGNORED")
        got = collect_results(tmp_path)
        assert got == {"table1": "T1 CONTENT"}

    def test_report_sections_ordered(self, tmp_path):
        (tmp_path / "table2.txt").write_text("T2")
        (tmp_path / "table1.txt").write_text("T1")
        text = build_report(tmp_path)
        assert text.index("Table I —") < text.index("Table II —")
        assert "```\nT1\n```" in text

    def test_write_report(self, tmp_path):
        (tmp_path / "fig8.txt").write_text("F8")
        out = write_report(tmp_path, tmp_path / "report.md")
        assert out.exists()
        assert "F8" in out.read_text()

    def test_all_bench_artifacts_have_sections(self):
        # every bench emit() name must be mapped
        import pathlib
        import re

        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        names = set()
        for f in bench_dir.glob("bench_*.py"):
            names |= set(re.findall(r'emit\(\s*"(\w+)"', f.read_text()))
        assert names <= set(SECTIONS), names - set(SECTIONS)
