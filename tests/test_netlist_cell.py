"""Unit tests for repro.netlist.cell."""

import pytest

from repro.netlist.cell import Cell, CellType


class TestCellType:
    def test_is_dsp(self):
        assert CellType.DSP.is_dsp
        assert not CellType.LUT.is_dsp

    def test_storage_kinds(self):
        assert CellType.FF.is_storage
        assert CellType.BRAM.is_storage
        assert CellType.LUTRAM.is_storage

    def test_non_storage_kinds(self):
        for kind in (CellType.LUT, CellType.CARRY, CellType.DSP, CellType.IO, CellType.PS):
            assert not kind.is_storage

    def test_fixed_kinds(self):
        assert CellType.IO.is_fixed
        assert CellType.PS.is_fixed
        assert not CellType.DSP.is_fixed

    def test_site_kind_mapping(self):
        assert CellType.DSP.site_kind == "DSP"
        assert CellType.BRAM.site_kind == "BRAM"
        assert CellType.LUT.site_kind == "CLB"
        assert CellType.LUTRAM.site_kind == "CLB"
        assert CellType.FF.site_kind == "CLB"
        assert CellType.CARRY.site_kind == "CLB"
        assert CellType.PS.site_kind == "FIXED"


class TestCell:
    def test_basic_construction(self):
        c = Cell(index=0, name="u0", ctype=CellType.LUT)
        assert not c.is_fixed
        assert c.macro_id is None

    def test_fixed_cell_requires_xy(self):
        with pytest.raises(ValueError, match="fixed_xy"):
            Cell(index=0, name="pad", ctype=CellType.IO)

    def test_fixed_cell_with_xy(self):
        c = Cell(index=0, name="pad", ctype=CellType.IO, fixed_xy=(1.0, 2.0))
        assert c.is_fixed
        assert c.fixed_xy == (1.0, 2.0)

    def test_macro_only_for_dsp(self):
        with pytest.raises(ValueError, match="cascade"):
            Cell(index=0, name="u0", ctype=CellType.LUT, macro_id=3)

    def test_dsp_in_macro(self):
        c = Cell(index=0, name="d0", ctype=CellType.DSP, macro_id=3)
        assert c.macro_id == 3
