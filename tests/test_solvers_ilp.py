"""Branch-and-bound ILP vs scipy.optimize.milp and brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.solvers import solve_ilp


class TestSolveILP:
    def test_trivial_min(self):
        res = solve_ilp(np.array([1.0, -1.0]))
        assert res.ok
        assert list(res.x) == [0.0, 1.0]
        assert res.objective == -1.0

    def test_knapsack(self):
        # max 3a+4b+5c s.t. 2a+3b+4c <= 5 (minimized as negatives);
        # optimum is a+b (weight 5, value 7)
        c = np.array([-3.0, -4.0, -5.0])
        res = solve_ilp(c, A_ub=np.array([[2.0, 3.0, 4.0]]), b_ub=np.array([5.0]))
        assert res.ok
        assert res.objective == -7.0

    def test_equality_constraint(self):
        # pick exactly one of two, prefer cheaper
        res = solve_ilp(
            np.array([3.0, 1.0]),
            A_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([1.0]),
        )
        assert res.ok
        assert list(res.x) == [0.0, 1.0]

    def test_infeasible(self):
        res = solve_ilp(
            np.array([1.0]),
            A_eq=np.array([[1.0]]),
            b_eq=np.array([0.5]),  # x must be 0.5 but integer
        )
        assert res.status == "infeasible"

    def test_integer_ranges(self):
        # minimize -x with x integer in [0, 7]
        res = solve_ilp(np.array([-1.0]), bounds=[(0, 7)])
        assert res.ok and res.x[0] == 7.0

    def test_mixed_integrality(self):
        # y continuous: min -x - y, x+y <= 1.5, x binary
        res = solve_ilp(
            np.array([-1.0, -1.0]),
            A_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.5]),
            bounds=[(0, 1), (0, 1)],
            integrality=np.array([True, False]),
        )
        assert res.ok
        assert res.objective == pytest.approx(-1.5)

    def test_fractional_lp_forced_integral(self):
        # LP optimum is x=y=0.5; ILP must pick a vertex
        res = solve_ilp(
            np.array([-1.0, -1.0]),
            A_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.0]),
        )
        assert res.ok
        assert res.objective == pytest.approx(-1.0)
        assert set(np.round(res.x)) <= {0.0, 1.0}

    def test_simplex_engine_agrees(self):
        c = np.array([2.0, -3.0, 1.0])
        a = np.array([[1.0, 2.0, 1.0]])
        b = np.array([2.0])
        r1 = solve_ilp(c, A_ub=a, b_ub=b, engine="highs")
        r2 = solve_ilp(c, A_ub=a, b_ub=b, engine="simplex")
        assert r1.ok and r2.ok
        assert r1.objective == pytest.approx(r2.objective)


def _grid_floats(lo, hi):
    """Finite floats snapped to a 1e-3 grid.

    Raw floats let hypothesis build ill-conditioned instances (e.g. a
    constraint ``1e-6·x ≤ 0``) whose feasibility is tolerance-dependent:
    the exact optimum and HiGHS's tolerance-feasible optimum legitimately
    differ, so solver-agreement properties flake. On a 1e-3 grid every
    constraint is either satisfied exactly (float noise ≲1e-12) or
    violated by ≳1e-3 — unambiguous under every solver's tolerance.
    """
    return st.floats(lo, hi, allow_nan=False).map(lambda v: round(v, 3))


def _brute_binary(c, A_ub, b_ub):
    best = None
    n = len(c)
    for bits in itertools.product((0.0, 1.0), repeat=n):
        x = np.array(bits)
        if A_ub is not None and np.any(A_ub @ x > b_ub + 1e-9):
            continue
        v = float(c @ x)
        if best is None or v < best:
            best = v
    return best


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_ilp_matches_brute_force(data):
    n = data.draw(st.integers(2, 6))
    m = data.draw(st.integers(1, 3))
    c = np.array(data.draw(st.lists(_grid_floats(-5, 5), min_size=n, max_size=n)))
    a = np.array(
        data.draw(
            st.lists(
                st.lists(_grid_floats(-3, 3), min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        )
    )
    b = np.array(data.draw(st.lists(_grid_floats(-1, 6), min_size=m, max_size=m)))
    res = solve_ilp(c, A_ub=a, b_ub=b)
    ref = _brute_binary(c, a, b)
    if ref is None:
        assert res.status == "infeasible"
    else:
        assert res.ok
        assert res.objective == pytest.approx(ref, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_ilp_matches_scipy_milp(data):
    n = data.draw(st.integers(2, 5))
    c = np.array(data.draw(st.lists(_grid_floats(-5, 5), min_size=n, max_size=n)))
    a = np.array(
        data.draw(st.lists(_grid_floats(-3, 3), min_size=n, max_size=n))
    ).reshape(1, n)
    b = np.array([data.draw(_grid_floats(0, 5))])
    res = solve_ilp(c, A_ub=a, b_ub=b)
    ref = milp(
        c,
        constraints=[LinearConstraint(a, -np.inf, b)],
        bounds=Bounds(0, 1),
        integrality=np.ones(n),
    )
    assert res.ok == (ref.status == 0)
    if res.ok:
        assert res.objective == pytest.approx(float(ref.fun), abs=1e-6)
