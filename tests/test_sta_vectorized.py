"""Vectorized-vs-reference STA equivalence + cascade-adjacency regression.

The level-batched engine (``method="vectorized"``) must reproduce the
per-cell loop oracle (``method="reference"``) to 1e-9 on every report
field, across random netlists (including combinational cycles), random
placements, detoured routing, and skewed/skew-free delay models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import small_device
from repro.netlist import CellType, Netlist
from repro.placers import Placement
from repro.router.global_router import RoutingResult
from repro.timing import DelayModel, StaticTimingAnalyzer

DEV = small_device(n_dsp_cols=3, dsp_rows=12)


@st.composite
def sta_case(draw):
    """Random netlist + placement + optional routing/skew/cascades."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n_seq = draw(st.integers(1, 8))
    n_comb = draw(st.integers(0, 12))
    n_dsp = draw(st.integers(0, 4))
    nl = Netlist("h")
    nl.target_freq_mhz = 200.0
    seq_kinds = [CellType.FF, CellType.BRAM]
    cells = [nl.add_cell(f"s{i}", seq_kinds[i % 2]) for i in range(n_seq)]
    cells.append(nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0)))
    cells += [nl.add_cell(f"c{i}", CellType.LUT) for i in range(n_comb)]
    dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(n_dsp)]
    if n_dsp >= 2:
        nl.add_macro(dsps)
    cells += dsps
    n = len(cells)
    n_nets = draw(st.integers(1, 2 * n))
    for k in range(n_nets):
        driver = int(rng.integers(0, n))
        fanout = int(rng.integers(1, 4))
        sinks = [int(s) for s in rng.integers(0, n, fanout) if int(s) != driver]
        if not sinks:
            continue
        nl.add_net(f"n{k}", driver, sinks)
    for i in range(1, n_dsp):  # cascade nets along the macro chain
        nl.add_net(f"casc{i}", dsps[i - 1], [dsps[i]])

    place = Placement(nl, DEV)
    place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (n, 2))
    n_sites = DEV.site_col("DSP").size
    if n_sites and n_dsp:
        for i, d in enumerate(dsps):
            if draw(st.booleans()):
                place.site[d] = int(rng.integers(0, n_sites))
    routing = None
    if draw(st.booleans()) and nl.nets:
        det = rng.uniform(1.0, 2.5, len(nl.nets))
        routing = RoutingResult(
            net_detour=det,
            net_routed_len=det,
            congestion=np.zeros((4, 4)),
            total_wirelength=1.0,
            overflow_frac=0.0,
        )
    skew = draw(st.sampled_from([0.0, 0.03, 0.1]))
    return nl, place, routing, DelayModel(clock_skew_per_region=skew)


def _assert_reports_match(a, b):
    assert a.wns_ns == pytest.approx(b.wns_ns, abs=1e-9)
    assert a.tns_ns == pytest.approx(b.tns_ns, abs=1e-9)
    assert a.n_endpoints == b.n_endpoints
    assert a.n_failing == b.n_failing
    np.testing.assert_allclose(a.endpoint_slack, b.endpoint_slack, rtol=0, atol=1e-9)
    assert a.critical_path == b.critical_path
    if a.endpoint_cells is None:
        assert b.endpoint_cells is None
    else:
        np.testing.assert_array_equal(a.endpoint_cells, b.endpoint_cells)
        np.testing.assert_array_equal(a._end_pred, b._end_pred)
    np.testing.assert_array_equal(a._best_pred, b._best_pred)
    if a.cell_output_slack is not None:
        np.testing.assert_allclose(
            a.cell_output_slack, b.cell_output_slack, rtol=0, atol=1e-9
        )


class TestVectorizedEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(sta_case(), st.booleans())
    def test_matches_reference(self, case, with_slacks):
        nl, place, routing, dm = case
        ref = StaticTimingAnalyzer(nl, dm, method="reference")
        vec = StaticTimingAnalyzer(nl, dm, method="vectorized")
        a = ref.analyze(place, routing, with_slacks=with_slacks)
        b = vec.analyze(place, routing, with_slacks=with_slacks)
        _assert_reports_match(a, b)

    @settings(max_examples=20, deadline=None)
    @given(sta_case())
    def test_path_of_matches(self, case):
        nl, place, routing, dm = case
        ref = StaticTimingAnalyzer(nl, dm, method="reference")
        a = ref.analyze(place, routing)
        b = StaticTimingAnalyzer(nl, dm, method="vectorized").analyze(place, routing)
        for k in range(min(3, a.n_endpoints)):
            assert a.path_of(k) == b.path_of(k)

    def test_generated_suite_matches(self, mini_accel):
        place = Placement(mini_accel, DEV)
        rng = np.random.default_rng(7)
        place.xy[:] = rng.uniform(0.0, [DEV.width, DEV.height], (len(mini_accel), 2))
        a = StaticTimingAnalyzer(mini_accel, method="reference").analyze(
            place, with_slacks=True
        )
        b = StaticTimingAnalyzer(mini_accel, method="vectorized").analyze(
            place, with_slacks=True
        )
        _assert_reports_match(a, b)

    def test_unknown_method_rejected(self, mini_accel):
        with pytest.raises(ValueError, match="method"):
            StaticTimingAnalyzer(mini_accel, method="banana")


def _cascade_netlist():
    nl = Netlist("casc")
    nl.target_freq_mhz = 200.0
    dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(4)]
    nl.add_macro(dsps)
    for i in range(1, 4):
        nl.add_net(f"c{i}", dsps[i - 1], [dsps[i]])
    return nl, dsps


class TestCascadeAdjacency:
    """Regression: cascade adjacency used to re-derive the device's DSP
    column array via ``site_col("DSP")`` twice per cascade edge per pass."""

    def _placed(self):
        nl, dsps = _cascade_netlist()
        place = Placement(nl, DEV)
        col = DEV.site_col("DSP")
        # d0→d1 adjacent (consecutive sites, same column); d1→d2 same column
        # but not consecutive; d2→d3 crosses columns; d3 unplaced for one edge
        first_col = np.flatnonzero(col == col[0])
        other_col = np.flatnonzero(col != col[0])
        place.site[dsps[0]] = int(first_col[0])
        place.site[dsps[1]] = int(first_col[1])
        place.site[dsps[2]] = int(first_col[3])
        place.site[dsps[3]] = int(other_col[0])
        return nl, place

    def test_adjacency_matches_reference_rule(self):
        nl, place = self._placed()
        sta = StaticTimingAnalyzer(nl, method="vectorized")
        got = sta.cascade_adjacent(place)
        col = place.device.site_col("DSP")
        expect = []
        for e in sta._casc_idx:
            s = int(place.site[sta._e_src[e]])
            d = int(place.site[sta._e_dst[e]])
            expect.append(s >= 0 and d == s + 1 and col[s] == col[d])
        assert got.tolist() == expect
        assert got.tolist() == [True, False, False]

    def test_site_col_fetched_once_per_analysis(self, monkeypatch):
        nl, place = self._placed()
        sta = StaticTimingAnalyzer(nl, method="vectorized")
        calls = {"n": 0}
        orig = type(place.device).site_col

        def counting(self, kind):
            calls["n"] += 1
            return orig(self, kind)

        monkeypatch.setattr(type(place.device), "site_col", counting)
        sta.analyze(place, with_slacks=True)
        # forward + endpoint + backward passes share one precomputed
        # adjacency; the reference did 2 lookups × cascade edge × pass
        assert calls["n"] <= 2

    def test_adjacent_cascade_is_cheaper(self):
        nl, place = self._placed()
        rep = StaticTimingAnalyzer(nl).analyze(place, period_ns=10.0)
        ref = StaticTimingAnalyzer(nl, method="reference").analyze(place, period_ns=10.0)
        assert rep.wns_ns == pytest.approx(ref.wns_ns, abs=1e-9)


class TestCyclicBacktraceRegression:
    """The critical-path backtrace (analyze() and ``path_of``) used to spin
    forever when ``best_pred`` formed a cycle among combinational-cycle
    cells on the worst path; it now stops at the first revisited cell."""

    def _cyclic_case(self):
        nl = Netlist("cyc")
        nl.target_freq_mhz = 200.0
        f0 = nl.add_cell("f0", CellType.FF)
        a = nl.add_cell("a", CellType.LUT)
        b = nl.add_cell("b", CellType.LUT)
        f1 = nl.add_cell("f1", CellType.FF)
        nl.add_net("launch", f0, [a])
        nl.add_net("ab", a, [b])
        nl.add_net("ba", b, [a])
        nl.add_net("capture", b, [f1])
        place = Placement(nl, DEV)
        # b is far from a, so when a is relaxed first the b->a edge (from
        # b's zero-init arrival) beats the short f0->a edge and
        # best_pred[a] == b while best_pred[b] == a
        place.xy[:] = [(0.0, 0.0), (0.0, 1.0), (800.0, 440.0), (801.0, 440.0)]
        return nl, place

    @pytest.mark.parametrize("method", ["reference", "vectorized"])
    def test_analyze_and_path_of_terminate(self, method):
        nl, place = self._cyclic_case()
        sta = StaticTimingAnalyzer(nl, method=method)
        assert sta.has_comb_cycles
        rep = sta.analyze(place, with_slacks=True)
        assert len(rep.critical_path) <= len(nl.cells)
        assert len(set(rep.critical_path)) == len(rep.critical_path)
        for k in range(rep.n_endpoints):
            p = rep.path_of(k)
            assert len(p) <= len(nl.cells)

    def test_cycle_actually_forms(self):
        nl, place = self._cyclic_case()
        rep = StaticTimingAnalyzer(nl, method="reference").analyze(place)
        a, b = 1, 2
        assert rep._best_pred[a] == b and rep._best_pred[b] == a
