"""Unit tests for netlist graph views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import CellType, Netlist, connectivity_matrix, netlist_to_digraph, netlist_to_graph
from repro.netlist.graph import _connectivity_matrix_loop


@pytest.fixture()
def nl():
    n = Netlist("g")
    cells = [n.add_cell(f"c{i}", CellType.LUT) for i in range(5)]
    n.add_net("a", cells[0], [cells[1], cells[2]], weight=2.0)
    n.add_net("b", cells[1], [cells[3]])
    n.add_net("c", cells[3], [cells[0]])  # cycle 0→1→3→0
    n.add_net("d", cells[2], [cells[4]])
    return n


class TestDigraph:
    def test_nodes_match_cells(self, nl):
        g = netlist_to_digraph(nl)
        assert set(g.nodes) == {0, 1, 2, 3, 4}

    def test_edge_direction(self, nl):
        g = netlist_to_digraph(nl)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_edge_weight_fanout_normalized(self, nl):
        g = netlist_to_digraph(nl)
        assert g[0][1]["weight"] == pytest.approx(1.0)  # 2.0 weight / 2 sinks

    def test_parallel_edges_accumulate(self):
        n = Netlist("p")
        a = n.add_cell("a", CellType.LUT)
        b = n.add_cell("b", CellType.LUT)
        n.add_net("n1", a, [b])
        n.add_net("n2", a, [b])
        g = netlist_to_digraph(n)
        assert g[a][b]["weight"] == pytest.approx(2.0)

    def test_node_ctype_attr(self, nl):
        g = netlist_to_digraph(nl)
        assert g.nodes[0]["ctype"] is CellType.LUT


class TestUndirected:
    def test_undirected_has_both_directions(self, nl):
        g = netlist_to_graph(nl)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)


class TestConnectivityMatrix:
    def test_symmetric(self, nl):
        w = connectivity_matrix(nl)
        assert abs(w - w.T).max() < 1e-12

    def test_zero_diagonal(self, nl):
        w = connectivity_matrix(nl)
        assert np.all(w.diagonal() == 0)

    def test_clique_model_weight(self, nl):
        # net "a": degree 3 clique, weight 2.0 / (3-1) = 1.0 per pair
        w = connectivity_matrix(nl)
        assert w[1, 2] == pytest.approx(1.0)

    def test_star_model_for_wide_nets(self):
        n = Netlist("wide")
        drv = n.add_cell("drv", CellType.LUT)
        sinks = [n.add_cell(f"s{i}", CellType.FF) for i in range(40)]
        n.add_net("wide", drv, sinks)
        w = connectivity_matrix(n, max_clique_degree=16)
        # star: sink-sink entries are zero, driver-sink positive
        assert w[sinks[0], sinks[1]] == 0.0
        assert w[drv, sinks[0]] > 0

    def test_unweighted_option(self, nl):
        w = connectivity_matrix(nl, use_net_weights=False)
        assert w[1, 2] == pytest.approx(0.5)  # 1.0 / (3-1)

    def test_reads_weights_fresh(self, nl):
        """In-place net reweighting (timing-driven flow) must be visible on
        the next call — weights are never cached in NetlistCSR."""
        before = connectivity_matrix(nl)[0, 1]
        nl.nets[0].weight *= 4.0
        assert connectivity_matrix(nl)[0, 1] == pytest.approx(4.0 * before)


@st.composite
def _rand_netlist(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    nl = Netlist("h")
    for i in range(n):
        nl.add_cell(f"c{i}", CellType.LUT if i % 2 else CellType.FF)
    n_nets = draw(st.integers(min_value=1, max_value=2 * n))
    for j in range(n_nets):
        driver = draw(st.integers(min_value=0, max_value=n - 1))
        sinks = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1).filter(lambda s: s != driver),
                min_size=1,
                max_size=n - 1,
                unique=True,
            )
        )
        weight = draw(st.floats(min_value=0.125, max_value=8.0, allow_nan=False))
        nl.add_net(f"n{j}", driver, sinks, weight=round(weight * 8) / 8)
    return nl


class TestVectorizedAgainstLoop:
    @settings(max_examples=50, deadline=None)
    @given(
        _rand_netlist(),
        st.sampled_from([1, 2, 4, 16]),
        st.booleans(),
    )
    def test_matches_loop_reference(self, nl, max_clique_degree, use_net_weights):
        """Vectorized builder ≡ the original per-net loop, including wide
        nets falling back to the star model and duplicate pin pairs."""
        fast = connectivity_matrix(
            nl, max_clique_degree=max_clique_degree, use_net_weights=use_net_weights
        )
        ref = _connectivity_matrix_loop(
            nl, max_clique_degree=max_clique_degree, use_net_weights=use_net_weights
        )
        assert abs(fast - ref).max() < 1e-12
