"""Dense simplex vs scipy linprog (HiGHS)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.solvers import solve_lp_simplex


class TestSimplex:
    def test_basic_lp(self):
        # min -x-y st x+y<=1, x,y>=0 → -1
        res = solve_lp_simplex(
            np.array([-1.0, -1.0]), A_ub=np.array([[1.0, 1.0]]), b_ub=np.array([1.0])
        )
        assert res.ok
        assert res.objective == pytest.approx(-1.0)

    def test_equality(self):
        res = solve_lp_simplex(
            np.array([1.0, 2.0]), A_eq=np.array([[1.0, 1.0]]), b_eq=np.array([3.0])
        )
        assert res.ok
        assert res.objective == pytest.approx(3.0)
        assert res.x[0] == pytest.approx(3.0)

    def test_infeasible(self):
        res = solve_lp_simplex(
            np.array([1.0]),
            A_ub=np.array([[1.0]]),
            b_ub=np.array([-1.0]),  # x <= -1 with x >= 0
        )
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = solve_lp_simplex(np.array([-1.0]))  # min -x, x >= 0, no upper bound
        assert res.status == "unbounded"

    def test_bounds_shifted(self):
        res = solve_lp_simplex(np.array([1.0]), bounds=[(2.0, 5.0)])
        assert res.ok
        assert res.x[0] == pytest.approx(2.0)

    def test_upper_bounds(self):
        res = solve_lp_simplex(np.array([-1.0]), bounds=[(0.0, 3.5)])
        assert res.ok
        assert res.x[0] == pytest.approx(3.5)

    def test_no_constraints_with_costs(self):
        res = solve_lp_simplex(np.array([1.0, -2.0]), bounds=[(0, 1), (0, 1)])
        assert res.ok
        assert list(res.x) == [0.0, 1.0]

    def test_free_below_rejected(self):
        with pytest.raises(ValueError):
            solve_lp_simplex(np.array([1.0]), bounds=[(-math.inf, 1.0)])


def _grid(lo: float, hi: float):
    # Coefficients on a coarse 1/8 grid: epsilon-scale values (1e-10-ish)
    # make feasibility itself tolerance-dependent and the HiGHS comparison
    # meaningless — both solvers are "right" within their own tolerances.
    return st.floats(lo, hi, allow_nan=False).map(lambda x: round(x * 8) / 8)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_simplex_matches_highs(data):
    n = data.draw(st.integers(1, 5))
    m = data.draw(st.integers(1, 4))
    c = np.array(data.draw(st.lists(_grid(-5, 5), min_size=n, max_size=n)))
    a = np.array(
        data.draw(
            st.lists(
                st.lists(_grid(-3, 3), min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        )
    )
    b = np.array(data.draw(st.lists(_grid(-2, 6), min_size=m, max_size=m)))
    bounds = [(0.0, 4.0)] * n  # finite box keeps both solvers bounded
    mine = solve_lp_simplex(c, A_ub=a, b_ub=b, bounds=bounds)
    ref = linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
    assert mine.ok == (ref.status == 0)
    if mine.ok:
        assert mine.objective == pytest.approx(float(ref.fun), abs=1e-6)
        # returned point must be feasible within the solver's tolerance
        # (phase-1 accepts residuals below 1e-7, matching HiGHS defaults)
        assert np.all(a @ mine.x <= b + 1e-6)
        assert np.all(mine.x >= -1e-6) and np.all(mine.x <= 4.0 + 1e-6)
