"""Unit tests for the Netlist container."""

import pytest

from repro.netlist import CellType, Netlist


@pytest.fixture()
def nl():
    n = Netlist("t")
    a = n.add_cell("a", CellType.DSP)
    b = n.add_cell("b", CellType.DSP)
    c = n.add_cell("c", CellType.LUT)
    d = n.add_cell("d", CellType.FF)
    n.add_net("n1", a, [b, c])
    n.add_net("n2", c, [d])
    return n


class TestConstruction:
    def test_indices_are_dense(self, nl):
        assert [c.index for c in nl.cells] == [0, 1, 2, 3]

    def test_duplicate_cell_name_rejected(self, nl):
        with pytest.raises(ValueError, match="duplicate"):
            nl.add_cell("a", CellType.LUT)

    def test_net_with_unknown_cell_rejected(self, nl):
        with pytest.raises(IndexError):
            nl.add_net("bad", 0, [99])

    def test_net_sink_dedup(self, nl):
        nid = nl.add_net("dup", 0, [3, 3, 2])
        assert nl.nets[nid].sinks == (3, 2)

    def test_net_dropping_driver_from_sinks(self, nl):
        nid = nl.add_net("selfy", 0, [0, 3])
        assert nl.nets[nid].sinks == (3,)

    def test_net_only_driver_rejected(self, nl):
        with pytest.raises(ValueError, match="no sinks"):
            nl.add_net("empty", 0, [0])

    def test_cell_by_name(self, nl):
        assert nl.cell_by_name("c").ctype is CellType.LUT

    def test_len(self, nl):
        assert len(nl) == 4


class TestMacros:
    def test_add_macro_sets_membership(self, nl):
        mid = nl.add_macro([0, 1])
        assert nl.cells[0].macro_id == mid
        assert nl.cells[1].macro_id == mid

    def test_macro_non_dsp_rejected(self, nl):
        with pytest.raises(ValueError, match="not a DSP"):
            nl.add_macro([0, 2])

    def test_macro_double_membership_rejected(self, nl):
        nl.add_macro([0, 1])
        with pytest.raises(ValueError, match="already belongs"):
            nl.add_macro([1, 0])

    def test_cascade_pairs(self, nl):
        nl.add_macro([0, 1])
        assert nl.cascade_pairs() == [(0, 1)]


class TestQueries:
    def test_dsp_indices(self, nl):
        assert nl.dsp_indices() == [0, 1]

    def test_cells_of_type(self, nl):
        assert [c.name for c in nl.cells_of_type(CellType.LUT)] == ["c"]

    def test_movable_indices_excludes_fixed(self):
        n = Netlist("t")
        n.add_cell("ps", CellType.PS, fixed_xy=(0.0, 0.0))
        n.add_cell("l", CellType.LUT)
        assert n.movable_indices() == [1]

    def test_nets_of_cell(self, nl):
        incident = nl.nets_of_cell()
        assert incident[2] == [0, 1]  # c is a sink of n1 and driver of n2

    def test_iter_edges_fanout_normalized(self, nl):
        edges = list(nl.iter_edges())
        n1_edges = [e for e in edges if e[0] == 0]
        assert len(n1_edges) == 2
        assert all(abs(w - 0.5) < 1e-12 for _, _, w in n1_edges)


class TestStatsValidate:
    def test_stats_counts(self, nl):
        st = nl.stats(dsp_capacity=100)
        assert st.n_dsp == 2
        assert st.n_lut == 1
        assert st.n_ff == 1
        assert st.n_nets == 2
        assert st.dsp_pct == pytest.approx(0.02)

    def test_stats_without_capacity(self, nl):
        assert nl.stats().dsp_pct is None

    def test_n_cells(self, nl):
        assert nl.stats().n_cells == 4

    def test_validate_passes(self, nl):
        nl.add_macro([0, 1])
        nl.validate()
