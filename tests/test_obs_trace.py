"""Tracing spans: nesting, fake-clock timing, disabled fast path."""

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.trace import NULL_SPAN


class FakeClock:
    """Deterministic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.t
        self.t += self.step
        return t


class TestDisabled:
    def test_span_is_null_outside_observe(self):
        assert trace.span("anything") is NULL_SPAN
        with trace.span("x") as sp:
            sp.add("counter")
            sp.set(attr=1)  # all no-ops
        assert trace.current() is None
        assert not trace.enabled()

    def test_no_state_leaks_from_null_spans(self):
        with trace.span("a"):
            with trace.span("b"):
                pass
        with obs.observe() as ob:
            pass
        assert ob.tracer.roots == []


class TestNesting:
    def test_children_attach_to_parent(self):
        with obs.observe() as ob:
            with trace.span("outer"):
                with trace.span("inner.a"):
                    pass
                with trace.span("inner.b"):
                    with trace.span("leaf"):
                        pass
        (root,) = ob.tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert [c.name for c in root.children[1].children] == ["leaf"]

    def test_sequential_roots(self):
        with obs.observe() as ob:
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        assert [r.name for r in ob.tracer.roots] == ["first", "second"]

    def test_current_tracks_innermost(self):
        with obs.observe():
            assert trace.current() is None
            with trace.span("a") as sa:
                assert trace.current() is sa
                with trace.span("b") as sb:
                    assert trace.current() is sb
                assert trace.current() is sa
            assert trace.current() is None

    def test_find_and_iter(self):
        with obs.observe() as ob:
            with trace.span("a"):
                with trace.span("b"):
                    pass
        assert [s.name for s in ob.tracer.find("b")] == ["b"]
        assert ob.tracer.find("zzz") == []
        assert {s.name for s in ob.tracer.iter_spans()} == {"a", "b"}


class TestTiming:
    def test_wall_time_is_deterministic_under_fake_clock(self):
        wall = FakeClock(step=1.0)
        cpu = FakeClock(step=0.25)
        with obs.observe(clock=wall, cpu_clock=cpu) as ob:
            with trace.span("timed"):
                pass
        (span,) = ob.tracer.roots
        # enter and exit each read the clock once
        assert span.wall_s == pytest.approx(1.0)
        assert span.cpu_s == pytest.approx(0.25)

    def test_nested_child_time_within_parent(self):
        wall = FakeClock(step=1.0)
        with obs.observe(clock=wall, cpu_clock=FakeClock(0.0)) as ob:
            with trace.span("parent"):
                with trace.span("child"):
                    pass
        (parent,) = ob.tracer.roots
        (child,) = parent.children
        assert parent.wall_s == pytest.approx(3.0)  # reads at t=0 and t=3
        assert child.wall_s == pytest.approx(1.0)
        assert child.wall_s <= parent.wall_s


class TestSpanData:
    def test_attrs_counters_and_to_dict(self):
        with obs.observe() as ob:
            with trace.span("s", kind="demo") as sp:
                sp.add("events")
                sp.add("events", 2)
                sp.set(result="ok", value=3)
        doc = ob.tracer.to_dicts()[0]
        assert doc["name"] == "s"
        assert doc["attrs"]["kind"] == "demo"
        assert doc["attrs"]["result"] == "ok"
        assert doc["attrs"]["value"] == 3
        assert doc["counters"]["events"] == 3
        assert doc.get("children", []) == []
        assert doc["wall_s"] >= 0.0

    def test_exception_marks_error_and_propagates(self):
        with obs.observe() as ob:
            with pytest.raises(ValueError):
                with trace.span("failing"):
                    raise ValueError("boom")
        (span,) = ob.tracer.roots
        assert span.attrs["error"] == "ValueError"

    def test_attrs_are_json_coerced(self):
        import numpy as np

        with obs.observe() as ob:
            with trace.span("s", count=np.int64(3), ratio=np.float64(0.5)):
                pass
        doc = ob.tracer.to_dicts()[0]
        assert isinstance(doc["attrs"]["count"], int)
        assert isinstance(doc["attrs"]["ratio"], float)


class TestObserveNesting:
    def test_innermost_observation_wins(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                with trace.span("x"):
                    pass
            assert inner.tracer.roots
            assert not outer.tracer.roots
            assert obs.active() is outer
        assert obs.active() is None
