"""BLE packing tests."""

import numpy as np
import pytest

from repro.netlist import CellType, Netlist
from repro.placers import Placement, VivadoLikePlacer
from repro.placers.packing import (
    Packing,
    apply_packing,
    pack_lut_ff_pairs,
    packing_quality,
)


@pytest.fixture()
def packable():
    nl = Netlist("pack")
    pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    l0 = nl.add_cell("l0", CellType.LUT)  # single-fanout: packs
    f0 = nl.add_cell("f0", CellType.FF)
    l1 = nl.add_cell("l1", CellType.LUT)  # multi-fanout: does not pack
    f1 = nl.add_cell("f1", CellType.FF)
    f2 = nl.add_cell("f2", CellType.FF)  # FF driven by a BRAM: no pack
    br = nl.add_cell("br", CellType.BRAM)
    nl.add_net("seed", pad, [l0, l1])
    nl.add_net("a", l0, [f0])
    nl.add_net("b", l1, [f1, br])
    nl.add_net("c", br, [f2])
    return nl, l0, f0, l1, f1, f2


class TestPackLutFF:
    def test_single_fanout_pair_found(self, packable):
        nl, l0, f0, *_ = packable
        packing = pack_lut_ff_pairs(nl)
        assert (l0, f0) in packing.pairs

    def test_multi_fanout_lut_not_packed(self, packable):
        nl, _, _, l1, f1, _ = packable
        packing = pack_lut_ff_pairs(nl)
        assert all(l1 != a for a, _b in packing.pairs)

    def test_non_lut_driver_not_packed(self, packable):
        nl, *_, f2 = packable
        packing = pack_lut_ff_pairs(nl)
        assert all(f2 != b for _a, b in packing.pairs)

    def test_packed_cells(self, packable):
        nl, l0, f0, *_ = packable
        packing = pack_lut_ff_pairs(nl)
        assert {l0, f0} <= packing.packed_cells()

    def test_generated_design_has_many_pairs(self, mini_accel):
        packing = pack_lut_ff_pairs(mini_accel)
        # filler clusters are exactly LUT→FF chains, so most should pack
        assert packing.n_pairs > len(mini_accel.cells_of_type(CellType.FF)) * 0.3


class TestApplyPacking:
    def test_pairs_collapse(self, packable, small_dev):
        nl, l0, f0, *_ = packable
        p = Placement(nl, small_dev)
        p.xy[l0] = (10.0, 10.0)
        p.xy[f0] = (50.0, 90.0)
        apply_packing(p, pack_lut_ff_pairs(nl))
        assert np.allclose(p.xy[l0], p.xy[f0])
        assert np.allclose(p.xy[l0], (30.0, 50.0))

    def test_quality_metric(self, packable, small_dev):
        nl, l0, f0, *_ = packable
        p = Placement(nl, small_dev)
        p.xy[l0] = (0.0, 0.0)
        p.xy[f0] = (30.0, 40.0)
        packing = Packing(pairs=((l0, f0),))
        assert packing_quality(p, packing) == pytest.approx(70.0)
        assert packing_quality(p, Packing(pairs=())) == 0.0


class TestPackedFlow:
    def test_packed_flow_legal(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, pack_ble=True, device=small_dev).place(mini_accel)
        assert p.is_legal()

    def test_packing_reduces_pair_distance(self, mini_accel, small_dev):
        packing = pack_lut_ff_pairs(mini_accel)
        loose = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        packed = VivadoLikePlacer(seed=0, pack_ble=True, device=small_dev).place(mini_accel)
        assert packing_quality(packed, packing) <= packing_quality(loose, packing)
