"""SVM and GCN training-harness tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ml import LinearSVM, normalized_adjacency
from repro.ml.train import GraphSample, leave_one_out, train_gcn


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(0)
    n = 100
    labels = (np.arange(n) >= n // 2).astype(int)
    x = np.column_stack([labels * 2.0 + rng.normal(scale=0.2, size=n), rng.normal(size=n)])
    return x, labels


class TestLinearSVM:
    def test_fits_separable(self, separable):
        x, y = separable
        svm = LinearSVM(epochs=200).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.97

    def test_decision_sign_matches_predict(self, separable):
        x, y = separable
        svm = LinearSVM(epochs=100).fit(x, y)
        assert np.array_equal(svm.predict(x), (svm.decision_function(x) >= 0).astype(int))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((3, 2)), np.zeros(4))

    def test_class_weighting_helps_minority_recall(self):
        rng = np.random.default_rng(1)
        n_maj, n_min = 190, 10
        x = np.vstack(
            [
                rng.normal(0.0, 1.0, (n_maj, 1)),
                rng.normal(1.2, 1.0, (n_min, 1)),  # overlapping minority
            ]
        )
        y = np.array([0] * n_maj + [1] * n_min)
        weighted = LinearSVM(epochs=300, class_weighted=True).fit(x, y)
        unweighted = LinearSVM(epochs=300, class_weighted=False).fit(x, y)
        rec_w = (weighted.predict(x[y == 1]) == 1).mean()
        rec_u = (unweighted.predict(x[y == 1]) == 1).mean()
        assert rec_w >= rec_u


def _community_sample(seed, n=80, name="toy"):
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) >= n // 2).astype(int)
    p = np.where(labels[:, None] == labels[None, :], 0.15, 0.01)
    a = (rng.random((n, n)) < p).astype(float)
    a = ((a + a.T) > 0).astype(np.float64)
    np.fill_diagonal(a, 0)
    x = np.column_stack([labels + rng.normal(size=n), rng.normal(size=n)])
    return GraphSample(
        a_hat=normalized_adjacency(sp.csr_matrix(a)),
        x=x,
        labels=labels,
        mask=np.ones(n, dtype=bool),
        name=name,
    )


class TestTrainGCN:
    def test_learns_community_task(self):
        s = _community_sample(0)
        res = train_gcn([s], [s], epochs=100, seed=0)
        assert res.final_test_accuracy > 0.9

    def test_loss_decreases(self):
        s = _community_sample(1)
        res = train_gcn([s], epochs=60, seed=0)
        assert res.loss_curve[-1] < res.loss_curve[0]

    def test_curves_recorded(self):
        s = _community_sample(2)
        res = train_gcn([s], [s], epochs=10, seed=0)
        assert len(res.train_curve) == 10
        assert len(res.test_curve) == 10

    def test_predict_applies_normalization(self):
        s = _community_sample(3)
        res = train_gcn([s], epochs=50, seed=0)
        pred = res.predict(s)
        assert (pred[s.mask] == s.labels[s.mask]).mean() > 0.85

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            train_gcn([], epochs=1)


class TestLeaveOneOut:
    def test_folds_cover_all(self):
        samples = [_community_sample(i, name=f"g{i}") for i in range(3)]
        res = leave_one_out(samples, epochs=15)
        assert set(res) == {"g0", "g1", "g2"}

    def test_needs_two_graphs(self):
        with pytest.raises(ValueError):
            leave_one_out([_community_sample(0)], epochs=1)

    def test_generalizes_across_graphs(self):
        samples = [_community_sample(i, name=f"g{i}") for i in range(4)]
        res = leave_one_out(samples, epochs=80)
        accs = [r.final_test_accuracy for r in res.values()]
        assert np.mean(accs) > 0.8
