"""Structural Verilog exporter."""

import re

import pytest

from repro.netlist.verilog import netlist_to_verilog, save_verilog
from repro.placers import VivadoLikePlacer


class TestVerilogExport:
    def test_module_wrapper(self, tiny_netlist):
        v = netlist_to_verilog(tiny_netlist)
        assert v.splitlines()[1].startswith("module tiny")
        assert v.rstrip().endswith("endmodule")

    def test_one_instance_per_cell(self, tiny_netlist):
        v = netlist_to_verilog(tiny_netlist)
        n_inst = len(re.findall(r"\b(LUT6|FDRE|DSP48E2|RAMB36E2|RAM64M8|IOBUF|PS8|CARRY8)\b", v))
        assert n_inst == len(tiny_netlist.cells)

    def test_one_wire_per_net(self, tiny_netlist):
        v = netlist_to_verilog(tiny_netlist)
        assert v.count("  wire ") == len(tiny_netlist.nets)

    def test_sequential_cells_get_clock(self, tiny_netlist):
        v = netlist_to_verilog(tiny_netlist)
        for line in v.splitlines():
            if "FDRE" in line or "DSP48E2" in line or "RAMB36E2" in line:
                assert ".CLK(clk)" in line

    def test_hierarchical_names_escaped(self, mini_accel):
        v = netlist_to_verilog(mini_accel)
        assert "\\u_pu0/pe0/dsp_0 " in v

    def test_loc_attributes_with_placement(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        v = netlist_to_verilog(mini_accel, placement=p)
        locs = re.findall(r'\(\* LOC = "DSP48E2_X(\d+)Y(\d+)" \*\)', v)
        assert len(locs) == len(mini_accel.dsp_indices())
        # LOCs must be distinct legal sites
        assert len(set(locs)) == len(locs)

    def test_save(self, tiny_netlist, tmp_path):
        out = tmp_path / "t.v"
        save_verilog(tiny_netlist, out)
        assert out.read_text().startswith("// generated")

    def test_module_name_sanitized(self, mini_accel):
        v = netlist_to_verilog(mini_accel)  # name contains '@' and '.'
        header = v.splitlines()[1]
        assert "@" not in header and "." not in header
