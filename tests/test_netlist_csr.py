"""NetlistCSR shared graph context: construction, caching, invalidation."""

import numpy as np
import pytest

from repro.netlist import CellType, Netlist, build_csr, get_csr, netlist_to_digraph


@pytest.fixture()
def nl():
    n = Netlist("ctx")
    cells = [n.add_cell(f"c{i}", CellType.LUT) for i in range(4)]
    d = n.add_cell("d", CellType.DSP)
    f = n.add_cell("f", CellType.FF)
    n.add_net("a", cells[0], [cells[1], cells[2]])
    n.add_net("b", cells[1], [cells[3]])
    n.add_net("b2", cells[1], [cells[3]])  # parallel edge
    n.add_net("c", cells[3], [d])
    n.add_net("e", d, [f])
    return n


class TestConstruction:
    def test_degrees_match_digraph(self, nl):
        ctx = get_csr(nl)
        g = netlist_to_digraph(nl)
        assert ctx.indegree.tolist() == [g.in_degree(i) for i in range(len(nl))]
        assert ctx.outdegree.tolist() == [g.out_degree(i) for i in range(len(nl))]

    def test_directed_adjacency_binary_and_deduped(self, nl):
        ctx = get_csr(nl)
        a = ctx.directed.toarray()
        assert set(np.unique(a)) <= {0.0, 1.0}
        assert a[1, 3] == 1.0  # parallel nets collapse to one edge
        assert a[3, 1] == 0.0  # direction preserved

    def test_undirected_symmetric(self, nl):
        ctx = get_csr(nl)
        u = ctx.undirected.toarray()
        assert (u == u.T).all()
        assert u[1, 3] == 1.0 and u[3, 1] == 1.0

    def test_cell_masks(self, nl):
        ctx = get_csr(nl)
        assert ctx.dsp_indices.tolist() == [4]
        assert ctx.is_dsp[4] and not ctx.is_dsp[0]
        assert ctx.is_storage[5] and not ctx.is_storage[4]

    def test_edge_arrays_keep_multi_edges(self, nl):
        ctx = get_csr(nl)
        pairs = list(zip(ctx.edge_src.tolist(), ctx.edge_dst.tolist()))
        assert pairs.count((1, 3)) == 2  # one entry per (net, sink) pin pair

    def test_net_arrays_roundtrip(self, nl):
        ctx = get_csr(nl)
        for i, net in enumerate(nl.nets):
            lo, hi = ctx.sink_indptr[i], ctx.sink_indptr[i + 1]
            assert ctx.net_driver[i] == net.driver
            assert tuple(ctx.sink_flat[lo:hi]) == net.sinks
            assert (ctx.sink_net[lo:hi] == i).all()


class TestCache:
    def test_same_object_for_unmodified_netlist(self, nl):
        assert get_csr(nl) is get_csr(nl)

    def test_mutation_rebuilds_context(self, nl):
        before = get_csr(nl)
        nl.add_net("new", 0, [5])
        after = get_csr(nl)
        assert after is not before
        assert after.version > before.version
        assert after.directed[0, 5] == 1.0 and before.directed[0, 5] == 0.0

    def test_add_cell_invalidates(self, nl):
        before = get_csr(nl)
        nl.add_cell("x", CellType.LUT)
        after = get_csr(nl)
        assert after is not before and after.n == before.n + 1

    def test_add_macro_invalidates(self):
        n = Netlist("m")
        a = n.add_cell("a", CellType.DSP)
        b = n.add_cell("b", CellType.DSP)
        n.add_net("x", a, [b])
        before = get_csr(n)
        n.add_macro([a, b])
        assert get_csr(n) is not before

    def test_build_csr_uncached(self, nl):
        assert build_csr(nl) is not build_csr(nl)


class TestFanoutFiltered:
    def test_filters_wide_nets(self):
        n = Netlist("w")
        d0 = n.add_cell("d0", CellType.DSP)
        sinks = [n.add_cell(f"s{i}", CellType.LUT) for i in range(5)]
        d1 = n.add_cell("d1", CellType.DSP)
        n.add_net("wide", d0, sinks)
        n.add_net("narrow", sinks[0], [d1])
        ctx = get_csr(n)
        filt = ctx.fanout_filtered(2)
        assert filt[d0, sinks[0]] == 0.0  # wide net dropped
        assert filt[sinks[0], d1] == 1.0
        assert ctx.directed[d0, sinks[0]] == 1.0  # unfiltered view untouched

    def test_cached_per_fanout(self, nl):
        ctx = get_csr(nl)
        assert ctx.fanout_filtered(1) is ctx.fanout_filtered(1)

    def test_wide_threshold_reuses_directed(self, nl):
        ctx = get_csr(nl)
        assert ctx.fanout_filtered(10_000) is ctx.directed
