"""Placement-as-a-service: cache keys, job lifecycle, racing, workers."""

import pytest

from repro.errors import JobCancelledError, ServeError
from repro.obs import SCHEMA_VERSION, validate_report
from repro.placers.api import PlacementRequest
from repro.serve import (
    CacheEntry,
    PlacementServer,
    ResultCache,
    cache_key,
    device_id,
    netlist_content_hash,
)

#: one outer iteration keeps each worker placement well under a second
FAST = {"outer_iterations": 1}


def fast_request(**overrides) -> PlacementRequest:
    doc = {"suite": "ismartdnn", "scale": 0.02, "seed": 0, "config": FAST}
    doc.update(overrides)
    return PlacementRequest(**doc)


@pytest.fixture()
def server():
    with PlacementServer(workers=2) as srv:
        yield srv


class TestCacheKey:
    def test_identical_inputs_collide(self, small_dev, mini_accel):
        a = cache_key(mini_accel, small_dev, fast_request())
        b = cache_key(mini_accel, small_dev, fast_request())
        assert a == b

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 1},
            {"tool": "vivado"},
            {"race_k": 3},
            {"race_policy": "first", "race_k": 2},
            {"with_timing": True},
            {"config": {"outer_iterations": 2}},
        ],
    )
    def test_request_changes_change_the_key(self, small_dev, mini_accel, override):
        base = cache_key(mini_accel, small_dev, fast_request())
        assert cache_key(mini_accel, small_dev, fast_request(**override)) != base

    def test_netlist_content_drives_the_key(self, small_dev, mini_accel, tiny_netlist):
        req = fast_request()
        assert cache_key(mini_accel, small_dev, req) != cache_key(
            tiny_netlist, small_dev, req
        )

    def test_device_identity(self, small_dev, no_ps_dev, tiny_netlist):
        assert device_id(small_dev) != device_id(no_ps_dev)
        req = fast_request()
        assert cache_key(tiny_netlist, small_dev, req) != cache_key(
            tiny_netlist, no_ps_dev, req
        )

    def test_equivalent_configs_collide(self, small_dev, mini_accel):
        a = fast_request(config={"outer_iterations": 1, "lam": 100})
        b = fast_request(config={"lam": 100.0, "outer_iterations": 1})
        assert cache_key(mini_accel, small_dev, a) == cache_key(mini_accel, small_dev, b)

    def test_netlist_hash_is_stable(self, mini_accel):
        assert netlist_content_hash(mini_accel) == netlist_content_hash(mini_accel)


class TestResultCache:
    def _entry(self, tag: int) -> CacheEntry:
        return CacheEntry(
            quality={"hpwl_um": float(tag)}, report=None, placement=None,
            seed_used=tag, cold_wall_s=1.0,
        )

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._entry(1))
        cache.put("b", self._entry(2))
        assert cache.get("a") is not None  # refresh 'a'
        cache.put("c", self._entry(3))  # evicts 'b'
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_stats(self):
        cache = ResultCache()
        cache.put("k", self._entry(1))
        cache.get("k")
        cache.get("nope")
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}


class TestJobLifecycle:
    def test_miss_then_hit_is_deterministic(self, server, small_dev, mini_accel):
        req = fast_request()
        cold = server.submit(req, netlist=mini_accel, device=small_dev).result(timeout=120)
        cold.raise_for_status()
        assert cold.cache == "miss" and cold.ok
        assert cold.placement.is_legal()
        assert cold.quality["hpwl_um"] == pytest.approx(cold.placement.hpwl())

        hot_job = server.submit(req, netlist=mini_accel, device=small_dev)
        hot = hot_job.result(timeout=10)
        assert hot.cache == "hit"
        assert hot_job.attempts == []  # nothing was placed
        assert hot.quality == cold.quality
        assert (hot.placement.xy == cold.placement.xy).all()
        assert (hot.placement.site == cold.placement.site).all()

    def test_reports_carry_current_schema(self, server, small_dev, mini_accel):
        resp = server.submit(
            fast_request(), netlist=mini_accel, device=small_dev
        ).result(timeout=120)
        report = resp.report
        assert report["schema_version"] == SCHEMA_VERSION
        assert validate_report(report) == []
        job = report["job"]
        assert job["id"] == resp.job_id and job["cache"] == "miss"
        assert job["submitted_unix"] <= job["started_unix"] <= job["finished_unix"]

    def test_no_cache_bypasses(self, server, small_dev, mini_accel):
        req = fast_request(use_cache=False)
        first = server.submit(req, netlist=mini_accel, device=small_dev)
        second = server.submit(req, netlist=mini_accel, device=small_dev)
        server.drain(timeout=240)
        assert first.result().cache == "bypass"
        assert second.result().cache == "bypass"
        assert second.attempts, "bypass must recompute, not reuse"

    def test_concurrent_duplicates_coalesce(self, server, small_dev, mini_accel):
        req = fast_request(seed=5)
        leader = server.submit(req, netlist=mini_accel, device=small_dev)
        follower = server.submit(req, netlist=mini_accel, device=small_dev)
        server.drain(timeout=240)
        assert follower.attempts == [], "duplicate of an in-flight job must not re-place"
        lead, follow = leader.result(), follower.result()
        assert lead.cache == "miss" and follow.cache == "hit"
        assert follow.quality == lead.quality

    def test_cancel_queued_job(self, small_dev, mini_accel):
        with PlacementServer(workers=1) as srv:
            running = srv.submit(fast_request(), netlist=mini_accel, device=small_dev)
            queued = srv.submit(fast_request(seed=9), netlist=mini_accel, device=small_dev)
            queued.cancel()
            resp = queued.result(timeout=10)
            assert resp.status == "cancelled"
            with pytest.raises(JobCancelledError):
                resp.raise_for_status()
            assert running.result(timeout=120).ok

    def test_submit_after_close_rejected(self, small_dev, mini_accel):
        srv = PlacementServer(workers=1)
        srv.close()
        with pytest.raises(ServeError, match="closed"):
            srv.submit(fast_request(), netlist=mini_accel, device=small_dev)

    def test_close_cancels_in_flight(self, small_dev, mini_accel):
        srv = PlacementServer(workers=1)
        job = srv.submit(fast_request(), netlist=mini_accel, device=small_dev)
        srv.close()
        assert job.result(timeout=5).status == "cancelled"

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ServeError, match="workers"):
            PlacementServer(workers=0)

    def test_stats_shape(self, server, small_dev, mini_accel):
        server.submit(fast_request(), netlist=mini_accel, device=small_dev)
        assert server.drain(timeout=240)
        stats = server.stats()
        assert stats["jobs"] == {"ok": 1}
        assert stats["running_attempts"] == 0
        assert stats["cache"]["entries"] == 1


class TestRacing:
    def test_best_policy_beats_or_ties_single_seed(self, server, small_dev, mini_accel):
        single = server.submit(
            fast_request(), netlist=mini_accel, device=small_dev
        ).result(timeout=120)
        raced = server.submit(
            fast_request(race_k=3), netlist=mini_accel, device=small_dev
        ).result(timeout=360)
        raced.raise_for_status()
        assert raced.quality["hpwl_um"] <= single.quality["hpwl_um"]

    def test_best_policy_race_is_recorded(self, server, small_dev, mini_accel):
        resp = server.submit(
            fast_request(seed=3, race_k=3), netlist=mini_accel, device=small_dev
        ).result(timeout=360)
        race = resp.report["job"]["race"]
        assert race["k"] == 3 and race["policy"] == "best"
        assert race["winner_seed"] == resp.seed_used
        seeds = sorted(a["seed"] for a in race["attempts"])
        assert seeds == [3, 4, 5]
        assert all(a["status"] == "ok" for a in race["attempts"])
        # winner's hpwl is the minimum of the portfolio
        assert resp.quality["hpwl_um"] == min(a["hpwl_um"] for a in race["attempts"])
        # losers are recorded in the winner's RunHealth
        events = resp.report["health"]["events"]
        assert sum(e["stage"] == "serve.race" for e in events) == 2
        assert validate_report(resp.report) == []

    def test_first_policy_cancels_losers(self, small_dev, mini_accel):
        with PlacementServer(workers=2) as srv:
            resp = srv.submit(
                fast_request(race_k=3, race_policy="first"),
                netlist=mini_accel,
                device=small_dev,
            ).result(timeout=360)
            resp.raise_for_status()
            race = resp.report["job"]["race"]
            statuses = sorted(a["status"] for a in race["attempts"])
            assert "ok" in statuses
            # with 2 workers and k=3 at least the queued attempt dies unrun
            assert race["cancelled"] >= 1
            assert race["cancelled"] == statuses.count("cancelled")
            cancelled_events = [
                e
                for e in resp.report["health"]["events"]
                if e["stage"] == "serve.race" and e["kind"] == "cancelled"
            ]
            assert len(cancelled_events) == race["cancelled"]

    def test_race_response_placement_matches_quality(self, server, small_dev, mini_accel):
        resp = server.submit(
            fast_request(seed=1, race_k=2), netlist=mini_accel, device=small_dev
        ).result(timeout=360)
        assert resp.placement.is_legal()
        assert resp.placement.hpwl() == pytest.approx(resp.quality["hpwl_um"])


class TestBaselineTools:
    @pytest.mark.parametrize("tool", ["vivado", "amf"])
    def test_baselines_serve_too(self, server, small_dev, mini_accel, tool):
        resp = server.submit(
            fast_request(tool=tool), netlist=mini_accel, device=small_dev
        ).result(timeout=120)
        resp.raise_for_status()
        assert resp.quality["legal"]
        assert resp.report["meta"]["tool"] == tool
