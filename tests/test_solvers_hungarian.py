"""Hungarian algorithm vs scipy's linear_sum_assignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.solvers import hungarian


class TestHungarian:
    def test_identity(self):
        cost = np.array([[1.0, 2.0], [2.0, 1.0]])
        cols, total = hungarian(cost)
        assert list(cols) == [0, 1]
        assert total == 2.0

    def test_rectangular(self):
        cost = np.array([[5.0, 1.0, 3.0]])
        cols, total = hungarian(cost)
        assert cols[0] == 1
        assert total == 1.0

    def test_rows_exceed_cols_rejected(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros((3, 2)))

    def test_negative_costs(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        _, total = hungarian(cost)
        assert total == -10.0


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_hungarian_matches_scipy(data):
    n = data.draw(st.integers(1, 7))
    m = data.draw(st.integers(n, 8))
    cost = np.array(
        data.draw(
            st.lists(
                st.lists(st.floats(-50, 50, allow_nan=False), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        )
    )
    cols, total = hungarian(cost)
    r, c = linear_sum_assignment(cost)
    assert total == pytest.approx(float(cost[r, c].sum()), abs=1e-6)
    assert len(set(cols.tolist())) == n
