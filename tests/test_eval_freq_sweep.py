"""Frequency-sweep experiment runner (tiny scale)."""

import pytest

from repro.eval import ExperimentSettings
from repro.eval.experiments import run_freq_sweep


@pytest.fixture(scope="module")
def sweep():
    settings = ExperimentSettings(
        scale=0.04, suites=("ismartdnn",), identification="oracle", gcn_epochs=3
    )
    return run_freq_sweep(settings, suite="ismartdnn", n_points=5)


class TestFreqSweep:
    def test_all_tools_swept(self, sweep):
        assert set(sweep.wns_by_tool) == {"vivado", "amf", "dsplacer"}
        assert len(sweep.freqs_mhz) == 5

    def test_wns_monotone_in_frequency(self, sweep):
        for curve in sweep.wns_by_tool.values():
            assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_band_brackets_zero_crossing(self, sweep):
        """The sweep band is chosen so each tool crosses zero inside it."""
        for tool, curve in sweep.wns_by_tool.items():
            assert curve[0] > 0 or curve[-1] < 0  # not a degenerate band

    def test_break_frequency(self, sweep):
        for tool in sweep.wns_by_tool:
            bf = sweep.break_frequency(tool)
            assert sweep.freqs_mhz[0] <= bf <= sweep.freqs_mhz[-1] or bf == 0.0
