"""Batched legalizer vs the per-cell loop oracle, plus the saturation paths.

The vectorized engine batches the single-DSP/BRAM nearest-site queries and
the CLB row fill; all assignment decisions (greedy order, spiral search,
row tie-breaks, escalation) must match the reference engine site-for-site.
The saturation tests cover the escalating ``_nearest_free`` suffix scan and
the dense-packing fallback for near-full cascade loads.
"""

import numpy as np
import pytest

from repro.netlist import CellType, Netlist
from repro.placers import (
    GlobalPlaceConfig,
    Legalizer,
    Placement,
    QuadraticGlobalPlacer,
)


@pytest.fixture(scope="module")
def spread(request):
    mini = request.getfixturevalue("mini_accel")
    dev = request.getfixturevalue("small_dev")
    return QuadraticGlobalPlacer(GlobalPlaceConfig(seed=0)).place(mini, dev)


class TestEquivalence:
    def test_identical_assignments(self, spread, small_dev):
        p_ref = Legalizer(small_dev, method="reference").legalize(spread.copy())
        p_vec = Legalizer(small_dev, method="vectorized").legalize(spread.copy())
        np.testing.assert_array_equal(p_vec.site, p_ref.site)
        np.testing.assert_array_equal(p_vec.xy, p_ref.xy)
        assert p_vec.is_legal()

    def test_identical_under_jitter(self, spread, small_dev):
        """Perturbed targets reshuffle the greedy order and spiral probes."""
        for seed in (11, 12, 13):
            base = spread.copy()
            r = np.random.default_rng(seed)
            mov = np.flatnonzero(
                np.array([not c.is_fixed for c in base.netlist.cells])
            )
            base.xy[mov] += r.uniform(-40.0, 40.0, (mov.size, 2))
            p_ref = Legalizer(small_dev, method="reference").legalize(base.copy())
            p_vec = Legalizer(small_dev, method="vectorized").legalize(base.copy())
            np.testing.assert_array_equal(p_vec.site, p_ref.site)

    def test_unknown_method_rejected(self, small_dev):
        with pytest.raises(ValueError, match="legalizer method"):
            Legalizer(small_dev, method="banana")


def _dsp_only_netlist(n_singles: int = 0, macro_lens: tuple[int, ...] = ()):
    nl = Netlist("sat")
    macros = []
    for m, length in enumerate(macro_lens):
        chain = [nl.add_cell(f"m{m}_{k}", CellType.DSP) for k in range(length)]
        nl.add_macro(chain)
        macros.append(chain)
    singles = [nl.add_cell(f"s{i}", CellType.DSP) for i in range(n_singles)]
    return nl, macros, singles


class TestNearestFreeEscalation:
    """High occupancy forces ``_nearest_free`` past its first candidate
    window; the escalating query must scan only the newly revealed suffix
    and still find the nearest free site."""

    def test_single_free_site_found(self, small_dev):
        n = small_dev.n_sites("DSP")
        nl, _, singles = _dsp_only_netlist(n_singles=1)
        place = Placement(nl, small_dev)
        place.xy[singles[0]] = (0.0, 0.0)
        leg = Legalizer(small_dev)
        # only the site farthest from the query is free — deeper than any
        # initial candidate window
        order = small_dev.nearest_sites("DSP", 0.0, 0.0, k=n)
        occupied = np.ones(n, dtype=bool)
        occupied[order[-1]] = False
        sid = leg._nearest_free("DSP", place.xy[singles[0]], occupied)
        assert sid == int(order[-1])

    def test_skip_prefix_not_rescanned(self, small_dev, monkeypatch):
        """With ``skip`` known-occupied candidates, the escalated query must
        start scanning after the prefix (the pre-fix code rescanned it)."""
        n = small_dev.n_sites("DSP")
        leg = Legalizer(small_dev)
        order = small_dev.nearest_sites("DSP", 0.0, 0.0, k=n)
        occupied = np.ones(n, dtype=bool)
        occupied[order[-1]] = False
        seen: list[int] = []
        orig = type(small_dev).nearest_sites

        def spy(self, kind, x, y, k):
            seen.append(k)
            return orig(self, kind, x, y, k)

        monkeypatch.setattr(type(small_dev), "nearest_sites", spy)
        sid = leg._nearest_free("DSP", np.array([0.0, 0.0]), occupied, skip=32)
        assert sid == int(order[-1])
        # escalation starts from the skipped prefix, never back at k=32
        assert min(seen) > 32

    def test_all_occupied_raises(self, small_dev):
        n = small_dev.n_sites("DSP")
        leg = Legalizer(small_dev)
        with pytest.raises(ValueError, match="no free DSP site left"):
            leg._nearest_free("DSP", np.array([0.0, 0.0]), np.ones(n, dtype=bool))

    def test_engines_agree_at_saturation(self, small_dev):
        """Fill all but two DSP sites — the batched engine's per-cell
        fallback must make the same picks as the reference loop."""
        n = small_dev.n_sites("DSP")
        nl, _, singles = _dsp_only_netlist(n_singles=n - 2)
        rng = np.random.default_rng(7)
        results = []
        for method in ("reference", "vectorized"):
            place = Placement(nl, small_dev)
            place.xy[:] = rng.uniform(
                0.0, [small_dev.width, small_dev.height], (len(nl.cells), 2)
            )
            rng = np.random.default_rng(7)  # same targets for both engines
            Legalizer(small_dev, method=method).legalize_dsps(
                place, np.ones(len(nl.cells), dtype=bool)
            )
            results.append(place.site.copy())
        np.testing.assert_array_equal(results[0], results[1])
        assert len(set(results[0].tolist())) == n - 2  # all distinct


class TestDensePacking:
    def test_dense_pack_saturating_macros(self, small_dev):
        """Six 5-chains saturate the per-column capacity of the 3×12 DSP
        fabric (two chains per column); dense packing must fit them all,
        column-aligned and contiguous."""
        nl, macros, _ = _dsp_only_netlist(macro_lens=(5,) * 6)
        place = Placement(nl, small_dev)
        leg = Legalizer(small_dev)
        occupied = np.zeros(small_dev.n_sites("DSP"), dtype=bool)
        leg._dense_pack_macros(place, occupied, list(nl.macros))
        col = small_dev.site_col("DSP")
        for chain in macros:
            sites = place.site[chain]
            assert (sites >= 0).all()
            assert len(set(col[sites].tolist())) == 1  # one column
            assert (np.diff(sites) == 1).all()  # consecutive rows
        assert int(occupied.sum()) == 30

    def test_overfull_macros_raise_even_densely_packed(self, small_dev):
        """Seven 5-chains need 35 of 36 sites but only two chains fit per
        12-row column; the dense fallback must report the failure."""
        nl, _, _ = _dsp_only_netlist(macro_lens=(5,) * 7)
        place = Placement(nl, small_dev)
        leg = Legalizer(small_dev)
        with pytest.raises(ValueError, match="even densely packed"):
            leg.legalize_dsps(place, np.ones(len(nl.cells), dtype=bool))

    def test_legalize_recovers_via_dense_fallback(self, small_dev):
        """Six saturating chains through the public path: whether or not the
        proximity packer fragments, legalization must end fully legal."""
        nl, macros, _ = _dsp_only_netlist(macro_lens=(5,) * 6)
        place = Placement(nl, small_dev)
        rng = np.random.default_rng(3)
        place.xy[:] = rng.uniform(
            0.0, [small_dev.width, small_dev.height], (len(nl.cells), 2)
        )
        Legalizer(small_dev).legalize_dsps(place, np.ones(len(nl.cells), dtype=bool))
        col = small_dev.site_col("DSP")
        for chain in macros:
            sites = place.site[chain]
            assert (sites >= 0).all()
            assert len(set(col[sites].tolist())) == 1
            assert (np.diff(sites) == 1).all()
