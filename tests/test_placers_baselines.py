"""Baseline placer flows: Vivado-like, AMF-like, simulated annealing, refine."""

import numpy as np
import pytest

from repro.placers import (
    AMFLikePlacer,
    Legalizer,
    Placement,
    SimulatedAnnealingPlacer,
    VivadoLikePlacer,
    refine_sites,
)


class TestVivadoLike:
    def test_produces_legal_placement(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=1, device=small_dev).place(mini_accel)
        assert p.is_legal(), p.legality_violations()[:5]

    def test_deterministic(self, mini_accel, small_dev):
        p1 = VivadoLikePlacer(seed=2, device=small_dev).place(mini_accel)
        p2 = VivadoLikePlacer(seed=2, device=small_dev).place(mini_accel)
        assert np.array_equal(p1.xy, p2.xy)

    def test_beats_random_start(self, mini_accel, small_dev, rng):
        placed = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        random_p = Placement(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        random_p.xy[mov] = rng.uniform(
            [0, 0], [small_dev.width, small_dev.height], (len(mov), 2)
        )
        Legalizer(small_dev).legalize(random_p)
        assert placed.hpwl() < random_p.hpwl()

    def test_respects_movable_mask(self, mini_accel, small_dev):
        base = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        frozen = mini_accel.dsp_indices()
        mask = np.array([not c.is_fixed for c in mini_accel.cells])
        mask[frozen] = False
        p2 = VivadoLikePlacer(seed=1, device=small_dev).place(mini_accel, placement=base, movable_mask=mask)
        assert np.array_equal(p2.site[frozen], base.site[frozen])
        assert p2.is_legal()


class TestAMFLike:
    def test_produces_legal_placement(self, mini_accel, small_dev):
        p = AMFLikePlacer(seed=1, device=small_dev).place(mini_accel)
        assert p.is_legal(), p.legality_violations()[:5]

    def test_macros_compact(self, mini_accel, small_dev):
        """Centroid collapse ⇒ every macro lands minimal-height (it must:
        legal cascades are consecutive), and near its centroid column."""
        p = AMFLikePlacer(seed=1, device=small_dev).place(mini_accel)
        assert p.is_legal()

    def test_worse_or_equal_wirelength_than_vivado(self, mini_accel, small_dev):
        """The VCU108-tuned flow should not beat the calibrated one."""
        hv = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel).hpwl()
        ha = AMFLikePlacer(seed=0, device=small_dev).place(mini_accel).hpwl()
        assert ha >= hv * 0.95  # allow a little noise on tiny designs


class TestSimulatedAnnealing:
    def test_legal_result(self, mini_accel, small_dev):
        p = SimulatedAnnealingPlacer(seed=0, n_moves_per_cell=40).place(mini_accel, small_dev)
        assert p.is_legal(), p.legality_violations()[:5]

    def test_improves_from_random(self, mini_accel, small_dev, rng):
        random_p = Placement(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        random_p.xy[mov] = rng.uniform(
            [0, 0], [small_dev.width, small_dev.height], (len(mov), 2)
        )
        Legalizer(small_dev).legalize(random_p)
        before = random_p.hpwl(weighted=True)
        out = SimulatedAnnealingPlacer(seed=0, n_moves_per_cell=60).place(
            mini_accel, small_dev, placement=random_p.copy()
        )
        assert out.hpwl(weighted=True) <= before


class TestRefineSites:
    def test_refine_never_degrades(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=3, refine_passes=0, device=small_dev).place(mini_accel)
        before = p.hpwl(weighted=True)
        refine_sites(p, passes=2)
        assert p.hpwl(weighted=True) <= before + 1e-6
        assert p.is_legal()

    def test_refine_reports_moves(self, mini_accel, small_dev, rng):
        p = Placement(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        p.xy[mov] = rng.uniform([0, 0], [small_dev.width, small_dev.height], (len(mov), 2))
        Legalizer(small_dev).legalize(p)
        moves = refine_sites(p, passes=3)
        assert moves >= 0
        assert p.is_legal()
