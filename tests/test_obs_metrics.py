"""Metrics registry: recording, merge semantics, serialization."""

import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.metrics import Histogram, MetricsRegistry


class TestAmbientHelpers:
    def test_disabled_calls_are_noops(self):
        metrics.inc("x")
        metrics.gauge("y", 1.0)
        metrics.observe("z", 2.0)
        with obs.observe() as ob:
            pass
        assert ob.metrics.names() == set()

    def test_recording_lands_on_active_observation(self):
        with obs.observe() as ob:
            metrics.inc("hits")
            metrics.inc("hits", 4)
            metrics.gauge("level", 7)
            metrics.gauge("level", 9)
            metrics.observe("cost", 1.0)
            metrics.observe("cost", 3.0)
        assert ob.metrics.counters["hits"] == 5
        assert ob.metrics.gauges["level"] == 9.0
        h = ob.metrics.histograms["cost"]
        assert (h.count, h.total, h.min, h.max) == (2, 4.0, 1.0, 3.0)
        assert h.mean == pytest.approx(2.0)

    def test_innermost_observation_receives(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                metrics.inc("n")
            metrics.inc("n", 10)
        assert inner.metrics.counters["n"] == 1
        assert outer.metrics.counters["n"] == 10


class TestMerge:
    def test_counters_add_gauges_win_last_histograms_combine(self):
        a = MetricsRegistry()
        a.inc("c", 2)
        a.gauge("g", 1.0)
        a.observe("h", 1.0)
        b = MetricsRegistry()
        b.inc("c", 3)
        b.inc("only_b")
        b.gauge("g", 5.0)
        b.observe("h", 9.0)
        a.merge(b)
        assert a.counters == {"c": 5, "only_b": 1}
        assert a.gauges == {"g": 5.0}
        h = a.histograms["h"]
        assert (h.count, h.min, h.max) == (2, 1.0, 9.0)

    def test_merge_does_not_alias_other_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.observe("h", 1.0)
        a.merge(b)
        b.observe("h", 100.0)
        assert a.histograms["h"].count == 1


class TestSerialization:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.gauge("g", 2.5)
        reg.observe("h", 4.0)
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.to_dict() == reg.to_dict()

    def test_empty_histogram_serializes_to_zeros(self):
        doc = Histogram().to_dict()
        assert doc == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        assert Histogram.from_dict(doc).count == 0

    def test_counter_values_json_clean(self):
        import numpy as np

        reg = MetricsRegistry()
        reg.inc("c", np.int64(3))
        reg.gauge("g", np.float64(1.5))
        doc = reg.to_dict()
        assert isinstance(doc["counters"]["c"], int)
        assert isinstance(doc["gauges"]["g"], float)
