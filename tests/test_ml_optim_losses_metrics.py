"""Optimizers, losses, metrics."""

import numpy as np
import pytest

from repro.ml import Adam, SGD, accuracy, confusion_matrix, f1_score, weighted_cross_entropy
from repro.ml.losses import class_weights_from_labels


class TestSGD:
    def test_step_direction(self):
        params = {"w": np.array([1.0])}
        SGD(lr=0.1).step(params, {"w": np.array([2.0])})
        assert params["w"][0] == pytest.approx(0.8)

    def test_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([0.0])}
        opt.step(params, {"w": np.array([1.0])})
        opt.step(params, {"w": np.array([1.0])})
        # second step uses velocity 1.9
        assert params["w"][0] == pytest.approx(-0.1 - 0.19)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        opt = Adam(lr=0.1)
        params = {"w": np.array([5.0])}
        for _ in range(300):
            opt.step(params, {"w": 2 * params["w"]})
        assert abs(params["w"][0]) < 1e-2

    def test_first_step_is_lr_sized(self):
        opt = Adam(lr=0.01)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([123.0])})
        # bias correction makes the first step ≈ lr regardless of grad scale
        assert params["w"][0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_weight_decay(self):
        opt = Adam(lr=0.01, weight_decay=1.0)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([0.0])})
        assert params["w"][0] < 1.0


class TestClassWeights:
    def test_balanced(self):
        w = class_weights_from_labels(np.array([0, 0, 1, 1]))
        assert np.allclose(w, 1.0)

    def test_minority_upweighted(self):
        w = class_weights_from_labels(np.array([0, 1, 1, 1, 1, 1]))
        assert w[0] > w[1]

    def test_mean_one(self):
        w = class_weights_from_labels(np.array([0, 1, 1, 1]))
        assert w.mean() == pytest.approx(1.0)


class TestWeightedCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        probs = np.array([[0.999, 0.001], [0.001, 0.999]])
        loss, _ = weighted_cross_entropy(probs, np.array([0, 1]))
        assert loss < 0.01

    def test_gradient_points_toward_labels(self):
        probs = np.array([[0.5, 0.5]])
        _, dlog = weighted_cross_entropy(probs, np.array([1]))
        assert dlog[0, 1] < 0 < dlog[0, 0]

    def test_mask_excludes_rows(self):
        probs = np.array([[0.9, 0.1], [0.1, 0.9]])
        loss, dlog = weighted_cross_entropy(
            probs, np.array([0, 0]), mask=np.array([True, False])
        )
        assert np.all(dlog[1] == 0)
        assert loss == pytest.approx(-np.log(0.9))

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            weighted_cross_entropy(np.array([[0.5, 0.5]]), np.array([0]), mask=np.array([False]))

    def test_class_weight_scales_loss(self):
        probs = np.array([[0.5, 0.5]])
        l1, _ = weighted_cross_entropy(probs, np.array([0]), np.array([1.0, 1.0]))
        l2, _ = weighted_cross_entropy(probs, np.array([0]), np.array([2.0, 1.0]))
        assert l1 == pytest.approx(l2)  # single sample: normalization cancels


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_masked(self):
        a = accuracy(np.array([1, 0]), np.array([1, 1]), mask=np.array([True, False]))
        assert a == 1.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_confusion(self):
        cm = confusion_matrix(np.array([1, 0, 1]), np.array([1, 1, 0]))
        assert cm[1, 1] == 1 and cm[1, 0] == 1 and cm[0, 1] == 1

    def test_f1_perfect(self):
        assert f1_score(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0

    def test_f1_degenerate(self):
        assert f1_score(np.array([0, 0]), np.array([1, 1])) == 0.0
