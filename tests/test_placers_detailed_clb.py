"""CLB median-improvement detailed placement."""

import numpy as np
import pytest

from repro.placers import Legalizer, Placement, VivadoLikePlacer
from repro.placers.detailed_clb import refine_clb


class TestRefineCLB:
    def test_never_degrades(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        before = p.hpwl(weighted=True)
        refine_clb(p, max_cells=500, passes=2)
        assert p.hpwl(weighted=True) <= before + 1e-6

    def test_stays_legal(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        refine_clb(p, max_cells=500)
        assert p.is_legal(), p.legality_violations()[:3]

    def test_improves_scrambled_placement(self, mini_accel, small_dev, rng):
        p = Placement(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        p.xy[mov] = rng.uniform([0, 0], [small_dev.width, small_dev.height], (len(mov), 2))
        Legalizer(small_dev).legalize(p)
        before = p.hpwl(weighted=True)
        moves = refine_clb(p, max_cells=400, passes=2)
        assert moves > 0
        assert p.hpwl(weighted=True) < before

    def test_respects_movable_mask(self, mini_accel, small_dev, rng):
        p = Placement(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        p.xy[mov] = rng.uniform([0, 0], [small_dev.width, small_dev.height], (len(mov), 2))
        Legalizer(small_dev).legalize(p)
        frozen = np.array([not c.is_fixed for c in mini_accel.cells])
        frozen[:] = False  # nothing movable
        assert refine_clb(p, movable_mask=frozen) == 0
