"""Cascade legalization tests: ILP inter-column + exact intra-column."""

import numpy as np
import pytest

from repro.core.placement import CascadeLegalizer
from repro.netlist import CellType, Netlist


def _netlist_with_macros(chain_lens, n_singles=0):
    nl = Netlist("leg")
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    first = None
    for m, length in enumerate(chain_lens):
        dsps = [nl.add_cell(f"m{m}d{i}", CellType.DSP, is_datapath=True) for i in range(length)]
        if first is None:
            first = dsps[0]
        for a, b in zip(dsps, dsps[1:]):
            nl.add_net(f"m{m}c{a}", a, [b])
        nl.add_macro(dsps)
    for s in range(n_singles):
        nl.add_cell(f"s{s}", CellType.DSP, is_datapath=False)
    nl.add_net("seed", anchor, [first if first is not None else 1])
    return nl


class TestLegalize:
    def test_chains_land_consecutive(self, small_dev):
        nl = _netlist_with_macros([3, 4])
        desired = {
            c.index: (200.0, 100.0 + 10 * c.index) for c in nl.cells if c.ctype.is_dsp
        }
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        sites = small_dev.sites("DSP")
        for m in nl.macros:
            sids = [res.site_of[i] for i in m.dsps]
            assert all(b == a + 1 for a, b in zip(sids, sids[1:]))
            assert len({sites[s].col for s in sids}) == 1

    def test_no_overlap(self, small_dev):
        nl = _netlist_with_macros([3, 3, 2], n_singles=4)
        rng = np.random.default_rng(0)
        desired = {
            c.index: tuple(rng.uniform([0, 0], [small_dev.width, small_dev.height]))
            for c in nl.cells
            if c.ctype.is_dsp
        }
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        assert len(set(res.site_of.values())) == len(res.site_of)

    def test_targets_respected_when_free(self, small_dev):
        """A single chain already on legal consecutive sites stays put."""
        nl = _netlist_with_macros([3])
        ids = small_dev.column_site_ids("DSP", 1)
        xy = small_dev.site_xy("DSP")
        chain = nl.macros[0].dsps
        desired = {c: tuple(xy[ids[4 + k]]) for k, c in enumerate(chain)}
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        assert [res.site_of[c] for c in chain] == [ids[4], ids[5], ids[6]]
        assert res.total_displacement_um == pytest.approx(0.0)

    def test_singles_and_chains_share_columns(self, small_dev):
        nl = _netlist_with_macros([5], n_singles=3)
        xy = small_dev.site_xy("DSP")
        col0 = small_dev.column_site_ids("DSP", 0)
        desired = {}
        for c in nl.cells:
            if c.ctype.is_dsp:
                desired[c.index] = tuple(xy[col0[0]])  # everyone wants one spot
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        assert len(set(res.site_of.values())) == 8

    def test_overfull_device_rejected(self, small_dev):
        n = small_dev.n_dsp + 1
        nl = Netlist("over")
        anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(n)]
        nl.add_net("seed", anchor, [dsps[0]])
        desired = {i: (10.0, 10.0) for i in dsps}
        with pytest.raises(ValueError, match="more DSPs"):
            CascadeLegalizer(nl, small_dev).legalize(desired)

    def test_uses_ilp_by_default(self, small_dev):
        nl = _netlist_with_macros([3, 2])
        desired = {c.index: (150.0, 150.0) for c in nl.cells if c.ctype.is_dsp}
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        assert res.used_ilp

    def test_greedy_fallback_still_legal(self, small_dev):
        nl = _netlist_with_macros([3, 2], n_singles=2)
        desired = {c.index: (150.0, 150.0) for c in nl.cells if c.ctype.is_dsp}
        res = CascadeLegalizer(nl, small_dev, max_ilp_nodes=0).legalize(desired)
        assert not res.used_ilp
        assert len(set(res.site_of.values())) == len(res.site_of)
        sites = small_dev.sites("DSP")
        for m in nl.macros:
            sids = [res.site_of[i] for i in m.dsps]
            assert all(b == a + 1 for a, b in zip(sids, sids[1:]))

    def test_inter_column_displacement_optimal_small(self, small_dev):
        """ILP picks the zero-displacement column when it has room."""
        nl = _netlist_with_macros([4])
        col_x = small_dev.kind_columns("DSP")[2].x
        desired = {c: (col_x, 200.0 + 37.5 * k) for k, c in enumerate(nl.macros[0].dsps)}
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        sites = small_dev.sites("DSP")
        assert all(sites[res.site_of[c]].x == col_x for c in nl.macros[0].dsps)

    def test_capacity_saturation_full_columns(self, small_dev):
        """Exactly device-capacity DSPs, mostly chains: still legal."""
        col_sizes = [c.n_sites for c in small_dev.kind_columns("DSP")]
        chains = [size for size in col_sizes]  # one full-column chain each
        nl = _netlist_with_macros(chains)
        rng = np.random.default_rng(1)
        desired = {
            c.index: tuple(rng.uniform([0, 0], [small_dev.width, small_dev.height]))
            for c in nl.cells
            if c.ctype.is_dsp
        }
        res = CascadeLegalizer(nl, small_dev).legalize(desired)
        assert len(set(res.site_of.values())) == sum(chains)
