"""Weisfeiler-Lehman automorphism features (the PADE baseline family)."""

import numpy as np
import pytest

from repro.core.extraction.automorphism import automorphism_features, wl_colors
from repro.netlist import CellType, Netlist


@pytest.fixture()
def twin_netlist():
    """Two isomorphic 'PE tiles' plus one irregular node."""
    nl = Netlist("twin")
    for tile in range(2):
        d = nl.add_cell(f"t{tile}_dsp", CellType.DSP, is_datapath=True)
        f = nl.add_cell(f"t{tile}_ff", CellType.FF)
        l = nl.add_cell(f"t{tile}_lut", CellType.LUT)
        nl.add_net(f"t{tile}_a", f, [d])
        nl.add_net(f"t{tile}_b", d, [l])
    odd = nl.add_cell("odd_dsp", CellType.DSP, is_datapath=False)
    hub = nl.add_cell("hub_ff", CellType.FF)
    nl.add_net("odd_in", hub, [odd])
    nl.add_net("hub_in", odd, [nl.cell_by_name("t0_lut").index])
    return nl


class TestWLColors:
    def test_round0_is_cell_kind(self, twin_netlist):
        colors = wl_colors(twin_netlist, n_rounds=0)
        kinds = {}
        for c in twin_netlist.cells:
            kinds.setdefault(c.ctype, set()).add(colors[c.index][0])
        for ctype, ids in kinds.items():
            assert len(ids) == 1  # one colour per kind

    def test_isomorphic_tiles_share_colors(self, twin_netlist):
        colors = wl_colors(twin_netlist, n_rounds=2)
        a = twin_netlist.cell_by_name("t0_dsp").index
        b = twin_netlist.cell_by_name("t1_dsp").index
        # t0_dsp's LUT has an extra fanin (hub edge) — compare the FFs,
        # whose 1-hop neighbourhoods are truly isomorphic
        fa = twin_netlist.cell_by_name("t0_ff").index
        fb = twin_netlist.cell_by_name("t1_ff").index
        assert colors[fa][1] == colors[fb][1]

    def test_irregular_node_distinct(self, twin_netlist):
        colors = wl_colors(twin_netlist, n_rounds=2)
        odd = twin_netlist.cell_by_name("odd_dsp").index
        regular = twin_netlist.cell_by_name("t1_dsp").index
        assert colors[odd][-1] != colors[regular][-1]

    def test_refinement_only_splits(self, twin_netlist):
        """Colour classes can only get finer with more rounds."""
        colors = wl_colors(twin_netlist, n_rounds=3)
        n = len(twin_netlist.cells)
        for r in range(3):
            # same colour at round r+1 implies same colour at round r
            by_next = {}
            for u in range(n):
                by_next.setdefault(colors[u][r + 1], set()).add(colors[u][r])
            for prev_set in by_next.values():
                assert len(prev_set) == 1


class TestAutomorphismFeatures:
    def test_shape(self, twin_netlist):
        x = automorphism_features(twin_netlist, n_rounds=2)
        assert x.shape[0] == len(twin_netlist.cells)
        assert np.isfinite(x).all()

    def test_degree_columns(self, twin_netlist):
        x = automorphism_features(twin_netlist)
        d = twin_netlist.cell_by_name("t0_dsp").index
        assert x[d, 0] == 1  # indegree (from ff)
        assert x[d, 1] == 1  # outdegree (to lut)

    def test_regular_nodes_large_class(self, mini_accel):
        """PE DSPs live in larger WL classes than control DSPs."""
        x = automorphism_features(mini_accel, n_rounds=2)
        class_col = x[:, -1]  # log class size after final round
        pe = [c.index for c in mini_accel.cells if c.attrs.get("role") == "pe_dsp"]
        ctrl = [c.index for c in mini_accel.cells if c.attrs.get("role") == "ctrl_dsp"]
        if pe and ctrl:
            assert np.median(class_col[pe]) >= np.median(class_col[ctrl])
