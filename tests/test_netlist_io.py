"""Round-trip tests for netlist serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    CellType,
    Netlist,
    load_netlist,
    netlist_from_json,
    netlist_to_json,
    save_netlist,
)


class TestRoundTrip:
    def test_tiny_roundtrip(self, tiny_netlist):
        doc = netlist_to_json(tiny_netlist)
        back = netlist_from_json(doc)
        assert back.name == tiny_netlist.name
        assert len(back) == len(tiny_netlist)
        assert len(back.nets) == len(tiny_netlist.nets)
        assert back.cascade_pairs() == tiny_netlist.cascade_pairs()
        assert back.target_freq_mhz == tiny_netlist.target_freq_mhz

    def test_cell_fields_preserved(self, tiny_netlist):
        back = netlist_from_json(netlist_to_json(tiny_netlist))
        for a, b in zip(tiny_netlist.cells, back.cells):
            assert a.name == b.name
            assert a.ctype is b.ctype
            assert a.is_datapath == b.is_datapath
            assert a.fixed_xy == b.fixed_xy

    def test_file_roundtrip(self, tiny_netlist, tmp_path):
        p = tmp_path / "n.json"
        save_netlist(tiny_netlist, p)
        back = load_netlist(p)
        assert len(back) == len(tiny_netlist)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            netlist_from_json({"format": 99, "name": "x", "cells": [], "nets": [], "macros": []})


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_netlist_roundtrip(data):
    """Property: any structurally valid netlist serializes losslessly."""
    n_cells = data.draw(st.integers(2, 12))
    nl = Netlist("rand")
    for i in range(n_cells):
        ctype = data.draw(st.sampled_from([CellType.LUT, CellType.FF, CellType.DSP]))
        nl.add_cell(f"c{i}", ctype, is_datapath=(True if ctype.is_dsp else None))
    n_nets = data.draw(st.integers(1, 10))
    for j in range(n_nets):
        driver = data.draw(st.integers(0, n_cells - 1))
        sinks = data.draw(
            st.lists(st.integers(0, n_cells - 1), min_size=1, max_size=4).filter(
                lambda s, d=driver: any(x != d for x in s)
            )
        )
        nl.add_net(f"n{j}", driver, sinks)
    back = netlist_from_json(netlist_to_json(nl))
    assert len(back) == len(nl)
    assert [c.name for c in back.cells] == [c.name for c in nl.cells]
    assert [n.sinks for n in back.nets] == [n.sinks for n in nl.nets]
