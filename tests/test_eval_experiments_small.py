"""End-to-end experiment-runner smoke tests at tiny scale.

The real experiments run at REPRO_SCALE (default 0.25) in benchmarks/;
these tests exercise the same code paths at scale 0.04 with oracle
identification so the whole harness stays covered by `pytest tests/`.
"""

import dataclasses

import pytest

from repro.eval import ExperimentSettings
from repro.eval.experiments import run_fig8, run_fig9, run_suite_tool, run_table2


@pytest.fixture(scope="module")
def tiny_settings():
    return ExperimentSettings(
        scale=0.04,
        suites=("ismartdnn", "skynet"),
        identification="oracle",
        gcn_epochs=5,
    )


class TestRunSuiteTool:
    @pytest.mark.parametrize("tool", ["vivado", "amf", "dsplacer"])
    def test_tools_produce_legal(self, tiny_settings, tool):
        placement, seconds, phases = run_suite_tool(tiny_settings, "ismartdnn", tool)
        assert placement.is_legal()
        assert seconds > 0
        if tool == "dsplacer":
            assert "dsp_placement" in phases

    def test_unknown_tool(self, tiny_settings):
        with pytest.raises(ValueError):
            run_suite_tool(tiny_settings, "ismartdnn", "quartus")


class TestTable2Runner:
    def test_rows_and_normalization(self, tiny_settings):
        result = run_table2(tiny_settings)
        assert len(result.rows) == len(tiny_settings.suites) * 3
        norm = result.normalize()
        assert norm["dsplacer"]["wns"] == pytest.approx(1.0)
        assert norm["dsplacer"]["hpwl"] == pytest.approx(1.0)
        for tool in ("vivado", "amf"):
            assert norm[tool]["wns"] > 0
        # protocol: vivado is negative at the eval clock
        for r in result.tool_rows("vivado"):
            assert r.wns_ns < 0

    def test_cached_across_calls(self, tiny_settings):
        r1 = run_table2(tiny_settings)
        r2 = run_table2(tiny_settings)
        assert r1 is r2


class TestFig7Runner:
    def test_leave_one_out_tiny(self):
        settings = ExperimentSettings(
            scale=0.05, suites=("ismartdnn", "skynet", "skrskr1"), gcn_epochs=8
        )
        from repro.eval.experiments import run_fig7

        res = run_fig7(settings)
        assert set(res.gcn_accuracy) == set(res.svm_accuracy)
        assert len(res.gcn_accuracy) == 3
        for name in res.gcn_accuracy:
            assert 0.0 <= res.gcn_accuracy[name] <= 1.0
            assert len(res.test_curves[name]) == 8
        # trained identifiers are reusable
        ident = res.identifiers[list(res.identifiers)[0]]
        assert ident.method == "gcn"


class TestFigRunners:
    def test_fig8_breakdowns(self, tiny_settings):
        out = run_fig8(tiny_settings, suites=("ismartdnn",))
        assert len(out) == 1
        assert "routing" in out[0].seconds
        assert out[0].total > 0

    def test_fig9_svgs(self, tiny_settings, tmp_path):
        res = run_fig9(tiny_settings, suite="skynet", out_dir=str(tmp_path))
        assert set(res.metrics) == {"vivado", "amf", "dsplacer"}
        for path in res.svg_paths.values():
            assert (tmp_path / path.split("/")[-1]).exists()
