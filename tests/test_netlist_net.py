"""Unit tests for repro.netlist.net."""

import pytest

from repro.netlist.net import Net


class TestNet:
    def test_basic(self):
        n = Net(index=0, name="n0", driver=1, sinks=(2, 3))
        assert n.degree == 3
        assert n.cells == (1, 2, 3)

    def test_no_sinks_rejected(self):
        with pytest.raises(ValueError, match="no sinks"):
            Net(index=0, name="n0", driver=1, sinks=())

    def test_self_drive_rejected(self):
        with pytest.raises(ValueError, match="drives itself"):
            Net(index=0, name="n0", driver=1, sinks=(1,))

    def test_duplicate_sinks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Net(index=0, name="n0", driver=1, sinks=(2, 2))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Net(index=0, name="n0", driver=1, sinks=(2,), weight=0.0)

    def test_default_weight(self):
        assert Net(index=0, name="n0", driver=0, sinks=(1,)).weight == 1.0
