"""Congestion-aware assignment extension."""

import numpy as np
import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.extraction import build_dsp_graph
from repro.core.placement import AssignmentConfig, DatapathDSPAssigner
from repro.netlist import CellType, Netlist
from repro.placers import Placement


@pytest.fixture()
def setup(small_dev):
    nl = Netlist("cong")
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(100.0, 100.0))
    d = nl.add_cell("d0", CellType.DSP, is_datapath=True)
    nl.add_net("in", anchor, [d])
    graph = build_dsp_graph(nl, paths=[])
    return nl, d, graph


class TestCongestionTerm:
    def test_map_sampling(self, setup, small_dev):
        nl, d, graph = setup
        a = DatapathDSPAssigner(nl, small_dev, graph, [d], AssignmentConfig(congestion_weight=1.0))
        cong = np.zeros((4, 4))
        cong[0, 0] = 3.0  # bottom-left quadrant overloaded (util 3x)
        a.set_congestion_map(cong)
        assert a._site_congestion.max() == pytest.approx(2.0)
        # only sites in the bottom-left quadrant carry the surcharge
        xy = small_dev.site_xy("DSP")
        in_bin = (xy[:, 0] < small_dev.width / 4) & (xy[:, 1] < small_dev.height / 4)
        assert np.all((a._site_congestion > 0) == in_bin)

    def test_penalty_moves_dsp_out(self, setup, small_dev):
        nl, d, graph = setup
        cong = np.zeros((2, 2))
        cong[0, 0] = 10.0  # anchor's quadrant is jammed
        base_cfg = AssignmentConfig(lam=0.0, eta=0.0, max_iterations=2)
        a0 = DatapathDSPAssigner(nl, small_dev, graph, [d], base_cfg)
        r0, _ = a0.solve(Placement(nl, small_dev))
        cfg = AssignmentConfig(lam=0.0, eta=0.0, max_iterations=2, congestion_weight=1e6)
        a1 = DatapathDSPAssigner(nl, small_dev, graph, [d], cfg)
        a1.set_congestion_map(cong)
        r1, _ = a1.solve(Placement(nl, small_dev))
        xy = small_dev.site_xy("DSP")
        assert xy[r0[d], 0] < small_dev.width / 2  # wirelength wants bottom-left
        s = r1[d]
        outside = xy[s, 0] >= small_dev.width / 2 or xy[s, 1] >= small_dev.height / 2
        assert outside  # surcharge pushed it out of the jammed quadrant

    def test_zero_weight_ignores_map(self, setup, small_dev):
        nl, d, graph = setup
        a = DatapathDSPAssigner(nl, small_dev, graph, [d], AssignmentConfig(lam=0.0, eta=0.0))
        a.set_congestion_map(np.full((2, 2), 10.0))
        p = Placement(nl, small_dev)
        c0 = a.cost_matrix(p, None)
        a._site_congestion = None
        c1 = a.cost_matrix(p, None)
        assert np.allclose(c0, c1)

    def test_dsplacer_congestion_flow(self, mini_accel, small_dev):
        placer = DSPlacer(
            small_dev,
            DSPlacerConfig(
                identification="oracle", mcf_iterations=3, congestion_weight=50.0
            ),
        )
        res = placer.place(mini_accel)
        assert res.placement.is_legal()
