"""Min-cost-flow tests: hand cases, references, properties."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import MinCostFlow, hungarian, min_cost_assignment


class TestMinCostFlowBasics:
    def test_single_edge(self):
        net = MinCostFlow(2)
        e = net.add_edge(0, 1, 5, 2.0)
        flow, cost = net.min_cost_flow(0, 1)
        assert flow == 5
        assert cost == 10.0
        assert net.flow_on(e) == 5

    def test_capacity_limits_flow(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 3, 1.0)
        net.add_edge(1, 2, 2, 1.0)
        flow, cost = net.min_cost_flow(0, 2)
        assert flow == 2
        assert cost == 4.0

    def test_max_flow_argument(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, 10, 1.0)
        flow, _ = net.min_cost_flow(0, 1, max_flow=4)
        assert flow == 4

    def test_prefers_cheap_path(self):
        net = MinCostFlow(4)
        net.add_edge(0, 1, 1, 10.0)
        net.add_edge(1, 3, 1, 10.0)
        net.add_edge(0, 2, 1, 1.0)
        net.add_edge(2, 3, 1, 1.0)
        flow, cost = net.min_cost_flow(0, 3, max_flow=1)
        assert flow == 1
        assert cost == 2.0

    def test_negative_costs_handled(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 1, -5.0)
        net.add_edge(1, 2, 1, 2.0)
        flow, cost = net.min_cost_flow(0, 2)
        assert flow == 1
        assert cost == -3.0

    def test_disconnected_returns_zero_flow(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 1, 1.0)
        flow, cost = net.min_cost_flow(0, 2)
        assert flow == 0
        assert cost == 0.0

    def test_source_equals_sink_rejected(self):
        net = MinCostFlow(2)
        with pytest.raises(ValueError):
            net.min_cost_flow(1, 1)

    def test_bad_edge_rejected(self):
        net = MinCostFlow(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 1.0)


class TestAssignment:
    def test_simple(self):
        asg = min_cost_assignment(2, 2, [(0, 0, 1.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 1.0)])
        assert asg == {0: 0, 1: 1}

    def test_forced_expensive(self):
        asg = min_cost_assignment(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0)])
        assert asg == {0: 1, 1: 0}  # agent 1 can only take slot 0

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            min_cost_assignment(2, 2, [(0, 0, 1.0), (1, 0, 1.0)])

    def test_slot_capacity(self):
        asg = min_cost_assignment(2, 1, [(0, 0, 1.0), (1, 0, 1.0)], slot_capacity=2)
        assert asg == {0: 0, 1: 0}

    def test_empty(self):
        assert min_cost_assignment(0, 3, []) == {}

    def test_out_of_range_arc(self):
        with pytest.raises(IndexError):
            min_cost_assignment(1, 1, [(0, 5, 1.0)])

    def test_duplicate_arcs_ignored(self):
        asg = min_cost_assignment(1, 1, [(0, 0, 1.0), (0, 0, 99.0)])
        assert asg == {0: 0}


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_mcf_matches_hungarian(data):
    """Property: MCF assignment cost equals the Hungarian optimum."""
    n = data.draw(st.integers(1, 6))
    m = data.draw(st.integers(n, 7))
    cost = np.array(
        data.draw(
            st.lists(
                st.lists(st.floats(-20, 20, allow_nan=False), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        )
    )
    arcs = [(i, j, float(cost[i, j])) for i in range(n) for j in range(m)]
    asg = min_cost_assignment(n, m, arcs)
    assert sorted(asg) == list(range(n))
    assert len(set(asg.values())) == n
    got = sum(cost[i, asg[i]] for i in range(n))
    _, ref = hungarian(cost)
    assert got == pytest.approx(ref, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_flow_conservation(data):
    """Property: at every interior node, inflow equals outflow."""
    n_nodes = data.draw(st.integers(3, 7))
    net = MinCostFlow(n_nodes)
    edges = []
    for _ in range(data.draw(st.integers(2, 12))):
        u = data.draw(st.integers(0, n_nodes - 1))
        v = data.draw(st.integers(0, n_nodes - 1))
        if u == v:
            continue
        cap = data.draw(st.integers(0, 5))
        cost = data.draw(st.floats(0, 10, allow_nan=False))
        edges.append((u, v, cap, net.add_edge(u, v, cap, cost)))
    flow, _ = net.min_cost_flow(0, n_nodes - 1)
    balance = [0.0] * n_nodes
    for u, v, cap, eid in edges:
        f = net.flow_on(eid)
        assert -1e-9 <= f <= cap + 1e-9
        balance[u] -= f
        balance[v] += f
    assert balance[0] == pytest.approx(-flow)
    assert balance[n_nodes - 1] == pytest.approx(flow)
    for i in range(1, n_nodes - 1):
        assert balance[i] == pytest.approx(0.0, abs=1e-9)
