"""Min-cost-flow tests: hand cases, references, properties."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import MinCostFlow, hungarian, min_cost_assignment


class TestMinCostFlowBasics:
    def test_single_edge(self):
        net = MinCostFlow(2)
        e = net.add_edge(0, 1, 5, 2.0)
        flow, cost = net.min_cost_flow(0, 1)
        assert flow == 5
        assert cost == 10.0
        assert net.flow_on(e) == 5

    def test_capacity_limits_flow(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 3, 1.0)
        net.add_edge(1, 2, 2, 1.0)
        flow, cost = net.min_cost_flow(0, 2)
        assert flow == 2
        assert cost == 4.0

    def test_max_flow_argument(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, 10, 1.0)
        flow, _ = net.min_cost_flow(0, 1, max_flow=4)
        assert flow == 4

    def test_prefers_cheap_path(self):
        net = MinCostFlow(4)
        net.add_edge(0, 1, 1, 10.0)
        net.add_edge(1, 3, 1, 10.0)
        net.add_edge(0, 2, 1, 1.0)
        net.add_edge(2, 3, 1, 1.0)
        flow, cost = net.min_cost_flow(0, 3, max_flow=1)
        assert flow == 1
        assert cost == 2.0

    def test_negative_costs_handled(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 1, -5.0)
        net.add_edge(1, 2, 1, 2.0)
        flow, cost = net.min_cost_flow(0, 2)
        assert flow == 1
        assert cost == -3.0

    def test_disconnected_returns_zero_flow(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 1, 1.0)
        flow, cost = net.min_cost_flow(0, 2)
        assert flow == 0
        assert cost == 0.0

    def test_source_equals_sink_rejected(self):
        net = MinCostFlow(2)
        with pytest.raises(ValueError):
            net.min_cost_flow(1, 1)

    def test_bad_edge_rejected(self):
        net = MinCostFlow(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 1.0)


class TestAssignment:
    def test_simple(self):
        asg = min_cost_assignment(2, 2, [(0, 0, 1.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 1.0)])
        assert asg == {0: 0, 1: 1}

    def test_forced_expensive(self):
        asg = min_cost_assignment(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0)])
        assert asg == {0: 1, 1: 0}  # agent 1 can only take slot 0

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            min_cost_assignment(2, 2, [(0, 0, 1.0), (1, 0, 1.0)])

    def test_slot_capacity(self):
        asg = min_cost_assignment(2, 1, [(0, 0, 1.0), (1, 0, 1.0)], slot_capacity=2)
        assert asg == {0: 0, 1: 0}

    def test_empty(self):
        assert min_cost_assignment(0, 3, []) == {}

    def test_out_of_range_arc(self):
        with pytest.raises(IndexError):
            min_cost_assignment(1, 1, [(0, 5, 1.0)])

    def test_duplicate_arcs_collapse(self):
        asg = min_cost_assignment(1, 1, [(0, 0, 1.0), (0, 0, 99.0)])
        assert asg == {0: 0}

    @pytest.mark.parametrize(
        "arcs",
        [
            # cheap duplicate listed last (the order that used to lose)
            [(0, 0, 5.0), (0, 1, 3.0), (0, 0, 1.0)],
            # cheap duplicate listed first
            [(0, 0, 1.0), (0, 1, 3.0), (0, 0, 5.0)],
        ],
    )
    def test_duplicate_arcs_keep_min_cost(self, arcs):
        """A duplicate (agent, slot) arc keeps the *minimum* cost regardless
        of listing order. First-wins (the pre-PR-3 behaviour) would price
        slot 0 at 5.0 in the first ordering and wrongly pick slot 1."""
        assert min_cost_assignment(1, 2, arcs) == {0: 0}
        assert min_cost_assignment(1, 2, arcs, method="ssp") == {0: 0}

    def test_arc_arrays_input(self):
        """The DSP loop passes (agents, slots, costs) arrays, not tuples."""
        arcs = (
            np.array([0, 0, 1, 1]),
            np.array([0, 1, 0, 1]),
            np.array([1.0, 9.0, 9.0, 1.0]),
        )
        assert min_cost_assignment(2, 2, arcs) == {0: 0, 1: 1}

    def test_agent_without_arcs_infeasible(self):
        with pytest.raises(ValueError, match="no candidate arc"):
            min_cost_assignment(2, 2, [(0, 0, 1.0), (0, 1, 1.0)])

    def test_methods_agree_with_negative_costs(self):
        arcs = [(0, 0, -5.0), (0, 1, -1.0), (1, 0, -2.0), (1, 1, -4.0)]
        assert min_cost_assignment(2, 2, arcs, method="lapjvsp") == {0: 0, 1: 1}
        assert min_cost_assignment(2, 2, arcs, method="ssp") == {0: 0, 1: 1}

    def test_zero_cost_arcs_survive_lapjvsp(self):
        """Explicit zeros must not vanish from the sparse matching input."""
        arcs = [(0, 0, 0.0), (0, 1, 7.0), (1, 1, 0.0)]
        assert min_cost_assignment(2, 2, arcs, method="lapjvsp") == {0: 0, 1: 1}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown assignment method"):
            min_cost_assignment(1, 1, [(0, 0, 1.0)], method="simplex")

    def test_lapjvsp_rejects_capacity(self):
        with pytest.raises(ValueError, match="slot_capacity"):
            min_cost_assignment(
                2, 1, [(0, 0, 1.0), (1, 0, 1.0)], slot_capacity=2, method="lapjvsp"
            )


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_mcf_matches_hungarian(data):
    """Property: MCF assignment cost equals the Hungarian optimum."""
    n = data.draw(st.integers(1, 6))
    m = data.draw(st.integers(n, 7))
    cost = np.array(
        data.draw(
            st.lists(
                st.lists(st.floats(-20, 20, allow_nan=False), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        )
    )
    arcs = [(i, j, float(cost[i, j])) for i in range(n) for j in range(m)]
    asg = min_cost_assignment(n, m, arcs)
    assert sorted(asg) == list(range(n))
    assert len(set(asg.values())) == n
    got = sum(cost[i, asg[i]] for i in range(n))
    _, ref = hungarian(cost)
    assert got == pytest.approx(ref, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_ssp_matches_lapjvsp_on_sparse_arcs(data):
    """Property: the pure-Python reference and the compiled LAPJVsp path
    return equally cheap assignments on sparse candidate windows with
    negative costs and duplicate arcs.

    Sparse arc sets leave some slot nodes with no incoming arc, so the
    initial Bellman-Ford pass finds them unreachable and defaults their
    potential to 0.0 — this property pins down that those defaults never
    corrupt the reduced costs (an unreachable node can only stay
    unreachable as residual capacity shrinks during the successive
    shortest paths).
    """
    n = data.draw(st.integers(1, 6))
    m = data.draw(st.integers(n, 8))
    arcs = []
    for i in range(n):
        # a guaranteed distinct slot per agent keeps the instance feasible
        arcs.append((i, i, data.draw(st.floats(-20, 20, allow_nan=False))))
        for _ in range(data.draw(st.integers(0, 4))):
            arcs.append(
                (
                    i,
                    data.draw(st.integers(0, m - 1)),
                    data.draw(st.floats(-20, 20, allow_nan=False)),
                )
            )
    ssp = min_cost_assignment(n, m, arcs, method="ssp")
    fast = min_cost_assignment(n, m, arcs, method="lapjvsp")
    best = {}
    for i, j, c in arcs:
        best[(i, j)] = min(best.get((i, j), math.inf), c)
    for asg in (ssp, fast):
        assert sorted(asg) == list(range(n))
        assert len(set(asg.values())) == n
    cost_ssp = sum(best[(i, j)] for i, j in ssp.items())
    cost_fast = sum(best[(i, j)] for i, j in fast.items())
    assert cost_ssp == pytest.approx(cost_fast, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_flow_conservation(data):
    """Property: at every interior node, inflow equals outflow."""
    n_nodes = data.draw(st.integers(3, 7))
    net = MinCostFlow(n_nodes)
    edges = []
    for _ in range(data.draw(st.integers(2, 12))):
        u = data.draw(st.integers(0, n_nodes - 1))
        v = data.draw(st.integers(0, n_nodes - 1))
        if u == v:
            continue
        cap = data.draw(st.integers(0, 5))
        cost = data.draw(st.floats(0, 10, allow_nan=False))
        edges.append((u, v, cap, net.add_edge(u, v, cap, cost)))
    flow, _ = net.min_cost_flow(0, n_nodes - 1)
    balance = [0.0] * n_nodes
    for u, v, cap, eid in edges:
        f = net.flow_on(eid)
        assert -1e-9 <= f <= cap + 1e-9
        balance[u] -= f
        balance[v] += f
    assert balance[0] == pytest.approx(-flow)
    assert balance[n_nodes - 1] == pytest.approx(flow)
    for i in range(1, n_nodes - 1):
        assert balance[i] == pytest.approx(0.0, abs=1e-9)
