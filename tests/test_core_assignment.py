"""Linearized MCF assignment tests."""

import numpy as np
import pytest

from repro.core.extraction import build_dsp_graph, prune_control_dsps
from repro.core.placement import AssignmentConfig, DatapathDSPAssigner
from repro.netlist import CellType, Netlist
from repro.placers import Placement


def _two_dsp_netlist():
    nl = Netlist("a")
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(100.0, 100.0))
    d0 = nl.add_cell("d0", CellType.DSP, is_datapath=True)
    d1 = nl.add_cell("d1", CellType.DSP, is_datapath=True)
    nl.add_net("in", anchor, [d0])
    nl.add_net("c", d0, [d1])
    nl.add_macro([d0, d1])
    return nl, d0, d1


@pytest.fixture()
def assigner_setup(small_dev):
    nl, d0, d1 = _two_dsp_netlist()
    graph = build_dsp_graph(nl)
    return nl, small_dev, graph, [d0, d1]


class TestAssignerBasics:
    def test_assigns_all(self, assigner_setup):
        nl, dev, graph, dsps = assigner_setup
        a = DatapathDSPAssigner(nl, dev, graph, dsps, AssignmentConfig(max_iterations=4))
        result, iters = a.solve(Placement(nl, dev))
        assert set(result) == set(dsps)
        assert len(set(result.values())) == len(dsps)
        assert 1 <= iters <= 4

    def test_sites_near_anchor(self, assigner_setup):
        """The wirelength term should pull d0 toward its fixed anchor."""
        nl, dev, graph, dsps = assigner_setup
        cfg = AssignmentConfig(lam=0.0, eta=0.0, max_iterations=4)
        a = DatapathDSPAssigner(nl, dev, graph, dsps, cfg)
        result, _ = a.solve(Placement(nl, dev))
        site_xy = dev.site_xy("DSP")
        d = np.abs(site_xy[result[dsps[0]]] - [100.0, 100.0]).sum()
        all_d = np.abs(site_xy - [100.0, 100.0]).sum(axis=1)
        assert d <= np.partition(all_d, 3)[3] + 1e-9  # within the 4 closest

    def test_empty_dsps_rejected(self, assigner_setup):
        nl, dev, graph, _ = assigner_setup
        with pytest.raises(ValueError):
            DatapathDSPAssigner(nl, dev, graph, [])

    def test_too_many_dsps_rejected(self, small_dev):
        nl = Netlist("big")
        anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(small_dev.n_dsp + 1)]
        nl.add_net("n", anchor, [dsps[0]])
        graph = build_dsp_graph(nl, paths=[])
        with pytest.raises(ValueError, match="exceed"):
            DatapathDSPAssigner(nl, small_dev, graph, dsps)

    def test_all_engines_agree(self, assigner_setup):
        """MCF, Hungarian and auction solve the same assignment optimally."""
        nl, dev, graph, dsps = assigner_setup
        place = Placement(nl, dev)
        engines = {
            "mcf": AssignmentConfig(engine="mcf", max_iterations=1, candidate_k=dev.n_dsp),
            "lsa": AssignmentConfig(engine="lsa", max_iterations=1),
            "auction": AssignmentConfig(engine="auction", max_iterations=1),
        }
        costs = {}
        for name, cfg in engines.items():
            a = DatapathDSPAssigner(nl, dev, graph, dsps, cfg)
            cost = a.cost_matrix(place, None)
            sites = a._solve_once(cost, None)
            costs[name] = float(cost[np.arange(len(dsps)), sites].sum())
        assert costs["mcf"] == pytest.approx(costs["lsa"], abs=1e-9)
        assert costs["auction"] == pytest.approx(costs["lsa"], abs=1e-4)


class TestAngleTerm:
    def test_datapath_angle_orders_chain(self, small_dev):
        """With a dominant λ, the DSP-graph predecessor must land at a site
        with smaller cos θ (closer to vertical above the PS) than the
        successor (paper eq. 6)."""
        nl, d0, d1 = _two_dsp_netlist()
        graph = build_dsp_graph(nl)
        cfg = AssignmentConfig(lam=1e6, eta=0.0, wl_scale=1e-9, max_iterations=3)
        a = DatapathDSPAssigner(nl, small_dev, graph, [d0, d1], cfg)
        result, _ = a.solve(Placement(nl, small_dev))
        xy = small_dev.site_xy("DSP")

        def cos(s):
            x, y = xy[s]
            return x / np.hypot(x, y)

        assert cos(result[d0]) <= cos(result[d1]) + 1e-9

    def test_angle_coefficient_signs(self, assigner_setup):
        nl, dev, graph, dsps = assigner_setup
        a = DatapathDSPAssigner(nl, dev, graph, dsps, AssignmentConfig(lam=100.0))
        # d0 is a pure predecessor (+λ), d1 a pure successor (−λ)
        assert a._angle_coef[0] == pytest.approx(100.0)
        assert a._angle_coef[1] == pytest.approx(-100.0)


class TestCascadeTerm:
    def test_eta_pulls_pairs_together(self, small_dev):
        nl, d0, d1 = _two_dsp_netlist()
        graph = build_dsp_graph(nl)
        cfg = AssignmentConfig(lam=0.0, eta=1e5, wl_scale=1e-9, max_iterations=6)
        a = DatapathDSPAssigner(nl, small_dev, graph, [d0, d1], cfg)
        result, _ = a.solve(Placement(nl, small_dev))
        # successor should sit exactly one site above the predecessor
        assert result[d1] == result[d0] + 1

    def test_convergence_stops_early(self, assigner_setup):
        nl, dev, graph, dsps = assigner_setup
        cfg = AssignmentConfig(max_iterations=50)
        a = DatapathDSPAssigner(nl, dev, graph, dsps, cfg)
        _, iters = a.solve(Placement(nl, dev))
        assert iters < 50


class TestOnGeneratedDesign:
    def test_full_extraction_to_assignment(self, mini_accel, small_dev):
        from repro.core.extraction import iddfs_dsp_paths

        paths = iddfs_dsp_paths(mini_accel)
        graph = build_dsp_graph(mini_accel, paths)
        flags = {i: bool(mini_accel.cells[i].is_datapath) for i in mini_accel.dsp_indices()}
        dgraph = prune_control_dsps(graph, flags)
        dsps = sorted(dgraph.nodes)
        from repro.placers import VivadoLikePlacer

        place = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        a = DatapathDSPAssigner(mini_accel, small_dev, dgraph, dsps, AssignmentConfig(max_iterations=6))
        result, _ = a.solve(place.copy())
        assert set(result) == set(dsps)
        assert len(set(result.values())) == len(dsps)
