"""Intra-column legalization DP and L1 isotonic regression."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import ColumnBlock, l1_isotonic, legalize_column_rows


def brute_force(blocks, m_rows):
    sizes = [b.size for b in blocks]
    best = (math.inf, None)

    def rec(j, min_row, starts, cost):
        nonlocal best
        if cost >= best[0]:
            return
        if j == len(blocks):
            best = (cost, list(starts))
            return
        hi = m_rows - sum(sizes[j:])
        for r in range(min_row, hi + 1):
            rec(j + 1, r + sizes[j], starts + [r], cost + blocks[j].cost_at(r))

    rec(0, 0, [], 0.0)
    return best


class TestColumnBlock:
    def test_cost_at(self):
        b = ColumnBlock(targets=(2.0, 3.0))
        assert b.cost_at(2) == 0.0
        assert b.cost_at(0) == 4.0

    def test_size(self):
        assert ColumnBlock(targets=(1.0,)).size == 1


class TestLegalizeColumnRows:
    def test_empty(self):
        assert legalize_column_rows([], 5) == []

    def test_single_block_snaps_to_target(self):
        starts = legalize_column_rows([ColumnBlock(targets=(3.0,))], 10)
        assert starts == [3]

    def test_target_outside_clamps(self):
        starts = legalize_column_rows([ColumnBlock(targets=(99.0, 100.0))], 6)
        assert starts == [4]  # rows 4,5

    def test_ordering_enforced(self):
        blocks = [ColumnBlock(targets=(5.0,)), ColumnBlock(targets=(5.0,))]
        starts = legalize_column_rows(blocks, 10)
        assert starts[1] >= starts[0] + 1

    def test_does_not_fit_raises(self):
        with pytest.raises(ValueError, match="rows"):
            legalize_column_rows([ColumnBlock(targets=(0.0,) * 5)], 4)

    def test_exact_fit(self):
        blocks = [ColumnBlock(targets=(9.0, 9.0)), ColumnBlock(targets=(0.0, 0.0))]
        starts = legalize_column_rows(blocks, 4)
        assert starts == [0, 2]  # forced packing despite targets

    def test_known_optimal(self):
        blocks = [
            ColumnBlock(targets=(1.0, 2.0)),
            ColumnBlock(targets=(2.5,)),
            ColumnBlock(targets=(6.0,)),
        ]
        starts = legalize_column_rows(blocks, 8)
        cost = sum(b.cost_at(r) for b, r in zip(blocks, starts))
        ref, _ = brute_force(blocks, 8)
        assert cost == pytest.approx(ref)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_dp_matches_brute_force(data):
    m_rows = data.draw(st.integers(3, 9))
    n_blocks = data.draw(st.integers(1, 4))
    blocks = []
    total = 0
    for _ in range(n_blocks):
        size = data.draw(st.integers(1, 3))
        if total + size > m_rows:
            break
        total += size
        targets = tuple(
            data.draw(st.floats(-2, m_rows + 2, allow_nan=False)) for _ in range(size)
        )
        blocks.append(ColumnBlock(targets=targets))
    if not blocks:
        return
    starts = legalize_column_rows(blocks, m_rows)
    # feasibility
    assert starts[0] >= 0
    for j in range(1, len(blocks)):
        assert starts[j] >= starts[j - 1] + blocks[j - 1].size
    assert starts[-1] + blocks[-1].size <= m_rows
    # optimality
    cost = sum(b.cost_at(r) for b, r in zip(blocks, starts))
    ref, _ = brute_force(blocks, m_rows)
    assert cost == pytest.approx(ref, abs=1e-9)


class TestL1Isotonic:
    def test_already_monotone(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(l1_isotonic(v), v)

    def test_single_violation_pools(self):
        f = l1_isotonic(np.array([2.0, 1.0]))
        assert f[0] == f[1]
        assert 1.0 <= f[0] <= 2.0

    def test_output_monotone(self, rng):
        for _ in range(20):
            v = rng.normal(size=15)
            f = l1_isotonic(v)
            assert np.all(np.diff(f) >= -1e-12)

    def test_weighted_pull(self):
        # heavy weight on the second value dominates the pooled median
        f = l1_isotonic(np.array([5.0, 1.0]), weights=np.array([1.0, 10.0]))
        assert f[0] == f[1] == 1.0

    def test_empty(self):
        assert l1_isotonic(np.array([])).size == 0

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            l1_isotonic(np.array([1.0]), weights=np.array([-1.0]))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=12)
)
def test_isotonic_is_optimal_vs_candidate_levels(values):
    """Property: L1 isotonic fit beats any monotone fit over value levels.

    The optimal L1 isotonic solution uses only input values as levels, so
    comparing against all monotone assignments of those levels is exact for
    small n.
    """
    v = np.array(values)
    f = l1_isotonic(v)
    cost = np.abs(f - v).sum()
    if len(values) <= 6:
        levels = sorted(set(values))
        best = math.inf
        for combo in itertools.combinations_with_replacement(levels, len(values)):
            best = min(best, float(np.abs(np.array(combo) - v).sum()))
        assert cost == pytest.approx(best, abs=1e-9)
    assert np.all(np.diff(f) >= -1e-12)
