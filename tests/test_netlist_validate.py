"""Netlist/device validation: actionable diagnostics, permissive downgrade."""

import json

import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.errors import NetlistValidationError, ReproError
from repro.netlist import (
    CellType,
    Netlist,
    load_netlist,
    netlist_problems,
    netlist_to_json,
    validate_netlist,
)


def _base_netlist():
    nl = Netlist("v")
    pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(3)]
    nl.add_net("seed", pad, [dsps[0]])
    nl.add_net("c0", dsps[0], [dsps[1]])
    return nl, dsps


class TestNetlistProblems:
    def test_clean_netlist_has_no_problems(self, mini_accel, small_dev):
        assert netlist_problems(mini_accel, small_dev) == []

    def test_dangling_net_reported(self):
        nl, _ = _base_netlist()
        # corrupt a net to dangle past the cell list (bypasses add_net checks)
        object.__setattr__(nl.nets[0], "sinks", (99,))
        problems = netlist_problems(nl)
        assert any("dangles" in p and "99" in p for p in problems)

    def test_duplicate_cell_names_reported(self):
        nl, _ = _base_netlist()
        nl.cells[1].name = "pad"  # collide with the IO pad
        problems = netlist_problems(nl)
        assert any("duplicate cell name 'pad'" in p for p in problems)

    def test_dsp_overflow_vs_device(self, small_dev):
        nl = Netlist("big")
        pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(small_dev.n_dsp + 1)]
        nl.add_net("seed", pad, [dsps[0]])
        problems = netlist_problems(nl, small_dev)
        assert any("DSP sites" in p and "--scale" in p for p in problems)

    def test_macro_longer_than_any_column(self, small_dev):
        tallest = max(c.n_sites for c in small_dev.kind_columns("DSP"))
        nl = Netlist("long")
        pad = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(tallest + 1)]
        nl.add_net("seed", pad, [dsps[0]])
        nl.add_macro(dsps)
        problems = netlist_problems(nl, small_dev)
        assert any("tallest DSP column" in p for p in problems)

    def test_validate_netlist_raises_with_all_problems(self, small_dev):
        nl, _ = _base_netlist()
        nl.cells[1].name = "pad"
        object.__setattr__(nl.nets[0], "sinks", (99,))
        with pytest.raises(NetlistValidationError) as err:
            validate_netlist(nl, small_dev)
        msg = str(err.value)
        assert "duplicate cell name" in msg and "dangles" in msg
        assert isinstance(err.value, ValueError)  # backward compatible
        assert isinstance(err.value, ReproError)


class TestLoadValidates:
    def test_load_netlist_rejects_dangling(self, tmp_path, mini_accel):
        doc = netlist_to_json(mini_accel)
        doc["nets"][0]["sinks"] = [len(doc["cells"]) + 7]
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(doc))
        with pytest.raises(NetlistValidationError, match="dangle"):
            load_netlist(p)

    def test_roundtrip_still_works(self, tmp_path, mini_accel):
        p = tmp_path / "ok.json"
        p.write_text(json.dumps(netlist_to_json(mini_accel)))
        assert len(load_netlist(p).cells) == len(mini_accel.cells)


class TestPlacerIntegration:
    def test_strict_placer_rejects_invalid(self, small_dev, mini_accel):
        nl = mini_accel
        # sneak in a duplicate name on a copy via JSON round-trip
        from repro.netlist import netlist_from_json

        bad = netlist_from_json(netlist_to_json(nl))
        bad.cells[1].name = bad.cells[0].name
        placer = DSPlacer(
            small_dev, DSPlacerConfig(identification="oracle", strict=True)
        )
        with pytest.raises(NetlistValidationError):
            placer.place(bad)

    def test_permissive_placer_downgrades_to_warning(self, small_dev, mini_accel):
        from repro.netlist import netlist_from_json

        bad = netlist_from_json(netlist_to_json(mini_accel))
        bad.cells[1].name = bad.cells[0].name
        placer = DSPlacer(
            small_dev, DSPlacerConfig(identification="oracle", mcf_iterations=3)
        )
        res = placer.place(bad)
        assert res.placement.is_legal()
        assert res.health.n_warnings >= 1
        assert any(e.stage == "validation" for e in res.health.events)
