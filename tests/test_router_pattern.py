"""Pattern-router tests: feasibility, capacity negotiation, RUDY agreement."""

import numpy as np
import pytest

from repro.placers import Placement, VivadoLikePlacer
from repro.router import GlobalRouter, PatternRouter


@pytest.fixture(scope="module")
def placed(mini_accel, small_dev):
    return VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)


class TestPatternRouter:
    def test_routes_every_net(self, placed, mini_accel):
        r = PatternRouter(grid=(12, 12)).route(placed)
        assert r.net_routed_len.shape == (len(mini_accel.nets),)
        assert np.all(r.net_routed_len >= 0)
        assert np.isfinite(r.total_wirelength)

    def test_detour_bounds(self, placed):
        r = PatternRouter(grid=(12, 12)).route(placed)
        assert np.all(r.net_detour >= 1.0)
        assert np.all(r.net_detour <= 2.5)

    def test_routed_at_least_hpwl_steiner(self, placed, mini_accel):
        from repro.router.estimator import net_hpwl, steiner_factor

        r = PatternRouter(grid=(12, 12)).route(placed)
        base = net_hpwl(placed) * steiner_factor(
            np.array([n.degree for n in mini_accel.nets], dtype=float)
        )
        assert np.all(r.net_routed_len >= base - 1e-6)

    def test_negotiation_reduces_overflow(self, placed):
        tight = dict(grid=(12, 12), capacity_per_edge=25.0)
        one = PatternRouter(n_rounds=1, **tight).route(placed)
        many = PatternRouter(n_rounds=4, **tight).route(placed)
        assert many.overflow_frac <= one.overflow_frac + 1e-9

    def test_correlates_with_rudy(self, placed):
        """Both congestion models must agree on where the hot region is."""
        rudy = GlobalRouter(grid=(12, 12)).route(placed)
        pat = PatternRouter(grid=(12, 12)).route(placed)
        a = rudy.congestion.ravel()
        b = pat.congestion.ravel()
        keep = (a > 0) | (b > 0)
        corr = np.corrcoef(a[keep], b[keep])[0, 1]
        assert corr > 0.4, corr

    def test_connection_cap(self, placed):
        with pytest.raises(ValueError, match="connections"):
            PatternRouter(max_connections=10).route(placed)

    def test_same_bin_connection(self, small_dev):
        """Driver and sink in one bin: zero bins crossed, detour 1."""
        from repro.netlist import CellType, Netlist

        nl = Netlist("t")
        a = nl.add_cell("a", CellType.LUT)
        b = nl.add_cell("b", CellType.FF)
        anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(5.0, 5.0))
        nl.add_net("n0", anchor, [a])
        nl.add_net("n", a, [b])
        p = Placement(nl, small_dev)
        p.xy[a] = (10.0, 10.0)
        p.xy[b] = (11.0, 11.0)
        r = PatternRouter(grid=(8, 8)).route(p)
        assert np.isfinite(r.total_wirelength)
