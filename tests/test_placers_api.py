"""The unified Placer protocol: conformance, cancellation, config hashing."""

import json

import pytest

from repro.core import DSPlacer
from repro.core.dsplacer import DSPlacerConfig
from repro.errors import ConfigurationError
from repro.placers import (
    PLACER_NAMES,
    DSPlacerAdapter,
    Placer,
    get_placer,
)
from repro.placers.api import PlacementRequest, PlacementResponse
from repro.placers.vivado_like import VivadoLikePlacer


class TestProtocolConformance:
    @pytest.mark.parametrize("name", PLACER_NAMES)
    def test_every_engine_conforms(self, name, small_dev, mini_accel):
        placer = get_placer(name, small_dev, seed=0)
        assert isinstance(placer, Placer)
        assert placer.name == name
        placement = placer.place(mini_accel)
        assert placement.is_legal(), placement.legality_violations()[:3]

    def test_unknown_name_rejected(self, small_dev):
        with pytest.raises(ConfigurationError, match="unknown placer"):
            get_placer("quartus", small_dev)

    def test_adapter_keeps_full_result(self, small_dev, mini_accel):
        adapter = get_placer("dsplacer", small_dev, seed=0)
        assert isinstance(adapter, DSPlacerAdapter)
        assert adapter.last_result is None
        placement = adapter.place(mini_accel)
        result = adapter.last_result
        assert result is not None
        assert result.placement is placement
        assert result.identification is not None

    def test_adapter_seed_override_rebuilds(self, small_dev, mini_accel):
        adapter = get_placer("dsplacer", small_dev, seed=0)
        adapter.place(mini_accel, seed=7)
        # the underlying DSPlacer keeps seed 0; the run used 7
        assert adapter.dsplacer.config.seed == 0
        assert adapter.last_result is not None

    def test_as_placer_shortcut(self, small_dev):
        placer = DSPlacer(small_dev)
        adapter = placer.as_placer()
        assert isinstance(adapter, DSPlacerAdapter)
        assert adapter.dsplacer is placer


class TestShimRemoved:
    """The PR 2 ``place(netlist, device)`` deprecation shim is gone."""

    def test_positional_device_rejected(self, small_dev, mini_accel):
        # the second positional is now `placement`; with no bound device the
        # call errors loudly instead of silently re-binding
        with pytest.raises((TypeError, AttributeError, ConfigurationError)):
            VivadoLikePlacer(seed=0).place(mini_accel, small_dev)

    def test_no_device_anywhere_is_an_error(self, mini_accel):
        with pytest.raises(ConfigurationError, match="no device"):
            VivadoLikePlacer(seed=0).place(mini_accel)


class TestCancellationHook:
    @pytest.mark.parametrize("name", PLACER_NAMES)
    def test_every_engine_has_cancel(self, name, small_dev):
        placer = get_placer(name, small_dev, seed=0)
        assert callable(placer.cancel)

    def test_dsplacer_cancel_stops_outer_loop(self, small_dev, mini_accel):
        adapter = get_placer("dsplacer", small_dev, seed=0)
        adapter.dsplacer.request_cancel()
        placement = adapter.place(mini_accel)
        assert placement.is_legal()
        health = adapter.last_result.health
        assert health.count("cancelled") == 1
        assert health.degraded
        # no assignment work happened: the flag fired before iteration 1
        assert adapter.last_result.mcf_iterations_used == []

    def test_cancel_flag_is_consumed(self, small_dev, mini_accel):
        adapter = get_placer("dsplacer", small_dev, seed=0)
        adapter.cancel()
        adapter.place(mini_accel)
        assert adapter.last_result.health.count("cancelled") == 1
        # next run is clean
        adapter.place(mini_accel)
        assert adapter.last_result.health.count("cancelled") == 0

    def test_baseline_cancel_is_safe(self, small_dev, mini_accel):
        placer = get_placer("vivado", small_dev, seed=0)
        placer.cancel()  # before the run: single pass still completes
        assert placer.place(mini_accel).is_legal()


class TestConfigRoundTrip:
    def test_to_dict_from_dict(self):
        cfg = DSPlacerConfig(seed=3, outer_iterations=2)
        again = DSPlacerConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_partial_dict_uses_defaults(self):
        cfg = DSPlacerConfig.from_dict({"seed": 11})
        assert cfg.seed == 11
        assert cfg.outer_iterations == DSPlacerConfig().outer_iterations

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            DSPlacerConfig.from_dict({"seed": 1, "turbo": True})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            DSPlacerConfig.from_dict(["seed", 1])

    def test_config_flows_through_factory(self, small_dev):
        cfg = DSPlacerConfig(seed=5, outer_iterations=1)
        adapter = get_placer("dsplacer", small_dev, config=cfg)
        assert adapter.dsplacer.config is cfg


class TestConfigCanonicalForm:
    """to_dict is the canonical, hash-stable serve cache-key form."""

    def test_keys_sorted_and_defaults_filled(self):
        doc = DSPlacerConfig().to_dict()
        assert list(doc) == sorted(doc)
        assert set(doc) == {f for f in DSPlacerConfig.__dataclass_fields__}

    def test_equivalent_configs_hash_identically(self):
        # an int-valued float knob and a bool-as-int must normalize
        a = DSPlacerConfig.from_dict({"lam": 100, "strict": 0, "eta": 25})
        b = DSPlacerConfig(lam=100.0, strict=False, eta=25.0)
        assert a.to_dict() == b.to_dict()
        assert a.content_hash() == b.content_hash()

    def test_different_configs_hash_differently(self):
        assert (
            DSPlacerConfig(seed=0).content_hash()
            != DSPlacerConfig(seed=1).content_hash()
        )

    def test_round_trip_through_canonical_json(self):
        cfg = DSPlacerConfig(seed=9, lam=7.5, stage_budget_s=2)
        doc = json.loads(cfg.canonical_json())
        again = DSPlacerConfig.from_dict(doc)
        assert again == cfg
        assert again.content_hash() == cfg.content_hash()

    def test_optional_float_normalizes(self):
        a = DSPlacerConfig.from_dict({"stage_budget_s": 2})
        b = DSPlacerConfig(stage_budget_s=2.0)
        assert a.content_hash() == b.content_hash()
        assert DSPlacerConfig().to_dict()["stage_budget_s"] is None


class TestPlacementRequest:
    def test_defaults_and_validation(self):
        req = PlacementRequest()
        assert req.tool == "dsplacer" and req.race_k == 1
        with pytest.raises(ConfigurationError, match="unknown tool"):
            PlacementRequest(tool="quartus")
        with pytest.raises(ConfigurationError, match="race policy"):
            PlacementRequest(race_policy="lottery")
        with pytest.raises(ConfigurationError, match="race_k"):
            PlacementRequest(race_k=0)

    def test_round_trip(self):
        req = PlacementRequest(
            suite="skrskr1", scale=0.05, seed=3, race_k=3, race_policy="first",
            config={"outer_iterations": 1},
        )
        again = PlacementRequest.from_dict(req.to_dict())
        assert again == req
        with pytest.raises(ConfigurationError, match="unknown PlacementRequest"):
            PlacementRequest.from_dict({"sweet": "skynet"})

    def test_attempt_seeds_and_with_seed(self):
        req = PlacementRequest(seed=10, race_k=3)
        assert req.attempt_seeds() == [10, 11, 12]
        pinned = req.with_seed(12)
        assert pinned.seed == 12
        # the workload netlist stays pinned to the base seed
        assert pinned.effective_netlist_seed == 10
        assert pinned.resolved_config().seed == 12

    def test_config_overrides_flow_into_resolved_config(self):
        req = PlacementRequest(seed=2, config={"lam": 50, "outer_iterations": 1})
        cfg = req.resolved_config()
        assert cfg.lam == 50.0 and cfg.outer_iterations == 1 and cfg.seed == 2


class TestPlacementResponse:
    def test_ok_and_wall_time(self):
        resp = PlacementResponse(
            job_id="j1", status="ok", submitted_unix=1.0, finished_unix=3.5
        )
        assert resp.ok and resp.wall_s == pytest.approx(2.5)
        assert resp.raise_for_status() is resp

    def test_raise_for_status_rehydrates_typed_error(self):
        from repro.errors import ServeError, WorkerCrashError

        resp = PlacementResponse(
            job_id="j2",
            status="failed",
            error={"type": "WorkerCrashError", "message": "worker died"},
        )
        with pytest.raises(WorkerCrashError, match="worker died"):
            resp.raise_for_status()
        bare = PlacementResponse(job_id="j3", status="cancelled")
        with pytest.raises(ServeError):
            bare.raise_for_status()

    def test_to_dict_is_json_ready(self):
        resp = PlacementResponse(job_id="j4", status="ok", request=PlacementRequest())
        doc = json.loads(json.dumps(resp.to_dict()))
        assert doc["job_id"] == "j4" and doc["request"]["tool"] == "dsplacer"
