"""The unified Placer protocol: conformance, shims, config round-trips."""

import warnings

import pytest

from repro.core import DSPlacer
from repro.core.dsplacer import DSPlacerConfig
from repro.errors import ConfigurationError
from repro.placers import (
    PLACER_NAMES,
    DSPlacerAdapter,
    Placer,
    get_placer,
)
from repro.placers.vivado_like import VivadoLikePlacer


class TestProtocolConformance:
    @pytest.mark.parametrize("name", PLACER_NAMES)
    def test_every_engine_conforms(self, name, small_dev, mini_accel):
        placer = get_placer(name, small_dev, seed=0)
        assert isinstance(placer, Placer)
        assert placer.name == name
        placement = placer.place(mini_accel)
        assert placement.is_legal(), placement.legality_violations()[:3]

    def test_unknown_name_rejected(self, small_dev):
        with pytest.raises(ConfigurationError, match="unknown placer"):
            get_placer("quartus", small_dev)

    def test_adapter_keeps_full_result(self, small_dev, mini_accel):
        adapter = get_placer("dsplacer", small_dev, seed=0)
        assert isinstance(adapter, DSPlacerAdapter)
        assert adapter.last_result is None
        placement = adapter.place(mini_accel)
        result = adapter.last_result
        assert result is not None
        assert result.placement is placement
        assert result.identification is not None

    def test_adapter_seed_override_rebuilds(self, small_dev, mini_accel):
        adapter = get_placer("dsplacer", small_dev, seed=0)
        adapter.place(mini_accel, seed=7)
        # the underlying DSPlacer keeps seed 0; the run used 7
        assert adapter.dsplacer.config.seed == 0
        assert adapter.last_result is not None

    def test_as_placer_shortcut(self, small_dev):
        placer = DSPlacer(small_dev)
        adapter = placer.as_placer()
        assert isinstance(adapter, DSPlacerAdapter)
        assert adapter.dsplacer is placer


class TestLegacyShim:
    def test_old_signature_warns_but_works(self, small_dev, mini_accel):
        placer = VivadoLikePlacer(seed=0)  # no device bound
        with pytest.warns(DeprecationWarning, match="deprecated"):
            placement = placer.place(mini_accel, small_dev)
        assert placement.is_legal()

    def test_bound_device_does_not_warn(self, small_dev, mini_accel):
        placer = VivadoLikePlacer(seed=0, device=small_dev)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            placement = placer.place(mini_accel)
        assert placement.is_legal()

    def test_no_device_anywhere_is_an_error(self, mini_accel):
        with pytest.raises(ConfigurationError, match="no device"):
            VivadoLikePlacer(seed=0).place(mini_accel)


class TestConfigRoundTrip:
    def test_to_dict_from_dict(self):
        cfg = DSPlacerConfig(seed=3, outer_iterations=2)
        again = DSPlacerConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_partial_dict_uses_defaults(self):
        cfg = DSPlacerConfig.from_dict({"seed": 11})
        assert cfg.seed == 11
        assert cfg.outer_iterations == DSPlacerConfig().outer_iterations

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            DSPlacerConfig.from_dict({"seed": 1, "turbo": True})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            DSPlacerConfig.from_dict(["seed", 1])

    def test_config_flows_through_factory(self, small_dev):
        cfg = DSPlacerConfig(seed=5, outer_iterations=1)
        adapter = get_placer("dsplacer", small_dev, config=cfg)
        assert adapter.dsplacer.config is cfg
