"""IDDFS DSP path search vs BFS ground truth."""

import networkx as nx
import numpy as np
import pytest

from repro.core.extraction import iddfs_dsp_paths
from repro.netlist import CellType, Netlist


class TestIDDFSBasics:
    def test_direct_connection(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("n", a, [b])
        paths = iddfs_dsp_paths(nl)
        assert any(p.src == a and p.dst == b and p.dist == 1 for p in paths)

    def test_respects_direction(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("n", a, [b])
        paths = iddfs_dsp_paths(nl)
        assert not any(p.src == b and p.dst == a for p in paths)

    def test_through_logic(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        l1 = nl.add_cell("l1", CellType.LUT)
        f = nl.add_cell("f", CellType.FF)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("n0", a, [l1])
        nl.add_net("n1", l1, [f])
        nl.add_net("n2", f, [b])
        (p,) = iddfs_dsp_paths(nl)
        assert (p.src, p.dst, p.dist) == (a, b, 3)
        assert p.n_storage == 1  # the FF

    def test_does_not_pass_through_dsps(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        mid = nl.add_cell("m", CellType.DSP)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("n0", a, [mid])
        nl.add_net("n1", mid, [b])
        paths = {(p.src, p.dst) for p in iddfs_dsp_paths(nl)}
        assert (a, mid) in paths and (mid, b) in paths
        assert (a, b) not in paths  # would have to pass through mid

    def test_depth_cutoff(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        prev = a
        for i in range(5):
            l = nl.add_cell(f"l{i}", CellType.LUT)
            nl.add_net(f"n{i}", prev, [l])
            prev = l
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("last", prev, [b])
        assert iddfs_dsp_paths(nl, max_depth=3) == []
        assert len(iddfs_dsp_paths(nl, max_depth=6)) == 1

    def test_high_fanout_nets_skipped(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        sinks = [nl.add_cell(f"s{i}", CellType.LUT) for i in range(30)]
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("wide", a, sinks)
        nl.add_net("n", sinks[0], [b])
        assert iddfs_dsp_paths(nl, max_fanout=16) == []
        assert len(iddfs_dsp_paths(nl, max_fanout=64)) == 1

    def test_sources_restriction(self):
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        b = nl.add_cell("b", CellType.DSP)
        c = nl.add_cell("c", CellType.DSP)
        nl.add_net("n0", a, [b])
        nl.add_net("n1", b, [c])
        paths = iddfs_dsp_paths(nl, sources=[a])
        assert {p.src for p in paths} == {a}


class TestEarlyExit:
    def test_deepening_stops_when_frontier_exhausted(self):
        """Regression for the dead ``continue``: once no node sits exactly at
        the current depth limit, deeper limits cannot discover anything and
        the reference engine must stop deepening."""
        from repro.core.extraction.iddfs import _iddfs_single_source

        # diameter-2 reachable set, but a huge max_depth
        nl = Netlist("short")
        a = nl.add_cell("a", CellType.DSP)
        l1 = nl.add_cell("l1", CellType.LUT)
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("n0", a, [l1])
        nl.add_net("n1", l1, [b])
        adj = [[] for _ in nl.cells]
        for net in nl.nets:
            adj[net.driver].extend(net.sinks)
        is_dsp = [c.ctype.is_dsp for c in nl.cells]
        is_storage = [c.ctype.is_storage for c in nl.cells]
        found, deepest = _iddfs_single_source(adj, is_dsp, is_storage, a, max_depth=50)
        assert found == {b: (2, 0)}
        assert deepest <= 3  # stopped as soon as the limit overshot the reach

    def test_early_exit_does_not_truncate_results(self):
        """The break must fire only when deepening is genuinely exhausted: a
        long chain still yields its full-depth path."""
        nl = Netlist("chain")
        a = nl.add_cell("a", CellType.DSP)
        prev = a
        for i in range(5):
            l = nl.add_cell(f"l{i}", CellType.LUT)
            nl.add_net(f"n{i}", prev, [l])
            prev = l
        b = nl.add_cell("b", CellType.DSP)
        nl.add_net("last", prev, [b])
        (p,) = iddfs_dsp_paths(nl, max_depth=6, method="python")
        assert (p.src, p.dst, p.dist) == (a, b, 6)


def test_iddfs_distances_match_bfs(mini_accel):
    """Property on a real generated netlist: IDDFS distances equal BFS
    shortest distances on the fanout-filtered DSP-free digraph."""
    max_fanout, max_depth = 16, 5
    g = nx.DiGraph()
    for i, _c in enumerate(mini_accel.cells):
        g.add_node(i)
    for net in mini_accel.nets:
        if len(net.sinks) > max_fanout:
            continue
        for s in net.sinks:
            g.add_edge(net.driver, s)
    is_dsp = {c.index for c in mini_accel.cells if c.ctype.is_dsp}

    paths = iddfs_dsp_paths(mini_accel, max_depth=max_depth, max_fanout=max_fanout)
    got = {(p.src, p.dst): p.dist for p in paths}

    # BFS reference: shortest path not passing through intermediate DSPs
    import collections

    for src in list(is_dsp)[:10]:
        dist = {src: 0}
        q = collections.deque([src])
        while q:
            u = q.popleft()
            if u != src and u in is_dsp:
                continue  # do not expand through DSPs
            for v in g.successors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    q.append(v)
        for dst in is_dsp:
            if dst == src:
                continue
            d = dist.get(dst)
            if d is not None and d <= max_depth:
                assert got.get((src, dst)) == d, (src, dst)
            else:
                assert (src, dst) not in got
