"""PR 3 assignment-loop tests: vectorization equivalence + correctness fixes.

The vectorized ``cost_matrix``/``objective`` are checked against
loop-reference implementations (the pre-vectorization code, kept here as
the ground truth) to 1e-9 on seeded instances, the per-iterate MCF solve is
checked to produce *identical assignments* before/after vectorization, and
the `AssignmentConfig` validation plus the DSP–DSP half-counting fix get
dedicated regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
from repro.core.placement import AssignmentConfig, DatapathDSPAssigner
from repro.errors import ConfigurationError
from repro.netlist import CellType, Netlist
from repro.placers import Placement
from repro.solvers.mcf import min_cost_assignment


# ----------------------------------------------------------------------
# loop references: the pre-vectorization implementations
# ----------------------------------------------------------------------
def cost_matrix_ref(a: DatapathDSPAssigner, placement, prev_sites):
    """Per-row loop implementation of eq. 9 (pre-PR-3 ``cost_matrix``)."""
    cfg = a.config
    n = len(a.dsps)
    m = a.site_xy.shape[0]
    cost = np.empty((n, m))
    for k in range(n):
        idx, val = a._neighbors[k]
        if idx.size:
            pts = placement.xy[idx]
            w_sum = float(val.sum())
            mvec = (val[:, None] * pts).sum(axis=0)
            q = float((val * (pts**2).sum(axis=1)).sum())
            wl = w_sum * a._site_sq - 2.0 * (a.site_xy @ mvec) + q
        else:
            wl = np.zeros(m)
        cost[k] = cfg.wl_scale * wl
    cost += a._angle_coef[:, None] * a._site_cos[None, :]
    if cfg.congestion_weight > 0 and a._site_congestion is not None:
        cost += cfg.congestion_weight * a._site_congestion[None, :]
    if prev_sites is not None and cfg.eta > 0:
        for k in range(n):
            for partner, offset in a._partners[k]:
                ps = prev_sites[partner]
                if ps < 0:
                    continue
                target = ps + offset
                cost[k] += cfg.eta
                if 0 <= target < m and a._site_col[target] == a._site_col[ps]:
                    cost[k, target] -= cfg.eta
    return cost


def objective_ref(a: DatapathDSPAssigner, sites, placement):
    """Loop implementation of the true eq. 7 objective with the canonical
    pair accounting (each DSP–DSP pair counted exactly once, weight = mean
    of the neighbour-list sides that survived top-K truncation)."""
    cfg = a.config
    new_xy = {cell: a.site_xy[sites[k]] for k, cell in enumerate(a.dsps)}
    in_dsps = {d: k for k, d in enumerate(a.dsps)}
    total = 0.0
    pair_acc: dict[tuple[int, int], tuple[float, int]] = {}
    for k, cell in enumerate(a.dsps):
        idx, val = a._neighbors[k]
        p0 = new_xy[cell]
        for j, w in zip(idx, val):
            j = int(j)
            kj = in_dsps.get(j)
            if kj is None:
                d = p0 - placement.xy[j]
                total += w * float(d @ d)
            elif kj != k:
                key = (k, kj) if k < kj else (kj, k)
                acc, cnt = pair_acc.get(key, (0.0, 0))
                pair_acc[key] = (acc + w, cnt + 1)
    for (ka, kb), (acc, cnt) in pair_acc.items():
        d = a.site_xy[sites[ka]] - a.site_xy[sites[kb]]
        total += (acc / cnt) * float(d @ d)
    total *= cfg.wl_scale
    for k in range(len(a.dsps)):
        total += a._angle_coef[k] * a._site_cos[sites[k]]
    if cfg.eta > 0:
        for kp, ks in a._pairs:
            adjacent = (
                sites[ks] == sites[kp] + 1
                and a._site_col[sites[ks]] == a._site_col[sites[kp]]
            )
            if not adjacent:
                total += cfg.eta
    return total


def objective_ref_halved(a: DatapathDSPAssigner, sites, placement):
    """The pre-PR-3 objective: every DSP–DSP term halved unconditionally.

    Agrees with the fixed accounting exactly when every DSP–DSP edge
    survives truncation on both sides.
    """
    cfg = a.config
    pos = placement.xy
    new_xy = {cell: a.site_xy[sites[k]] for k, cell in enumerate(a.dsps)}
    in_dsps = {d: k for k, d in enumerate(a.dsps)}
    total = 0.0
    for k, cell in enumerate(a.dsps):
        idx, val = a._neighbors[k]
        p0 = new_xy[cell]
        for j, w in zip(idx, val):
            j = int(j)
            d = p0 - (new_xy[j] if j in in_dsps else pos[j])
            term = w * float(d @ d)
            total += term / 2.0 if j in in_dsps else term
    total *= cfg.wl_scale
    for k in range(len(a.dsps)):
        total += a._angle_coef[k] * a._site_cos[sites[k]]
    if cfg.eta > 0:
        for kp, ks in a._pairs:
            adjacent = (
                sites[ks] == sites[kp] + 1
                and a._site_col[sites[ks]] == a._site_col[sites[kp]]
            )
            if not adjacent:
                total += cfg.eta
    return total


@pytest.fixture(scope="module")
def assigner(mini_accel, small_dev):
    paths = iddfs_dsp_paths(mini_accel)
    graph = build_dsp_graph(mini_accel, paths)
    flags = {i: bool(mini_accel.cells[i].is_datapath) for i in mini_accel.dsp_indices()}
    dgraph = prune_control_dsps(graph, flags)
    dsps = sorted(dgraph.nodes)
    return DatapathDSPAssigner(
        mini_accel, small_dev, dgraph, dsps, AssignmentConfig(max_iterations=6)
    )


def _seeded_instances(assigner, mini_accel, small_dev, n_seeds=4):
    """Randomised (placement, prev_sites) pairs over the mini accelerator."""
    m = assigner.site_xy.shape[0]
    n = len(assigner.dsps)
    for seed in range(n_seeds):
        rng = np.random.default_rng(1000 + seed)
        place = Placement(mini_accel, small_dev)
        place.xy += rng.uniform(0.0, 500.0, size=place.xy.shape)
        prev = rng.integers(0, m, size=n)
        prev[rng.random(n) < 0.3] = -1  # some DSPs had no previous site
        yield place, prev


class TestVectorizedEquivalence:
    def test_cost_matrix_matches_loop_reference(self, assigner, mini_accel, small_dev):
        for place, prev in _seeded_instances(assigner, mini_accel, small_dev):
            for prev_sites in (None, prev):
                got = assigner.cost_matrix(place, prev_sites)
                ref = cost_matrix_ref(assigner, place, prev_sites)
                np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)

    def test_objective_matches_loop_reference(self, assigner, mini_accel, small_dev):
        m = assigner.site_xy.shape[0]
        n = len(assigner.dsps)
        for seed, (place, _) in enumerate(
            _seeded_instances(assigner, mini_accel, small_dev)
        ):
            rng = np.random.default_rng(2000 + seed)
            sites = rng.choice(m, size=n, replace=False)
            got = assigner.objective(sites, place)
            ref = objective_ref(assigner, sites, place)
            assert got == pytest.approx(ref, rel=1e-9, abs=1e-9)

    def test_objective_matches_old_halving_when_symmetric(self, mini_accel, small_dev):
        """Without truncation every DSP–DSP edge is present on both sides,
        where the canonical accounting equals the old halved one."""
        paths = iddfs_dsp_paths(mini_accel)
        graph = build_dsp_graph(mini_accel, paths)
        dsps = sorted(
            d for d in graph.nodes if mini_accel.cells[d].is_datapath
        )
        a = DatapathDSPAssigner(
            mini_accel,
            small_dev,
            graph,
            dsps,
            AssignmentConfig(max_neighbors=10_000),  # no truncation
        )
        m = a.site_xy.shape[0]
        rng = np.random.default_rng(7)
        place = Placement(mini_accel, small_dev)
        place.xy += rng.uniform(0.0, 300.0, size=place.xy.shape)
        sites = rng.choice(m, size=len(dsps), replace=False)
        assert a.objective(sites, place) == pytest.approx(
            objective_ref_halved(a, sites, place), rel=1e-9, abs=1e-9
        )

    def test_criticality_rescale_keeps_equivalence(self, mini_accel, small_dev):
        """set_criticality rebuilds the padded arrays; the vectorized cost
        must track the rescaled neighbour weights."""
        paths = iddfs_dsp_paths(mini_accel)
        graph = build_dsp_graph(mini_accel, paths)
        dsps = sorted(d for d in graph.nodes if mini_accel.cells[d].is_datapath)
        a = DatapathDSPAssigner(mini_accel, small_dev, graph, dsps)
        rng = np.random.default_rng(42)
        slack = rng.uniform(-2.0, 8.0, size=len(mini_accel.cells))
        a.set_criticality(slack, period_ns=8.0)
        place = Placement(mini_accel, small_dev)
        place.xy += rng.uniform(0.0, 200.0, size=place.xy.shape)
        np.testing.assert_allclose(
            a.cost_matrix(place, None),
            cost_matrix_ref(a, place, None),
            rtol=1e-9,
            atol=1e-9,
        )
        a.clear_criticality()
        np.testing.assert_allclose(
            a.cost_matrix(place, None),
            cost_matrix_ref(a, place, None),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_identical_assignments_before_after(self, assigner, mini_accel, small_dev):
        """The vectorized candidate/arc path must pick the same assignment
        as the pre-PR tuple-loop + successive-shortest-paths path.

        A deterministic jitter makes every optimum unique so the check is
        exact rather than cost-equal-only.
        """
        cfg = assigner.config
        n = len(assigner.dsps)
        m = assigner.site_xy.shape[0]
        k = min(cfg.candidate_k, m)
        for inst, (place, prev) in enumerate(
            _seeded_instances(assigner, mini_accel, small_dev)
        ):
            rng = np.random.default_rng(3000 + inst)
            for prev_sites in (None, prev):
                cost = assigner.cost_matrix(place, prev_sites)
                cost = cost + rng.uniform(0.0, 1e-6, size=cost.shape)
                # pre-PR arc construction: per-row python loops, first-wins
                # duplicates resolved by the (now min-cost) dedupe
                arcs = []
                for i in range(n):
                    cand = np.argpartition(cost[i], k - 1)[:k]
                    for j in cand:
                        arcs.append((i, int(j), float(cost[i, j])))
                    if prev_sites is not None and prev_sites[i] >= 0:
                        arcs.append(
                            (i, int(prev_sites[i]), float(cost[i, prev_sites[i]]))
                        )
                ref = min_cost_assignment(n, m, arcs, method="ssp")
                assigner._cand_cache.clear()
                got = assigner._solve_engine("mcf", cost, prev_sites)
                assert {i: int(s) for i, s in enumerate(got)} == ref


class TestCandidateCache:
    def test_unchanged_rows_hit_cache(self, assigner, mini_accel, small_dev):
        place, _ = next(_seeded_instances(assigner, mini_accel, small_dev))
        cost = assigner.cost_matrix(place, None)
        assigner._cand_cache.clear()
        with obs.observe() as ob:
            first = assigner._solve_engine("mcf", cost, None)
            second = assigner._solve_engine("mcf", cost, None)
        counters = ob.metrics.to_dict()["counters"]
        n = len(assigner.dsps)
        assert counters["assignment.cand_cache.misses"] == n
        assert counters["assignment.cand_cache.hits"] == n
        assert np.array_equal(first, second)

    def test_changed_row_recomputed(self, assigner, mini_accel, small_dev):
        place, _ = next(_seeded_instances(assigner, mini_accel, small_dev))
        cost = assigner.cost_matrix(place, None)
        assigner._cand_cache.clear()
        assigner._solve_engine("mcf", cost, None)
        bumped = cost.copy()
        bumped[0] += 1.0
        with obs.observe() as ob:
            assigner._solve_engine("mcf", bumped, None)
        counters = ob.metrics.to_dict()["counters"]
        assert counters["assignment.cand_cache.misses"] == 1
        assert counters["assignment.cand_cache.hits"] == len(assigner.dsps) - 1


class TestHalfCountingFix:
    def test_one_sided_truncated_edge_counts_fully(self, small_dev):
        """A DSP–DSP edge truncated off one side must contribute its full
        weight (pre-PR-3 it was halved as if both sides kept it)."""
        nl = Netlist("trunc")
        anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        d0 = nl.add_cell("d0", CellType.DSP, is_datapath=True)
        d1 = nl.add_cell("d1", CellType.DSP, is_datapath=True)
        lut = nl.add_cell("l0", CellType.LUT)
        # d0's strongest neighbour is the LUT (w=3 via parallel nets), its
        # edge to d1 has w=1; with max_neighbors=1, d0 keeps only the LUT
        # while d1 (sole neighbour: d0) keeps the d0 edge — one-sided.
        nl.add_net("a0", anchor, [d0])
        nl.add_net("a1", anchor, [lut])
        for i in range(3):
            nl.add_net(f"dl{i}", d0, [lut])
        nl.add_net("dd", d0, [d1])
        graph = build_dsp_graph(nl)
        cfg = AssignmentConfig(
            lam=0.0, eta=0.0, wl_scale=1.0, max_neighbors=1, max_iterations=2
        )
        a = DatapathDSPAssigner(nl, small_dev, graph, [d0, d1], cfg)
        # the d0–d1 edge must live on exactly one side of the neighbour lists
        sides = sum(
            1
            for k, cell in enumerate([d0, d1])
            for j in a._neighbors[k][0]
            if int(j) in (d0, d1) and int(j) != cell
        )
        assert sides == 1
        place = Placement(nl, small_dev)
        sites = np.array([0, 5])
        d = a.site_xy[sites[0]] - a.site_xy[sites[1]]
        dd_term = float(d @ d)  # full weight-1 contribution, not half
        expected_dd = a.objective(sites, place) - objective_ref(a, sites, place) + dd_term
        assert expected_dd == pytest.approx(dd_term)
        # and the canonical pair list carries the full weight once
        assert a._dd_w.tolist() == [1.0]


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [0, -1, -50])
    def test_max_iterations_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="max_iterations"):
            AssignmentConfig(max_iterations=bad)

    def test_other_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="patience"):
            AssignmentConfig(patience=0)
        with pytest.raises(ConfigurationError, match="candidate_k"):
            AssignmentConfig(candidate_k=0)
        with pytest.raises(ConfigurationError, match="max_neighbors"):
            AssignmentConfig(max_neighbors=0)

    def test_valid_config_still_solves(self, assigner, mini_accel, small_dev):
        place = Placement(mini_accel, small_dev)
        result, iters = assigner.solve(place.copy())
        assert set(result) == set(assigner.dsps)
        assert iters >= 1

    def test_solve_with_one_iteration_allowed(self, mini_accel, small_dev):
        paths = iddfs_dsp_paths(mini_accel)
        graph = build_dsp_graph(mini_accel, paths)
        dsps = sorted(d for d in graph.nodes if mini_accel.cells[d].is_datapath)
        a = DatapathDSPAssigner(
            mini_accel, small_dev, graph, dsps, AssignmentConfig(max_iterations=1)
        )
        result, iters = a.solve(Placement(mini_accel, small_dev))
        assert iters == 1
        assert len(result) == len(dsps)
