"""Batched refine engine vs the per-cell loop oracle.

The vectorized engine precomputes rest extremes, candidate verdicts, and
owner runs at pass start, and falls back to live recomputation when moves
invalidate them — all accept decisions must stay bitwise-identical to the
reference, so at a fixed seed both engines visit the same cells, accept
the same moves/swaps, and land every cell on the same site.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placers import (
    GlobalPlaceConfig,
    Legalizer,
    Placement,
    QuadraticGlobalPlacer,
    refine_sites,
)


@pytest.fixture(scope="module")
def legalized(request):
    """A legalized mini accelerator placement both engines can start from."""
    mini = request.getfixturevalue("mini_accel")
    dev = request.getfixturevalue("small_dev")
    place = QuadraticGlobalPlacer(GlobalPlaceConfig(seed=0)).place(mini, dev)
    Legalizer(dev).legalize(place)
    return place


def _run(base: Placement, method: str, **kw):
    p = base.copy()
    accepted = refine_sites(p, method=method, **kw)
    return accepted, p


class TestEquivalence:
    @pytest.mark.parametrize(
        "passes,k", [(1, 4), (2, 8), (4, 16)], ids=["1x4", "2x8", "4x16"]
    )
    def test_identical_sites_and_accept_count(self, legalized, passes, k):
        a_ref, p_ref = _run(legalized, "reference", passes=passes,
                            n_candidates=k, seed=0)
        a_vec, p_vec = _run(legalized, "vectorized", passes=passes,
                            n_candidates=k, seed=0)
        assert a_vec == a_ref
        np.testing.assert_array_equal(p_vec.site, p_ref.site)
        np.testing.assert_array_equal(p_vec.xy, p_ref.xy)

    def test_refinement_not_a_noop(self, legalized):
        a_vec, p_vec = _run(legalized, "vectorized", passes=2,
                            n_candidates=8, seed=0)
        assert a_vec > 0
        assert p_vec.hpwl() < legalized.hpwl()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 3), st.integers(2, 12))
    def test_random_seeds_and_jitter(self, legalized, seed, passes, k):
        """Jittered logic positions reshape every net bbox (and thus every
        accept decision) without breaking DSP/BRAM site legality."""
        from repro.netlist.csr import SITE_KIND_CODES, get_csr

        base = legalized.copy()
        rng = np.random.default_rng(seed)
        ctx = get_csr(base.netlist)
        is_bram = ctx.site_code == SITE_KIND_CODES.index("BRAM")
        logic = np.flatnonzero(~ctx.is_dsp & ~is_bram & ~ctx.is_fixed)
        base.xy[logic] += rng.uniform(-15.0, 15.0, (logic.size, 2))
        a_ref, p_ref = _run(base, "reference", passes=passes,
                            n_candidates=k, seed=seed)
        a_vec, p_vec = _run(base, "vectorized", passes=passes,
                            n_candidates=k, seed=seed)
        assert a_vec == a_ref
        np.testing.assert_array_equal(p_vec.site, p_ref.site)

    def test_movable_mask_respected(self, legalized):
        mask = np.zeros(len(legalized.netlist.cells), dtype=bool)
        a_ref, p_ref = _run(legalized, "reference", passes=2,
                            n_candidates=8, seed=0, movable_mask=mask)
        a_vec, p_vec = _run(legalized, "vectorized", passes=2,
                            n_candidates=8, seed=0, movable_mask=mask)
        assert a_ref == a_vec == 0
        np.testing.assert_array_equal(p_vec.site, legalized.site)

    def test_unknown_method_rejected(self, legalized):
        with pytest.raises(ValueError, match="refine method"):
            refine_sites(legalized.copy(), method="banana")
