"""Router tests: RUDY congestion, detours, routed wirelength."""

import numpy as np
import pytest

from repro.placers import Placement, VivadoLikePlacer
from repro.router import GlobalRouter, net_hpwl, steiner_factor


class TestEstimator:
    def test_net_hpwl_matches_placement_total(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        assert net_hpwl(p).sum() == pytest.approx(p.hpwl())

    def test_steiner_factor_small_nets(self):
        assert steiner_factor(np.array([2]))[0] == 1.0

    def test_steiner_factor_grows(self):
        f = steiner_factor(np.array([2, 4, 16, 64]))
        assert np.all(np.diff(f) > 0)


@pytest.fixture(scope="module")
def routed(mini_accel, small_dev):
    p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
    return p, GlobalRouter(grid=(16, 16)).route(p)


class TestGlobalRouter:
    def test_detours_at_least_one(self, routed):
        _, r = routed
        assert np.all(r.net_detour >= 1.0)
        assert np.all(r.net_detour <= 2.5)

    def test_routed_at_least_steiner(self, routed, mini_accel):
        p, r = routed
        base = net_hpwl(p) * steiner_factor(
            np.array([n.degree for n in mini_accel.nets], dtype=float)
        )
        assert np.all(r.net_routed_len >= base - 1e-9)

    def test_total_is_sum(self, routed):
        _, r = routed
        assert r.total_wirelength == pytest.approx(r.net_routed_len.sum())

    def test_congestion_map_shape(self, routed):
        _, r = routed
        assert r.congestion.shape == (16, 16)
        assert np.all(r.congestion >= 0)

    def test_overflow_frac_range(self, routed):
        _, r = routed
        assert 0.0 <= r.overflow_frac <= 1.0

    def test_conservation_of_demand(self, routed, mini_accel):
        """RUDY smears each net's wirelength exactly once over its bbox."""
        p, r = routed
        gx, gy = 16, 16
        bw, bh = p.device.width / gx, p.device.height / gy
        cap = 1.0 * bw * bh  # default capacity
        total_demand = r.congestion.sum() * cap
        from repro.router.estimator import net_hpwl as nh, steiner_factor as sf

        wl = (nh(p) * sf(np.array([n.degree for n in mini_accel.nets], dtype=float))).sum()
        assert total_demand == pytest.approx(wl, rel=1e-6)

    def test_stretched_placement_congests(self, mini_accel, small_dev):
        """Alternating cells between opposite corners overlaps every net's
        bbox in the middle — overflow and detours must exceed the optimized
        placement's."""
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        router = GlobalRouter(grid=(16, 16), capacity=0.3)
        spread = router.route(p)
        stretched = Placement(mini_accel, small_dev)
        mov = mini_accel.movable_indices()
        for k, i in enumerate(mov):
            if k % 2:
                stretched.xy[i] = (small_dev.width - 1.0, small_dev.height - 1.0)
            else:
                stretched.xy[i] = (1.0, 1.0)
        stretched_r = router.route(stretched)
        assert stretched_r.overflow_frac > spread.overflow_frac
        assert stretched_r.net_detour.mean() > spread.net_detour.mean()
