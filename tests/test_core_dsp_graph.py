"""DSP graph construction and control pruning."""

import pytest

from repro.core.extraction import build_dsp_graph, iddfs_dsp_paths, prune_control_dsps
from repro.core.extraction.dsp_graph import average_dsp_distances
from repro.netlist import CellType, Netlist


@pytest.fixture()
def dsp_netlist():
    nl = Netlist("g")
    d = [nl.add_cell(f"d{i}", CellType.DSP, is_datapath=(i < 3)) for i in range(4)]
    l = nl.add_cell("l", CellType.LUT)
    nl.add_net("c0", d[0], [d[1]])
    nl.add_net("c1", d[1], [d[2]])
    nl.add_net("via", d[2], [l])
    nl.add_net("via2", l, [d[3]])
    nl.add_macro([d[0], d[1]])
    return nl, d


class TestBuildDSPGraph:
    def test_all_dsps_are_nodes(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        assert set(g.nodes) == set(d)

    def test_edges_carry_dist(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        assert g[d[0]][d[1]]["dist"] == 1
        assert g[d[2]][d[3]]["dist"] == 2

    def test_cascade_marked(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        assert g[d[0]][d[1]].get("cascade")
        assert not g[d[1]][d[2]].get("cascade")

    def test_weight_inverse_dist(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        assert g[d[2]][d[3]]["weight"] == pytest.approx(0.5)

    def test_precomputed_paths_respected(self, dsp_netlist):
        nl, d = dsp_netlist
        paths = iddfs_dsp_paths(nl, max_depth=1)  # only direct links
        g = build_dsp_graph(nl, paths)
        assert not g.has_edge(d[2], d[3])

    def test_cascade_pairs_forced_into_graph(self):
        """Even when IDDFS finds nothing (depth 0-ish), cascade pairs stay."""
        nl = Netlist("t")
        a = nl.add_cell("a", CellType.DSP)
        b = nl.add_cell("b", CellType.DSP)
        anchor = nl.add_cell("l", CellType.LUT)
        nl.add_net("x", anchor, [a])
        nl.add_net("y", anchor, [b])
        nl.add_macro([a, b])
        g = build_dsp_graph(nl, paths=[])
        assert g.has_edge(a, b) and g[a][b]["cascade"]


class TestPrune:
    def test_control_removed(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        flags = {i: bool(nl.cells[i].is_datapath) for i in nl.dsp_indices()}
        pruned = prune_control_dsps(g, flags)
        assert set(pruned.nodes) == set(d[:3])

    def test_edges_to_control_dropped(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        pruned = prune_control_dsps(g, {d[0]: True, d[1]: True, d[2]: True, d[3]: False})
        assert not pruned.has_edge(d[2], d[3])

    def test_original_untouched(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        n_before = g.number_of_nodes()
        prune_control_dsps(g, {i: False for i in nl.dsp_indices()})
        assert g.number_of_nodes() == n_before

    def test_missing_flags_treated_control(self, dsp_netlist):
        nl, d = dsp_netlist
        g = build_dsp_graph(nl)
        pruned = prune_control_dsps(g, {})
        assert pruned.number_of_nodes() == 0


class TestAverageDistances:
    def test_mean_over_reached(self, dsp_netlist):
        nl, d = dsp_netlist
        paths = iddfs_dsp_paths(nl)
        avg = average_dsp_distances(nl, paths)
        # d0 reaches only d1 (paths never pass through another DSP)
        assert avg[d[0]] == pytest.approx(1.0)
        # d2 reaches d3 through the LUT
        assert avg[d[2]] == pytest.approx(2.0)

    def test_unreaching_dsp_zero(self, dsp_netlist):
        nl, d = dsp_netlist
        avg = average_dsp_distances(nl, iddfs_dsp_paths(nl))
        assert avg[d[3]] == 0.0
