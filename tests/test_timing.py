"""Delay model and STA tests."""

import numpy as np
import pytest

from repro.netlist import CellType, Netlist
from repro.placers import Placement, VivadoLikePlacer
from repro.router import GlobalRouter
from repro.timing import DelayModel, StaticTimingAnalyzer, max_frequency


class TestDelayModel:
    def test_sequential_kinds(self):
        dm = DelayModel()
        for kind in (CellType.FF, CellType.DSP, CellType.BRAM, CellType.IO, CellType.PS):
            assert dm.is_sequential(kind)
        for kind in (CellType.LUT, CellType.CARRY, CellType.LUTRAM):
            assert not dm.is_sequential(kind)

    def test_net_delay_grows_with_distance(self):
        dm = DelayModel()
        assert dm.net_delay(1000.0) > dm.net_delay(100.0)

    def test_detour_lengthens(self):
        dm = DelayModel()
        assert dm.net_delay(1000.0, detour=1.5) > dm.net_delay(1000.0)

    def test_cascade_adjacent_is_cheap(self):
        dm = DelayModel()
        assert dm.cascade_delay(True, 500.0) < dm.cascade_delay(False, 500.0)
        assert dm.cascade_delay(True, 9999.0) == dm.cascade_fixed


@pytest.fixture()
def two_ff_netlist():
    """ff_a -> lut -> ff_b with controllable geometry."""
    nl = Netlist("2ff")
    nl.target_freq_mhz = 100.0
    a = nl.add_cell("ffa", CellType.FF)
    l = nl.add_cell("lut", CellType.LUT)
    b = nl.add_cell("ffb", CellType.FF)
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    nl.add_net("n0", anchor, [a])
    nl.add_net("n1", a, [l])
    nl.add_net("n2", l, [b])
    return nl, a, l, b


class TestSTAHandComputed:
    def test_path_delay_exact(self, two_ff_netlist, small_dev):
        nl, a, l, b = two_ff_netlist
        p = Placement(nl, small_dev)
        p.xy[[a, l, b]] = [[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]]
        dm = DelayModel()
        rep = StaticTimingAnalyzer(nl, dm).analyze(p, period_ns=10.0)
        expect_arr = (
            dm.clk_to_q[CellType.FF]
            + dm.net_delay(100.0)
            + dm.prop[CellType.LUT]
            + dm.net_delay(100.0)
        )
        expect_slack = 10.0 - dm.setup[CellType.FF] - expect_arr
        # ffb's endpoint slack is the WNS (the pad→ffa path is shorter)
        assert rep.wns_ns == pytest.approx(expect_slack, abs=1e-9)

    def test_wns_degrades_with_distance(self, two_ff_netlist, small_dev):
        nl, a, l, b = two_ff_netlist
        p1 = Placement(nl, small_dev)
        p1.xy[[a, l, b]] = [[0, 0], [50, 0], [100, 0]]
        p2 = p1.copy()
        p2.xy[b] = [700.0, 400.0]
        sta = StaticTimingAnalyzer(nl)
        assert sta.analyze(p2, period_ns=10).wns_ns < sta.analyze(p1, period_ns=10).wns_ns

    def test_tns_sums_negative_endpoints(self, two_ff_netlist, small_dev):
        nl, a, l, b = two_ff_netlist
        p = Placement(nl, small_dev)
        rep = StaticTimingAnalyzer(nl).analyze(p, period_ns=0.01)  # impossible clock
        assert rep.wns_ns < 0
        assert rep.tns_ns <= rep.wns_ns
        assert rep.n_failing >= 1

    def test_met_flag(self, two_ff_netlist, small_dev):
        nl, *_ = two_ff_netlist
        p = Placement(nl, small_dev)
        assert StaticTimingAnalyzer(nl).analyze(p, period_ns=100.0).met
        assert not StaticTimingAnalyzer(nl).analyze(p, period_ns=0.01).met

    def test_critical_path_endpoints(self, two_ff_netlist, small_dev):
        nl, a, l, b = two_ff_netlist
        p = Placement(nl, small_dev)
        p.xy[[a, l, b]] = [[0, 0], [300, 0], [600, 0]]
        rep = StaticTimingAnalyzer(nl).analyze(p, period_ns=10.0)
        assert rep.critical_path[0] == a
        assert rep.critical_path[-1] == b

    def test_default_period_from_netlist(self, two_ff_netlist, small_dev):
        nl, *_ = two_ff_netlist
        rep = StaticTimingAnalyzer(nl).analyze(Placement(nl, small_dev))
        assert rep.period_ns == pytest.approx(10.0)

    def test_missing_period_rejected(self, two_ff_netlist, small_dev):
        nl, *_ = two_ff_netlist
        nl.target_freq_mhz = None
        with pytest.raises(ValueError):
            StaticTimingAnalyzer(nl).analyze(Placement(nl, small_dev))


class TestCascadeTiming:
    @pytest.fixture()
    def cascade_netlist(self):
        nl = Netlist("casc")
        a = nl.add_cell("d0", CellType.DSP, is_datapath=True)
        b = nl.add_cell("d1", CellType.DSP, is_datapath=True)
        anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
        nl.add_net("in", anchor, [a])
        nl.add_net("casc", a, [b])
        nl.add_macro([a, b])
        return nl, a, b

    def test_adjacent_cascade_fast(self, cascade_netlist, small_dev):
        nl, a, b = cascade_netlist
        p = Placement(nl, small_dev)
        ids = small_dev.column_site_ids("DSP", 0)
        p.assign_site(a, ids[0])
        p.assign_site(b, ids[1])
        dm = DelayModel()
        rep = StaticTimingAnalyzer(nl, dm).analyze(p, period_ns=10.0)
        expect = 10.0 - dm.setup[CellType.DSP] - (dm.clk_to_q[CellType.DSP] + dm.cascade_fixed)
        # endpoint b is the worst (pad→a is shorter than a→b? check both)
        assert min(rep.endpoint_slack) == pytest.approx(rep.wns_ns)
        b_slack = 10.0 - dm.setup[CellType.DSP] - (dm.clk_to_q[CellType.DSP] + dm.cascade_fixed)
        assert rep.wns_ns <= b_slack + 1e-9

    def test_broken_cascade_pays_penalty(self, cascade_netlist, small_dev):
        nl, a, b = cascade_netlist
        sta = StaticTimingAnalyzer(nl)
        adj = Placement(nl, small_dev)
        ids = small_dev.column_site_ids("DSP", 0)
        adj.assign_site(a, ids[0])
        adj.assign_site(b, ids[1])
        split = Placement(nl, small_dev)
        split.assign_site(a, ids[0])
        split.assign_site(b, small_dev.column_site_ids("DSP", 2)[0])
        assert sta.analyze(split, period_ns=10).wns_ns < sta.analyze(adj, period_ns=10).wns_ns


class TestSTAOnGenerated:
    def test_runs_on_accelerator(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        r = GlobalRouter(grid=(16, 16)).route(p)
        sta = StaticTimingAnalyzer(mini_accel)
        assert not sta.has_comb_cycles
        rep = sta.analyze(p, r)
        assert rep.n_endpoints > 100
        assert np.isfinite(rep.wns_ns)
        assert rep.tns_ns <= 0.0 or rep.met

    def test_max_frequency_consistent(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        sta = StaticTimingAnalyzer(mini_accel)
        fmax = max_frequency(sta, p)
        just_met = sta.analyze(p, period_ns=1e3 / (fmax * 0.99))
        just_miss = sta.analyze(p, period_ns=1e3 / (fmax * 1.01))
        assert just_met.wns_ns >= -1e-6
        assert just_miss.wns_ns < 1e-6

    def test_detours_worsen_wns(self, mini_accel, small_dev):
        p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
        sta = StaticTimingAnalyzer(mini_accel)
        no_detour = sta.analyze(p, period_ns=8.0)
        r = GlobalRouter(grid=(16, 16), capacity=0.05, detour_strength=2.0).route(p)
        with_detour = sta.analyze(p, r, period_ns=8.0)
        assert with_detour.wns_ns <= no_detour.wns_ns
