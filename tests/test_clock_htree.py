"""H-tree synthesis: determinism, geometry, balance, and vectorized skew_at."""

import time

import numpy as np
import pytest

from repro.clock import ClockTree, HTreeConfig, synthesize_htree
from repro.errors import ConfigurationError
from repro.fpga import slot_fabric, small_device

DEV = small_device(n_dsp_cols=3, dsp_rows=12)


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_htree(DEV, HTreeConfig(depth=3))
        b = synthesize_htree(DEV, HTreeConfig(depth=3))
        np.testing.assert_array_equal(a.taps, b.taps)
        np.testing.assert_array_equal(a.tap_delay, b.tap_delay)
        assert a.total_wire_um == b.total_wire_um

    @pytest.mark.parametrize("depth", [0, 1, 2, 3, 4])
    def test_tap_count_is_4_pow_depth(self, depth):
        tree = synthesize_htree(DEV, HTreeConfig(depth=depth))
        assert tree.n_taps == 4**depth

    def test_depth0_is_die_centre(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=0))
        np.testing.assert_allclose(tree.taps, [[DEV.width / 2, DEV.height / 2]])
        assert tree.tap_delay[0] == 0.0
        assert tree.total_wire_um == 0.0

    def test_taps_form_regular_grid(self):
        depth = 2
        tree = synthesize_htree(DEV, HTreeConfig(depth=depth))
        side = 2**depth
        ex = (np.arange(side) + 0.5) * DEV.width / side
        ey = (np.arange(side) + 0.5) * DEV.height / side
        np.testing.assert_allclose(sorted(set(tree.taps[:, 0].tolist())), ex)
        np.testing.assert_allclose(sorted(set(tree.taps[:, 1].tolist())), ey)

    def test_balanced_without_jitter(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=3))
        assert float(tree.tap_delay.max() - tree.tap_delay.min()) == 0.0
        # insertion delay = depth buffers + the geometric wire series
        assert tree.tap_delay[0] > 3 * 0.05

    def test_jitter_is_deterministic_and_bounded(self):
        cfg = HTreeConfig(depth=2, jitter_ns=0.02, seed=7)
        a = synthesize_htree(DEV, cfg)
        b = synthesize_htree(DEV, cfg)
        np.testing.assert_array_equal(a.tap_delay, b.tap_delay)
        ideal = synthesize_htree(DEV, HTreeConfig(depth=2))
        spread = a.tap_delay - ideal.tap_delay
        assert (spread >= 0.0).all() and (spread <= 0.02).all()
        assert float(spread.max() - spread.min()) > 0.0

    def test_segments_and_wire_length(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=2))
        # depth-d tree: 3 segment batches per level
        assert tree.segments.shape[1] == 4
        lens = np.abs(tree.segments[:, 2] - tree.segments[:, 0]) + np.abs(
            tree.segments[:, 3] - tree.segments[:, 1]
        )
        assert tree.total_wire_um == pytest.approx(float(lens.sum()))

    def test_slot_fabric_taps_at_region_centres(self):
        dev = slot_fabric(0.05)
        tree = dev.clock_tree
        assert isinstance(tree, ClockTree)
        ncx, ncy = dev.clock_region_shape
        assert tree.n_taps == ncx * ncy
        centres = sorted(
            (
                ((j + 0.5) * dev.height / ncy),
                ((i + 0.5) * dev.width / ncx),
            )
            for i in range(ncx)
            for j in range(ncy)
        )
        taps = sorted((y, x) for x, y in tree.taps)
        np.testing.assert_allclose(np.array(taps), np.array(centres))


class TestSkewAt:
    def _naive(self, tree, xs, ys):
        local = tree.config.local_delay_per_um_ns
        out = []
        for x, y in zip(xs, ys):
            d = np.abs(tree.taps[:, 0] - x) + np.abs(tree.taps[:, 1] - y)
            j = int(np.argmin(d))
            out.append(tree.tap_delay[j] + local * d[j])
        return np.array(out)

    def test_matches_naive_loop(self, rng):
        tree = synthesize_htree(DEV, HTreeConfig(depth=3, jitter_ns=0.01, seed=3))
        xs = rng.uniform(-10.0, DEV.width + 10.0, 257)
        ys = rng.uniform(-10.0, DEV.height + 10.0, 257)
        np.testing.assert_allclose(
            tree.skew_at(xs, ys), self._naive(tree, xs, ys), rtol=0, atol=0
        )

    def test_scalar_inputs(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=2))
        out = tree.skew_at(10.0, 20.0)
        assert out.shape == (1,)

    def test_shape_mismatch_rejected(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=1))
        with pytest.raises(ValueError, match="shape"):
            tree.skew_at(np.zeros(3), np.zeros(4))

    def test_10k_sinks_chunked_no_python_loop(self, rng):
        """10k sinks span multiple chunks and finish in array-op time."""
        tree = synthesize_htree(DEV, HTreeConfig(depth=4))
        n = 10_000
        xs = rng.uniform(0.0, DEV.width, n)
        ys = rng.uniform(0.0, DEV.height, n)
        t0 = time.perf_counter()
        out = tree.skew_at(xs, ys)
        elapsed = time.perf_counter() - t0
        assert out.shape == (n,)
        # generous bound: a per-sink Python loop over 10k × 256 taps is
        # orders of magnitude slower than the chunked argmin
        assert elapsed < 2.0
        sample = rng.choice(n, 64, replace=False)
        np.testing.assert_allclose(
            out[sample], self._naive(tree, xs[sample], ys[sample]), rtol=0, atol=0
        )

    def test_worst_skew(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=2))
        xs = np.array([DEV.width / 8, 0.0])  # on-tap-ish vs far corner
        ys = np.array([DEV.height / 8, 0.0])
        assert tree.worst_skew_ns(xs, ys) >= 0.0
        assert tree.worst_skew_ns(np.zeros(0), np.zeros(0)) == 0.0


class TestConfigValidation:
    @pytest.mark.parametrize("depth", [-1, 9, 2.5, "3"])
    def test_bad_depth(self, depth):
        with pytest.raises(ConfigurationError, match="depth"):
            HTreeConfig(depth=depth)

    @pytest.mark.parametrize(
        "field", ["buffer_delay_ns", "wire_delay_per_um_ns",
                  "local_delay_per_um_ns", "jitter_ns"]
    )
    def test_negative_delay(self, field):
        with pytest.raises(ConfigurationError, match=field):
            HTreeConfig(**{field: -0.1})

    def test_nan_delay(self):
        with pytest.raises(ConfigurationError, match="buffer_delay_ns"):
            HTreeConfig(buffer_delay_ns=float("nan"))

    def test_describe_keys(self):
        tree = synthesize_htree(DEV, HTreeConfig(depth=1))
        doc = tree.describe()
        for key in ("depth", "n_taps", "total_wire_um",
                    "tap_delay_min_ns", "tap_delay_max_ns"):
            assert key in doc
