"""Timing report utilities."""

import numpy as np
import pytest

from repro.netlist import CellType, Netlist
from repro.placers import Placement, VivadoLikePlacer
from repro.timing import (
    StaticTimingAnalyzer,
    format_timing_report,
    slack_histogram,
    top_critical_paths,
)


@pytest.fixture(scope="module")
def analyzed(mini_accel, small_dev):
    p = VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)
    rep = StaticTimingAnalyzer(mini_accel).analyze(p, period_ns=6.0)
    return rep, mini_accel


class TestTopCriticalPaths:
    def test_worst_first(self, analyzed):
        rep, nl = analyzed
        paths = top_critical_paths(rep, nl, k=5)
        slacks = [p.slack_ns for p in paths]
        assert slacks == sorted(slacks)
        assert slacks[0] == pytest.approx(rep.wns_ns)

    def test_path_matches_critical_path(self, analyzed):
        rep, nl = analyzed
        paths = top_critical_paths(rep, nl, k=1)
        assert list(paths[0].cells) == rep.critical_path

    def test_k_clamped(self, analyzed):
        rep, nl = analyzed
        paths = top_critical_paths(rep, nl, k=10**9)
        assert len(paths) == rep.n_endpoints

    def test_names_match_cells(self, analyzed):
        rep, nl = analyzed
        entry = top_critical_paths(rep, nl, k=1)[0]
        assert entry.names == tuple(nl.cells[i].name for i in entry.cells)

    def test_paths_start_sequential(self, analyzed):
        rep, nl = analyzed
        from repro.timing.delay_model import SEQUENTIAL_KINDS

        for entry in top_critical_paths(rep, nl, k=8):
            assert nl.cells[entry.cells[0]].ctype in SEQUENTIAL_KINDS
            assert nl.cells[entry.cells[-1]].ctype in SEQUENTIAL_KINDS
            # interior is combinational
            for i in entry.cells[1:-1]:
                assert nl.cells[i].ctype not in SEQUENTIAL_KINDS


class TestSlackHistogram:
    def test_counts_sum(self, analyzed):
        rep, _ = analyzed
        rows = slack_histogram(rep, n_bins=8)
        assert sum(r[2] for r in rows) == rep.n_endpoints

    def test_bins_cover_range(self, analyzed):
        rep, _ = analyzed
        rows = slack_histogram(rep)
        assert rows[0][0] == pytest.approx(rep.endpoint_slack.min())
        assert rows[-1][1] == pytest.approx(rep.endpoint_slack.max())


class TestFormat:
    def test_contains_headline_numbers(self, analyzed):
        rep, nl = analyzed
        text = format_timing_report(rep, nl, k_paths=2)
        assert f"{rep.wns_ns:+.3f}" in text
        assert "path 1" in text and "path 2" in text
