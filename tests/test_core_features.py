"""Feature extraction tests against the paper's Definitions 1-3."""

import networkx as nx
import numpy as np
import pytest

from repro.core.extraction import FEATURE_NAMES, FeatureConfig, extract_node_features
from repro.netlist import CellType, Netlist


@pytest.fixture()
def path_netlist():
    """A -- B -- C -- D path (undirected view), driver-chain A→B→C→D."""
    nl = Netlist("path")
    cells = [nl.add_cell(n, CellType.LUT) for n in "abcd"]
    for i in range(3):
        nl.add_net(f"n{i}", cells[i], [cells[i + 1]])
    return nl, cells


class TestExactDefinitions:
    def test_closeness_definition(self, path_netlist):
        """Definition 2: closeness = 1 / Σ distances (networkx normalizes
        by (n-1); we use its convention)."""
        nl, cells = path_netlist
        feats = extract_node_features(nl)
        # node a: distances 1,2,3 → closeness = (n-1)/Σ = 3/6
        assert feats[cells[0], 0] == pytest.approx(3 / 6)
        # node b: distances 1,1,2 → 3/4
        assert feats[cells[1], 0] == pytest.approx(3 / 4)

    def test_eccentricity_definition(self, path_netlist):
        """Definition 3: max shortest-path distance to any node."""
        nl, cells = path_netlist
        feats = extract_node_features(nl)
        assert feats[cells[0], 2] == 3
        assert feats[cells[1], 2] == 2

    def test_betweenness_definition(self, path_netlist):
        """Definition 1 (via networkx normalization on 4-node path)."""
        nl, cells = path_netlist
        feats = extract_node_features(nl)
        g = nx.path_graph(4)
        ref = nx.betweenness_centrality(g)
        assert feats[cells[1], 5] == pytest.approx(ref[1])
        assert feats[cells[0], 5] == pytest.approx(ref[0])

    def test_degrees(self, path_netlist):
        nl, cells = path_netlist
        feats = extract_node_features(nl)
        assert feats[cells[0], 3] == 0 and feats[cells[0], 4] == 1
        assert feats[cells[1], 3] == 1 and feats[cells[1], 4] == 1
        assert feats[cells[3], 3] == 1 and feats[cells[3], 4] == 0

    def test_feedback_loop_membership(self):
        nl = Netlist("loop")
        a = nl.add_cell("a", CellType.LUT)
        b = nl.add_cell("b", CellType.FF)
        c = nl.add_cell("c", CellType.LUT)
        nl.add_net("ab", a, [b])
        nl.add_net("ba", b, [a])
        nl.add_net("bc", b, [c])
        feats = extract_node_features(nl)
        assert feats[a, 1] == 1.0 and feats[b, 1] == 1.0
        assert feats[c, 1] == 0.0

    def test_avg_dsp_distance(self):
        nl = Netlist("dspd")
        d0 = nl.add_cell("d0", CellType.DSP)
        l = nl.add_cell("l", CellType.LUT)
        d1 = nl.add_cell("d1", CellType.DSP)
        d2 = nl.add_cell("d2", CellType.DSP)
        nl.add_net("a", d0, [l])
        nl.add_net("b", l, [d1])
        nl.add_net("c", d1, [d2])
        feats = extract_node_features(nl)
        # d0: distances to d1=2, d2=3 → mean 2.5
        assert feats[d0, 6] == pytest.approx(2.5)
        # non-DSP nodes carry 0
        assert feats[l, 6] == 0.0

    def test_feature_count_matches_paper(self):
        assert len(FEATURE_NAMES) == 7

    def test_disconnected_components_match_networkx(self):
        """The dense csgraph distance matrix carries inf across components;
        eccentricity and avg-DSP-distance must ignore the unreachable pairs
        exactly like the per-component networkx walk did."""
        nl = Netlist("split")
        # component 1: d0 — l0 — d1 path
        d0 = nl.add_cell("d0", CellType.DSP)
        l0 = nl.add_cell("l0", CellType.LUT)
        d1 = nl.add_cell("d1", CellType.DSP)
        nl.add_net("a", d0, [l0])
        nl.add_net("b", l0, [d1])
        # component 2: d2 — l1 — l2 path (one DSP, no reachable DSP peer)
        d2 = nl.add_cell("d2", CellType.DSP)
        l1 = nl.add_cell("l1", CellType.LUT)
        l2 = nl.add_cell("l2", CellType.LUT)
        nl.add_net("c", d2, [l1])
        nl.add_net("d", l1, [l2])
        # component 3: an isolated FF (validate() requires a net; self-loop
        # free single net keeps it connected to nothing else)
        f = nl.add_cell("f", CellType.FF)
        g = nl.add_cell("g", CellType.FF)
        nl.add_net("e", f, [g])

        feats = extract_node_features(nl)
        ug = nx.Graph(
            [(d0, l0), (l0, d1), (d2, l1), (l1, l2), (f, g)]
        )
        for comp in nx.connected_components(ug):
            ecc = nx.eccentricity(ug.subgraph(comp))
            for node in comp:
                assert feats[node, 2] == ecc[node], f"eccentricity of node {node}"
        # d0/d1 see each other at distance 2; d2 has no reachable DSP → 0
        assert feats[d0, 6] == pytest.approx(2.0)
        assert feats[d1, 6] == pytest.approx(2.0)
        assert feats[d2, 6] == 0.0


class TestSampledApproximation:
    def test_approx_close_to_exact(self):
        """On a mid-size graph the sampled features should correlate with
        the exact ones."""
        rng = np.random.default_rng(0)
        nl = Netlist("mid")
        n = 120
        cells = [
            nl.add_cell(f"c{i}", CellType.DSP if i % 7 == 0 else CellType.LUT)
            for i in range(n)
        ]
        for j in range(int(n * 2)):
            a, b = rng.integers(0, n, 2)
            if a != b:
                nl.add_net(f"n{j}", int(a), [int(b)])
        exact = extract_node_features(nl, FeatureConfig(exact_threshold=10_000))
        approx = extract_node_features(
            nl, FeatureConfig(exact_threshold=1, n_pivots=60, seed=1)
        )
        # closeness correlation
        for col in (0, 2):
            r = np.corrcoef(exact[:, col], approx[:, col])[0, 1]
            assert r > 0.7, f"{FEATURE_NAMES[col]} corr {r}"

    def test_shape_and_finiteness(self, mini_accel):
        feats = extract_node_features(mini_accel, FeatureConfig(exact_threshold=1, n_pivots=8))
        assert feats.shape == (len(mini_accel.cells), 7)
        assert np.isfinite(feats).all()
