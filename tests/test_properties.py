"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accelgen import AcceleratorConfig, generate_accelerator
from repro.fpga import small_device
from repro.netlist import CellType, Netlist
from repro.placers import Legalizer, Placement
from repro.timing import DelayModel


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    total_dsps=st.integers(6, 30),
    chain_len=st.integers(2, 6),
    pes_per_pu=st.integers(1, 4),
    ctrl=st.floats(0.02, 0.3),
    seed=st.integers(0, 100),
)
def test_generator_always_valid(total_dsps, chain_len, pes_per_pu, ctrl, seed):
    """Property: any config yields a validating netlist with exact totals
    and fully-labeled DSPs."""
    cfg = AcceleratorConfig(
        name="prop",
        total_dsps=total_dsps,
        chain_len=chain_len,
        pes_per_pu=pes_per_pu,
        n_lut=400,
        n_lutram=40,
        n_ff=450,
        n_bram=10,
        freq_mhz=100.0,
        control_dsp_frac=ctrl,
        seed=seed,
    )
    nl = generate_accelerator(cfg)
    nl.validate()
    st_ = nl.stats()
    assert st_.n_dsp == total_dsps
    assert st_.n_lut == 400 and st_.n_ff == 450
    assert all(c.is_datapath is not None for c in nl.cells if c.ctype.is_dsp)
    for m in nl.macros:
        m.validate()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000), n_dsp=st.integers(1, 30), n_bram=st.integers(0, 8))
def test_legalizer_always_legal(seed, n_dsp, n_bram):
    """Property: random continuous placements legalize to legal states."""
    dev = small_device(n_dsp_cols=3, dsp_rows=12)
    rng = np.random.default_rng(seed)
    nl = Netlist("prop")
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(1.0, 1.0))
    cells = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(n_dsp)]
    cells += [nl.add_cell(f"b{i}", CellType.BRAM) for i in range(n_bram)]
    cells += [nl.add_cell(f"l{i}", CellType.LUT) for i in range(10)]
    nl.add_net("seed", anchor, [cells[0]])
    # random macros over a prefix of the DSPs
    i = 0
    while i + 2 <= n_dsp and rng.random() < 0.6:
        length = int(rng.integers(2, min(5, n_dsp - i) + 1))
        nl.add_macro(list(range(1, 1 + n_dsp))[i : i + length])
        i += length
    p = Placement(nl, dev)
    mov = nl.movable_indices()
    p.xy[mov] = rng.uniform([0, 0], [dev.width, dev.height], (len(mov), 2))
    Legalizer(dev).legalize(p)
    assert p.is_legal(), p.legality_violations()[:3]


@settings(max_examples=30, deadline=None)
@given(
    d1=st.floats(0, 5000, allow_nan=False),
    d2=st.floats(0, 5000, allow_nan=False),
    det=st.floats(1.0, 2.5, allow_nan=False),
)
def test_delay_model_monotone(d1, d2, det):
    """Property: net delay is monotone in distance and detour."""
    dm = DelayModel()
    lo, hi = sorted([d1, d2])
    assert dm.net_delay(lo) <= dm.net_delay(hi) + 1e-12
    assert dm.net_delay(hi, det) >= dm.net_delay(hi) - 1e-12
    assert dm.cascade_delay(True, hi, det) <= dm.cascade_delay(False, hi, det)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), shift=st.floats(-50, 50, allow_nan=False))
def test_hpwl_translation_invariance(seed, shift):
    """Property: HPWL is invariant under global translation."""
    dev = small_device()
    rng = np.random.default_rng(seed)
    nl = Netlist("p")
    cells = [nl.add_cell(f"c{i}", CellType.LUT) for i in range(8)]
    for j in range(6):
        a, b = rng.integers(0, 8, 2)
        if a != b:
            nl.add_net(f"n{j}", int(a), [int(b)])
    if not nl.nets:
        return
    p = Placement(nl, dev)
    p.xy[:] = rng.uniform(0, 500, p.xy.shape)
    h = p.hpwl()
    p2 = p.copy()
    p2.xy += shift
    assert p2.hpwl() == pytest.approx(h, rel=1e-9, abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sta_slack_antitone_in_net_stretch(seed):
    """Property: moving one cell farther from its driver cannot improve WNS."""
    from repro.timing import StaticTimingAnalyzer

    dev = small_device()
    rng = np.random.default_rng(seed)
    nl = Netlist("sta")
    a = nl.add_cell("ffa", CellType.FF)
    b = nl.add_cell("ffb", CellType.FF)
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    nl.add_net("n0", anchor, [a])
    nl.add_net("n1", a, [b])
    p = Placement(nl, dev)
    p.xy[a] = rng.uniform(0, 200, 2)
    p.xy[b] = p.xy[a] + rng.uniform(0, 50, 2)
    sta = StaticTimingAnalyzer(nl)
    w1 = sta.analyze(p, period_ns=5.0).wns_ns
    p.xy[b] = p.xy[a] + rng.uniform(100, 400, 2)
    w2 = sta.analyze(p, period_ns=5.0).wns_ns
    assert w2 <= w1 + 1e-12
