"""Placement container tests: HPWL, legality checks."""

import numpy as np
import pytest

from repro.placers import Placement


@pytest.fixture()
def place(tiny_netlist, small_dev):
    return Placement(tiny_netlist, small_dev)


class TestInit:
    def test_fixed_cells_pinned(self, place, tiny_netlist):
        ps = tiny_netlist.cell_by_name("ps")
        assert tuple(place.xy[ps.index]) == ps.fixed_xy

    def test_movable_start_at_center(self, place, small_dev, tiny_netlist):
        lut = tiny_netlist.cell_by_name("lut0")
        assert tuple(place.xy[lut.index]) == (small_dev.width / 2, small_dev.height / 2)

    def test_no_sites_assigned(self, place):
        movable = place.netlist.movable_indices()
        assert all(place.site[i] == -1 for i in movable)


class TestHPWL:
    def test_zero_when_collocated(self, place):
        # all movable at one point; fixed cells contribute their spans
        base = place.hpwl()
        assert base > 0  # PS/IO pull nets open

    def test_hpwl_manual(self, tiny_netlist, small_dev):
        p = Placement(tiny_netlist, small_dev)
        p.xy[:] = 0.0
        a = tiny_netlist.cell_by_name("dsp0").index
        b = tiny_netlist.cell_by_name("dsp1").index
        p.xy[a] = (0.0, 0.0)
        p.xy[b] = (30.0, 40.0)
        # dsp1 sits on nets c01 and c12, each spanning (30 + 40)
        assert p.hpwl() == pytest.approx(140.0)

    def test_weighted_hpwl_uses_net_weights(self, tiny_netlist, small_dev):
        for net in tiny_netlist.nets:
            if net.name == "c01":
                net.weight = 5.0
        p = Placement(tiny_netlist, small_dev)
        p.xy[:] = 0.0
        b = tiny_netlist.cell_by_name("dsp1").index
        p.xy[b] = (10.0, 0.0)
        assert p.hpwl(weighted=True) == pytest.approx(5 * 10.0 + 10.0)
        # dsp1 is on c01 (w=5) and c12 (w=1)

    def test_weighted_hpwl_tracks_live_weight_mutation(self, tiny_netlist, small_dev):
        """Regression: the per-net weights used to be cached on the first
        weighted query, so timing-driven reweighting (which mutates
        ``net.weight`` in place between rounds) silently kept scoring the
        stale weights."""
        p = Placement(tiny_netlist, small_dev)
        p.xy[:] = 0.0
        b = tiny_netlist.cell_by_name("dsp1").index
        p.xy[b] = (10.0, 0.0)
        before = p.hpwl(weighted=True)
        assert before == pytest.approx(20.0)  # c01 + c12, both w=1
        for net in tiny_netlist.nets:
            if net.name == "c01":
                net.weight = 7.0
        assert p.hpwl(weighted=True) == pytest.approx(before + 6 * 10.0)

    def test_hpwl_translation_invariant(self, place, rng):
        movable = place.netlist.movable_indices()
        place.xy[movable] = rng.uniform(0, 300, (len(movable), 2))
        h1 = place.hpwl()
        # translating *everything* (fixed included) keeps HPWL
        p2 = place.copy()
        p2.xy = p2.xy + 7.0
        assert p2.hpwl() == pytest.approx(h1)

    def test_copy_independent(self, place):
        c = place.copy()
        c.xy[0, 0] += 1
        assert place.xy[0, 0] != c.xy[0, 0]


class TestLegality:
    def test_unplaced_cells_reported(self, place):
        v = place.legality_violations()
        assert any("no legal" in s for s in v)

    def test_assign_site_syncs_xy(self, place, small_dev, tiny_netlist):
        d = tiny_netlist.cell_by_name("dsp0").index
        place.assign_site(d, 3)
        assert tuple(place.xy[d]) == tuple(small_dev.site_xy("DSP")[3])

    def test_double_occupancy_detected(self, place, tiny_netlist):
        a = tiny_netlist.cell_by_name("dsp0").index
        b = tiny_netlist.cell_by_name("dsp1").index
        place.assign_site(a, 0)
        place.assign_site(b, 0)
        v = place.legality_violations()
        assert any("holds 2 cells" in s for s in v)

    def test_macro_split_column_detected(self, place, tiny_netlist, small_dev):
        col0 = small_dev.column_site_ids("DSP", 0)
        col1 = small_dev.column_site_ids("DSP", 1)
        names = ["dsp0", "dsp1", "dsp2"]
        sites = [col0[0], col0[1], col1[0]]
        for n, s in zip(names, sites):
            place.assign_site(tiny_netlist.cell_by_name(n).index, s)
        v = place.legality_violations()
        assert any("spans columns" in s for s in v)

    def test_macro_gap_detected(self, place, tiny_netlist, small_dev):
        col0 = small_dev.column_site_ids("DSP", 0)
        for n, s in zip(["dsp0", "dsp1", "dsp2"], [col0[0], col0[1], col0[3]]):
            place.assign_site(tiny_netlist.cell_by_name(n).index, s)
        v = place.legality_violations()
        assert any("not consecutive" in s for s in v)

    def test_moved_fixed_cell_detected(self, place, tiny_netlist):
        ps = tiny_netlist.cell_by_name("ps").index
        place.xy[ps] = (999.0, 999.0)
        assert any("fixed" in s for s in place.legality_violations())
