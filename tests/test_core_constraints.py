"""XDC constraint export/import round-trips."""

import numpy as np
import pytest

from repro.core import DSPlacer, DSPlacerConfig
from repro.core.constraints import apply_xdc_constraints, dsp_constraints_to_xdc
from repro.placers import Placement, VivadoLikePlacer


@pytest.fixture(scope="module")
def placed(mini_accel, small_dev):
    return VivadoLikePlacer(seed=0, device=small_dev).place(mini_accel)


class TestExport:
    def test_one_line_per_dsp(self, placed, mini_accel):
        xdc = dsp_constraints_to_xdc(placed)
        n_dsp = len(mini_accel.dsp_indices())
        assert xdc.count("set_property LOC DSP48E2_") == n_dsp

    def test_subset_export(self, placed, mini_accel):
        dsps = mini_accel.dsp_indices()[:3]
        xdc = dsp_constraints_to_xdc(placed, dsps)
        assert xdc.count("set_property") == 3
        for i in dsps:
            assert mini_accel.cells[i].name in xdc

    def test_unplaced_dsp_rejected(self, mini_accel, small_dev):
        p = Placement(mini_accel, small_dev)
        with pytest.raises(ValueError, match="no DSP site"):
            dsp_constraints_to_xdc(p, mini_accel.dsp_indices()[:1])


class TestRoundTrip:
    def test_sites_recovered(self, placed, mini_accel, small_dev):
        xdc = dsp_constraints_to_xdc(placed)
        back = apply_xdc_constraints(xdc, mini_accel, small_dev)
        dsps = mini_accel.dsp_indices()
        assert np.array_equal(back.site[dsps], placed.site[dsps])

    def test_bad_site_rejected(self, mini_accel, small_dev):
        name = mini_accel.cells[mini_accel.dsp_indices()[0]].name
        xdc = f"set_property LOC DSP48E2_X0Y9999 [get_cells {{{name}}}]"
        with pytest.raises(ValueError, match="does not exist"):
            apply_xdc_constraints(xdc, mini_accel, small_dev)

    def test_non_dsp_rejected(self, mini_accel, small_dev):
        lut = next(c for c in mini_accel.cells if c.ctype.value == "LUT")
        xdc = f"set_property LOC DSP48E2_X0Y0 [get_cells {{{lut.name}}}]"
        with pytest.raises(ValueError, match="non-DSP"):
            apply_xdc_constraints(xdc, mini_accel, small_dev)

    def test_paper_flow_handoff(self, mini_accel, small_dev):
        """DSPlacer exports constraints; a fresh baseline run honors them."""
        res = DSPlacer(small_dev, DSPlacerConfig(identification="oracle", mcf_iterations=3)).place(
            mini_accel
        )
        datapath = [
            c.index
            for c in mini_accel.cells
            if c.ctype.is_dsp and res.placement.site[c.index] >= 0 and c.is_datapath
        ]
        xdc = dsp_constraints_to_xdc(res.placement, datapath)
        seeded = apply_xdc_constraints(xdc, mini_accel, small_dev)
        mask = np.array([not c.is_fixed for c in mini_accel.cells])
        mask[datapath] = False
        final = VivadoLikePlacer(seed=1, device=small_dev).place(mini_accel, placement=seeded, movable_mask=mask
        )
        assert final.is_legal()
        assert np.array_equal(final.site[datapath], res.placement.site[datapath])
