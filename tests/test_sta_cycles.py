"""STA behaviour on combinational cycles (defensive path)."""

from repro.netlist import CellType, Netlist
from repro.placers import Placement
from repro.timing import StaticTimingAnalyzer


def test_comb_cycle_detected_and_survives(small_dev):
    nl = Netlist("cyc")
    a = nl.add_cell("l0", CellType.LUT)
    b = nl.add_cell("l1", CellType.LUT)
    ff = nl.add_cell("ff", CellType.FF)
    anchor = nl.add_cell("pad", CellType.IO, fixed_xy=(0.0, 0.0))
    nl.add_net("ab", a, [b])
    nl.add_net("ba", b, [a, ff])  # a <-> b combinational loop
    nl.add_net("seed", anchor, [a])
    sta = StaticTimingAnalyzer(nl)
    assert sta.has_comb_cycles
    rep = sta.analyze(Placement(nl, small_dev), period_ns=10.0)
    assert rep.n_endpoints >= 1


def test_generated_designs_have_no_comb_cycles(mini_accel):
    assert not StaticTimingAnalyzer(mini_accel).has_comb_cycles
