"""Legalizer tests: overlap-freedom, macro legality, capacity limits."""

import numpy as np
import pytest

from repro.placers import Legalizer, Placement
from repro.netlist import CellType, Netlist


@pytest.fixture()
def spread_placement(mini_accel, small_dev, rng):
    p = Placement(mini_accel, small_dev)
    mov = mini_accel.movable_indices()
    p.xy[mov] = rng.uniform([0, 0], [small_dev.width, small_dev.height], (len(mov), 2))
    return p


class TestFullLegalize:
    def test_result_is_legal(self, spread_placement, small_dev):
        Legalizer(small_dev).legalize(spread_placement)
        assert spread_placement.is_legal(), spread_placement.legality_violations()[:5]

    def test_macros_consecutive(self, spread_placement, small_dev, mini_accel):
        Legalizer(small_dev).legalize(spread_placement)
        sites = small_dev.sites("DSP")
        for m in mini_accel.macros:
            sids = [int(spread_placement.site[i]) for i in m.dsps]
            assert all(b == a + 1 for a, b in zip(sids, sids[1:]))
            assert len({sites[s].col for s in sids}) == 1

    def test_idempotent_quality(self, spread_placement, small_dev):
        leg = Legalizer(small_dev)
        leg.legalize(spread_placement)
        h1 = spread_placement.hpwl()
        leg.legalize(spread_placement)
        assert spread_placement.is_legal()
        assert spread_placement.hpwl() == pytest.approx(h1, rel=0.3)

    def test_frozen_cells_keep_sites(self, spread_placement, small_dev, mini_accel):
        leg = Legalizer(small_dev)
        leg.legalize(spread_placement)
        frozen = mini_accel.dsp_indices()
        sites_before = spread_placement.site[frozen].copy()
        mask = np.array([not c.is_fixed for c in mini_accel.cells])
        mask[frozen] = False
        leg.legalize(spread_placement, movable_mask=mask)
        assert np.array_equal(spread_placement.site[frozen], sites_before)
        assert spread_placement.is_legal()


class TestDSPLegalization:
    def test_nearest_site_for_single(self, small_dev):
        nl = Netlist("one")
        d = nl.add_cell("d", CellType.DSP)
        anchor = nl.add_cell("a", CellType.IO, fixed_xy=(1.0, 1.0))
        nl.add_net("n", d, [anchor])
        p = Placement(nl, small_dev)
        target = small_dev.site_xy("DSP")[7]
        p.xy[d] = target
        Legalizer(small_dev).legalize(p)
        assert p.site[d] == 7

    def test_macro_longer_than_column_rejected(self, small_dev):
        nl = Netlist("long")
        too_long = small_dev.kind_columns("DSP")[0].n_sites + small_dev.kind_columns("DSP")[1].n_sites + 1
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(too_long)]
        anchor = nl.add_cell("a", CellType.IO, fixed_xy=(1.0, 1.0))
        nl.add_net("n", dsps[0], [anchor])
        nl.add_macro(dsps)
        p = Placement(nl, small_dev)
        with pytest.raises(ValueError, match="cascade"):
            Legalizer(small_dev).legalize(p)

    def test_capacity_saturation(self, small_dev):
        """Exactly as many DSPs as sites still legalizes."""
        nl = Netlist("full")
        n = small_dev.n_dsp
        anchor = nl.add_cell("a", CellType.IO, fixed_xy=(1.0, 1.0))
        dsps = [nl.add_cell(f"d{i}", CellType.DSP) for i in range(n)]
        nl.add_net("n", dsps[0], [anchor])
        p = Placement(nl, small_dev)
        Legalizer(small_dev).legalize(p)
        assert sorted(p.site[dsps].tolist()) == list(range(n))


class TestCLBLegalization:
    def test_capacity_respected(self, spread_placement, small_dev):
        Legalizer(small_dev).legalize(spread_placement)
        counts = {}
        for c in spread_placement.netlist.cells:
            if c.ctype.site_kind == "CLB" and not c.is_fixed:
                counts[spread_placement.site[c.index]] = (
                    counts.get(spread_placement.site[c.index], 0) + 1
                )
        assert max(counts.values()) <= small_dev.clb_capacity

    def test_too_many_clb_cells_rejected(self, small_dev):
        nl = Netlist("over")
        cap = small_dev.n_sites("CLB") * small_dev.clb_capacity
        anchor = nl.add_cell("a", CellType.IO, fixed_xy=(1.0, 1.0))
        luts = [nl.add_cell(f"l{i}", CellType.LUT) for i in range(cap + 1)]
        nl.add_net("n", luts[0], [anchor])
        p = Placement(nl, small_dev)
        with pytest.raises(ValueError, match="CLB"):
            Legalizer(small_dev).legalize(p)
