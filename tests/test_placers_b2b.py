"""B2B net model: vectorized-vs-reference equivalence + placer integration.

The one-pass assembly (``b2b_method="vectorized"``) must produce the same
symmetric adjacency as the per-net loop oracle on any pin structure and any
coordinates — including collapsed pins, duplicate cells on one net, and
single-pin nets. At the placer level, the B2B model must beat the clique
model's HPWL on the generated fixture (that is the point of the model) and
both assembly engines must yield bitwise-identical placements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.csr import get_csr
from repro.placers.analytical import GlobalPlaceConfig, QuadraticGlobalPlacer
from repro.placers.b2b import b2b_adjacency


def _both(pin_cell, pin_ptr, pin_net, coords, weights, n_cells, eps=1.0):
    vec = b2b_adjacency(pin_cell, pin_ptr, pin_net, coords, weights, n_cells,
                        eps=eps, method="vectorized")
    ref = b2b_adjacency(pin_cell, pin_ptr, pin_net, coords, weights, n_cells,
                        eps=eps, method="reference")
    return vec, ref


def _assert_same(vec, ref):
    diff = (vec - ref).tocoo()
    if diff.nnz:
        assert float(np.abs(diff.data).max()) < 1e-12
    # symmetry: the adjacency is used as A + A.T of the edge list
    sym = (vec - vec.T).tocoo()
    assert sym.nnz == 0 or float(np.abs(sym.data).max()) < 1e-12


class TestAdjacencyEquivalence:
    def test_generated_suite(self, mini_accel):
        ctx = get_csr(mini_accel)
        rng = np.random.default_rng(5)
        coords = rng.uniform(0.0, 480.0, len(mini_accel.cells))
        weights = rng.uniform(0.5, 3.0, len(mini_accel.nets))
        vec, ref = _both(ctx.pin_cell, ctx.pin_ptr, ctx.pin_net, coords,
                         weights, len(mini_accel.cells))
        _assert_same(vec, ref)

    def test_collapsed_pins_use_eps_clamp(self, tiny_netlist):
        ctx = get_csr(tiny_netlist)
        n = len(tiny_netlist.cells)
        coords = np.zeros(n)  # every pin collapsed → every distance clamps
        weights = np.ones(len(tiny_netlist.nets))
        vec, ref = _both(ctx.pin_cell, ctx.pin_ptr, ctx.pin_net, coords,
                         weights, n, eps=2.0)
        _assert_same(vec, ref)
        assert np.isfinite(vec.data).all()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 12), st.integers(1, 18))
    def test_random_pin_structures(self, seed, n_cells, n_nets):
        """Random CSR-shaped pin arrays, duplicate cells on a net allowed."""
        rng = np.random.default_rng(seed)
        npins = rng.integers(1, 6, n_nets)  # 1-pin nets must be skipped
        pin_ptr = np.concatenate(([0], np.cumsum(npins)))
        pin_cell = rng.integers(0, n_cells, int(npins.sum()))
        pin_net = np.repeat(np.arange(n_nets), npins)
        coords = rng.uniform(-50.0, 50.0, n_cells)
        # jitter some coordinates onto exact ties to exercise the
        # first-occurrence boundary-pin rule
        if n_cells > 2:
            coords[rng.integers(0, n_cells)] = coords[0]
        weights = rng.uniform(0.1, 4.0, n_nets)
        vec, ref = _both(pin_cell, pin_ptr, pin_net, coords, weights, n_cells)
        _assert_same(vec, ref)

    def test_empty_netlist(self):
        e = np.empty(0, dtype=np.int64)
        vec, ref = _both(e, np.zeros(1, dtype=np.int64), e,
                         np.zeros(3), np.empty(0), 3)
        assert vec.nnz == 0 and ref.nnz == 0


class TestPlacerIntegration:
    def test_b2b_beats_clique_hpwl(self, mini_accel, small_dev):
        """The point of the model: quadratic cost tracks HPWL, so the solved
        placement's HPWL must improve on the clique model's (deterministic
        seed, deterministic fixture)."""
        hp = {}
        for nm in ("clique", "b2b"):
            p = QuadraticGlobalPlacer(
                GlobalPlaceConfig(net_model=nm, seed=0)
            ).place(mini_accel, small_dev)
            hp[nm] = p.hpwl()
        assert hp["b2b"] < hp["clique"]

    def test_assembly_engines_identical_solution(self, mini_accel, small_dev):
        a = QuadraticGlobalPlacer(
            GlobalPlaceConfig(net_model="b2b", b2b_method="vectorized", seed=0)
        ).place(mini_accel, small_dev)
        b = QuadraticGlobalPlacer(
            GlobalPlaceConfig(net_model="b2b", b2b_method="reference", seed=0)
        ).place(mini_accel, small_dev)
        np.testing.assert_array_equal(a.xy, b.xy)

    def test_unknown_net_model_rejected(self):
        with pytest.raises(ValueError, match="net_model"):
            QuadraticGlobalPlacer(GlobalPlaceConfig(net_model="star"))

    def test_unknown_b2b_method_rejected(self):
        with pytest.raises(ValueError, match="b2b_method"):
            QuadraticGlobalPlacer(GlobalPlaceConfig(b2b_method="banana"))

    def test_unknown_assembly_method_rejected(self, tiny_netlist):
        ctx = get_csr(tiny_netlist)
        with pytest.raises(ValueError, match="b2b method"):
            b2b_adjacency(ctx.pin_cell, ctx.pin_ptr, ctx.pin_net,
                          np.zeros(len(tiny_netlist.cells)),
                          np.ones(len(tiny_netlist.nets)),
                          len(tiny_netlist.cells), method="banana")
