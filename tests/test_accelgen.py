"""Unit tests for the CNN-accelerator benchmark generator."""

import numpy as np
import pytest

from repro.accelgen import AcceleratorConfig, SUITE_NAMES, generate_accelerator, generate_suite, suite_config
from repro.accelgen.generator import _chain_plan
from repro.netlist import CellType


@pytest.fixture(scope="module")
def small_cfg():
    return AcceleratorConfig(
        name="t",
        total_dsps=40,
        chain_len=4,
        pes_per_pu=3,
        n_lut=800,
        n_lutram=60,
        n_ff=900,
        n_bram=16,
        freq_mhz=100.0,
        control_dsp_frac=0.1,
    )


@pytest.fixture(scope="module")
def small_nl(small_cfg):
    return generate_accelerator(small_cfg)


class TestConfig:
    def test_control_datapath_split(self, small_cfg):
        assert small_cfg.n_control_dsps == 4
        assert small_cfg.n_datapath_dsps == 36

    def test_scaled_preserves_microarch(self, small_cfg):
        s = small_cfg.scaled(0.5)
        assert s.chain_len == small_cfg.chain_len
        assert s.pes_per_pu == small_cfg.pes_per_pu
        assert s.total_dsps == 20

    def test_scaled_identity(self, small_cfg):
        assert small_cfg.scaled(1.0) is small_cfg

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig("x", 1, 4, 2, 100, 10, 100, 4, 100.0)
        with pytest.raises(ValueError):
            AcceleratorConfig("x", 40, 1, 2, 100, 10, 100, 4, 100.0)
        with pytest.raises(ValueError):
            AcceleratorConfig("x", 40, 4, 2, 100, 10, 100, 4, 100.0, control_dsp_frac=0.7)


class TestChainPlan:
    def test_budget_exact(self, small_cfg):
        chains, n_pp = _chain_plan(small_cfg)
        assert sum(chains) + n_pp == small_cfg.n_datapath_dsps

    def test_chain_lengths(self, small_cfg):
        chains, _ = _chain_plan(small_cfg)
        assert all(2 <= c <= small_cfg.chain_len + 1 for c in chains)

    def test_budget_smaller_than_one_chain(self):
        # datapath budget (4) below chain_len used to overflow into an extra
        # DSP: the plan forced a full-length chain instead of truncating it
        cfg = AcceleratorConfig(
            "t", total_dsps=6, chain_len=5, pes_per_pu=1, n_lut=400,
            n_lutram=40, n_ff=450, n_bram=10, freq_mhz=100.0,
            control_dsp_frac=0.25,
        )
        chains, n_pp = _chain_plan(cfg)
        assert sum(chains) + n_pp == cfg.n_datapath_dsps
        assert all(2 <= c <= cfg.chain_len + 1 for c in chains)
        nl = generate_accelerator(cfg)
        assert nl.stats().n_dsp == cfg.total_dsps


class TestGeneratedStructure:
    def test_resource_totals_exact(self, small_cfg, small_nl):
        st = small_nl.stats()
        assert st.n_lut == small_cfg.n_lut
        assert st.n_ff == small_cfg.n_ff
        assert st.n_lutram == small_cfg.n_lutram
        assert st.n_bram == small_cfg.n_bram
        assert st.n_dsp == small_cfg.total_dsps

    def test_validates(self, small_nl):
        small_nl.validate()

    def test_every_dsp_labeled(self, small_nl):
        for c in small_nl.cells:
            if c.ctype.is_dsp:
                assert c.is_datapath is not None

    def test_control_fraction(self, small_cfg, small_nl):
        n_ctrl = sum(
            1 for c in small_nl.cells if c.ctype.is_dsp and c.is_datapath is False
        )
        assert n_ctrl == small_cfg.n_control_dsps

    def test_pe_macros_exist(self, small_nl):
        pe_macros = [
            m
            for m in small_nl.macros
            if small_nl.cells[m.dsps[0]].attrs.get("role") == "pe_dsp"
        ]
        assert pe_macros
        for m in pe_macros:
            assert all(small_nl.cells[i].is_datapath for i in m.dsps)

    def test_single_ps(self, small_nl):
        assert len(small_nl.cells_of_type(CellType.PS)) == 1

    def test_ps_has_connections(self, small_nl):
        ps = small_nl.cells_of_type(CellType.PS)[0].index
        incident = small_nl.nets_of_cell()[ps]
        assert incident  # AXI in and out

    def test_deterministic_given_seed(self, small_cfg):
        a = generate_accelerator(small_cfg, seed=7)
        b = generate_accelerator(small_cfg, seed=7)
        assert [c.name for c in a.cells] == [c.name for c in b.cells]
        assert [n.sinks for n in a.nets] == [n.sinks for n in b.nets]

    def test_seed_changes_filler(self, small_cfg):
        a = generate_accelerator(small_cfg, seed=7)
        b = generate_accelerator(small_cfg, seed=8)
        assert [n.sinks for n in a.nets] != [n.sinks for n in b.nets]

    def test_pipeline_stage_chaining(self, small_nl):
        """Inter-PU datapath: some act buffer is written by an acc/pp DSP."""
        writers = set()
        for net in small_nl.nets:
            for s in net.sinks:
                if small_nl.cells[s].attrs.get("role") == "act_buf":
                    writers.add(small_nl.cells[net.driver].attrs.get("role"))
        assert writers & {"acc", "pp_dsp"}

    def test_device_pins_ps_location(self, small_dev):
        nl = generate_suite("ismartdnn", scale=0.02, device=small_dev)
        ps = nl.cells_of_type(CellType.PS)[0]
        assert ps.fixed_xy == small_dev.ps.ps_to_pl_xy


class TestSuites:
    def test_suite_names(self):
        assert len(SUITE_NAMES) == 5

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_suite_config_resolves(self, name):
        cfg = suite_config(name)
        assert cfg.total_dsps > 0

    def test_suite_alias_forms(self):
        assert suite_config("SkrSkr-1").name == "SkrSkr-1"
        assert suite_config("skrskr_1").name == "SkrSkr-1"

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            suite_config("resnet")

    def test_table1_dsp_counts(self):
        expect = {"ismartdnn": 197, "skynet": 346, "skrskr1": 642, "skrskr2": 1180, "skrskr3": 1431}
        for name, dsp in expect.items():
            assert suite_config(name).total_dsps == dsp

    def test_scaled_suite_generation(self):
        nl = generate_suite("skynet", scale=0.05)
        st = nl.stats()
        assert st.n_dsp == round(346 * 0.05)
